//! Integration tests of the PC1A flow against the substrate component
//! models: Table 2 component states, Fig. 4 flow ordering and the Sec. 5.5
//! latency bounds, exercised through the public APMU interface.

use apc::core::apmu::{Apmu, WakeCause, WakeOutcome};
use apc::prelude::*;
use apc::soc::io::LinkPowerState;
use apc::soc::memory::DramPowerMode;
use apc::soc::pll::PllState;

fn idle_socket(at: SimTime) -> SkxSoc {
    let mut soc = SkxSoc::xeon_silver_4114();
    soc.force_all_cores(at, CoreCState::CC1);
    for link in soc.ios_mut().iter_mut() {
        link.end_traffic(at);
    }
    soc
}

#[test]
fn pc1a_resident_state_matches_table2() {
    let t0 = SimTime::from_micros(10);
    let mut soc = idle_socket(t0);
    let mut apmu = Apmu::new();

    let deadline = apmu.on_all_cores_idle(&mut soc, t0).unwrap();
    let resident = apmu.on_standby_deadline(&mut soc, deadline).unwrap();
    apmu.on_entry_complete(resident);

    // Table 2, PC1A row: cores CC1, L3 retained, PLLs on, PCIe/DMI in L0s,
    // UPI in L0p, DRAM CKE-off.
    assert!(soc.cores().all_in_cc1_or_deeper());
    assert!(soc.plls().iter().all(|p| p.state() == PllState::Locked));
    for link in soc.ios().iter() {
        match link.kind() {
            apc::soc::io::IoKind::Upi => assert_eq!(link.state(), LinkPowerState::L0p),
            _ => assert_eq!(link.state(), LinkPowerState::L0s),
        }
    }
    assert!(soc
        .memory()
        .iter()
        .all(|m| m.mode() == DramPowerMode::PrechargePowerDown));
    assert_eq!(soc.clm().state(), apc::soc::clm::ClmState::Retention);
}

#[test]
fn entry_plus_exit_fits_the_200ns_budget() {
    let t0 = SimTime::ZERO;
    let mut soc = idle_socket(t0);
    let mut apmu = Apmu::new();
    let deadline = apmu.on_all_cores_idle(&mut soc, t0).unwrap();
    let resident = apmu.on_standby_deadline(&mut soc, deadline).unwrap();
    let entry_latency = resident - deadline;
    apmu.on_entry_complete(resident);
    let outcome = apmu.wakeup(&mut soc, resident, WakeCause::IoTraffic);
    let total = entry_latency + outcome.latency();
    assert!(
        total <= SimDuration::from_nanos(200),
        "entry+exit {total} exceeds 200 ns"
    );
    // And the analytic budget agrees.
    let model = Pc1aLatencyModel::from_components();
    assert!(model.round_trip() <= SimDuration::from_nanos(200));
    assert_eq!(model.entry(), SimDuration::from_nanos(18));
}

#[test]
fn exit_restores_full_operation() {
    let t0 = SimTime::ZERO;
    let mut soc = idle_socket(t0);
    let mut apmu = Apmu::new();
    let deadline = apmu.on_all_cores_idle(&mut soc, t0).unwrap();
    let resident = apmu.on_standby_deadline(&mut soc, deadline).unwrap();
    apmu.on_entry_complete(resident);

    let wake = resident + SimDuration::from_micros(100);
    let WakeOutcome::Exiting { done_at, .. } = apmu.wakeup(&mut soc, wake, WakeCause::GpmuEvent)
    else {
        panic!("expected exit flow");
    };
    apmu.on_exit_complete(&mut soc, done_at);
    apmu.on_core_active(&mut soc, done_at);

    assert!(soc.ios().iter().all(|l| l.state() == LinkPowerState::L0));
    assert!(soc
        .memory()
        .iter()
        .all(|m| m.mode() == DramPowerMode::Active));
    assert_eq!(soc.clm().state(), apc::soc::clm::ClmState::Operational);
    assert!(apmu.stats().pc1a_residency >= SimDuration::from_micros(100));
}

#[test]
fn pc6_flow_is_two_orders_of_magnitude_slower() {
    use apc::pmu::gpmu::Gpmu;
    let mut soc = SkxSoc::xeon_silver_4114();
    soc.force_all_cores(SimTime::ZERO, CoreCState::CC6);
    let mut gpmu = Gpmu::new(PackageCState::PC6);
    let entry = gpmu.begin_entry(&mut soc, SimTime::from_micros(10));
    gpmu.complete_entry(&mut soc, SimTime::from_micros(10) + entry);
    let exit = gpmu.begin_exit(&mut soc, SimTime::from_micros(500));
    let pc6_round_trip = entry + exit;
    let pc1a_round_trip = Pc1aLatencyModel::from_components().round_trip();
    let ratio = pc6_round_trip.as_nanos() as f64 / pc1a_round_trip.as_nanos() as f64;
    assert!(ratio > 250.0, "ratio {ratio}");
}

#[test]
fn disabled_apmu_mirrors_the_baseline() {
    let t0 = SimTime::ZERO;
    let mut soc = idle_socket(t0);
    let mut apmu = Apmu::disabled();
    assert!(apmu.on_all_cores_idle(&mut soc, t0).is_none());
    assert!(!apmu.in_pc1a());
    assert_eq!(apmu.stats().pc1a_entries, 0);
}
