//! Integration tests of the workload calibration: the synthetic services
//! must land in the paper's utilisation ranges and produce the idle-period
//! structure the evaluation relies on.

use apc::prelude::*;

fn run(spec: WorkloadSpec, rate: f64) -> RunResult {
    run_experiment(
        ServerConfig::c_shallow().with_duration(SimDuration::from_millis(250)),
        spec,
        rate,
    )
}

#[test]
fn memcached_utilization_tracks_the_offered_load() {
    let low = run(WorkloadSpec::memcached_etc(), 25_000.0);
    let high = run(WorkloadSpec::memcached_etc(), 100_000.0);
    assert!(
        low.cpu_utilization > 0.04 && low.cpu_utilization < 0.12,
        "5% point measured {}",
        low.cpu_utilization
    );
    assert!(
        high.cpu_utilization > 0.15 && high.cpu_utilization < 0.35,
        "20% point measured {}",
        high.cpu_utilization
    );
    assert!(high.all_idle_fraction < low.all_idle_fraction);
}

#[test]
fn memcached_low_load_idle_periods_are_microsecond_scale() {
    // Fig. 6(c): at low load the bulk of fully-idle periods fall between
    // 20 µs and 200 µs.
    let r = run(WorkloadSpec::memcached_etc(), 10_000.0);
    assert!(r.idle_periods > 100, "idle periods {}", r.idle_periods);
    assert!(
        r.idle_periods_20_200us > 0.35,
        "fraction in 20-200us {}",
        r.idle_periods_20_200us
    );
    assert!(
        r.all_idle_fraction > 0.3,
        "all idle {}",
        r.all_idle_fraction
    );
}

#[test]
fn mysql_operating_points_match_the_paper_loads() {
    let spec = WorkloadSpec::mysql_oltp();
    let points = spec.operating_points.clone();
    let low = run(WorkloadSpec::mysql_oltp(), points[0].rate_per_sec);
    let high = run(WorkloadSpec::mysql_oltp(), points[2].rate_per_sec);
    assert!(
        (low.cpu_utilization - 0.08).abs() < 0.05,
        "low {}",
        low.cpu_utilization
    );
    assert!(
        (high.cpu_utilization - 0.42).abs() < 0.12,
        "high {}",
        high.cpu_utilization
    );
    // All-idle opportunity exists at every rate (paper: 20-37 %).
    assert!(low.all_idle_fraction > 0.15);
}

#[test]
fn kafka_shows_all_idle_opportunity_at_both_loads() {
    let spec = WorkloadSpec::kafka();
    let points = spec.operating_points.clone();
    let low = run(WorkloadSpec::kafka(), points[0].rate_per_sec);
    let high = run(WorkloadSpec::kafka(), points[1].rate_per_sec);
    assert!(low.all_idle_fraction > high.all_idle_fraction);
    assert!(low.all_idle_fraction > 0.2, "low {}", low.all_idle_fraction);
    assert!(
        high.all_idle_fraction > 0.05,
        "high {}",
        high.all_idle_fraction
    );
}

#[test]
fn kafka_and_mysql_gain_power_savings_from_pc1a() {
    for (spec, rate) in [
        (WorkloadSpec::kafka(), 8_000.0),
        (WorkloadSpec::mysql_oltp(), 800.0),
    ] {
        let name = spec.name;
        let baseline = run_experiment(
            ServerConfig::c_shallow().with_duration(SimDuration::from_millis(250)),
            spec,
            rate,
        );
        let apc = run_experiment(
            ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(250)),
            match name {
                "kafka" => WorkloadSpec::kafka(),
                _ => WorkloadSpec::mysql_oltp(),
            },
            rate,
        );
        let saving = apc.power_saving_vs(&baseline);
        assert!(saving > 0.03, "{name} saving {saving}");
        let impact = apc.latency_overhead_vs(&baseline);
        assert!(impact < 0.01, "{name} impact {impact}");
    }
}
