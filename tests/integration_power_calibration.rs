//! Integration tests of the power calibration: the composed package-state
//! budgets must reproduce Table 1 and Sec. 5.4 of the paper, and the
//! simulator's time-integrated power must agree with the closed-form budgets.

use apc::power::budget::PackageStatePower;
use apc::prelude::*;
use apc::soc::cstate::PackageCState;

#[test]
fn table1_levels_are_reproduced() {
    let b = PackageStatePower::skx_reference();
    let idle = b.state_power(PackageCState::PC0Idle);
    let pc6 = b.state_power(PackageCState::PC6);
    let pc1a = b.state_power(PackageCState::PC1A);
    let pc0 = b.pc0_power();

    assert!(
        (idle.total().as_f64() - 49.5).abs() < 0.5,
        "PC0idle {}",
        idle.total()
    );
    assert!(
        (pc6.total().as_f64() - 12.5).abs() < 0.5,
        "PC6 {}",
        pc6.total()
    );
    assert!(
        (pc1a.total().as_f64() - 29.1).abs() < 0.5,
        "PC1A {}",
        pc1a.total()
    );
    assert!(pc0.total().as_f64() <= 92.5 && pc0.total().as_f64() > 85.0);
}

#[test]
fn transition_latencies_match_table1_scales() {
    assert!(PackageCState::PC6.transition_latency() >= SimDuration::from_micros(50));
    assert!(PackageCState::PC1A.transition_latency() <= SimDuration::from_nanos(200));
    let ratio = PackageCState::PC6.transition_latency().as_nanos() as f64
        / PackageCState::PC1A.transition_latency().as_nanos() as f64;
    assert!(ratio >= 250.0, "PC6/PC1A latency ratio {ratio}");
}

#[test]
fn eq2_eq3_derivation_matches_direct_model() {
    let estimator = Pc1aPowerEstimator::skx_reference();
    let estimate = estimator.estimate();
    let direct = estimator.direct();
    assert!((estimate.pc1a.soc.as_f64() - direct.soc.as_f64()).abs() < 1e-9);
    assert!((estimate.pc1a.dram.as_f64() - direct.dram.as_f64()).abs() < 1e-9);
    // Paper's component deltas.
    assert!((estimate.deltas.cores.as_f64() - 12.1).abs() < 0.2);
    assert!((estimate.deltas.ios.as_f64() - 3.5).abs() < 0.2);
    assert!((estimate.deltas.plls.as_f64() - 0.056).abs() < 0.01);
    assert!((estimate.deltas.dram.as_f64() - 1.1).abs() < 0.1);
}

#[test]
fn simulated_idle_power_matches_closed_form_budget() {
    // Run the simulator with no load and no background noise under each
    // configuration and compare against the closed-form budget.
    let budget = PackageStatePower::skx_reference();
    let cases = [
        (ServerConfig::c_shallow(), PackageCState::PC0Idle),
        (ServerConfig::c_pc1a(), PackageCState::PC1A),
    ];
    for (config, state) in cases {
        let mut config = config.with_duration(SimDuration::from_millis(100));
        config.noise = None;
        let result = run_experiment(config, WorkloadSpec::memcached_etc(), 1.0);
        let expected = budget.state_power(state).total().as_f64();
        let measured = result.avg_total_power().as_f64();
        assert!(
            (measured - expected).abs() / expected < 0.05,
            "{state:?}: measured {measured} vs expected {expected}"
        );
    }
}

#[test]
fn uncore_and_dram_dominate_idle_power() {
    // Sec. 2: uncore + DRAM account for > 65 % of SoC+DRAM power when all
    // cores idle in CC1.
    let model = PowerModel::skx_calibrated();
    let mut soc = SkxSoc::xeon_silver_4114();
    soc.force_all_cores(SimTime::ZERO, CoreCState::CC1);
    let snapshot = model.snapshot(&soc, 0.0);
    assert!(snapshot.uncore_and_dram_fraction() > 0.65);
}

#[test]
fn area_overhead_stays_under_0_75_percent() {
    let report = ApcAreaModel::skx().report();
    assert!(report.total_percent() < 0.75);
    assert!(report.total_percent() > 0.01);
}
