//! Cross-crate integration tests: full-system simulation under the three
//! platform configurations, checking the paper's headline claims end to end.

use apc::prelude::*;

fn run(config: ServerConfig, rate: f64) -> RunResult {
    run_experiment(
        config.with_duration(SimDuration::from_millis(250)),
        WorkloadSpec::memcached_etc(),
        rate,
    )
}

#[test]
fn pc1a_saves_power_at_low_load_with_negligible_latency_impact() {
    let rate = 25_000.0; // ~5 % utilisation
    let baseline = run(ServerConfig::c_shallow(), rate);
    let apc = run(ServerConfig::c_pc1a(), rate);

    // Substantial savings at low load (the paper reports ~23 % at 5 % load,
    // 37 % at 4 K QPS; we only require the shape).
    let saving = apc.power_saving_vs(&baseline);
    assert!(saving > 0.10, "saving {saving}");
    assert!(saving < 0.45, "saving {saving}");

    // Negligible latency impact (paper: < 0.1 %; we allow measurement noise
    // up to 1 %).
    let impact = apc.latency_overhead_vs(&baseline);
    assert!(impact < 0.01, "latency impact {impact}");

    // The APC configuration actually used PC1A.
    assert!(
        apc.pc1a_transitions > 50,
        "transitions {}",
        apc.pc1a_transitions
    );
    assert!(apc.pc1a_residency > 0.2, "residency {}", apc.pc1a_residency);
}

#[test]
fn savings_shrink_as_load_grows() {
    let mut savings = Vec::new();
    for rate in [4_000.0, 50_000.0, 150_000.0] {
        let baseline = run(ServerConfig::c_shallow(), rate);
        let apc = run(ServerConfig::c_pc1a(), rate);
        savings.push(apc.power_saving_vs(&baseline));
    }
    assert!(
        savings[0] > savings[1] && savings[1] > savings[2],
        "savings not monotonically decreasing: {savings:?}"
    );
}

#[test]
fn cdeep_latency_penalty_motivates_the_paper() {
    let rate = 25_000.0;
    let shallow = run(ServerConfig::c_shallow(), rate);
    let deep = run(ServerConfig::c_deep(), rate);
    let apc = run(ServerConfig::c_pc1a(), rate);

    // Cdeep is visibly slower than Cshallow (Fig. 5), CPC1A is not.
    assert!(
        deep.latency.mean.as_micros_f64() > shallow.latency.mean.as_micros_f64() * 1.2,
        "deep {} shallow {}",
        deep.latency.mean,
        shallow.latency.mean
    );
    assert!(
        apc.latency.mean.as_micros_f64() < shallow.latency.mean.as_micros_f64() * 1.01,
        "apc {} shallow {}",
        apc.latency.mean,
        shallow.latency.mean
    );
}

#[test]
fn baseline_power_matches_calibration_at_idle() {
    // A practically idle Cshallow server sits near the 49.5 W SoC+DRAM level
    // of Table 1 (background noise adds a little core activity).
    let mut cfg = ServerConfig::c_shallow().with_duration(SimDuration::from_millis(200));
    cfg.noise = None;
    let result = run_experiment(cfg, WorkloadSpec::memcached_etc(), 1.0);
    let total = result.avg_total_power().as_f64();
    assert!((total - 49.5).abs() < 1.5, "idle Cshallow power {total}");
}

#[test]
fn run_results_are_internally_consistent() {
    let r = run(ServerConfig::c_pc1a(), 50_000.0);
    // Residency fractions are valid probabilities.
    for f in [
        r.cc0_fraction,
        r.cc1_fraction,
        r.cc6_fraction,
        r.all_idle_fraction,
        r.pc1a_residency,
        r.pc6_residency,
        r.cpu_utilization,
    ] {
        assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
    }
    // Core residencies sum to ~1.
    let sum = r.cc0_fraction + r.cc1_fraction + r.cc6_fraction;
    assert!((sum - 1.0).abs() < 0.05, "core residency sum {sum}");
    // PC1A residency cannot exceed the all-idle opportunity by more than the
    // tracker floor effects.
    assert!(r.pc1a_residency <= r.all_idle_fraction + 0.1);
    // Latency includes at least the network RTT.
    assert!(r.latency.mean >= SimDuration::from_micros(117));
    assert!(r.latency.p99 >= r.latency.p50);
    assert!(r.throughput() > 0.0);
}
