//! Property-based tests of core invariants across the stack.
//!
//! The crates.io `proptest` crate is unavailable in the offline build
//! environment, so these properties are exercised by a small hand-rolled
//! harness: each property runs against many randomly generated inputs drawn
//! from a fixed-seed [`SimRng`], which keeps failures exactly reproducible.

use apc::core::apmu::{Apmu, WakeCause};
use apc::prelude::*;
use apc::sim::engine::EventQueue;
use apc::sim::rng::SimRng;
use apc::sim::stats::{PercentileRecorder, StreamingStats};

/// Runs `body` against `cases` independently seeded RNG streams. The seed is
/// derived from the property name so each property sees a distinct but fully
/// reproducible input sequence.
fn for_each_case(label: &str, cases: u64, mut body: impl FnMut(&mut SimRng)) {
    let base = SimRng::from_seed(0xA11CE).fork(label).seed();
    for case in 0..cases {
        let mut rng = SimRng::from_seed(base ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        body(&mut rng);
    }
}

fn vec_u64(rng: &mut SimRng, lo: u64, hi: u64, min_len: usize, max_len: usize) -> Vec<u64> {
    let len = min_len + rng.index(max_len - min_len);
    (0..len)
        .map(|_| lo + (rng.next_u64() % (hi - lo)))
        .collect()
}

fn vec_f64(rng: &mut SimRng, lo: f64, hi: f64, min_len: usize, max_len: usize) -> Vec<f64> {
    let len = min_len + rng.index(max_len - min_len);
    (0..len).map(|_| rng.uniform_range(lo, hi)).collect()
}

/// The event queue always delivers events in non-decreasing time order,
/// regardless of the insertion order.
#[test]
fn event_queue_is_time_ordered() {
    for_each_case("event_queue_is_time_ordered", 64, |rng| {
        let times = vec_u64(rng, 0, 1_000_000, 1, 200);
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            last = t;
        }
    });
}

/// Streaming statistics agree with a direct two-pass computation.
#[test]
fn streaming_stats_match_naive() {
    for_each_case("streaming_stats_match_naive", 64, |rng| {
        let values = vec_f64(rng, -1e6, 1e6, 1, 300);
        let mut s = StreamingStats::new();
        for &v in &values {
            s.record(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        assert!((s.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
    });
}

/// Quantiles are monotonic in the quantile parameter and bounded by the
/// sample extremes.
#[test]
fn quantiles_are_monotonic() {
    for_each_case("quantiles_are_monotonic", 64, |rng| {
        let values = vec_f64(rng, 0.0, 1e9, 2, 200);
        let mut r = PercentileRecorder::new();
        for &v in &values {
            r.record(v);
        }
        let lo = r.quantile(0.1).unwrap();
        let mid = r.quantile(0.5).unwrap();
        let hi = r.quantile(0.99).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(lo <= mid && mid <= hi);
        assert!(lo >= min - 1e-9 && hi <= max + 1e-9);
    });
}

/// The power model never produces negative power, and deeper package
/// states never consume more than shallower ones.
#[test]
fn package_power_ordering_holds() {
    for_each_case("package_power_ordering_holds", 32, |rng| {
        let util = rng.uniform();
        let budget = PackageStatePower::skx_reference();
        let pc0idle = budget.state_power(PackageCState::PC0Idle).total().as_f64();
        let pc1a = budget.state_power(PackageCState::PC1A).total().as_f64();
        let pc6 = budget.state_power(PackageCState::PC6).total().as_f64();
        assert!(pc6 > 0.0 && pc1a > 0.0 && pc0idle > 0.0);
        assert!(pc6 < pc1a && pc1a < pc0idle);
        // DRAM utilisation never makes idle states more expensive.
        let model = PowerModel::skx_calibrated();
        let soc = SkxSoc::xeon_silver_4114();
        let snap = model.snapshot(&soc, util);
        assert!(snap.soc_total().as_f64() > 0.0);
        assert!(snap.dram.as_f64() >= 5.5 - 1e-9);
    });
}

/// However the APMU is driven (random wake/idle sequences), its PC1A
/// residency accounting never exceeds wall-clock time and entries never
/// exceed all-idle episodes.
#[test]
fn apmu_statistics_are_consistent() {
    for_each_case("apmu_statistics_are_consistent", 48, |rng| {
        let gaps = vec_u64(rng, 1, 500, 1, 40);
        let mut soc = SkxSoc::xeon_silver_4114();
        let mut apmu = Apmu::new();
        let mut now = SimTime::from_micros(1);
        for (i, gap) in gaps.iter().enumerate() {
            // All cores idle, links idle.
            soc.force_all_cores(now, CoreCState::CC1);
            for link in soc.ios_mut().iter_mut() {
                link.end_traffic(now);
            }
            if let Some(deadline) = apmu.on_all_cores_idle(&mut soc, now) {
                if let Some(resident) = apmu.on_standby_deadline(&mut soc, deadline) {
                    apmu.on_entry_complete(resident);
                    now = resident + SimDuration::from_micros(*gap);
                    let cause = if i % 2 == 0 {
                        WakeCause::IoTraffic
                    } else {
                        WakeCause::CoreInterrupt
                    };
                    if let apc::core::apmu::WakeOutcome::Exiting { done_at, .. } =
                        apmu.wakeup(&mut soc, now, cause)
                    {
                        apmu.on_exit_complete(&mut soc, done_at);
                        apmu.on_core_active(&mut soc, done_at);
                        now = done_at + SimDuration::from_micros(5);
                    }
                } else {
                    now += SimDuration::from_micros(*gap);
                    let _ = apmu.wakeup(&mut soc, now, WakeCause::CoreInterrupt);
                    now += SimDuration::from_micros(5);
                }
            }
        }
        let stats = apmu.stats();
        assert!(stats.pc1a_entries <= stats.acc1_entries);
        assert!(stats.pc1a_residency <= now - SimTime::ZERO);
        assert!(stats.io_wakeups + stats.event_wakeups >= stats.pc1a_entries);
    });
}

/// Short full-system runs never violate basic accounting invariants,
/// whatever the (low) request rate and seed.
#[test]
fn full_system_runs_are_well_formed() {
    for_each_case("full_system_runs_are_well_formed", 8, |rng| {
        let rate = rng.uniform_range(1_000.0, 40_000.0);
        let seed = rng.next_u64() % 1_000;
        let cfg = ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(50))
            .with_seed(seed);
        let result = run_experiment(cfg, WorkloadSpec::memcached_etc(), rate);
        assert!(result.avg_soc_power.as_f64() > 10.0);
        assert!(result.avg_soc_power.as_f64() < 90.0);
        assert!(result.pc1a_residency >= 0.0 && result.pc1a_residency <= 1.0);
        assert!(result.latency.mean >= SimDuration::from_micros(117));
        assert!(result.cpu_utilization <= 1.0);
    });
}
