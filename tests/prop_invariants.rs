//! Property-based tests of core invariants across the stack.

use apc::prelude::*;
use apc::core::apmu::{Apmu, WakeCause};
use apc::sim::engine::EventQueue;
use apc::sim::stats::{PercentileRecorder, StreamingStats};
use proptest::prelude::*;

proptest! {
    /// The event queue always delivers events in non-decreasing time order,
    /// regardless of the insertion order.
    #[test]
    fn event_queue_is_time_ordered(times in proptest::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(*t), i);
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            last = t;
        }
    }

    /// Streaming statistics agree with a direct two-pass computation.
    #[test]
    fn streaming_stats_match_naive(values in proptest::collection::vec(-1e6f64..1e6, 1..300)) {
        let mut s = StreamingStats::new();
        for &v in &values {
            s.record(v);
        }
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / values.len() as f64;
        prop_assert!((s.mean() - mean).abs() < 1e-6 * mean.abs().max(1.0));
        prop_assert!((s.variance() - var).abs() < 1e-5 * var.abs().max(1.0));
    }

    /// Quantiles are monotonic in the quantile parameter and bounded by the
    /// sample extremes.
    #[test]
    fn quantiles_are_monotonic(values in proptest::collection::vec(0f64..1e9, 2..200)) {
        let mut r = PercentileRecorder::new();
        for &v in &values {
            r.record(v);
        }
        let lo = r.quantile(0.1).unwrap();
        let mid = r.quantile(0.5).unwrap();
        let hi = r.quantile(0.99).unwrap();
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo <= mid && mid <= hi);
        prop_assert!(lo >= min - 1e-9 && hi <= max + 1e-9);
    }

    /// The power model never produces negative power, and deeper package
    /// states never consume more than shallower ones.
    #[test]
    fn package_power_ordering_holds(util in 0.0f64..1.0) {
        let budget = PackageStatePower::skx_reference();
        let pc0idle = budget.state_power(PackageCState::PC0Idle).total().as_f64();
        let pc1a = budget.state_power(PackageCState::PC1A).total().as_f64();
        let pc6 = budget.state_power(PackageCState::PC6).total().as_f64();
        prop_assert!(pc6 > 0.0 && pc1a > 0.0 && pc0idle > 0.0);
        prop_assert!(pc6 < pc1a && pc1a < pc0idle);
        // DRAM utilisation never makes idle states more expensive.
        let model = PowerModel::skx_calibrated();
        let soc = SkxSoc::xeon_silver_4114();
        let snap = model.snapshot(&soc, util);
        prop_assert!(snap.soc_total().as_f64() > 0.0);
        prop_assert!(snap.dram.as_f64() >= 5.5 - 1e-9);
    }

    /// However the APMU is driven (random wake/idle sequences), its PC1A
    /// residency accounting never exceeds wall-clock time and entries never
    /// exceed all-idle episodes.
    #[test]
    fn apmu_statistics_are_consistent(gaps in proptest::collection::vec(1u64..500, 1..40)) {
        let mut soc = SkxSoc::xeon_silver_4114();
        let mut apmu = Apmu::new();
        let mut now = SimTime::from_micros(1);
        for (i, gap) in gaps.iter().enumerate() {
            // All cores idle, links idle.
            soc.force_all_cores(now, CoreCState::CC1);
            for link in soc.ios_mut().iter_mut() {
                link.end_traffic(now);
            }
            if let Some(deadline) = apmu.on_all_cores_idle(&mut soc, now) {
                if let Some(resident) = apmu.on_standby_deadline(&mut soc, deadline) {
                    apmu.on_entry_complete(resident);
                    now = resident + SimDuration::from_micros(*gap);
                    let cause = if i % 2 == 0 { WakeCause::IoTraffic } else { WakeCause::CoreInterrupt };
                    if let apc::core::apmu::WakeOutcome::Exiting { done_at, .. } =
                        apmu.wakeup(&mut soc, now, cause)
                    {
                        apmu.on_exit_complete(&mut soc, done_at);
                        apmu.on_core_active(&mut soc, done_at);
                        now = done_at + SimDuration::from_micros(5);
                    }
                } else {
                    now = now + SimDuration::from_micros(*gap);
                    let _ = apmu.wakeup(&mut soc, now, WakeCause::CoreInterrupt);
                    now = now + SimDuration::from_micros(5);
                }
            }
        }
        let stats = apmu.stats();
        prop_assert!(stats.pc1a_entries <= stats.acc1_entries);
        prop_assert!(stats.pc1a_residency <= now - SimTime::ZERO);
        prop_assert!(stats.io_wakeups + stats.event_wakeups >= stats.pc1a_entries);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Short full-system runs never violate basic accounting invariants,
    /// whatever the (low) request rate and seed.
    #[test]
    fn full_system_runs_are_well_formed(rate in 1_000f64..40_000.0, seed in 0u64..1_000) {
        let cfg = ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(50))
            .with_seed(seed);
        let result = run_experiment(cfg, WorkloadSpec::memcached_etc(), rate);
        prop_assert!(result.avg_soc_power.as_f64() > 10.0);
        prop_assert!(result.avg_soc_power.as_f64() < 90.0);
        prop_assert!(result.pc1a_residency >= 0.0 && result.pc1a_residency <= 1.0);
        prop_assert!(result.latency.mean >= SimDuration::from_micros(117));
        prop_assert!(result.cpu_utilization <= 1.0);
    }
}
