//! RTT vs wake latency: how network round-trip time dilutes the tail cost
//! of deep C-states on fan-out chains.
//!
//! ```text
//! cargo run --release --example mesh_rtt_sweep
//! ```
//!
//! The paper's tail-amplification argument assumes wake latency is a
//! *visible* fraction of end-to-end latency. This sweep runs the same
//! 8-node fan-out-4 memcached mesh through a two-tier fabric at increasing
//! per-link latency (0 → 20 us, i.e. server↔server RTTs of 0 → 160 us for
//! inter-rack siblings) and compares `Cdeep` and `CPC1A` tails against
//! `Cshallow` at each point:
//!
//! * at zero RTT, a CC6/PC6 wake on one straggler leaf dominates the join
//!   and `Cdeep`'s p999 amplification over `Cshallow` is at its widest;
//! * as RTT grows, fixed wire time swamps the (constant) wake latency and
//!   the amplification ratio shrinks toward 1 — deep sleep becomes cheap
//!   *relatively*, though every platform's absolute tail inflates;
//! * `CPC1A` tracks `Cshallow` at every point: nanosecond-scale PC1A
//!   transitions are invisible at any realistic RTT.
//!
//! The assertion at the bottom pins the headline trend: `Cdeep`'s p999
//! amplification at zero RTT strictly exceeds its amplification at the
//! largest RTT.

use apc::prelude::*;

/// One platform's chain tail at a given per-link latency.
fn run(base: &ServerConfig, link_latency: SimDuration) -> ChainResult {
    let base = base.clone().with_duration(SimDuration::from_millis(20));
    let mut member = ChainMember::homogeneous(
        &base,
        8,
        RoutingPolicyKind::JoinShortestQueue,
        RequestGraph::memcached_fanout(4),
        8_000.0,
    );
    // Zero-latency flat fabric would be bit-identical to no fabric at all;
    // sweep the two-tier topology so inter-rack legs cost 4 links each way.
    member = member.with_network(NetworkConfig::two_tier(link_latency, 4));
    member.run()
}

fn main() {
    let shallow = ServerConfig::c_shallow();
    let deep = ServerConfig::c_deep();
    let pc1a = ServerConfig::c_pc1a();

    let rtts_us = [0u64, 1, 5, 20];
    let mut table = TextTable::new(
        "two-tier mesh-8-fanout4, p999 amplification vs Cshallow by link latency",
        &[
            "link us",
            "Cshallow p999",
            "Cdeep p999",
            "CPC1A p999",
            "Cdeep amp",
            "CPC1A amp",
            "wire mean",
        ],
    );

    let mut deep_amp_at = Vec::new();
    for us in rtts_us {
        let link = SimDuration::from_micros(us);
        let s = run(&shallow, link);
        let d = run(&deep, link);
        let p = run(&pc1a, link);
        let s999 = s.chain_latency.p999.as_nanos() as f64;
        let d_amp = d.chain_latency.p999.as_nanos() as f64 / s999;
        let p_amp = p.chain_latency.p999.as_nanos() as f64 / s999;
        deep_amp_at.push(d_amp);
        table.add_row(&[
            format!("{us}"),
            format!("{}", s.chain_latency.p999),
            format!("{}", d.chain_latency.p999),
            format!("{}", p.chain_latency.p999),
            format!("{d_amp:.2}x"),
            format!("{p_amp:.2}x"),
            format!("{}", s.network.as_ref().unwrap().mean_wire_delay()),
        ]);
    }
    println!("{}", table.render());

    let first = deep_amp_at.first().copied().unwrap();
    let last = deep_amp_at.last().copied().unwrap();
    println!(
        "Cdeep p999 amplification: {first:.2}x at 0 us links -> {last:.2}x at \
         {} us links (wire time dilutes wake latency)",
        rtts_us.last().unwrap(),
    );
    assert!(
        last < first,
        "deep-C-state tail amplification must shrink as RTT grows \
         ({first:.2}x at zero RTT vs {last:.2}x at max RTT)"
    );
}
