//! Cluster routing comparison: an 8-node cluster under every routing policy
//! × platform configuration, showing how routing reshapes per-server
//! idle-period distributions and therefore PC1A residency and power.
//!
//! ```text
//! cargo run --release --example cluster_routing
//! ```
//!
//! Spreading policies (random, round-robin, join-shortest-queue) keep every
//! node lightly loaded — many short idle periods per node, exactly the
//! microsecond-scale regime the paper's PC1A targets. The power-aware
//! packing policy concentrates requests on already-awake nodes, so the
//! spared nodes hold long unbroken package idle instead. The tables report
//! both the cluster aggregates and the idle-period structure behind them.

use apc::prelude::*;

fn main() {
    let configs = [
        ServerConfig::c_shallow(),
        ServerConfig::c_deep(),
        ServerConfig::c_pc1a(),
    ];
    let policies = RoutingPolicyKind::all();

    for scenario in [
        ClusterScenario::eight_node_memcached(),
        ClusterScenario::eight_node_trough(),
    ] {
        println!(
            "\n### {} — {} ({} nodes, {:.0} rps aggregate, {} window)",
            scenario.name,
            scenario.description,
            scenario.nodes,
            scenario.total_rate_per_sec,
            scenario.duration,
        );

        for base in &configs {
            let mut table = TextTable::new(
                &format!("{} under {}", scenario.name, base.platform.name),
                &[
                    "policy",
                    "rps",
                    "power",
                    "vs random",
                    "worst p99",
                    "imbalance",
                    "idle periods",
                    "idle 20-200us",
                    "PC1A res",
                ],
            );
            let mut baseline_power: Option<f64> = None;
            for policy in policies {
                let result = scenario.run(base, policy);
                let power = result.nodes.total_power_w();
                let delta = baseline_power
                    .map(|b| format!("{:+.1}%", (power / b - 1.0) * 100.0))
                    .unwrap_or_else(|| "--".to_owned());
                baseline_power = baseline_power.or(Some(power));
                table.add_row(&[
                    result.policy.to_owned(),
                    format!("{:.0}", result.nodes.aggregate_throughput()),
                    format!("{:.1} W", power),
                    delta,
                    format!("{}", result.nodes.worst_p99()),
                    format!("{:.2}", result.routing_imbalance()),
                    format!("{}", result.total_idle_periods()),
                    format!("{:.1}%", result.idle_periods_20_200us() * 100.0),
                    format!("{:.1}%", result.nodes.mean_pc1a_residency() * 100.0),
                ]);
            }
            println!("{}", table.render());
        }
    }
}
