//! Multi-server fleet sweep: runs the same workload over a fleet of
//! independent servers per platform configuration and prints fleet-level
//! aggregates — the scenario the single-server figures cannot show.
//! Members execute in parallel on all available cores (`Fleet::run`);
//! see `scenario_matrix` for the declarative scenario-library variant.
//!
//! ```text
//! cargo run --release --example fleet_sweep
//! ```

use apc::prelude::*;
use apc::server::fleet::Fleet;

fn main() {
    let servers = 8;
    let rate = 20_000.0;
    let duration = SimDuration::from_millis(100);

    let mut table = TextTable::new(
        &format!("fleet of {servers} servers, memcached ETC @ {rate:.0} QPS each"),
        &[
            "config",
            "total QPS",
            "power",
            "vs Cshallow",
            "mean lat",
            "worst p99",
            "PC1A res",
        ],
    );
    let mut baseline_power: Option<f64> = None;
    for config in [
        ServerConfig::c_shallow(),
        ServerConfig::c_deep(),
        ServerConfig::c_pc1a(),
    ] {
        let name = config.platform.name;
        let fleet = Fleet::homogeneous(
            &config.with_duration(duration),
            WorkloadSpec::memcached_etc,
            rate,
            servers,
        );
        let result = fleet.run();
        let power = result.total_power_w();
        let delta = baseline_power
            .map(|base| format!("{:+.1}%", (power / base - 1.0) * 100.0))
            .unwrap_or_else(|| "--".to_owned());
        baseline_power = baseline_power.or(Some(power));
        table.add_row(&[
            name.to_owned(),
            format!("{:.0}", result.aggregate_throughput()),
            format!("{:.1} W", power),
            delta,
            format!("{}", result.mean_latency()),
            format!("{}", result.worst_p99()),
            format!("{:.1}%", result.mean_pc1a_residency() * 100.0),
        ]);
    }
    println!("{}", table.render());
}
