//! Multi-server fleet sweep: runs the same workload over a fleet of
//! independent servers per platform configuration and prints fleet-level
//! aggregates — the scenario the single-server figures cannot show.
//! Members execute in parallel on all available cores (`Fleet::run`);
//! see `scenario_matrix` for the declarative scenario-library variant.
//!
//! ```text
//! cargo run --release --example fleet_sweep
//! ```

use apc::prelude::*;
use apc::server::fleet::Fleet;

fn main() {
    let servers = 8;
    let rate = 20_000.0;
    let duration = SimDuration::from_millis(100);

    println!("fleet of {servers} servers, memcached ETC @ {rate:.0} QPS each\n");
    println!(
        "{:<10} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "config", "total QPS", "power (W)", "mean lat", "worst p99", "PC1A res"
    );

    let mut baseline_power = None;
    for config in [
        ServerConfig::c_shallow(),
        ServerConfig::c_deep(),
        ServerConfig::c_pc1a(),
    ] {
        let name = config.platform.name;
        let fleet = Fleet::homogeneous(
            &config.with_duration(duration),
            WorkloadSpec::memcached_etc,
            rate,
            servers,
        );
        let result = fleet.run();
        let power = result.total_power_w();
        let saving = baseline_power
            .map(|base: f64| format!(" ({:+.1}%)", (1.0 - power / base) * -100.0))
            .unwrap_or_default();
        if baseline_power.is_none() {
            baseline_power = Some(power);
        }
        println!(
            "{:<10} {:>12.0} {:>9.1}{saving} {:>12} {:>12} {:>9.1}%",
            name,
            result.aggregate_throughput(),
            power,
            format!("{}", result.mean_latency()),
            format!("{}", result.worst_p99()),
            result.mean_pc1a_residency() * 100.0,
        );
    }
}
