//! Walks the PC1A entry/exit flow step by step on a bare socket model and
//! prints the signal/latency timeline of Fig. 4, the Sec. 5.5 latency
//! budget, the Sec. 5.4 power derivation and the Sec. 5.1–5.3 area report.
//!
//! Run with: `cargo run --release --example pc1a_flow_trace`

use apc::core::apmu::WakeOutcome;
use apc::prelude::*;

fn main() {
    let mut soc = SkxSoc::xeon_silver_4114();
    let mut apmu = Apmu::new();

    println!("== PC1A flow walk (Fig. 4) ==");
    let t0 = SimTime::from_micros(100);
    soc.force_all_cores(t0, CoreCState::CC1);
    for link in soc.ios_mut().iter_mut() {
        link.end_traffic(t0);
    }
    println!(
        "[{t0}] all cores reached CC1 -> AllowL0s asserted (state {})",
        apmu.state()
    );

    let deadline = apmu
        .on_all_cores_idle(&mut soc, t0)
        .expect("all links are idle");
    println!("[{deadline}] all links in L0s/L0p expected (16 ns idle window)");

    let resident_at = apmu
        .on_standby_deadline(&mut soc, deadline)
        .expect("PC1A entry starts");
    println!(
        "[{resident_at}] CLM clock-gated, Ret asserted, Allow_CKE_OFF set -> resident in PC1A"
    );
    apmu.on_entry_complete(resident_at);
    println!(
        "           IOs: {}   DRAM: {}   CLM: {}",
        soc.ios().controller(apc::soc::io::IoId(0)).state(),
        soc.memory().controller(apc::soc::memory::McId(0)).mode(),
        soc.clm().state()
    );

    let wake_at = resident_at + SimDuration::from_micros(40);
    let outcome = apmu.wakeup(&mut soc, wake_at, WakeCause::IoTraffic);
    if let WakeOutcome::Exiting { done_at, latency } = outcome {
        println!(
            "[{wake_at}] IO traffic wakeup -> exit flow ({latency}), uncore ready at {done_at}"
        );
        apmu.on_exit_complete(&mut soc, done_at);
        apmu.on_core_active(&mut soc, done_at);
        println!(
            "[{done_at}] back in PC0, links in {}",
            soc.ios().controller(apc::soc::io::IoId(0)).state()
        );
    }

    println!("\n== Sec. 5.5 latency budget ==");
    println!("{}", Pc1aLatencyModel::from_components());

    println!("\n== Sec. 5.4 power derivation (Eq. 2/3) ==");
    println!("{}", Pc1aPowerEstimator::skx_reference().estimate());

    println!("\n== Sec. 5.1-5.3 area overhead ==");
    println!("{}", ApcAreaModel::skx().report());
}
