//! Memcached latency study (the Fig. 5 scenario): why datacenters disable
//! deep C-states, and why PC1A does not reintroduce the problem.
//!
//! Sweeps request rate and prints average and p99 latency for the
//! `Cshallow`, `Cdeep` and `CPC1A` configurations.
//!
//! Run with: `cargo run --release --example memcached_tail_latency`

use apc::prelude::*;

fn run(config: ServerConfig, rate: f64) -> RunResult {
    run_experiment(
        config.with_duration(SimDuration::from_millis(400)),
        WorkloadSpec::memcached_etc(),
        rate,
    )
}

fn main() {
    let rates = [4_000.0, 25_000.0, 50_000.0, 100_000.0, 200_000.0, 300_000.0];
    let mut table = TextTable::new(
        "Memcached end-to-end latency vs request rate",
        &[
            "QPS",
            "Cshallow avg",
            "Cshallow p99",
            "Cdeep avg",
            "Cdeep p99",
            "CPC1A avg",
            "CPC1A p99",
        ],
    );

    for &rate in &rates {
        let shallow = run(ServerConfig::c_shallow(), rate);
        let deep = run(ServerConfig::c_deep(), rate);
        let apc = run(ServerConfig::c_pc1a(), rate);
        let us = |d: SimDuration| format!("{:.0} us", d.as_micros_f64());
        table.add_row(&[
            format!("{rate:.0}"),
            us(shallow.latency.mean),
            us(shallow.latency.p99),
            us(deep.latency.mean),
            us(deep.latency.p99),
            us(apc.latency.mean),
            us(apc.latency.p99),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nCdeep pays CC6/PC6 wakeups on every burst; CPC1A stays within a few hundred\n\
         nanoseconds of Cshallow while still saving package power at low load."
    );
}
