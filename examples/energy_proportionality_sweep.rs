//! Energy-proportionality sweep across the paper's three services
//! (the Fig. 7(b) / Fig. 8 / Fig. 9 scenario).
//!
//! For each workload and operating point, runs the `Cshallow` baseline and
//! the `CPC1A` configuration and reports utilisation, all-idle residency,
//! average power and the PC1A power saving.
//!
//! Run with: `cargo run --release --example energy_proportionality_sweep`

use apc::prelude::*;

/// A named workload constructor (specs own boxed distributions, so each run
/// builds a fresh one).
type NamedWorkload = (fn() -> WorkloadSpec, &'static str);

fn main() {
    let duration = SimDuration::from_millis(400);
    let workloads: [NamedWorkload; 3] = [
        (WorkloadSpec::memcached_etc, "memcached"),
        (WorkloadSpec::mysql_oltp, "mysql"),
        (WorkloadSpec::kafka, "kafka"),
    ];

    let mut table = TextTable::new(
        "PC1A power savings across services and operating points",
        &[
            "workload",
            "point",
            "QPS",
            "util",
            "all-idle",
            "Cshallow W",
            "CPC1A W",
            "saving",
        ],
    );

    for (make, name) in workloads {
        let points = make().operating_points.clone();
        for point in points {
            let baseline = run_experiment(
                ServerConfig::c_shallow().with_duration(duration),
                make(),
                point.rate_per_sec,
            );
            let apc = run_experiment(
                ServerConfig::c_pc1a().with_duration(duration),
                make(),
                point.rate_per_sec,
            );
            table.add_row(&[
                name.to_owned(),
                point.label.to_owned(),
                format!("{:.0}", point.rate_per_sec),
                format!("{:.1}%", baseline.cpu_utilization * 100.0),
                format!("{:.1}%", baseline.all_idle_fraction * 100.0),
                format!("{:.2}", baseline.avg_total_power().as_f64()),
                format!("{:.2}", apc.avg_total_power().as_f64()),
                format!("{:.1}%", apc.power_saving_vs(&baseline) * 100.0),
            ]);
        }
    }
    print!("{}", table.render());

    // The idle-server headline number (Fig. 7(a)).
    let budget = PackageStatePower::skx_reference();
    let saving = idle_savings(
        budget.state_power(PackageCState::PC0Idle),
        budget.state_power(PackageCState::PC1A),
    );
    println!(
        "\nfully idle server: PC1A reduces SoC+DRAM power by {:.1}%",
        saving * 100.0
    );
}
