//! Scenario matrix: runs every scenario in the library under the three
//! platform configurations and prints fleet-level comparison tables — the
//! fleet-scale counterpart of the paper's single-server figures.
//!
//! ```text
//! cargo run --release --example scenario_matrix
//! ```
//!
//! Fleets execute on all available cores ([`Fleet::run`] parallelises
//! members over a worker pool with bit-identical results), so the full
//! matrix completes in seconds.

use apc::prelude::*;

fn main() {
    let duration = SimDuration::from_millis(100);
    let configs = [
        ServerConfig::c_shallow(),
        ServerConfig::c_deep(),
        ServerConfig::c_pc1a(),
    ];

    for scenario in Scenario::library() {
        let scenario = scenario.with_duration(duration);
        println!(
            "\n### {} — {} ({} servers, {} window)",
            scenario.name,
            scenario.description,
            scenario.servers(),
            scenario.duration,
        );

        let mut table = TextTable::new(
            &format!("scenario {}", scenario.name),
            &[
                "config",
                "rps",
                "power",
                "vs Cshallow",
                "mean lat",
                "worst p99",
                "PC1A res",
            ],
        );
        let mut baseline_power: Option<f64> = None;
        for base in &configs {
            let result = scenario.run(base);
            let power = result.fleet.total_power_w();
            let delta = baseline_power
                .map(|b| format!("{:+.1}%", (power / b - 1.0) * 100.0))
                .unwrap_or_else(|| "--".to_owned());
            baseline_power = baseline_power.or(Some(power));
            table.add_row(&[
                result.config_name.to_owned(),
                format!("{:.0}", result.fleet.aggregate_throughput()),
                format!("{:.1} W", power),
                delta,
                format!("{}", result.fleet.mean_latency()),
                format!("{}", result.fleet.worst_p99()),
                format!("{:.1}%", result.fleet.mean_pc1a_residency() * 100.0),
            ]);
        }
        println!("{}", table.render());
    }
}
