//! Fan-out chain comparison: the paper's headline traffic class — memcached
//! scatter-gather (frontend → N leaves, wait-for-all join) on an 8-node
//! cluster — under `Cshallow`, `Cdeep` and `CPC1A`.
//!
//! ```text
//! cargo run --release --example chain_fanout
//! ```
//!
//! End-to-end latency is decided by the slowest leaf, so wake latency
//! compounds at the join: `Cdeep` pays a CC6/PC6 wake on whichever leaf
//! landed on a sleeping node and its end-to-end p999 widens, while `CPC1A`
//! recovers package idle power at nanosecond-scale transition cost — lower
//! fleet power than `Cshallow` at a comparable p999. The straggler column
//! (time the join waited on the slowest sibling after the fastest) shows
//! where the tail comes from.

use apc::prelude::*;

fn main() {
    let configs = [
        ServerConfig::c_shallow(),
        ServerConfig::c_deep(),
        ServerConfig::c_pc1a(),
    ];

    for scenario in ChainScenario::library() {
        println!(
            "\n### {} — {} ({} nodes, {}, {:.0} chains/s, {} window)",
            scenario.name,
            scenario.description,
            scenario.nodes,
            scenario.graph,
            scenario.chains_per_sec,
            scenario.duration,
        );

        let mut table = TextTable::new(
            &format!("{} x platforms (join-shortest-queue)", scenario.name),
            &[
                "platform",
                "chains/s",
                "fleet power",
                "vs Cshallow",
                "e2e p50",
                "e2e p99",
                "e2e p999",
                "straggler p99",
                "PC1A res",
            ],
        );
        let mut shallow_power: Option<f64> = None;
        for base in &configs {
            let result = scenario.run(base, RoutingPolicyKind::JoinShortestQueue);
            let power = result.nodes.total_power_w();
            let delta = shallow_power
                .map(|b| format!("{:+.1}%", (power / b - 1.0) * 100.0))
                .unwrap_or_else(|| "--".to_owned());
            shallow_power = shallow_power.or(Some(power));
            table.add_row(&[
                base.platform.name.to_owned(),
                format!("{:.0}", result.chains_per_sec()),
                format!("{:.1} W", power),
                delta,
                format!("{}", result.chain_latency.p50),
                format!("{}", result.chain_latency.p99),
                format!("{}", result.chain_latency.p999),
                format!("{}", result.straggler.p99),
                format!("{:.1}%", result.nodes.mean_pc1a_residency() * 100.0),
            ]);
        }
        println!("{}", table.render());
    }
}
