//! Quickstart: compare the datacenter baseline (`Cshallow`) against the
//! APC-enhanced server (`CPC1A`) on a light Memcached load and print the
//! paper's headline metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use apc::prelude::*;

fn main() {
    let rate = 25_000.0; // ~5 % utilisation on the 10-core reference server
    let duration = SimDuration::from_millis(500);

    println!("AgilePkgC quickstart: Memcached at {rate:.0} QPS for {duration}\n");

    let baseline = run_experiment(
        ServerConfig::c_shallow().with_duration(duration),
        WorkloadSpec::memcached_etc(),
        rate,
    );
    let apc = run_experiment(
        ServerConfig::c_pc1a().with_duration(duration),
        WorkloadSpec::memcached_etc(),
        rate,
    );

    let mut table = TextTable::new("Cshallow vs CPC1A", &["metric", "Cshallow", "CPC1A"]);
    table.add_row(&[
        "SoC+DRAM power".into(),
        format!("{:.2} W", baseline.avg_total_power().as_f64()),
        format!("{:.2} W", apc.avg_total_power().as_f64()),
    ]);
    table.add_row(&[
        "mean latency".into(),
        format!("{:.1} us", baseline.latency.mean.as_micros_f64()),
        format!("{:.1} us", apc.latency.mean.as_micros_f64()),
    ]);
    table.add_row(&[
        "p99 latency".into(),
        format!("{:.1} us", baseline.latency.p99.as_micros_f64()),
        format!("{:.1} us", apc.latency.p99.as_micros_f64()),
    ]);
    table.add_row(&[
        "all-cores-idle residency".into(),
        format!("{:.1}%", baseline.all_idle_fraction * 100.0),
        format!("{:.1}%", apc.all_idle_fraction * 100.0),
    ]);
    table.add_row(&[
        "PC1A residency".into(),
        "-".into(),
        format!("{:.1}%", apc.pc1a_residency * 100.0),
    ]);
    table.add_row(&[
        "PC1A transitions".into(),
        "-".into(),
        format!("{}", apc.pc1a_transitions),
    ]);
    print!("{}", table.render());

    let saving = apc.power_saving_vs(&baseline);
    let impact = apc.latency_overhead_vs(&baseline);
    println!("\npower saving from PC1A : {:.1}%", saving * 100.0);
    println!("mean-latency impact    : {:+.3}%", impact * 100.0);
    println!(
        "PC1A transition budget : {} (entry {} / exit {})",
        Pc1aLatencyModel::from_components().round_trip(),
        Pc1aLatencyModel::from_components().entry(),
        Pc1aLatencyModel::from_components().exit()
    );
}
