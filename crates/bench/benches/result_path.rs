//! Result-path benchmarks: the bounded-memory quantile sketch against the
//! retained-samples baseline it replaced, plus the end-to-end cluster
//! record path the sketch now sits on.
//!
//! Like `event_core`, this harness writes a machine-readable result file,
//! `BENCH_result_path.json` at the repository root:
//!
//! ```text
//! cargo bench -p apc-bench --bench result_path            # full run, writes JSON
//! cargo bench -p apc-bench --bench result_path -- --smoke # CI smoke: seconds, no JSON
//! ```
//!
//! Sections:
//!
//! * `recorder_micro` — record throughput and summary cost for 10^4..10^7
//!   latency samples, sketch vs a retained `Vec<u64>` (push then sort at
//!   summary time, the shape of the pre-sketch recorder), with the payload
//!   bytes each holds at the end. The sample stream is the lognormal-ish
//!   mixture the simulator produces; both recorders see identical values.
//! * `cluster_record_path` — wall-clock per 20 ms of simulated time for an
//!   8-node cluster (the tier-1 `cluster_scale` configuration): every
//!   completed request crosses the latency recorder, so a regression in
//!   the sketch's record path shows up directly in this row.
//!
//! Wall-clock numbers take the minimum over several repeats: the minimum is
//! the least noise-contaminated estimate on a shared container.

#![allow(missing_docs)]

use std::time::Instant;

use apc_server::balancer::RoutingPolicyKind;
use apc_server::cluster::{run_cluster_experiment, ClusterResult};
use apc_server::config::ServerConfig;
use apc_sim::{SimDuration, SimRng};
use apc_telemetry::sketch::QuantileSketch;
use apc_workloads::spec::WorkloadSpec;

/// Simulated window per cluster iteration (matches `cluster_scale`).
const WINDOW: SimDuration = SimDuration::from_millis(20);
/// Offered load per cluster node (matches `cluster_scale`).
const RATE_PER_NODE: f64 = 20_000.0;
const CLUSTER_NODES: usize = 8;

/// A latency-shaped sample stream: body around 100 us with a heavy tail,
/// the same mixture the simulator's completed requests produce.
fn samples(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = SimRng::from_seed(seed);
    (0..n)
        .map(|_| {
            let ln = rng.standard_normal() * 0.8 + (120_000.0f64).ln();
            (ln.exp() as u64).max(1)
        })
        .collect()
}

struct RecorderMeasure {
    /// Nanoseconds per `record` call.
    record_ns: f64,
    /// Nanoseconds for one summary (quantile queries; sort for retained).
    summary_ns: f64,
    /// Payload bytes held once all samples are recorded.
    payload_bytes: usize,
    /// The p999 estimate, kept so the optimizer cannot drop the work.
    p999: u64,
}

/// Runs `f` `repeats` times and keeps the run with the fastest record phase.
fn fastest(repeats: usize, mut f: impl FnMut() -> RecorderMeasure) -> RecorderMeasure {
    let mut best: Option<RecorderMeasure> = None;
    for _ in 0..repeats {
        let m = f();
        if best.as_ref().map_or(true, |b| m.record_ns < b.record_ns) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

fn sketch_measure(values: &[u64]) -> RecorderMeasure {
    let mut sketch = QuantileSketch::latency_default();
    let start = Instant::now();
    for &v in values {
        sketch.record(v);
    }
    let record_ns = start.elapsed().as_nanos() as f64 / values.len() as f64;
    let start = Instant::now();
    let p999 = sketch.quantile(0.999).expect("non-empty");
    let summary_ns = start.elapsed().as_nanos() as f64;
    // One occupied bucket is an (i32 index, u64 count) entry.
    let payload_bytes = sketch.bucket_len() * (4 + 8);
    RecorderMeasure {
        record_ns,
        summary_ns,
        payload_bytes,
        p999,
    }
}

fn retained_measure(values: &[u64]) -> RecorderMeasure {
    let mut retained: Vec<u64> = Vec::new();
    let start = Instant::now();
    for &v in values {
        retained.push(v);
    }
    let record_ns = start.elapsed().as_nanos() as f64 / values.len() as f64;
    let start = Instant::now();
    retained.sort_unstable();
    let p999 = retained[(0.999 * (retained.len() - 1) as f64).floor() as usize];
    let summary_ns = start.elapsed().as_nanos() as f64;
    let payload_bytes = retained.capacity() * std::mem::size_of::<u64>();
    RecorderMeasure {
        record_ns,
        summary_ns,
        payload_bytes,
        p999,
    }
}

/// One timed cluster run; the result carries the completed-request census.
fn cluster_run() -> (f64, ClusterResult) {
    let base = ServerConfig::c_pc1a().with_duration(WINDOW);
    let start = Instant::now();
    let result = run_cluster_experiment(
        &base,
        CLUSTER_NODES,
        RoutingPolicyKind::JoinShortestQueue,
        WorkloadSpec::memcached_etc(),
        RATE_PER_NODE * CLUSTER_NODES as f64,
    );
    (start.elapsed().as_secs_f64(), result)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (sizes, repeats, cluster_repeats): (&[usize], usize, usize) = if smoke {
        (&[10_000], 2, 2)
    } else {
        (&[10_000, 100_000, 1_000_000, 10_000_000], 5, 10)
    };

    let mut micro_json = Vec::new();
    println!("recorder micro ({repeats} repeats, min):");
    for &n in sizes {
        let values = samples(n, 0x5e7 + n as u64);
        let sketch = fastest(repeats, || sketch_measure(&values));
        let retained = fastest(repeats, || retained_measure(&values));
        // The sketch's contract against the exact stream, kept honest even
        // here: within 1 % of the retained recorder's exact p999.
        let delta = sketch.p999.abs_diff(retained.p999) as f64;
        assert!(
            delta <= 0.01 * retained.p999 as f64 + 1.0,
            "sketch p999 {} vs exact {} at n={n}",
            sketch.p999,
            retained.p999
        );
        println!(
            "  {n:>9} samples: sketch {:>5.1} ns/record, {:>8} B   \
             retained {:>5.1} ns/record, {:>10} B   ({:.0}x smaller)",
            sketch.record_ns,
            sketch.payload_bytes,
            retained.record_ns,
            retained.payload_bytes,
            retained.payload_bytes as f64 / sketch.payload_bytes as f64,
        );
        micro_json.push(format!(
            concat!(
                "    {{\"samples\": {}, ",
                "\"sketch_record_ns\": {:.2}, \"sketch_summary_ns\": {:.0}, ",
                "\"sketch_payload_bytes\": {}, ",
                "\"retained_record_ns\": {:.2}, \"retained_summary_ns\": {:.0}, ",
                "\"retained_payload_bytes\": {}, ",
                "\"memory_ratio\": {:.1}}}"
            ),
            n,
            sketch.record_ns,
            sketch.summary_ns,
            sketch.payload_bytes,
            retained.record_ns,
            retained.summary_ns,
            retained.payload_bytes,
            retained.payload_bytes as f64 / sketch.payload_bytes as f64,
        ));
    }

    println!(
        "cluster_record_path ({cluster_repeats} repeats, min; 20 ms simulated, 8 nodes, JSQ):"
    );
    let mut walls = Vec::with_capacity(cluster_repeats);
    let mut completed = 0u64;
    let mut p99 = SimDuration::ZERO;
    for _ in 0..cluster_repeats {
        let (secs, result) = cluster_run();
        walls.push(secs);
        completed = result.nodes.total_completed_requests();
        p99 = result.nodes.combined_latency().p99;
    }
    let min = walls.iter().copied().fold(f64::MAX, f64::min);
    let ms_per_20ms = min * 1e3;
    println!(
        "  {CLUSTER_NODES} nodes: {ms_per_20ms:>7.3} ms per 20 ms sim   \
         {completed} completed   p99 {p99}"
    );
    let cluster_json = format!(
        concat!(
            "    {{\"nodes\": {}, \"ms_per_20ms_sim\": {:.3}, ",
            "\"completed_requests\": {}, \"p99_ns\": {}}}"
        ),
        CLUSTER_NODES,
        ms_per_20ms,
        completed,
        p99.as_nanos(),
    );

    if smoke {
        println!("smoke mode: skipping BENCH_result_path.json");
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"result_path\",\n",
            "  \"methodology\": \"min over repeats on a shared container; ",
            "micro: {} repeats over identical xoshiro-seeded lognormal samples ",
            "for both recorders; retained baseline is Vec<u64> push + ",
            "sort-at-summary, the pre-sketch recorder shape; cluster row is ",
            "the tier-1 cluster_scale configuration, every completed request ",
            "crossing the sketch record path\",\n",
            "  \"recorder_micro\": [\n{}\n  ],\n",
            "  \"cluster_record_path\": [\n{}\n  ]\n",
            "}}\n"
        ),
        repeats,
        micro_json.join(",\n"),
        cluster_json,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_result_path.json");
    std::fs::write(path, &json).expect("write BENCH_result_path.json");
    println!("wrote {path}");
}
