//! Parallel event-core benchmark: one cluster simulation partitioned across
//! worker threads under the conservative-lookahead scheduler, against the
//! sequential event loop it is bit-identical to.
//!
//! Writes `BENCH_parallel_cluster.json` at the repository root:
//!
//! ```text
//! cargo bench -p apc-bench --bench parallel_cluster            # full run, writes JSON
//! cargo bench -p apc-bench --bench parallel_cluster -- --smoke # CI smoke: seconds, no JSON
//! ```
//!
//! The grid is 8/16/32 nodes × 1/2/4/8 workers over a two-tier fabric with
//! 2 µs per-link latency (the lookahead bound). The `workers = 1` row runs
//! the plain sequential loop and is the speedup denominator; for reference
//! the JSON also carries the historical *no-fabric* `cluster_scale` rows
//! from `BENCH_event_core.json` (a fabric adds wire events, so the two
//! columns are related but not directly comparable).
//!
//! Wall-clock numbers take the minimum over several repeats — the least
//! noise-contaminated estimate on a shared container. The file records
//! `host_cores`: on a single-CPU container the parallel rows measure
//! pure partitioning overhead (barrier crossings, replay bookkeeping), not
//! speedup — the ≥1.5× target at 16 nodes / ≥4 workers needs a host with
//! at least that many cores. Every parallel run is asserted bit-identical
//! to its sequential baseline before its time is accepted.

#![allow(missing_docs)]

use std::time::Instant;

use apc_analysis::export::JsonValue;
use apc_network::NetworkConfig;
use apc_server::balancer::RoutingPolicyKind;
use apc_server::cluster::{ClusterMember, ClusterResult};
use apc_server::config::ServerConfig;
use apc_server::parallel::{execution_plan, ExecutionPlan};
use apc_sim::SimDuration;
use apc_workloads::spec::WorkloadSpec;

/// Simulated window per iteration (matches the `cluster_scale` bench).
const WINDOW: SimDuration = SimDuration::from_millis(20);
/// Offered load per cluster node (matches the `cluster_scale` bench).
const RATE_PER_NODE: f64 = 20_000.0;
/// Per-link latency of the benchmarked fabric — the lookahead bound.
const LINK_LATENCY: SimDuration = SimDuration::from_micros(2);

fn member(nodes: usize) -> ClusterMember {
    let base = ServerConfig::c_pc1a().with_duration(WINDOW);
    ClusterMember::homogeneous(
        &base,
        nodes,
        RoutingPolicyKind::JoinShortestQueue,
        WorkloadSpec::memcached_etc(),
        RATE_PER_NODE * nodes as f64,
    )
    .with_network(NetworkConfig::two_tier(LINK_LATENCY, 4))
}

/// Parallel-runtime counters for one row, from the engine self-profiler.
struct RowProfile {
    events_scheduled: u64,
    barrier_wait_ns: u64,
    hub_replay_ns: u64,
    cross_wires: u64,
}

/// One untimed profiled run at the row's worker count. Separate from the
/// timed/asserted runs: barrier-wait and replay times are wall-clock, so a
/// profiled result never compares equal across worker counts.
fn row_profile(nodes: usize, workers: usize) -> RowProfile {
    let base = ServerConfig::c_pc1a().with_duration(WINDOW).with_profile();
    let m = ClusterMember::homogeneous(
        &base,
        nodes,
        RoutingPolicyKind::JoinShortestQueue,
        WorkloadSpec::memcached_etc(),
        RATE_PER_NODE * nodes as f64,
    )
    .with_network(NetworkConfig::two_tier(LINK_LATENCY, 4));
    let report = m
        .run_with_parallelism(Some(workers))
        .profile
        .expect("profiled run carries a report");
    RowProfile {
        events_scheduled: report.engine.scheduled,
        barrier_wait_ns: report.workers.iter().map(|w| w.barrier_wait_ns).sum(),
        hub_replay_ns: report.hub_replay_ns,
        cross_wires: report.workers.iter().map(|w| w.cross_wires).sum(),
    }
}

/// One timed run at a forced worker count (`1` takes the sequential loop).
fn timed_run(nodes: usize, workers: usize) -> (f64, ClusterResult) {
    let m = member(nodes);
    if workers > 1 {
        assert!(
            matches!(
                execution_plan(nodes, m.network.as_ref(), Some(workers)),
                ExecutionPlan::Parallel { .. }
            ),
            "the benchmark grid must actually exercise the parallel path"
        );
    }
    let start = Instant::now();
    let result = m.run_with_parallelism(Some(workers));
    (start.elapsed().as_secs_f64(), result)
}

/// The historical no-fabric `cluster_scale` rows (node count → ms per 20 ms
/// of simulated time), carried over from `BENCH_event_core.json` when the
/// file is present.
fn event_core_baselines() -> Vec<(u64, f64)> {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_event_core.json");
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(JsonValue::Object(doc)) = JsonValue::parse(&text) else {
        return Vec::new();
    };
    let Some(JsonValue::Array(rows)) = doc
        .iter()
        .find(|(k, _)| k == "cluster_scale")
        .map(|(_, v)| v)
    else {
        return Vec::new();
    };
    let field = |row: &[(String, JsonValue)], key: &str| {
        row.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    rows.iter()
        .filter_map(|row| {
            let JsonValue::Object(row) = row else {
                return None;
            };
            let nodes = match field(row, "nodes")? {
                JsonValue::UInt(n) => n,
                JsonValue::Int(n) if n >= 0 => n as u64,
                _ => return None,
            };
            let ms = match field(row, "ms_per_20ms_sim")? {
                JsonValue::Float(f) => f,
                JsonValue::UInt(n) => n as f64,
                JsonValue::Int(n) => n as f64,
                _ => return None,
            };
            Some((nodes, ms))
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let (node_counts, worker_counts, repeats): (&[usize], &[usize], usize) = if smoke {
        (&[8], &[1, 2], 1)
    } else {
        (&[8, 16, 32], &[1, 2, 4, 8], 5)
    };
    let host_cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let mut rows_json = Vec::new();
    println!(
        "parallel_cluster ({repeats} repeats, min; 20 ms simulated, JSQ, memcached_etc, \
         two-tier fabric {} ns links; host has {host_cores} core(s)):",
        LINK_LATENCY.as_nanos()
    );
    for &nodes in node_counts {
        let mut sequential: Option<(f64, ClusterResult)> = None;
        for &workers in worker_counts {
            let mut min_secs = f64::MAX;
            let mut events = 0u64;
            for _ in 0..repeats {
                let (secs, result) = timed_run(nodes, workers);
                if let Some((_, baseline)) = &sequential {
                    assert_eq!(
                        &result, baseline,
                        "{nodes} nodes at {workers} workers diverged from sequential"
                    );
                }
                min_secs = min_secs.min(secs);
                events = result.events_dispatched;
                if workers == 1 && sequential.is_none() {
                    sequential = Some((secs, result));
                }
            }
            if let Some(seq) = sequential.as_mut().filter(|_| workers == 1) {
                seq.0 = min_secs;
            }
            let ms = min_secs * 1e3;
            let events_per_sec = events as f64 / min_secs;
            let speedup = sequential
                .as_ref()
                .map_or(1.0, |(seq_secs, _)| seq_secs / min_secs);
            let profile = row_profile(nodes, workers);
            println!(
                "  {nodes:>2} nodes, {workers} worker(s): {ms:>8.3} ms per 20 ms sim   \
                 {events:>7} events   {:>6.2} M events/s   {speedup:>5.2}x vs sequential   \
                 {:>5} cross-wires   {:>8} ns barrier",
                events_per_sec / 1e6,
                profile.cross_wires,
                profile.barrier_wait_ns,
            );
            rows_json.push(format!(
                concat!(
                    "    {{\"nodes\": {}, \"workers\": {}, \"ms_per_20ms_sim\": {:.3}, ",
                    "\"events_dispatched\": {}, \"events_per_sec\": {:.0}, ",
                    "\"speedup_vs_sequential\": {:.3}, \"events_scheduled\": {}, ",
                    "\"cross_partition_wires\": {}, \"barrier_wait_ns\": {}, ",
                    "\"hub_replay_ns\": {}}}"
                ),
                nodes,
                workers,
                ms,
                events,
                events_per_sec,
                speedup,
                profile.events_scheduled,
                profile.cross_wires,
                profile.barrier_wait_ns,
                profile.hub_replay_ns,
            ));
        }
    }

    if smoke {
        println!("smoke mode: skipping BENCH_parallel_cluster.json");
        return;
    }

    let baselines = event_core_baselines();
    let baseline_json = baselines
        .iter()
        .map(|(nodes, ms)| format!("    {{\"nodes\": {nodes}, \"ms_per_20ms_sim\": {ms}}}"))
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"parallel_cluster\",\n",
            "  \"methodology\": \"min over {} repeats on a shared container; 20 ms simulated, ",
            "JSQ, memcached_etc at {} req/s per node; two-tier fabric with {} ns per-link ",
            "latency (the conservative lookahead); workers forced via run_with_parallelism; ",
            "every parallel run asserted bit-identical to the workers=1 sequential run; ",
            "barrier/replay/wire counters from one untimed self-profiled run per row\",\n",
            "  \"host_cores\": {},\n",
            "  \"caveat\": \"with host_cores = 1 the parallel rows measure partitioning ",
            "overhead (barrier crossings, hub replay), not speedup; the >=1.5x target at ",
            "16 nodes with >=4 workers requires a host with at least 4 cores\",\n",
            "  \"sequential_no_fabric_baseline\": {{\"source\": ",
            "\"BENCH_event_core.json cluster_scale (no network fabric)\", \"rows\": [\n{}\n  ]}},\n",
            "  \"parallel_cluster\": [\n{}\n  ]\n",
            "}}\n"
        ),
        repeats,
        RATE_PER_NODE,
        LINK_LATENCY.as_nanos(),
        host_cores,
        baseline_json,
        rows_json.join(",\n"),
    );
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_cluster.json"
    );
    std::fs::write(path, &json).expect("write BENCH_parallel_cluster.json");
    println!("wrote {path}");
}
