//! Criterion micro-benchmarks of the simulator itself: event-queue
//! throughput, a full PC1A entry/exit cycle on the APMU FSM, and
//! full-system simulated-time throughput. These quantify the cost of the
//! reproduction's machinery, not any paper result.

#![allow(missing_docs)] // criterion's macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};

use apc_core::apmu::{Apmu, WakeCause, WakeOutcome};
use apc_server::components::state::SchedState;
use apc_server::components::WorkItem;
use apc_server::config::ServerConfig;
use apc_server::sim::run_experiment;
use apc_sim::engine::EventQueue;
use apc_sim::{SimDuration, SimTime};
use apc_soc::cstate::CoreCState;
use apc_soc::topology::{SkxSoc, SocConfig};
use apc_workloads::spec::WorkloadSpec;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_schedule_pop_10k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..10_000u64 {
                q.schedule(SimTime::from_nanos((i * 7919) % 1_000_000), i);
            }
            let mut sum = 0u64;
            while let Some((_, v)) = q.pop() {
                sum = sum.wrapping_add(v);
            }
            sum
        });
    });
}

fn bench_event_queue_cancel(c: &mut Criterion) {
    // Timer-heavy pattern: every scheduled event is re-armed (cancel + new
    // schedule) against a standing population of pending events, the worst
    // case for a cancel implementation that scans the heap.
    c.bench_function("event_queue_cancel_rearm_4k_pending", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let mut ids = Vec::with_capacity(4_096);
            for i in 0..4_096u64 {
                ids.push(q.schedule(SimTime::from_nanos(1_000_000 + i), i));
            }
            let mut cancelled = 0u64;
            for (round, slot) in ids.iter_mut().enumerate() {
                if q.cancel(*slot) {
                    cancelled += 1;
                }
                *slot = q.schedule(SimTime::from_nanos(2_000_000 + round as u64), round as u64);
            }
            cancelled
        });
    });
}

fn bench_apmu_cycle(c: &mut Criterion) {
    c.bench_function("apmu_pc1a_entry_exit_cycle", |b| {
        let mut soc = SkxSoc::xeon_silver_4114();
        let mut apmu = Apmu::new();
        let mut now = SimTime::from_micros(1);
        b.iter(|| {
            soc.force_all_cores(now, CoreCState::CC1);
            for link in soc.ios_mut().iter_mut() {
                link.end_traffic(now);
            }
            if let Some(deadline) = apmu.on_all_cores_idle(&mut soc, now) {
                if let Some(resident) = apmu.on_standby_deadline(&mut soc, deadline) {
                    apmu.on_entry_complete(resident);
                    let wake = resident + SimDuration::from_micros(30);
                    if let WakeOutcome::Exiting { done_at, .. } =
                        apmu.wakeup(&mut soc, wake, WakeCause::IoTraffic)
                    {
                        apmu.on_exit_complete(&mut soc, done_at);
                        apmu.on_core_active(&mut soc, done_at);
                        now = done_at + SimDuration::from_micros(10);
                    }
                }
            }
            apmu.stats().pc1a_entries
        });
    });
}

fn bench_scheduler_free_core(c: &mut Criterion) {
    // The dispatch scheduler's per-assignment core lookup, in the worst case
    // for the O(cores) scan the free-core bitset replaced: a 48-core node
    // where only the highest core is free. At 10+ cores the bitset's single
    // `trailing_zeros` wins by an order of magnitude; the gap grows linearly
    // with the core count.
    let cores = 48;
    let mut soc = SocConfig::small_test(cores).build();
    let mut sched = SchedState::new(cores);
    for i in 0..cores - 1 {
        sched.running[i] = Some(WorkItem::Background {
            work: SimDuration::from_micros(10),
        });
    }
    soc.cores_mut()
        .core_mut(apc_soc::core::CoreId(cores - 1))
        .force_state(SimTime::ZERO, CoreCState::CC1);
    sched.mark_free(cores - 1);
    c.bench_function("dispatch_lookup_scan_48_cores", |b| {
        b.iter(|| (0..cores).find(|&i| sched.core_is_free(&soc, i)));
    });
    c.bench_function("dispatch_lookup_bitset_48_cores", |b| {
        b.iter(|| sched.free_cores.lowest());
    });
}

fn bench_full_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_system");
    group.sample_size(10);
    group.bench_function("memcached_cpc1a_50ms_sim", |b| {
        b.iter(|| {
            let cfg = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(50));
            run_experiment(cfg, WorkloadSpec::memcached_etc(), 25_000.0).completed_requests
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_event_queue_cancel,
    bench_apmu_cycle,
    bench_scheduler_free_core,
    bench_full_system
);
criterion_main!(benches);
