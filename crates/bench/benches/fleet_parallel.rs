//! Micro-benchmark of the parallel fleet runner: sequential vs. worker-pool
//! execution of an 8-member fleet (the configuration whose speedup the
//! scenario matrix relies on). Also prints the measured speedup directly,
//! since that single number — not the per-iteration times — is the headline.

use std::time::Instant;

use apc_server::config::ServerConfig;
use apc_server::fleet::Fleet;
use apc_sim::SimDuration;
use apc_workloads::spec::WorkloadSpec;
use criterion::{criterion_group, criterion_main, Criterion};

const MEMBERS: usize = 8;

fn fleet() -> Fleet {
    let config = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(10));
    Fleet::homogeneous(&config, WorkloadSpec::memcached_etc, 50_000.0, MEMBERS)
}

fn measure(runs: u32, f: impl Fn() -> apc_server::fleet::FleetResult) -> f64 {
    let start = Instant::now();
    for _ in 0..runs {
        criterion::black_box(f());
    }
    start.elapsed().as_secs_f64() / f64::from(runs)
}

fn bench_fleet_execution(c: &mut Criterion) {
    // Direct speedup measurement first: the acceptance bar is >= 2x at
    // 8 members on a multi-core host. One worker per member is forced so
    // the pool is exercised even where available_parallelism() is low.
    let sequential = measure(3, || fleet().with_parallelism(1).run());
    let parallel = measure(3, || fleet().with_parallelism(MEMBERS).run());
    println!(
        "fleet x{MEMBERS} memcached: sequential {:.1} ms, parallel {:.1} ms -> speedup {:.2}x \
         ({} workers available)",
        sequential * 1e3,
        parallel * 1e3,
        sequential / parallel,
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );

    let mut group = c.benchmark_group("fleet_x8");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| fleet().with_parallelism(1).run());
    });
    group.bench_function("parallel", |b| {
        b.iter(|| fleet().with_parallelism(MEMBERS).run());
    });
    group.finish();
}

criterion_group!(benches, bench_fleet_execution);
criterion_main!(benches);
