//! Cluster-simulation scaling: wall-clock cost per simulated second as the
//! node count grows (1 / 4 / 8 / 16 nodes in one event loop).
//!
//! The cluster layer multiplies the event rate of the host event loop by
//! roughly the node count (every node contributes arrivals, wakes and
//! background timers to one queue). Per-node dispatch observers are scoped
//! to their node's components (`Simulation::scope_observer`), so the hook
//! cost per event is O(1) in the node count and wall-clock scales close to
//! linearly with nodes. History on the reference container, ms per 20 ms
//! simulated at 1 / 4 / 8 nodes: the pre-scoping global hook fan-out
//! measured ~1.5 / 17.8 / 49.9 (super-linear); observer scoping brought
//! that to ~1.6 / 9.0 / 14.9; the timer-wheel event core plus epoch-keyed
//! power/residency caching (see `BENCH_event_core.json` at the repo root
//! for the current recorded numbers) cut it a further ~2.5x. Cluster
//! arrival events still fan out to every node's observers (a deposit can
//! touch any node), which is the remaining super-linear term.
//!
//! ```text
//! cargo bench -p apc-bench --bench cluster_scale
//! ```

#![allow(missing_docs)] // criterion's macros generate undocumented items

use criterion::{criterion_group, criterion_main, Criterion};

use apc_server::balancer::RoutingPolicyKind;
use apc_server::cluster::run_cluster_experiment;
use apc_server::config::ServerConfig;
use apc_sim::SimDuration;
use apc_workloads::spec::WorkloadSpec;

/// Simulated window per iteration; wall-clock per simulated second is the
/// measured time divided by this.
const WINDOW: SimDuration = SimDuration::from_millis(20);
/// Offered load per node, so the work per node is constant across scales.
const RATE_PER_NODE: f64 = 20_000.0;

fn bench_cluster_scale(c: &mut Criterion) {
    let mut group = c.benchmark_group("cluster_scale");
    group.sample_size(10);
    for nodes in [1usize, 4, 8, 16] {
        group.bench_function(&format!("cpc1a_jsq_{nodes}_nodes_20ms"), |b| {
            b.iter(|| {
                let base = ServerConfig::c_pc1a().with_duration(WINDOW);
                run_cluster_experiment(
                    &base,
                    nodes,
                    RoutingPolicyKind::JoinShortestQueue,
                    WorkloadSpec::memcached_etc(),
                    RATE_PER_NODE * nodes as f64,
                )
                .nodes
                .total_completed_requests()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_cluster_scale);
criterion_main!(benches);
