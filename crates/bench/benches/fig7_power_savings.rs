//! Regenerates Fig. 7: (a) idle power per configuration, (b) power and PC1A
//! savings vs request rate, (c) the latency impact of PC1A.
//!
//! Run with: `cargo bench -p apc-bench --bench fig7_power_savings`

fn main() {
    print!("{}", apc_bench::fig7a_idle_power());
    println!();
    print!("{}", apc_bench::fig7b_power_vs_load());
    println!();
    print!("{}", apc_bench::fig7c_latency_impact());
}
