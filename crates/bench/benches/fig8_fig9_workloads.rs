//! Regenerates Fig. 8 (MySQL) and Fig. 9 (Kafka): residency and power
//! reduction at the paper's operating points.
//!
//! Run with: `cargo bench -p apc-bench --bench fig8_fig9_workloads`

fn main() {
    print!("{}", apc_bench::fig8_mysql());
    println!();
    print!("{}", apc_bench::fig9_kafka());
}
