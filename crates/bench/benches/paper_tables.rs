//! Regenerates the closed-form artefacts of the paper: Table 1, Table 2,
//! the Sec. 2 savings model, the Sec. 5.4 power derivation, the Sec. 5.5
//! latency budget and the Sec. 5.1–5.3 area overhead.
//!
//! Run with: `cargo bench -p apc-bench --bench paper_tables`

fn main() {
    print!("{}", apc_bench::table1_package_cstate_power());
    println!();
    print!("{}", apc_bench::table2_cstate_characteristics());
    println!();
    print!("{}", apc_bench::sec2_savings_model());
    println!();
    print!("{}", apc_bench::sec54_pc1a_power_breakdown());
    println!();
    print!("{}", apc_bench::sec55_pc1a_latency());
    println!();
    print!("{}", apc_bench::sec5_area_overhead());
}
