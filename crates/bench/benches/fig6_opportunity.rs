//! Regenerates Fig. 6: the PC1A opportunity analysis for Memcached —
//! (a) core C-state residency, (b) PC1A residency, (c) the fully-idle period
//! distribution.
//!
//! Run with: `cargo bench -p apc-bench --bench fig6_opportunity`

fn main() {
    print!("{}", apc_bench::fig6a_core_cstate_residency());
    println!();
    print!("{}", apc_bench::fig6b_pc1a_residency());
    println!();
    print!("{}", apc_bench::fig6c_idle_period_distribution());
}
