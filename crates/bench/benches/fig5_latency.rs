//! Regenerates Fig. 5: Memcached average and tail latency, `Cshallow` vs
//! `Cdeep`, across request rates.
//!
//! Run with: `cargo bench -p apc-bench --bench fig5_latency`

fn main() {
    print!("{}", apc_bench::fig5_cshallow_vs_cdeep_latency());
}
