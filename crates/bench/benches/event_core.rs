//! Event-core benchmarks: the timer-wheel [`EventQueue`] against the
//! reference binary-heap [`HeapEventQueue`] in isolation, plus the
//! end-to-end cluster simulation whose event loop the wheel powers.
//!
//! Unlike the figure benches this harness writes a machine-readable result
//! file, `BENCH_event_core.json` at the repository root, so the measured
//! numbers ride along with the code that produced them:
//!
//! ```text
//! cargo bench -p apc-bench --bench event_core            # full run, writes JSON
//! cargo bench -p apc-bench --bench event_core -- --smoke # CI smoke: seconds, no JSON
//! ```
//!
//! Sections:
//!
//! * `event_queue` micro — schedule/pop/cancel throughput at 10^4..10^6
//!   pending events for both implementations, under three access patterns:
//!   `fill_drain` (schedule N, pop N), `churn` (steady-state pop-one /
//!   schedule-one at depth N) and `cancel_rearm` (cancel a random live
//!   event and schedule a replacement, then drain). Timestamps come from
//!   the crate's deterministic xoshiro streams, so both queues see the
//!   identical operation sequence.
//! * `cluster_scale` — wall-clock per 20 ms of simulated time for 1/4/8/16
//!   server nodes in one event loop (the tier-1 `cluster_scale` bench
//!   configuration, plus the 16-node point), with the dispatched-event
//!   count from [`ClusterResult::events_dispatched`] turned into an
//!   end-to-end events/second figure.
//!
//! Wall-clock numbers take the minimum over several repeats: the minimum is
//! the least noise-contaminated estimate on a shared container.

#![allow(missing_docs)]

use std::time::Instant;

use apc_server::balancer::RoutingPolicyKind;
use apc_server::cluster::{run_cluster_experiment, ClusterResult};
use apc_server::config::ServerConfig;
use apc_sim::engine::{EventQueue, HeapEventQueue};
use apc_sim::{SimDuration, SimRng, SimTime};
use apc_workloads::spec::WorkloadSpec;

/// Simulated window per cluster iteration (matches the `cluster_scale`
/// bench).
const WINDOW: SimDuration = SimDuration::from_millis(20);
/// Offered load per cluster node (matches the `cluster_scale` bench).
const RATE_PER_NODE: f64 = 20_000.0;

/// One micro-benchmark measurement: `ops` queue operations in `secs`.
struct Measure {
    ops: u64,
    secs: f64,
}

impl Measure {
    fn ops_per_sec(&self) -> f64 {
        self.ops as f64 / self.secs
    }
}

/// Runs `f` `repeats` times and keeps the fastest run.
fn fastest(repeats: usize, mut f: impl FnMut() -> Measure) -> Measure {
    let mut best: Option<Measure> = None;
    for _ in 0..repeats {
        let m = f();
        if best.as_ref().map_or(true, |b| m.secs < b.secs) {
            best = Some(m);
        }
    }
    best.expect("at least one repeat")
}

/// A future timestamp drawn from the mixture the simulator produces in
/// practice: mostly near-term (nanoseconds to microseconds ahead), a tail
/// of far-future deadlines.
fn next_time(rng: &mut SimRng, now: SimTime) -> SimTime {
    let offset = match rng.index(10) {
        0..=5 => rng.next_u64() % 4_096,
        6..=8 => rng.next_u64() % 1_000_000,
        _ => rng.next_u64() % 10_000_000_000,
    };
    SimTime::from_nanos(now.as_nanos() + offset)
}

/// Expands to the three access patterns for one queue type; a macro rather
/// than a trait because the two queues are deliberately unrelated types.
macro_rules! micro_patterns {
    ($fill:ident, $churn:ident, $cancel:ident, $queue:ty) => {
        fn $fill(n: u64, seed: u64) -> Measure {
            let mut rng = SimRng::from_seed(seed);
            let mut q = <$queue>::new();
            let start = Instant::now();
            for i in 0..n {
                let at = next_time(&mut rng, q.now());
                q.schedule(at, i);
            }
            while q.pop().is_some() {}
            Measure {
                ops: 2 * n,
                secs: start.elapsed().as_secs_f64(),
            }
        }

        fn $churn(n: u64, seed: u64) -> Measure {
            let mut rng = SimRng::from_seed(seed);
            let mut q = <$queue>::new();
            for i in 0..n {
                let at = next_time(&mut rng, q.now());
                q.schedule(at, i);
            }
            let start = Instant::now();
            for i in 0..4 * n {
                let (_, _) = q.pop().expect("queue holds n events");
                let at = next_time(&mut rng, q.now());
                q.schedule(at, i);
            }
            let secs = start.elapsed().as_secs_f64();
            while q.pop().is_some() {}
            Measure { ops: 8 * n, secs }
        }

        fn $cancel(n: u64, seed: u64) -> Measure {
            let mut rng = SimRng::from_seed(seed);
            let mut q = <$queue>::new();
            let mut live = Vec::with_capacity(n as usize);
            for i in 0..n {
                let at = next_time(&mut rng, q.now());
                live.push(q.schedule(at, i));
            }
            let start = Instant::now();
            for i in 0..2 * n {
                let idx = rng.index(live.len());
                let id = live.swap_remove(idx);
                assert!(q.cancel(id), "live events cancel exactly once");
                let at = next_time(&mut rng, q.now());
                live.push(q.schedule(at, i));
            }
            while q.pop().is_some() {}
            Measure {
                ops: 5 * n,
                secs: start.elapsed().as_secs_f64(),
            }
        }
    };
}

micro_patterns!(wheel_fill, wheel_churn, wheel_cancel, EventQueue<u64>);
micro_patterns!(heap_fill, heap_churn, heap_cancel, HeapEventQueue<u64>);

/// One timed cluster run; the result carries the dispatched-event census.
fn cluster_run(nodes: usize) -> (f64, ClusterResult) {
    let base = ServerConfig::c_pc1a().with_duration(WINDOW);
    let start = Instant::now();
    let result = run_cluster_experiment(
        &base,
        nodes,
        RoutingPolicyKind::JoinShortestQueue,
        WorkloadSpec::memcached_etc(),
        RATE_PER_NODE * nodes as f64,
    );
    (start.elapsed().as_secs_f64(), result)
}

/// One untimed profiled run of the same configuration: the self-profiler's
/// engine counters (wheel batches, overflow-heap hits) for the row. Kept
/// out of the timed runs so the report never contaminates the wall clock.
fn cluster_profile(nodes: usize) -> apc_trace::EngineProfile {
    let base = ServerConfig::c_pc1a().with_duration(WINDOW).with_profile();
    let result = run_cluster_experiment(
        &base,
        nodes,
        RoutingPolicyKind::JoinShortestQueue,
        WorkloadSpec::memcached_etc(),
        RATE_PER_NODE * nodes as f64,
    );
    result
        .profile
        .expect("profiled run carries a report")
        .engine
}

fn json_escape_free(name: &str) -> &str {
    debug_assert!(name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'));
    name
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    // `cargo bench` forwards `--bench`; a figure-style filter is not
    // supported here, everything always runs.
    let (sizes, repeats, cluster_nodes, cluster_repeats): (&[u64], usize, &[usize], usize) =
        if smoke {
            (&[10_000], 2, &[8], 2)
        } else {
            (&[10_000, 100_000, 1_000_000], 5, &[1, 4, 8, 16], 10)
        };

    let mut micro_json = Vec::new();
    println!("event_queue micro ({} repeats, min):", repeats);
    for &n in sizes {
        let seed = 0xec0 + n;
        let cases: [(&str, Measure, Measure); 3] = [
            (
                "fill_drain",
                fastest(repeats, || wheel_fill(n, seed)),
                fastest(repeats, || heap_fill(n, seed)),
            ),
            (
                "churn",
                fastest(repeats, || wheel_churn(n, seed)),
                fastest(repeats, || heap_churn(n, seed)),
            ),
            (
                "cancel_rearm",
                fastest(repeats, || wheel_cancel(n, seed)),
                fastest(repeats, || heap_cancel(n, seed)),
            ),
        ];
        for (pattern, wheel, heap) in cases {
            println!(
                "  {n:>9} pending, {pattern:<12} wheel {:>6.1} Mops/s  heap {:>6.1} Mops/s  ({:.2}x)",
                wheel.ops_per_sec() / 1e6,
                heap.ops_per_sec() / 1e6,
                wheel.ops_per_sec() / heap.ops_per_sec(),
            );
            micro_json.push(format!(
                concat!(
                    "    {{\"pending_events\": {}, \"pattern\": \"{}\", ",
                    "\"wheel_ops_per_sec\": {:.0}, \"heap_ops_per_sec\": {:.0}, ",
                    "\"speedup_vs_heap\": {:.3}}}"
                ),
                n,
                json_escape_free(pattern),
                wheel.ops_per_sec(),
                heap.ops_per_sec(),
                wheel.ops_per_sec() / heap.ops_per_sec(),
            ));
        }
    }

    let mut cluster_json = Vec::new();
    println!(
        "cluster_scale ({} repeats, min; 20 ms simulated, JSQ, memcached_etc):",
        cluster_repeats
    );
    for &nodes in cluster_nodes {
        let mut walls = Vec::with_capacity(cluster_repeats);
        let mut events = 0u64;
        for _ in 0..cluster_repeats {
            let (secs, result) = cluster_run(nodes);
            walls.push(secs);
            events = result.events_dispatched;
        }
        let min = walls.iter().copied().fold(f64::MAX, f64::min);
        let ms_per_20ms = min * 1e3;
        let events_per_sec = events as f64 / min;
        let engine = cluster_profile(nodes);
        assert_eq!(
            engine.dispatched, events,
            "the self-profiler must not perturb the dispatched-event census"
        );
        println!(
            "  {nodes:>2} nodes: {ms_per_20ms:>7.3} ms per 20 ms sim   {events:>6} events   \
             {:>6.2} M events/s   {:>5} batches (max {:>3})   {:>4} overflow",
            events_per_sec / 1e6,
            engine.level0_batches,
            engine.max_batch,
            engine.overflow_hits,
        );
        cluster_json.push(format!(
            concat!(
                "    {{\"nodes\": {}, \"ms_per_20ms_sim\": {:.3}, ",
                "\"events_dispatched\": {}, \"events_per_sec\": {:.0}, ",
                "\"events_scheduled\": {}, \"events_cancelled\": {}, ",
                "\"level0_batches\": {}, \"max_batch\": {}, \"overflow_hits\": {}}}"
            ),
            nodes,
            ms_per_20ms,
            events,
            events_per_sec,
            engine.scheduled,
            engine.cancelled,
            engine.level0_batches,
            engine.max_batch,
            engine.overflow_hits,
        ));
    }

    if smoke {
        println!("smoke mode: skipping BENCH_event_core.json");
        return;
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"event_core\",\n",
            "  \"methodology\": \"min over repeats on a shared container; ",
            "micro: {} repeats, cluster: {} repeats; ",
            "identical xoshiro-seeded operation sequences for both queue ",
            "implementations; wheel-batch/overflow counters from one untimed ",
            "self-profiled run per row\",\n",
            "  \"baseline_8_nodes_ms_per_20ms_sim\": {{\"recorded_pre_wheel\": 14.9, ",
            "\"this_container_pre_wheel\": 16.06}},\n",
            "  \"event_queue_micro\": [\n{}\n  ],\n",
            "  \"cluster_scale\": [\n{}\n  ]\n",
            "}}\n"
        ),
        repeats,
        cluster_repeats,
        micro_json.join(",\n"),
        cluster_json.join(",\n"),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_event_core.json");
    std::fs::write(path, &json).expect("write BENCH_event_core.json");
    println!("wrote {path}");
}
