//! # `apc-bench` — experiment harnesses for every table and figure
//!
//! Each public function regenerates one table or figure of the paper's
//! evaluation (see DESIGN.md §4 for the index) and returns the rendered
//! text table; the `benches/` targets print them under `cargo bench`.
//!
//! The harnesses are intentionally thin: all modelling lives in the library
//! crates, so the same results can be produced programmatically.

#![deny(rustdoc::broken_intra_doc_links)]

use apc_analysis::impact::ImpactInputs;
use apc_analysis::report::TextTable;
use apc_analysis::savings::{idle_savings, SavingsInputs};
use apc_core::area::ApcAreaModel;
use apc_core::latency::Pc1aLatencyModel;
use apc_core::power::Pc1aPowerEstimator;
use apc_pmu::gpmu::Pc6LatencyModel;
use apc_power::budget::{PackageStatePower, PackageStateRecipe};
use apc_server::config::ServerConfig;
use apc_server::result::RunResult;
use apc_server::sim::run_experiment;
use apc_sim::SimDuration;
use apc_soc::cstate::PackageCState;
use apc_workloads::spec::WorkloadSpec;

/// Simulated measurement window per experiment point. Long enough for
/// stable averages, short enough that regenerating every figure stays in the
/// minutes range.
pub const POINT_DURATION: SimDuration = SimDuration::from_millis(400);

fn run(config: ServerConfig, spec: WorkloadSpec, rate: f64) -> RunResult {
    run_experiment(config.with_duration(POINT_DURATION), spec, rate)
}

fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

fn us(d: SimDuration) -> String {
    format!("{:.1}", d.as_micros_f64())
}

/// **Table 1** — power and transition latency across package C-states.
#[must_use]
pub fn table1_package_cstate_power() -> String {
    let budget = PackageStatePower::skx_reference();
    let mut t = TextTable::new(
        "Table 1: package C-state power and transition latency",
        &["package / cores", "latency", "SoC", "DRAM", "SoC+DRAM"],
    );
    let rows = [
        ("PC0 / >=1 CC0", PackageCState::PC0),
        ("PC0idle / 10 CC1", PackageCState::PC0Idle),
        ("PC6 / 10 CC6", PackageCState::PC6),
        ("PC1A / 10 CC1", PackageCState::PC1A),
    ];
    for (label, state) in rows {
        let p = if state == PackageCState::PC0 {
            budget.pc0_power()
        } else {
            budget.state_power(state)
        };
        t.add_row(&[
            label.to_owned(),
            format!("{}", state.transition_latency()),
            format!("{:.1} W", p.soc.as_f64()),
            format!("{:.2} W", p.dram.as_f64()),
            format!("{:.1} W", p.total().as_f64()),
        ]);
    }
    t.render()
}

/// **Table 2** — package C-state characteristics (component states).
#[must_use]
pub fn table2_cstate_characteristics() -> String {
    let mut t = TextTable::new(
        "Table 2: package C-state characteristics",
        &[
            "PCx", "cores in", "L3 cache", "PLLs", "PCIe/DMI", "UPI", "DRAM",
        ],
    );
    for state in [PackageCState::PC0, PackageCState::PC6, PackageCState::PC1A] {
        let r = PackageStateRecipe::for_state(state);
        let l3 = match r.clm {
            apc_soc::clm::ClmState::Operational => "accessible",
            apc_soc::clm::ClmState::ClockGated => "clock-gated",
            apc_soc::clm::ClmState::Retention => "retention",
        };
        t.add_row(&[
            state.to_string(),
            r.cores.to_string(),
            l3.to_owned(),
            if r.plls_on { "on" } else { "off" }.to_owned(),
            r.pcie.to_string(),
            r.upi.to_string(),
            r.dram.to_string(),
        ]);
    }
    t.render()
}

/// **Fig. 5** — Memcached average and p99 latency, `Cshallow` vs `Cdeep`.
#[must_use]
pub fn fig5_cshallow_vs_cdeep_latency() -> String {
    let mut t = TextTable::new(
        "Fig. 5: Memcached latency, Cshallow vs Cdeep (us)",
        &[
            "QPS",
            "Cshallow avg",
            "Cshallow p99",
            "Cdeep avg",
            "Cdeep p99",
        ],
    );
    for rate in [4_000.0, 25_000.0, 50_000.0, 100_000.0, 200_000.0, 300_000.0] {
        let shallow = run(
            ServerConfig::c_shallow(),
            WorkloadSpec::memcached_etc(),
            rate,
        );
        let deep = run(ServerConfig::c_deep(), WorkloadSpec::memcached_etc(), rate);
        t.add_row(&[
            format!("{rate:.0}"),
            us(shallow.latency.mean),
            us(shallow.latency.p99),
            us(deep.latency.mean),
            us(deep.latency.p99),
        ]);
    }
    t.render()
}

/// **Fig. 6(a)** — core C-state residency of the `Cshallow` baseline.
#[must_use]
pub fn fig6a_core_cstate_residency() -> String {
    let mut t = TextTable::new(
        "Fig. 6a: Cshallow core C-state residency (per-core average)",
        &["QPS", "CC0", "CC1"],
    );
    for rate in [4_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0] {
        let r = run(
            ServerConfig::c_shallow(),
            WorkloadSpec::memcached_etc(),
            rate,
        );
        t.add_row(&[
            format!("{rate:.0}"),
            pct(r.cc0_fraction),
            pct(r.cc1_fraction),
        ]);
    }
    t.render()
}

/// **Fig. 6(b)** — PC1A residency opportunity (all cores simultaneously in
/// CC1) vs request rate.
#[must_use]
pub fn fig6b_pc1a_residency() -> String {
    let mut t = TextTable::new(
        "Fig. 6b: PC1A residency opportunity (Memcached)",
        &["QPS", "all-idle (Cshallow)", "PC1A residency (CPC1A)"],
    );
    for rate in [4_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0] {
        let base = run(
            ServerConfig::c_shallow(),
            WorkloadSpec::memcached_etc(),
            rate,
        );
        let apc = run(ServerConfig::c_pc1a(), WorkloadSpec::memcached_etc(), rate);
        t.add_row(&[
            format!("{rate:.0}"),
            pct(base.all_idle_fraction),
            pct(apc.pc1a_residency),
        ]);
    }
    t.render()
}

/// **Fig. 6(c)** — distribution of fully-idle period lengths at low load.
#[must_use]
pub fn fig6c_idle_period_distribution() -> String {
    let r = run(
        ServerConfig::c_shallow(),
        WorkloadSpec::memcached_etc(),
        10_000.0,
    );
    let mut t = TextTable::new(
        "Fig. 6c: fully-idle periods at 10K QPS (Cshallow)",
        &["metric", "value"],
    );
    t.add_row(&[
        "idle periods (>=10us)".to_owned(),
        r.idle_periods.to_string(),
    ]);
    t.add_row(&[
        "fraction 20us-200us".to_owned(),
        pct(r.idle_periods_20_200us),
    ]);
    t.add_row(&["all-idle fraction".to_owned(), pct(r.all_idle_fraction)]);
    t.render()
}

/// **Fig. 7(a)** — idle SoC+DRAM power under the three configurations.
#[must_use]
pub fn fig7a_idle_power() -> String {
    let budget = PackageStatePower::skx_reference();
    let shallow = budget.state_power(PackageCState::PC0Idle);
    let deep = budget.state_power(PackageCState::PC6);
    let apc = budget.state_power(PackageCState::PC1A);
    let mut t = TextTable::new(
        "Fig. 7a: idle SoC+DRAM power",
        &["configuration", "SoC", "DRAM", "total", "vs Cshallow"],
    );
    for (name, p) in [("Cshallow", shallow), ("Cdeep", deep), ("CPC1A", apc)] {
        t.add_row(&[
            name.to_owned(),
            format!("{:.1} W", p.soc.as_f64()),
            format!("{:.2} W", p.dram.as_f64()),
            format!("{:.1} W", p.total().as_f64()),
            pct(1.0 - p.total().as_f64() / shallow.total().as_f64()),
        ]);
    }
    t.render()
}

/// **Fig. 7(b)** — power and savings vs request rate (Memcached).
#[must_use]
pub fn fig7b_power_vs_load() -> String {
    let mut t = TextTable::new(
        "Fig. 7b: Memcached SoC+DRAM power and PC1A savings",
        &["QPS", "Cshallow W", "CPC1A W", "saving"],
    );
    let budget = PackageStatePower::skx_reference();
    let idle_saving = idle_savings(
        budget.state_power(PackageCState::PC0Idle),
        budget.state_power(PackageCState::PC1A),
    );
    t.add_row(&[
        "0 (idle)".to_owned(),
        format!(
            "{:.2}",
            budget.state_power(PackageCState::PC0Idle).total().as_f64()
        ),
        format!(
            "{:.2}",
            budget.state_power(PackageCState::PC1A).total().as_f64()
        ),
        pct(idle_saving),
    ]);
    for rate in [4_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0] {
        let base = run(
            ServerConfig::c_shallow(),
            WorkloadSpec::memcached_etc(),
            rate,
        );
        let apc = run(ServerConfig::c_pc1a(), WorkloadSpec::memcached_etc(), rate);
        t.add_row(&[
            format!("{rate:.0}"),
            format!("{:.2}", base.avg_total_power().as_f64()),
            format!("{:.2}", apc.avg_total_power().as_f64()),
            pct(apc.power_saving_vs(&base)),
        ]);
    }
    t.render()
}

/// **Fig. 7(c)** — average latency impact of PC1A vs request rate.
#[must_use]
pub fn fig7c_latency_impact() -> String {
    let mut t = TextTable::new(
        "Fig. 7c: Memcached average latency and PC1A impact",
        &[
            "QPS",
            "Cshallow avg us",
            "CPC1A avg us",
            "measured impact",
            "model impact",
        ],
    );
    for rate in [4_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0] {
        let base = run(
            ServerConfig::c_shallow(),
            WorkloadSpec::memcached_etc(),
            rate,
        );
        let apc = run(ServerConfig::c_pc1a(), WorkloadSpec::memcached_etc(), rate);
        let model = ImpactInputs::from_runs(&apc, &base).relative_impact();
        t.add_row(&[
            format!("{rate:.0}"),
            us(base.latency.mean),
            us(apc.latency.mean),
            format!("{:+.3}%", apc.latency_overhead_vs(&base) * 100.0),
            format!("{:.3}%", model * 100.0),
        ]);
    }
    t.render()
}

/// **Fig. 8** — MySQL residency and power reduction at low/mid/high load.
#[must_use]
pub fn fig8_mysql() -> String {
    workload_figure("Fig. 8: MySQL (sysbench OLTP)", WorkloadSpec::mysql_oltp)
}

/// **Fig. 9** — Kafka residency and power reduction at low/high load.
#[must_use]
pub fn fig9_kafka() -> String {
    workload_figure("Fig. 9: Kafka", WorkloadSpec::kafka)
}

fn workload_figure(title: &str, make: fn() -> WorkloadSpec) -> String {
    let mut t = TextTable::new(
        title,
        &[
            "point",
            "rate/s",
            "util",
            "CC0",
            "all-idle",
            "PC1A res",
            "power saving",
        ],
    );
    let points = make().operating_points.clone();
    for point in points {
        let base = run(ServerConfig::c_shallow(), make(), point.rate_per_sec);
        let apc = run(ServerConfig::c_pc1a(), make(), point.rate_per_sec);
        t.add_row(&[
            point.label.to_owned(),
            format!("{:.0}", point.rate_per_sec),
            pct(base.cpu_utilization),
            pct(base.cc0_fraction),
            pct(base.all_idle_fraction),
            pct(apc.pc1a_residency),
            pct(apc.power_saving_vs(&base)),
        ]);
    }
    t.render()
}

/// **Sec. 2** — the Eq. 1 analytical savings model at the paper's example
/// operating points.
#[must_use]
pub fn sec2_savings_model() -> String {
    let budget = PackageStatePower::skx_reference();
    let mut t = TextTable::new(
        "Sec. 2: Eq. 1 savings model",
        &["all-idle residency", "baseline W", "savings"],
    );
    for (label, r_idle) in [
        ("57% (5% load)", 0.57),
        ("39% (10% load)", 0.39),
        ("100% (idle)", 1.0),
    ] {
        let inputs = SavingsInputs::from_budget(&budget, r_idle)
            .with_active_power(apc_power::units::Watts(60.0));
        t.add_row(&[
            label.to_owned(),
            format!("{:.1}", inputs.baseline_power().as_f64()),
            pct(inputs.savings_fraction()),
        ]);
    }
    t.render()
}

/// **Sec. 5.4** — the PC1A power breakdown (Eq. 2/3).
#[must_use]
pub fn sec54_pc1a_power_breakdown() -> String {
    format!(
        "== Sec. 5.4: PC1A power derivation ==\n{}\n",
        Pc1aPowerEstimator::skx_reference().estimate()
    )
}

/// **Sec. 5.5** — the PC1A transition-latency budget and the speedup vs PC6.
#[must_use]
pub fn sec55_pc1a_latency() -> String {
    let pc1a = Pc1aLatencyModel::from_components();
    let pc6 = Pc6LatencyModel::skx();
    format!(
        "== Sec. 5.5: PC1A latency ==\n{}\nPC6 round trip: {}\nspeedup vs PC6: {:.0}x\n",
        pc1a,
        pc6.round_trip(),
        pc1a.speedup_vs(pc6.round_trip())
    )
}

/// **Sec. 5.1–5.3** — APC area overhead.
#[must_use]
pub fn sec5_area_overhead() -> String {
    format!("{}\n", ApcAreaModel::skx().report())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_harnesses_render() {
        for s in [
            table1_package_cstate_power(),
            table2_cstate_characteristics(),
            fig7a_idle_power(),
            sec2_savings_model(),
            sec54_pc1a_power_breakdown(),
            sec55_pc1a_latency(),
            sec5_area_overhead(),
        ] {
            assert!(!s.is_empty());
        }
        assert!(table1_package_cstate_power().contains("PC1A"));
        assert!(table2_cstate_characteristics().contains("retention"));
        assert!(sec55_pc1a_latency().contains("speedup"));
    }
}
