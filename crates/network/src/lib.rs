//! # `apc-network` — datacenter network fabric model
//!
//! The paper's killer-microseconds argument rests on package C-state wake
//! latency being *comparable to datacenter network RTTs*: a few microseconds
//! of wire delay is the yardstick against which PC1A's nanosecond wake is
//! agile and PC6's ~100 µs wake is a latency cliff. This crate supplies the
//! other side of that comparison: a deterministic wire-delay model that the
//! cluster and chain simulations route every RPC through.
//!
//! The model is deliberately simple — the paper studies *servers*, not
//! congestion control — but captures the two axes that interact with
//! C-states:
//!
//! * **propagation latency** per [`Link`], so fan-out chains see a real RTT
//!   between the coordinator and the leaves, and
//! * **bandwidth serialization** per link with store-and-forward queueing
//!   (`busy_until` per link), so large payloads and oversubscribed uplinks
//!   stretch the tail.
//!
//! Three [`TopologyKind`]s are modelled: a single-switch **flat** network, a
//! **two-tier** rack/ToR + aggregation network, and an oversubscribed
//! three-tier **fat-tree** (ToR → pod aggregation → core). Path resolution
//! is canonical and deterministic: the same `(src, dst)` pair always
//! resolves to the same link sequence, and paths are symmetric mirrors of
//! their reverses.
//!
//! Endpoint `0..servers` are server nodes; one extra endpoint,
//! [`Topology::client`], models the load balancer / chain coordinator and
//! attaches at the top switch tier of the topology.
//!
//! The load-bearing contract, enforced by the differential suite in
//! `apc-server`: a network whose every transmission takes zero time (see
//! [`NetworkConfig::is_instantaneous`]) is **bit-identical** to no network
//! at all.
//!
//! # Example
//!
//! ```
//! use apc_network::{NetworkConfig, NetworkState};
//! use apc_sim::{SimDuration, SimTime};
//!
//! // 8 servers in racks of 4 behind one aggregation switch, 2 µs per link.
//! let config = NetworkConfig::two_tier(SimDuration::from_micros(2), 4);
//! let mut net = NetworkState::new(config, 8);
//!
//! // Load balancer -> server 0 crosses three links (lb->agg->tor->server).
//! let lb = net.topology().client();
//! let delay = net.transmit(lb, 0, SimTime::ZERO);
//! assert_eq!(delay, SimDuration::from_micros(6));
//!
//! // The ideal network is instantaneous: every transmission takes zero time.
//! let mut ideal = NetworkState::new(NetworkConfig::ideal(), 8);
//! assert!(ideal.config().is_instantaneous());
//! assert_eq!(ideal.transmit(lb, 3, SimTime::ZERO), SimDuration::ZERO);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;

use apc_sim::{SimDuration, SimTime};

/// Index of a [`Link`] inside its [`Topology`].
pub type LinkId = usize;

/// The longest path any modelled topology produces (fat-tree inter-pod:
/// server → ToR → pod agg → core → pod agg → ToR → server = 6 links).
pub const MAX_PATH_LINKS: usize = 6;

/// The shape of the switching fabric connecting the endpoints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TopologyKind {
    /// Every endpoint hangs off one ideal switch: all pairs are two links
    /// apart. The degenerate baseline; with zero latency and infinite
    /// bandwidth it reproduces the instantaneous-deposit behaviour exactly.
    Flat,
    /// Rack/ToR two-tier: servers are grouped into racks of `rack_size`
    /// behind a top-of-rack switch; every ToR uplinks to one aggregation
    /// switch, where the load balancer also attaches. Same-rack pairs are
    /// two links apart, inter-rack pairs four.
    TwoTier {
        /// Servers per rack (≥ 1; the last rack may be partially filled).
        rack_size: usize,
    },
    /// Three-tier oversubscribed fat-tree: racks of `rack_size` behind ToR
    /// switches, `racks_per_pod` ToRs behind a pod aggregation switch, all
    /// pods behind one core tier where the load balancer attaches. The
    /// pod↔core uplinks carry `1/oversubscription` of the edge bandwidth.
    FatTree {
        /// Servers per rack (≥ 1; the last rack may be partially filled).
        rack_size: usize,
        /// Racks per pod (≥ 1; the last pod may be partially filled).
        racks_per_pod: usize,
        /// Core oversubscription factor (≥ 1): pod↔core link bandwidth is
        /// the edge link bandwidth divided by this factor.
        oversubscription: f64,
    },
}

impl TopologyKind {
    /// The canonical spec-file name of this topology
    /// (`"flat"`, `"two-tier"` or `"fat-tree"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TopologyKind::Flat => "flat",
            TopologyKind::TwoTier { .. } => "two-tier",
            TopologyKind::FatTree { .. } => "fat-tree",
        }
    }
}

impl fmt::Display for TopologyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Full description of a network fabric: topology shape plus uniform
/// per-link latency, bandwidth and the RPC payload size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// The switching fabric shape.
    pub topology: TopologyKind,
    /// Propagation latency of every link.
    pub link_latency: SimDuration,
    /// Edge link bandwidth in bytes per second; `None` models infinite
    /// bandwidth (no serialization delay, no link queueing).
    pub bandwidth_bytes_per_sec: Option<u64>,
    /// Payload size of one RPC message in bytes (serialized on every link
    /// of the path when bandwidth is finite).
    pub rpc_bytes: u64,
}

impl NetworkConfig {
    /// The ideal network: flat topology, zero latency, infinite bandwidth.
    /// Bit-identical to running without any network fabric at all.
    #[must_use]
    pub fn ideal() -> Self {
        NetworkConfig::flat(SimDuration::ZERO)
    }

    /// A flat single-switch network with the given per-link latency.
    #[must_use]
    pub fn flat(link_latency: SimDuration) -> Self {
        NetworkConfig {
            topology: TopologyKind::Flat,
            link_latency,
            bandwidth_bytes_per_sec: None,
            rpc_bytes: 0,
        }
    }

    /// A two-tier rack/ToR network with the given per-link latency.
    #[must_use]
    pub fn two_tier(link_latency: SimDuration, rack_size: usize) -> Self {
        NetworkConfig {
            topology: TopologyKind::TwoTier { rack_size },
            link_latency,
            bandwidth_bytes_per_sec: None,
            rpc_bytes: 0,
        }
    }

    /// A three-tier oversubscribed fat-tree with the given per-link latency.
    #[must_use]
    pub fn fat_tree(
        link_latency: SimDuration,
        rack_size: usize,
        racks_per_pod: usize,
        oversubscription: f64,
    ) -> Self {
        NetworkConfig {
            topology: TopologyKind::FatTree {
                rack_size,
                racks_per_pod,
                oversubscription,
            },
            link_latency,
            bandwidth_bytes_per_sec: None,
            rpc_bytes: 0,
        }
    }

    /// Sets a finite edge-link bandwidth in bytes per second.
    #[must_use]
    pub fn with_bandwidth(mut self, bytes_per_sec: u64) -> Self {
        self.bandwidth_bytes_per_sec = Some(bytes_per_sec.max(1));
        self
    }

    /// Sets the RPC payload size in bytes.
    #[must_use]
    pub fn with_rpc_bytes(mut self, bytes: u64) -> Self {
        self.rpc_bytes = bytes;
        self
    }

    /// `true` when every transmission through this network takes zero
    /// simulated time regardless of topology: zero link latency and either
    /// infinite bandwidth or an empty payload. An instantaneous network is
    /// bit-identical to no network at all.
    #[must_use]
    pub fn is_instantaneous(&self) -> bool {
        self.link_latency.is_zero()
            && (self.bandwidth_bytes_per_sec.is_none() || self.rpc_bytes == 0)
    }

    /// The minimum propagation latency of any link this configuration
    /// resolves to — the conservative **lookahead bound** for parallel
    /// (partitioned) simulation: every endpoint-to-endpoint path crosses at
    /// least one link, and store-and-forward queueing plus serialization
    /// only *add* delay, so every transmission takes at least this long.
    /// All modelled topologies use one uniform per-link latency, so this is
    /// simply [`NetworkConfig::link_latency`]; see
    /// [`Topology::min_link_latency`] for the resolved-link-table form.
    ///
    /// A zero bound (any instantaneous or zero-latency configuration)
    /// admits no lookahead window and forces the sequential event loop.
    #[must_use]
    pub fn min_link_latency(&self) -> SimDuration {
        self.link_latency
    }
}

/// One unidirectional link: propagation latency plus optional finite
/// bandwidth (bytes per second) for serialization delay.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Link {
    /// Propagation latency of the link.
    pub latency: SimDuration,
    /// Bandwidth in bytes per second; `None` = infinite.
    pub bytes_per_sec: Option<u64>,
}

impl Link {
    /// Time to clock `bytes` onto the wire at this link's bandwidth
    /// (zero for infinite bandwidth or an empty payload), rounded up to
    /// the next nanosecond.
    #[must_use]
    pub fn serialization_delay(&self, bytes: u64) -> SimDuration {
        match self.bytes_per_sec {
            None => SimDuration::ZERO,
            Some(_) if bytes == 0 => SimDuration::ZERO,
            Some(bw) => {
                let ns = (u128::from(bytes) * 1_000_000_000).div_ceil(u128::from(bw));
                SimDuration::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
            }
        }
    }
}

/// A resolved unidirectional path: at most [`MAX_PATH_LINKS`] link ids,
/// in traversal order. Cheap to copy; no heap allocation per message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Path {
    links: [LinkId; MAX_PATH_LINKS],
    len: u8,
}

impl Path {
    fn push(&mut self, link: LinkId) {
        self.links[self.len as usize] = link;
        self.len += 1;
    }

    /// The link ids in traversal order.
    #[must_use]
    pub fn as_slice(&self) -> &[LinkId] {
        &self.links[..self.len as usize]
    }

    /// Number of links on the path (zero for `src == dst`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when the path traverses no links (`src == dst`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// A fully resolved topology: the link table and deterministic path
/// resolution over `servers + 1` endpoints (`0..servers` are server nodes,
/// [`Topology::client`] is the load balancer / chain coordinator endpoint,
/// attached at the top switch tier).
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    config: NetworkConfig,
    servers: usize,
    rack_size: usize,
    racks_per_pod: usize,
    racks: usize,
    pods: usize,
    links: Vec<Link>,
    /// First rack-uplink id (two-tier, fat-tree); endpoint links precede it.
    rack_base: LinkId,
    /// First pod-uplink id (fat-tree); rack links precede it.
    pod_base: LinkId,
}

impl Topology {
    /// Resolves `config` over `servers` server endpoints plus the client
    /// endpoint. Rack and pod sizes are clamped to at least 1.
    #[must_use]
    pub fn new(config: NetworkConfig, servers: usize) -> Self {
        let (rack_size, racks_per_pod, core_bw_divisor) = match config.topology {
            TopologyKind::Flat => (servers.max(1), 1, 1.0),
            TopologyKind::TwoTier { rack_size } => (rack_size.max(1), 1, 1.0),
            TopologyKind::FatTree {
                rack_size,
                racks_per_pod,
                oversubscription,
            } => (
                rack_size.max(1),
                racks_per_pod.max(1),
                oversubscription.max(1.0),
            ),
        };
        let racks = servers.div_ceil(rack_size).max(1);
        let pods = racks.div_ceil(racks_per_pod).max(1);
        let endpoints = servers + 1;

        let edge = Link {
            latency: config.link_latency,
            bytes_per_sec: config.bandwidth_bytes_per_sec,
        };
        let core = Link {
            latency: config.link_latency,
            bytes_per_sec: config
                .bandwidth_bytes_per_sec
                .map(|bw| ((bw as f64 / core_bw_divisor).floor() as u64).max(1)),
        };

        // Link table layout: [endpoint up/down pairs][rack up/down pairs]
        // [pod up/down pairs]. `up` is always the even id of its pair.
        let mut links = vec![edge; 2 * endpoints];
        let rack_base = links.len();
        if !matches!(config.topology, TopologyKind::Flat) {
            links.extend(std::iter::repeat(edge).take(2 * racks));
        }
        let pod_base = links.len();
        if matches!(config.topology, TopologyKind::FatTree { .. }) {
            links.extend(std::iter::repeat(core).take(2 * pods));
        }

        Topology {
            config,
            servers,
            rack_size,
            racks_per_pod,
            racks,
            pods,
            links,
            rack_base,
            pod_base,
        }
    }

    /// The configuration this topology was resolved from.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// Number of server endpoints (`0..servers`).
    #[must_use]
    pub fn servers(&self) -> usize {
        self.servers
    }

    /// The client endpoint index (load balancer / chain coordinator),
    /// attached at the top switch tier.
    #[must_use]
    pub fn client(&self) -> usize {
        self.servers
    }

    /// Total endpoint count (`servers + 1`).
    #[must_use]
    pub fn endpoints(&self) -> usize {
        self.servers + 1
    }

    /// The full unidirectional link table.
    #[must_use]
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// The rack a server endpoint belongs to.
    #[must_use]
    pub fn rack_of(&self, server: usize) -> usize {
        server / self.rack_size
    }

    /// The pod a rack belongs to (fat-tree; 0 elsewhere).
    #[must_use]
    pub fn pod_of(&self, rack: usize) -> usize {
        rack / self.racks_per_pod
    }

    fn up(&self, endpoint: usize) -> LinkId {
        2 * endpoint
    }

    fn down(&self, endpoint: usize) -> LinkId {
        2 * endpoint + 1
    }

    fn rack_up(&self, rack: usize) -> LinkId {
        self.rack_base + 2 * rack
    }

    fn rack_down(&self, rack: usize) -> LinkId {
        self.rack_base + 2 * rack + 1
    }

    fn pod_up(&self, pod: usize) -> LinkId {
        self.pod_base + 2 * pod
    }

    fn pod_down(&self, pod: usize) -> LinkId {
        self.pod_base + 2 * pod + 1
    }

    /// Resolves the canonical path from endpoint `src` to endpoint `dst`.
    ///
    /// Resolution is a pure function of `(src, dst)` — no randomness, no
    /// state — and the path from `dst` to `src` is the mirror image (each
    /// `up` link replaced by its paired `down` link) of the forward path.
    /// `src == dst` resolves to the empty path.
    ///
    /// # Panics
    ///
    /// Panics when `src` or `dst` is not a valid endpoint index.
    #[must_use]
    pub fn path(&self, src: usize, dst: usize) -> Path {
        assert!(src < self.endpoints(), "src endpoint {src} out of range");
        assert!(dst < self.endpoints(), "dst endpoint {dst} out of range");
        let mut path = Path::default();
        if src == dst {
            return path;
        }
        path.push(self.up(src));
        let client = self.client();
        match self.config.topology {
            TopologyKind::Flat => {}
            TopologyKind::TwoTier { .. } => {
                // Servers attach at their ToR; the client attaches at the
                // aggregation switch where every ToR uplinks.
                let src_rack = (src != client).then(|| self.rack_of(src));
                let dst_rack = (dst != client).then(|| self.rack_of(dst));
                if src_rack != dst_rack {
                    if let Some(r) = src_rack {
                        path.push(self.rack_up(r));
                    }
                    if let Some(r) = dst_rack {
                        path.push(self.rack_down(r));
                    }
                }
            }
            TopologyKind::FatTree { .. } => {
                // Servers attach at their ToR inside a pod; the client
                // attaches at the core tier above every pod.
                let src_rack = (src != client).then(|| self.rack_of(src));
                let dst_rack = (dst != client).then(|| self.rack_of(dst));
                if src_rack != dst_rack {
                    let src_pod = src_rack.map(|r| self.pod_of(r));
                    let dst_pod = dst_rack.map(|r| self.pod_of(r));
                    if let Some(r) = src_rack {
                        path.push(self.rack_up(r));
                    }
                    if src_pod != dst_pod {
                        if let Some(p) = src_pod {
                            path.push(self.pod_up(p));
                        }
                        if let Some(p) = dst_pod {
                            path.push(self.pod_down(p));
                        }
                    }
                    if let Some(r) = dst_rack {
                        path.push(self.rack_down(r));
                    }
                }
            }
        }
        path.push(self.down(dst));
        path
    }

    /// Human-readable role of link `id` in the resolved table — e.g.
    /// `"server3-up"`, `"client-down"`, `"rack1-up"`, `"pod0-down"` — used
    /// to attribute per-link statistics in exports.
    ///
    /// # Panics
    ///
    /// Panics when `id` is not a valid link index.
    #[must_use]
    pub fn link_label(&self, id: LinkId) -> String {
        assert!(id < self.links.len(), "link {id} out of range");
        let dir = if id % 2 == 0 { "up" } else { "down" };
        if id < self.rack_base {
            let endpoint = id / 2;
            if endpoint == self.client() {
                format!("client-{dir}")
            } else {
                format!("server{endpoint}-{dir}")
            }
        } else if id < self.pod_base {
            format!("rack{}-{dir}", (id - self.rack_base) / 2)
        } else {
            format!("pod{}-{dir}", (id - self.pod_base) / 2)
        }
    }

    /// The minimum propagation latency over the resolved link table — the
    /// conservative lookahead bound for parallel simulation (every path
    /// crosses at least one link; queueing and serialization only add).
    /// Agrees with [`NetworkConfig::min_link_latency`] while links carry
    /// one uniform latency; this form stays correct if per-link latencies
    /// ever diverge.
    #[must_use]
    pub fn min_link_latency(&self) -> SimDuration {
        self.links
            .iter()
            .map(|l| l.latency)
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The uncontended flight time of one RPC from `src` to `dst`: the sum
    /// over the path's links of propagation latency plus serialization of
    /// the configured payload. Ignores link queueing (see
    /// [`NetworkState::transmit`] for the contended form).
    #[must_use]
    pub fn flight_latency(&self, src: usize, dst: usize) -> SimDuration {
        self.path(src, dst)
            .as_slice()
            .iter()
            .map(|&l| {
                self.links[l].latency + self.links[l].serialization_delay(self.config.rpc_bytes)
            })
            .sum()
    }
}

/// Per-link occupancy and queueing statistics for one simulation run.
///
/// Lets a trace attribute wire time to the congested link instead of the
/// path-level census alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LinkStats {
    /// Messages forwarded over this link.
    pub messages: u64,
    /// Sum of store-and-forward queueing waits (departure minus arrival).
    pub total_queue_delay: SimDuration,
    /// Largest single queueing wait observed on this link.
    pub max_queue_delay: SimDuration,
    /// Total time the link spent serializing payloads (occupancy).
    pub busy_time: SimDuration,
}

/// Aggregate wire-delay statistics for one simulation run, exported next
/// to the run results.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkStats {
    /// The configuration the fabric ran with.
    pub config: NetworkConfig,
    /// Messages transmitted through the fabric.
    pub messages: u64,
    /// Sum of all wire delays.
    pub total_wire_delay: SimDuration,
    /// Largest single wire delay observed.
    pub max_wire_delay: SimDuration,
    /// Per-link breakdown, indexed by [`LinkId`] (same order as
    /// [`Topology::links`]).
    pub per_link: Vec<LinkStats>,
}

impl NetworkStats {
    /// Mean wire delay per message (zero when no messages were sent).
    #[must_use]
    pub fn mean_wire_delay(&self) -> SimDuration {
        if self.messages == 0 {
            SimDuration::ZERO
        } else {
            self.total_wire_delay / self.messages
        }
    }

    /// The link that accumulated the most queueing delay, with its stats
    /// (ties resolve to the lowest link id; `None` when nothing queued).
    #[must_use]
    pub fn most_queued_link(&self) -> Option<(LinkId, LinkStats)> {
        self.per_link
            .iter()
            .enumerate()
            .filter(|(_, s)| !s.total_queue_delay.is_zero())
            .max_by(|(ia, a), (ib, b)| {
                a.total_queue_delay
                    .cmp(&b.total_queue_delay)
                    .then(ib.cmp(ia))
            })
            .map(|(id, s)| (id, *s))
    }
}

/// The runtime state of a network fabric: the resolved [`Topology`] plus
/// per-link `busy_until` store-and-forward queueing and run statistics.
#[derive(Debug, Clone)]
pub struct NetworkState {
    topology: Topology,
    busy_until: Vec<SimTime>,
    stats: NetworkStats,
}

impl NetworkState {
    /// Builds the fabric for `servers` server endpoints plus the client
    /// endpoint.
    #[must_use]
    pub fn new(config: NetworkConfig, servers: usize) -> Self {
        let topology = Topology::new(config, servers);
        let busy_until = vec![SimTime::ZERO; topology.links().len()];
        let per_link = vec![LinkStats::default(); topology.links().len()];
        NetworkState {
            topology,
            busy_until,
            stats: NetworkStats {
                config,
                messages: 0,
                total_wire_delay: SimDuration::ZERO,
                max_wire_delay: SimDuration::ZERO,
                per_link,
            },
        }
    }

    /// The resolved topology.
    #[must_use]
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The fabric configuration.
    #[must_use]
    pub fn config(&self) -> &NetworkConfig {
        self.topology.config()
    }

    /// The client endpoint index (load balancer / chain coordinator).
    #[must_use]
    pub fn client(&self) -> usize {
        self.topology.client()
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &NetworkStats {
        &self.stats
    }

    /// Transmits one RPC of the configured payload size from endpoint `src`
    /// to endpoint `dst` starting at `now`, and returns the wire delay
    /// (arrival time minus `now`).
    ///
    /// The message is forwarded store-and-forward: on each link it departs
    /// at `max(arrival at the link, link busy_until)`, occupies the link for
    /// the serialization time, and propagates for the link latency. Link
    /// occupancy is recorded so later messages queue behind earlier ones.
    /// On an [instantaneous](NetworkConfig::is_instantaneous) fabric this
    /// always returns [`SimDuration::ZERO`] and records no occupancy.
    pub fn transmit(&mut self, src: usize, dst: usize, now: SimTime) -> SimDuration {
        let path = self.topology.path(src, dst);
        let bytes = self.topology.config().rpc_bytes;
        let mut at = now;
        for &link_id in path.as_slice() {
            let link = self.topology.links()[link_id];
            let serialize = link.serialization_delay(bytes);
            let depart = if self.busy_until[link_id] > at {
                self.busy_until[link_id]
            } else {
                at
            };
            if !serialize.is_zero() {
                self.busy_until[link_id] = depart + serialize;
            }
            let queued = depart.saturating_since(at);
            let stats = &mut self.stats.per_link[link_id];
            stats.messages += 1;
            stats.total_queue_delay += queued;
            stats.max_queue_delay = stats.max_queue_delay.max(queued);
            stats.busy_time += serialize;
            at = depart + serialize + link.latency;
        }
        let delay = at.saturating_since(now);
        self.stats.messages += 1;
        self.stats.total_wire_delay += delay;
        self.stats.max_wire_delay = self.stats.max_wire_delay.max(delay);
        delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_network_is_instantaneous_everywhere() {
        let mut net = NetworkState::new(NetworkConfig::ideal(), 8);
        let client = net.client();
        for dst in 0..8 {
            assert_eq!(
                net.transmit(client, dst, SimTime::from_micros(3)),
                SimDuration::ZERO
            );
            assert_eq!(
                net.transmit(dst, client, SimTime::from_micros(3)),
                SimDuration::ZERO
            );
        }
        assert_eq!(net.stats().messages, 16);
        assert_eq!(net.stats().total_wire_delay, SimDuration::ZERO);
    }

    #[test]
    fn zero_latency_nonflat_topologies_are_also_instantaneous() {
        for config in [
            NetworkConfig::two_tier(SimDuration::ZERO, 4),
            NetworkConfig::fat_tree(SimDuration::ZERO, 2, 2, 4.0),
        ] {
            assert!(config.is_instantaneous());
            let mut net = NetworkState::new(config, 8);
            let client = net.client();
            assert_eq!(net.transmit(client, 7, SimTime::ZERO), SimDuration::ZERO);
        }
        // Finite bandwidth with a non-empty payload is not instantaneous.
        let cfg = NetworkConfig::flat(SimDuration::ZERO)
            .with_bandwidth(1_000_000)
            .with_rpc_bytes(100);
        assert!(!cfg.is_instantaneous());
        // ... but finite bandwidth with an empty payload still is.
        assert!(NetworkConfig::flat(SimDuration::ZERO)
            .with_bandwidth(1_000)
            .is_instantaneous());
    }

    #[test]
    fn flat_paths_cross_exactly_two_links() {
        let topo = Topology::new(NetworkConfig::flat(SimDuration::from_micros(1)), 4);
        for src in 0..topo.endpoints() {
            for dst in 0..topo.endpoints() {
                let expect = if src == dst { 0 } else { 2 };
                assert_eq!(topo.path(src, dst).len(), expect, "({src},{dst})");
            }
        }
        assert_eq!(topo.flight_latency(0, 3), SimDuration::from_micros(2));
    }

    #[test]
    fn two_tier_hop_counts_follow_rack_structure() {
        // 8 servers, racks of 4: servers 0-3 in rack 0, 4-7 in rack 1.
        let topo = Topology::new(NetworkConfig::two_tier(SimDuration::from_micros(1), 4), 8);
        let client = topo.client();
        assert_eq!(topo.path(0, 3).len(), 2); // same rack
        assert_eq!(topo.path(0, 4).len(), 4); // across racks
        assert_eq!(topo.path(client, 0).len(), 3); // lb at agg: lb->tor->server
        assert_eq!(topo.path(5, client).len(), 3);
        assert_eq!(topo.flight_latency(client, 0), SimDuration::from_micros(3));
    }

    #[test]
    fn fat_tree_hop_counts_follow_pod_structure() {
        // 8 servers, racks of 2, 2 racks/pod: pods = {r0,r1}, {r2,r3}.
        let topo = Topology::new(
            NetworkConfig::fat_tree(SimDuration::from_micros(1), 2, 2, 4.0),
            8,
        );
        let client = topo.client();
        assert_eq!(topo.path(0, 1).len(), 2); // same rack
        assert_eq!(topo.path(0, 2).len(), 4); // same pod, other rack
        assert_eq!(topo.path(0, 6).len(), 6); // other pod
        assert_eq!(topo.path(client, 0).len(), 4); // lb at core
        assert_eq!(topo.path(0, client).len(), 4);
    }

    #[test]
    fn oversubscription_thins_core_links_only() {
        let topo = Topology::new(
            NetworkConfig::fat_tree(SimDuration::ZERO, 2, 2, 4.0).with_bandwidth(40_000),
            8,
        );
        let edge = topo.links()[topo.up(0)];
        let core = topo.links()[topo.pod_up(0)];
        assert_eq!(edge.bytes_per_sec, Some(40_000));
        assert_eq!(core.bytes_per_sec, Some(10_000));
        let tor = topo.links()[topo.rack_up(0)];
        assert_eq!(tor.bytes_per_sec, Some(40_000));
    }

    #[test]
    fn serialization_delay_rounds_up_to_nanoseconds() {
        let link = Link {
            latency: SimDuration::ZERO,
            bytes_per_sec: Some(1_000_000_000), // 1 GB/s => 1 ns per byte
        };
        assert_eq!(
            link.serialization_delay(1500),
            SimDuration::from_nanos(1500)
        );
        let slow = Link {
            latency: SimDuration::ZERO,
            bytes_per_sec: Some(3),
        };
        // ceil(1 byte * 1e9 / 3) = 333_333_334 ns.
        assert_eq!(
            slow.serialization_delay(1),
            SimDuration::from_nanos(333_333_334)
        );
        assert_eq!(slow.serialization_delay(0), SimDuration::ZERO);
    }

    #[test]
    fn back_to_back_messages_queue_on_busy_links() {
        // 1 µs serialization per message (1000 bytes at 1 GB/s), no latency.
        let config = NetworkConfig::flat(SimDuration::ZERO)
            .with_bandwidth(1_000_000_000)
            .with_rpc_bytes(1000);
        let mut net = NetworkState::new(config, 2);
        let client = net.client();
        // First message: 2 links x 1 µs serialization.
        let first = net.transmit(client, 0, SimTime::ZERO);
        assert_eq!(first, SimDuration::from_micros(2));
        // The second message departs after the first clears the lb uplink,
        // then queues behind nothing on its own distinct down link.
        let second = net.transmit(client, 1, SimTime::ZERO);
        assert_eq!(second, SimDuration::from_micros(3)); // 1 µs wait + 2 µs
        assert_eq!(net.stats().messages, 2);
        assert_eq!(net.stats().max_wire_delay, SimDuration::from_micros(3));
        assert_eq!(
            net.stats().mean_wire_delay(),
            SimDuration::from_nanos(2_500)
        );
    }

    #[test]
    fn per_link_stats_attribute_queueing_to_the_congested_link() {
        // Same setup as `back_to_back_messages_queue_on_busy_links`: the
        // second message queues 1 µs behind the first on the shared client
        // uplink, and nowhere else.
        let config = NetworkConfig::flat(SimDuration::ZERO)
            .with_bandwidth(1_000_000_000)
            .with_rpc_bytes(1000);
        let mut net = NetworkState::new(config, 2);
        let client = net.client();
        net.transmit(client, 0, SimTime::ZERO);
        net.transmit(client, 1, SimTime::ZERO);

        let up = 2 * client; // client uplink id per the table layout
        let stats = net.stats();
        assert_eq!(stats.per_link.len(), net.topology().links().len());
        assert_eq!(stats.per_link[up].messages, 2);
        assert_eq!(
            stats.per_link[up].total_queue_delay,
            SimDuration::from_micros(1)
        );
        assert_eq!(
            stats.per_link[up].max_queue_delay,
            SimDuration::from_micros(1)
        );
        assert_eq!(stats.per_link[up].busy_time, SimDuration::from_micros(2));
        // Each server's down link carried one message with no queueing.
        for server in 0..2 {
            let down = 2 * server + 1;
            assert_eq!(stats.per_link[down].messages, 1);
            assert_eq!(stats.per_link[down].total_queue_delay, SimDuration::ZERO);
            assert_eq!(stats.per_link[down].busy_time, SimDuration::from_micros(1));
        }
        let (congested, link_stats) = stats.most_queued_link().expect("queueing occurred");
        assert_eq!(congested, up);
        assert_eq!(link_stats.total_queue_delay, SimDuration::from_micros(1));
        assert_eq!(net.topology().link_label(congested), "client-up");
    }

    #[test]
    fn link_labels_name_every_tier() {
        let topo = Topology::new(
            NetworkConfig::fat_tree(SimDuration::from_micros(1), 2, 2, 4.0),
            8,
        );
        assert_eq!(topo.link_label(0), "server0-up");
        assert_eq!(topo.link_label(7), "server3-down");
        assert_eq!(topo.link_label(2 * topo.client()), "client-up");
        assert_eq!(topo.link_label(topo.rack_up(1)), "rack1-up");
        assert_eq!(topo.link_label(topo.pod_down(1)), "pod1-down");
        let flat = Topology::new(NetworkConfig::ideal(), 2);
        assert_eq!(flat.link_label(flat.links().len() - 1), "client-down");
    }

    #[test]
    fn min_link_latency_is_the_lookahead_bound() {
        let lat = SimDuration::from_micros(3);
        for config in [
            NetworkConfig::flat(lat),
            NetworkConfig::two_tier(lat, 4),
            NetworkConfig::fat_tree(lat, 2, 2, 4.0).with_bandwidth(40_000),
        ] {
            assert_eq!(config.min_link_latency(), lat);
            let topo = Topology::new(config, 8);
            assert_eq!(topo.min_link_latency(), lat);
            // Every transmission takes at least the lookahead bound.
            let mut net = NetworkState::new(config, 8);
            let client = net.client();
            for dst in 0..8 {
                assert!(net.transmit(client, dst, SimTime::ZERO) >= lat);
                assert!(net.transmit(dst, client, SimTime::ZERO) >= lat);
            }
        }
        assert_eq!(NetworkConfig::ideal().min_link_latency(), SimDuration::ZERO);
    }

    #[test]
    fn topology_names_are_stable() {
        assert_eq!(NetworkConfig::ideal().topology.name(), "flat");
        assert_eq!(
            TopologyKind::TwoTier { rack_size: 4 }.to_string(),
            "two-tier"
        );
        assert_eq!(
            NetworkConfig::fat_tree(SimDuration::ZERO, 1, 1, 1.0)
                .topology
                .name(),
            "fat-tree"
        );
    }
}
