//! Property tests for deterministic topology path resolution.
//!
//! Hand-rolled fuzzing over a deterministic `SimRng` stream (the workspace
//! has no external property-testing dependency): each property is checked
//! across a few hundred randomly shaped topologies, including
//! non-power-of-two server counts, partially filled racks and partially
//! filled pods.

use apc_network::{NetworkConfig, Topology, MAX_PATH_LINKS};
use apc_sim::{SimDuration, SimRng};

/// Draws a random fuzzed config + server count. Index `case % 3` cycles the
/// topology kind so every kind gets equal coverage.
fn fuzz_case(rng: &mut SimRng, case: usize) -> (NetworkConfig, usize) {
    let servers = 1 + rng.index(40);
    let latency = SimDuration::from_nanos(rng.index(5_000) as u64);
    let rack_size = 1 + rng.index(9); // deliberately includes sizes like 3, 5, 7
    let racks_per_pod = 1 + rng.index(4);
    let oversubscription = [1.0, 2.0, 4.0][rng.index(3)];
    let mut config = match case % 3 {
        0 => NetworkConfig::flat(latency),
        1 => NetworkConfig::two_tier(latency, rack_size),
        _ => NetworkConfig::fat_tree(latency, rack_size, racks_per_pod, oversubscription),
    };
    if rng.chance(0.5) {
        config = config
            .with_bandwidth(1_000_000 + rng.next_u64() % 1_000_000_000)
            .with_rpc_bytes(rng.index(4096) as u64);
    }
    (config, servers)
}

#[test]
fn path_resolution_is_deterministic() {
    let mut rng = SimRng::from_seed(0xA11CE).fork("path-determinism");
    for case in 0..200 {
        let (config, servers) = fuzz_case(&mut rng, case);
        let a = Topology::new(config, servers);
        let b = Topology::new(config, servers); // independent build, same inputs
        for src in 0..a.endpoints() {
            for dst in 0..a.endpoints() {
                let p = a.path(src, dst);
                assert_eq!(p, a.path(src, dst), "same topology, same pair");
                assert_eq!(p, b.path(src, dst), "rebuilt topology, same pair");
            }
        }
    }
}

#[test]
fn paths_are_wellformed() {
    let mut rng = SimRng::from_seed(0xA11CE).fork("path-wellformed");
    for case in 0..200 {
        let (config, servers) = fuzz_case(&mut rng, case);
        let topo = Topology::new(config, servers);
        for src in 0..topo.endpoints() {
            for dst in 0..topo.endpoints() {
                let p = topo.path(src, dst);
                if src == dst {
                    assert!(p.is_empty(), "self path must be empty");
                    continue;
                }
                assert!(!p.is_empty());
                assert!(p.len() <= MAX_PATH_LINKS);
                // Every id indexes the link table, and no link repeats.
                let links = p.as_slice();
                for &l in links {
                    assert!(l < topo.links().len(), "link id {l} out of table");
                }
                for (i, &l) in links.iter().enumerate() {
                    assert!(!links[i + 1..].contains(&l), "loop-free path");
                }
            }
        }
    }
}

#[test]
fn paths_are_symmetric_mirrors() {
    let mut rng = SimRng::from_seed(0xA11CE).fork("path-symmetry");
    for case in 0..200 {
        let (config, servers) = fuzz_case(&mut rng, case);
        let topo = Topology::new(config, servers);
        for src in 0..topo.endpoints() {
            for dst in 0..topo.endpoints() {
                let fwd = topo.path(src, dst);
                let rev = topo.path(dst, src);
                assert_eq!(fwd.len(), rev.len(), "({src},{dst})");
                // The reverse path is the mirror: traversed backwards, each
                // link is the paired opposite direction (up ids are even,
                // down ids odd, pairs adjacent: mirror(l) = l ^ 1).
                for (&f, &r) in fwd.as_slice().iter().zip(rev.as_slice().iter().rev()) {
                    assert_eq!(f ^ 1, r, "({src},{dst}) link mirror");
                }
                // Uncontended flight time is therefore symmetric too.
                assert_eq!(
                    topo.flight_latency(src, dst),
                    topo.flight_latency(dst, src),
                    "({src},{dst}) latency symmetry"
                );
            }
        }
    }
}

#[test]
fn fat_tree_tiers_order_latency() {
    // With nonzero uniform link latency, deeper tier crossings cost strictly
    // more: same rack < same pod < inter-pod, and the client (core-attached)
    // endpoint sits between the pod and inter-pod cases.
    let topo = Topology::new(
        NetworkConfig::fat_tree(SimDuration::from_micros(1), 2, 2, 4.0),
        8,
    );
    let same_rack = topo.flight_latency(0, 1);
    let same_pod = topo.flight_latency(0, 2);
    let inter_pod = topo.flight_latency(0, 6);
    let to_client = topo.flight_latency(0, topo.client());
    assert!(same_rack < same_pod, "{same_rack} < {same_pod}");
    assert!(same_pod < inter_pod, "{same_pod} < {inter_pod}");
    assert_eq!(
        to_client, same_pod,
        "client attaches one tier above the pods"
    );
}

#[test]
fn flight_latency_satisfies_triangle_inequality() {
    // Tree routing yields a tree metric, so the triangle inequality must
    // hold for every endpoint triple on every fuzzed topology.
    let mut rng = SimRng::from_seed(0xA11CE).fork("triangle");
    for case in 0..60 {
        let (config, servers) = fuzz_case(&mut rng, case);
        let servers = servers.min(12); // keep the triple loop small
        let topo = Topology::new(config, servers);
        for a in 0..topo.endpoints() {
            for b in 0..topo.endpoints() {
                for c in 0..topo.endpoints() {
                    let direct = topo.flight_latency(a, c);
                    let via = topo.flight_latency(a, b) + topo.flight_latency(b, c);
                    assert!(
                        direct <= via,
                        "triangle violated: d({a},{c})={direct} > d({a},{b})+d({b},{c})={via}"
                    );
                }
            }
        }
    }
}

#[test]
fn non_power_of_two_racks_resolve_consistently() {
    // 7 servers in racks of 3: racks {0,1,2}, {3,4,5}, {6}. The trailing
    // partially-filled rack must behave exactly like a full one.
    let topo = Topology::new(NetworkConfig::two_tier(SimDuration::from_micros(1), 3), 7);
    assert_eq!(topo.rack_of(6), 2);
    assert_eq!(
        topo.path(6, 0).len(),
        4,
        "partial rack still crosses the agg"
    );
    assert_eq!(topo.path(6, topo.client()).len(), 3);

    // 10 servers, racks of 3, 2 racks per pod: 4 racks, pods {r0,r1},{r2,r3};
    // rack 3 and pod 1 are both partially filled.
    let ft = Topology::new(
        NetworkConfig::fat_tree(SimDuration::from_micros(1), 3, 2, 2.0),
        10,
    );
    assert_eq!(ft.rack_of(9), 3);
    assert_eq!(ft.pod_of(ft.rack_of(9)), 1);
    assert_eq!(ft.path(9, 0).len(), 6, "partial pod still crosses the core");
    assert_eq!(ft.path(9, 6).len(), 4, "same pod despite partial rack");
}
