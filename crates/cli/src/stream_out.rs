//! The `--stream-out` execution path: runs a spec through
//! [`ExecutionPlan::run_streamed`] and writes each result to disk the
//! moment it (and every earlier member) finishes.
//!
//! The artefact is byte-identical to `--out` with the same format — the
//! writers come from [`apc_analysis::stream`], whose contract is exactly
//! that — so streaming changes *when* bytes appear, never *which* bytes.
//! A consumer can `tail -f` the file and see complete rows (CSV) or
//! complete array elements (JSON) as the simulation progresses; memory
//! stays bounded by the in-flight results instead of the whole run set.
//! When the spec also records time series, `--timeseries-out` is streamed
//! the same way, one block per finished run.

use std::fs::File;
use std::io::{self, BufWriter, Write};

use apc_analysis::export::{
    chain_csv_header, chain_csv_row, chain_result_json, cluster_csv_header, cluster_csv_rows,
    cluster_result_json, run_csv_line, timeseries_csv, RUN_CSV_HEADER,
};
use apc_analysis::stream::{CsvWriter, JsonArrayWriter, JsonRunsWriter};
use apc_server::chain::ChainResult;
use apc_server::cluster::ClusterResult;
use apc_server::result::RunResult;

use crate::runner::{ExecutionPlan, Outcome, OutputFormat, StreamSink};
use crate::CliError;

/// A [`Write`] adapter that counts the bytes accepted, so the CLI can
/// report the streamed file's size without re-reading it.
struct CountingWriter {
    inner: BufWriter<File>,
    bytes: u64,
}

impl Write for CountingWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.bytes += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

fn create(path: &str) -> Result<CountingWriter, CliError> {
    let file =
        File::create(path).map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
    Ok(CountingWriter {
        inner: BufWriter::new(file),
        bytes: 0,
    })
}

/// The format-specific artefact writer behind the sink.
enum ArtifactWriter {
    RunsJson(JsonRunsWriter<CountingWriter>),
    ArrayJson(JsonArrayWriter<CountingWriter>),
    Csv(CsvWriter<CountingWriter>),
}

/// Incremental `--timeseries-out` writer: the same concatenation the
/// buffered [`Outcome::timeseries_csv`] produces (one header line tops the
/// file), flushed block by block.
struct TsStream {
    out: CountingWriter,
    path: String,
    any: bool,
}

impl TsStream {
    fn push(&mut self, label: &str, run: &RunResult) -> Result<(), CliError> {
        let Some(ts) = &run.timeseries else {
            return Ok(());
        };
        let block = timeseries_csv(label, ts);
        let text = if self.any {
            // Drop the repeated header; one header tops the file.
            block.split_once('\n').map_or("", |(_, rest)| rest)
        } else {
            &block
        };
        self.any = true;
        self.out
            .write_all(text.as_bytes())
            .and_then(|()| self.out.flush())
            .map_err(|e| CliError::Io(format!("cannot write `{}`: {e}", self.path)))
    }
}

/// The streaming sink: owns the artefact writer (and the optional
/// time-series stream) for the duration of the run.
struct Streamer {
    writer: ArtifactWriter,
    path: String,
    ts: Option<TsStream>,
    /// Repeat count of the plan, for the cluster/chain time-series labels
    /// (`node <i>` vs `repeat <r> node <i>` — the buffered convention).
    repeats: usize,
    /// Whether the spec declared a `[network]` table (fixes the CSV column
    /// set up front; every repeat of one spec shares it).
    with_network: bool,
}

impl Streamer {
    fn io_err(&self, e: &io::Error) -> CliError {
        CliError::Io(format!("cannot write `{}`: {e}", self.path))
    }

    fn node_rows_ts(&mut self, repeat: usize, runs: &[RunResult]) -> Result<(), CliError> {
        if self.ts.is_none() {
            return Ok(());
        }
        for (i, r) in runs.iter().enumerate() {
            let label = if self.repeats > 1 {
                format!("repeat {repeat} node {i}")
            } else {
                format!("node {i}")
            };
            if let Some(ts) = &mut self.ts {
                ts.push(&label, r)?;
            }
        }
        Ok(())
    }
}

impl StreamSink<CliError> for Streamer {
    fn on_run(&mut self, _index: usize, label: &str, run: &RunResult) -> Result<(), CliError> {
        match &mut self.writer {
            ArtifactWriter::RunsJson(w) => w.push(run),
            ArtifactWriter::Csv(w) => w.push(&run_csv_line(label, run)),
            ArtifactWriter::ArrayJson(_) => {
                unreachable!("run-level plans never stream a top-level array")
            }
        }
        .map_err(|e| self.io_err(&e))?;
        if let Some(ts) = &mut self.ts {
            ts.push(label, run)?;
        }
        Ok(())
    }

    fn on_cluster(&mut self, repeat: usize, result: &ClusterResult) -> Result<(), CliError> {
        match &mut self.writer {
            ArtifactWriter::ArrayJson(w) => w.push(&cluster_result_json(result)),
            ArtifactWriter::Csv(w) => w.push(&cluster_csv_rows(repeat, result, self.with_network)),
            ArtifactWriter::RunsJson(_) => {
                unreachable!("cluster plans never stream a fleet object")
            }
        }
        .map_err(|e| self.io_err(&e))?;
        self.node_rows_ts(repeat, &result.nodes.runs)
    }

    fn on_chain(&mut self, repeat: usize, result: &ChainResult) -> Result<(), CliError> {
        match &mut self.writer {
            ArtifactWriter::ArrayJson(w) => w.push(&chain_result_json(result)),
            ArtifactWriter::Csv(w) => w.push(&chain_csv_row(repeat, result, self.with_network)),
            ArtifactWriter::RunsJson(_) => {
                unreachable!("chain plans never stream a fleet object")
            }
        }
        .map_err(|e| self.io_err(&e))?;
        self.node_rows_ts(repeat, &result.nodes.runs)
    }
}

/// Executes `plan`, streaming the rendered artefact to `path` (and the
/// time series to `ts_path` when given). Returns the completed outcome
/// (for `--trace-out` and the table the caller may still want) and the
/// `wrote …` stdout lines.
///
/// The caller has already rejected `--format table` and validated the
/// flag set; `repeats` and `with_network` describe the spec (see
/// [`Streamer`]).
///
/// # Errors
///
/// Returns the first file-creation or write failure as [`CliError::Io`].
pub(crate) fn execute_plan_streamed(
    plan: ExecutionPlan,
    format: OutputFormat,
    path: &str,
    ts_path: Option<&str>,
    repeats: usize,
    with_network: bool,
) -> Result<(Outcome, String), CliError> {
    let out = create(path)?;
    let io_err = |e: &io::Error| CliError::Io(format!("cannot write `{path}`: {e}"));
    let writer = match (&plan, format) {
        (_, OutputFormat::Table) => unreachable!("the caller rejects `--format table`"),
        (ExecutionPlan::Fleet { .. }, OutputFormat::Json) => {
            ArtifactWriter::RunsJson(JsonRunsWriter::new(out).map_err(|e| io_err(&e))?)
        }
        (ExecutionPlan::Fleet { .. }, OutputFormat::Csv) => ArtifactWriter::Csv(
            CsvWriter::new(out, &format!("label,{RUN_CSV_HEADER}\n")).map_err(|e| io_err(&e))?,
        ),
        (ExecutionPlan::Cluster { .. } | ExecutionPlan::Chain { .. }, OutputFormat::Json) => {
            ArtifactWriter::ArrayJson(JsonArrayWriter::new(out))
        }
        (ExecutionPlan::Cluster { .. }, OutputFormat::Csv) => ArtifactWriter::Csv(
            CsvWriter::new(out, &cluster_csv_header(with_network)).map_err(|e| io_err(&e))?,
        ),
        (ExecutionPlan::Chain { .. }, OutputFormat::Csv) => ArtifactWriter::Csv(
            CsvWriter::new(out, &chain_csv_header(with_network)).map_err(|e| io_err(&e))?,
        ),
    };
    let ts = ts_path
        .map(|p| {
            Ok::<TsStream, CliError>(TsStream {
                out: create(p)?,
                path: p.to_owned(),
                any: false,
            })
        })
        .transpose()?;
    let mut sink = Streamer {
        writer,
        path: path.to_owned(),
        ts,
        repeats,
        with_network,
    };
    let outcome = plan.run_streamed(&mut sink)?;
    let finished = match (sink.writer, &outcome) {
        (ArtifactWriter::RunsJson(w), Outcome::Runs { labels, fleet, .. }) => {
            w.finish(fleet, Some(labels)).map_err(|e| io_err(&e))?
        }
        (ArtifactWriter::RunsJson(_), _) => unreachable!("fleet writer implies a runs outcome"),
        (ArtifactWriter::ArrayJson(w), _) => w.finish().map_err(|e| io_err(&e))?,
        (ArtifactWriter::Csv(w), _) => w.finish().map_err(|e| io_err(&e))?,
    };
    let mut stdout = format!("wrote {path} ({} bytes)\n", finished.bytes);
    if let Some(ts) = sink.ts {
        if !ts.any {
            return Err(CliError::Usage(
                "conflicting flags: `--timeseries-out` needs a spec with a [telemetry] table \
                 (no run recorded a time series)"
                    .to_owned(),
            ));
        }
        stdout.push_str(&format!("wrote {} ({} bytes)\n", ts.path, ts.out.bytes));
    }
    Ok((outcome, stdout))
}
