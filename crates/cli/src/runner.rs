//! Materialises parsed specs into fleet/cluster runs and formats results.
//!
//! Every execution path routes through the existing parallel pools:
//! single, fleet and sweep specs become one [`Fleet`] (one member per
//! run/grid-point), cluster specs become one [`ClusterFleet`] (one member
//! per repeat). The pools guarantee member-order, bit-identical results
//! regardless of worker count, which is what makes `--format json|csv`
//! output byte-identical between sequential and parallel execution.

use apc_analysis::export::{
    chain_result_json, chain_results_csv, cluster_result_json, cluster_results_csv,
    fleet_result_json, run_results_csv, timeseries_csv, JsonValue,
};
use apc_analysis::report::TextTable;
use apc_server::chain::{ChainFleet, ChainMember, ChainResult, RequestGraph};
use apc_server::cluster::{ClusterFleet, ClusterMember, ClusterResult};
use apc_server::config::ServerConfig;
use apc_server::fleet::{Fleet, FleetMember, FleetResult};
use apc_server::result::RunResult;
use apc_server::scenario::{TrafficPattern, WorkloadKind};
use apc_sim::SimDuration;
use apc_trace::TraceLog;
use apc_workloads::chain::TierService;

use crate::spec::{ExperimentSpec, PlatformKind, SpecKind};

/// The output format of a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OutputFormat {
    /// Human-readable fixed-width text (the default).
    #[default]
    Table,
    /// Deterministic pretty-printed JSON.
    Json,
    /// Deterministic CSV.
    Csv,
}

impl OutputFormat {
    /// Parses a `--format` spelling.
    #[must_use]
    pub fn parse(name: &str) -> Option<OutputFormat> {
        match name.to_ascii_lowercase().as_str() {
            "table" => Some(OutputFormat::Table),
            "json" => Some(OutputFormat::Json),
            "csv" => Some(OutputFormat::Csv),
            _ => None,
        }
    }
}

/// The outcome of executing a spec: labelled run results (single, fleet and
/// sweep kinds) or cluster results (one per repeat).
#[derive(Debug)]
pub enum Outcome {
    /// Run-level results with one display label per run.
    Runs {
        /// Experiment name (titles the table output).
        name: String,
        /// One label per member, in member order.
        labels: Vec<String>,
        /// The executed fleet.
        fleet: FleetResult,
    },
    /// Cluster results, one per repeat.
    Clusters {
        /// Experiment name (titles the table output).
        name: String,
        /// The executed clusters, in repeat order.
        results: Vec<ClusterResult>,
    },
    /// Chain results, one per repeat (or one per run of a comparison).
    Chains {
        /// Experiment name (titles the table output).
        name: String,
        /// The executed chain clusters, in repeat order.
        results: Vec<ChainResult>,
    },
}

/// The leaf-tier service spec a workload kind implies for chain
/// experiments: the same calibration as the workload's dominant request
/// class in the single-server mixes.
#[must_use]
pub fn leaf_service_for(workload: WorkloadKind) -> TierService {
    match workload {
        WorkloadKind::MemcachedEtc => TierService::memcached_leaf(),
        WorkloadKind::Kafka => TierService::kafka_leaf(),
        WorkloadKind::MysqlOltp => TierService::mysql_leaf(),
    }
}

/// Builds the [`RequestGraph`] a chain spec describes: a frontend tier
/// fanning out to `fanout` leaves of the workload's calibration, with
/// optional per-tier mean-service overrides.
#[must_use]
pub fn chain_graph(
    workload: WorkloadKind,
    fanout: usize,
    frontend_service: Option<SimDuration>,
    leaf_service: Option<SimDuration>,
) -> RequestGraph {
    let mut frontend = TierService::frontend();
    if let Some(mean) = frontend_service {
        frontend = frontend.with_mean_service(mean);
    }
    let mut leaf = leaf_service_for(workload);
    if let Some(mean) = leaf_service {
        leaf = leaf.with_mean_service(mean);
    }
    RequestGraph::fanout(frontend, leaf, fanout)
}

/// A materialised spec, ready to run: the built pool plus the display
/// metadata the [`Outcome`] needs. Splitting planning from execution is
/// what lets `--stream-out` pick its writer (by kind and format) *before*
/// the simulation starts, then observe results through
/// [`ExecutionPlan::run_streamed`] as they finish.
pub enum ExecutionPlan {
    /// Run-level plan (single, fleet and sweep specs): one [`Fleet`] member
    /// per run/grid-point.
    Fleet {
        /// Experiment name.
        name: String,
        /// One label per member, in member order.
        labels: Vec<String>,
        /// The built fleet.
        fleet: Fleet,
    },
    /// Cluster plan: one [`ClusterFleet`] member per repeat.
    Cluster {
        /// Experiment name.
        name: String,
        /// The built cluster fleet.
        fleet: ClusterFleet,
    },
    /// Chain plan: one [`ChainFleet`] member per repeat.
    Chain {
        /// Experiment name.
        name: String,
        /// The built chain fleet.
        fleet: ChainFleet,
    },
}

impl ExecutionPlan {
    /// Executes the plan to completion.
    #[must_use]
    pub fn run(self) -> Outcome {
        match self {
            ExecutionPlan::Fleet {
                name,
                labels,
                fleet,
            } => Outcome::Runs {
                name,
                labels,
                fleet: fleet.run(),
            },
            ExecutionPlan::Cluster { name, fleet } => Outcome::Clusters {
                name,
                results: fleet.run(),
            },
            ExecutionPlan::Chain { name, fleet } => Outcome::Chains {
                name,
                results: fleet.run(),
            },
        }
    }

    /// Executes the plan, handing each result to `sink` in member order as
    /// soon as it (and every earlier member) has finished — the in-order
    /// frontier of the parallel pool, so a sink writing a file produces the
    /// same bytes whatever the worker count. A sink error stops emission
    /// and is returned; the simulation results are discarded.
    ///
    /// # Errors
    ///
    /// Propagates the first sink error.
    pub fn run_streamed<E, S: StreamSink<E>>(self, sink: &mut S) -> Result<Outcome, E> {
        match self {
            ExecutionPlan::Fleet {
                name,
                labels,
                fleet,
            } => {
                let fleet = fleet.run_streamed(|i, r| sink.on_run(i, &labels[i], r))?;
                Ok(Outcome::Runs {
                    name,
                    labels,
                    fleet,
                })
            }
            ExecutionPlan::Cluster { name, fleet } => {
                let results = fleet.run_streamed(|i, c| sink.on_cluster(i, c))?;
                Ok(Outcome::Clusters { name, results })
            }
            ExecutionPlan::Chain { name, fleet } => {
                let results = fleet.run_streamed(|i, c| sink.on_chain(i, c))?;
                Ok(Outcome::Chains { name, results })
            }
        }
    }
}

/// Observer of streamed execution: one callback per outcome kind, invoked
/// in member order (see [`ExecutionPlan::run_streamed`]). A plan only ever
/// calls the callback matching its kind.
pub trait StreamSink<E> {
    /// One run-level result (single/fleet/sweep plans): member index, its
    /// display label and the finished run.
    fn on_run(&mut self, index: usize, label: &str, run: &RunResult) -> Result<(), E>;
    /// One cluster repeat.
    fn on_cluster(&mut self, repeat: usize, result: &ClusterResult) -> Result<(), E>;
    /// One chain repeat.
    fn on_chain(&mut self, repeat: usize, result: &ChainResult) -> Result<(), E>;
}

/// The full sweep grid of a sweep spec, in declaration order
/// (platform-major, then rates): one `(label, member)` per grid point.
/// Grid index `i` of the returned vector is the *global point index* the
/// sweep-shard checkpoints key on. `None` for non-sweep specs.
#[must_use]
pub fn sweep_grid(spec: &ExperimentSpec) -> Option<Vec<(String, FleetMember)>> {
    let SpecKind::Sweep { rates, platforms } = &spec.kind else {
        return None;
    };
    let mut grid = Vec::new();
    for &platform in platforms {
        for &rate in rates {
            let sweep_spec = ExperimentSpec {
                traffic: TrafficPattern::Constant { rate_per_sec: rate },
                ..spec.clone()
            };
            // Every grid point reuses the root seed: points differ
            // only along the declared axes, maximising comparability.
            grid.push((
                format!("{}@{rate}", platform.name()),
                spec_member(&sweep_spec, platform, spec.seed),
            ));
        }
    }
    Some(grid)
}

/// Materialises a parsed spec into an [`ExecutionPlan`]; `parallelism`
/// pins the worker pool (`None` falls back to the spec's own
/// `parallelism` knob, then the host). Single cluster/chain runs route the
/// budget *inside* the simulation — the conservative-lookahead partitioned
/// path — whenever the `[network]` topology admits it; results are
/// bit-identical either way.
#[must_use]
pub fn plan_spec(spec: &ExperimentSpec, parallelism: Option<usize>) -> ExecutionPlan {
    let parallelism = parallelism.or(spec.parallelism);
    match &spec.kind {
        SpecKind::Single => {
            let (labels, members) = (0..spec.repeats)
                .map(|i| {
                    let seed = repeat_seed(spec.seed, i, spec.repeats);
                    (format!("run {i}"), spec_member(spec, spec.platform, seed))
                })
                .unzip();
            plan_fleet(spec, labels, members, parallelism)
        }
        SpecKind::Fleet { servers } => {
            let (labels, members) = (0..*servers)
                .map(|i| {
                    let seed = Fleet::member_seed(spec.seed, i);
                    (
                        format!("server {i}"),
                        spec_member(spec, spec.platform, seed),
                    )
                })
                .unzip();
            plan_fleet(spec, labels, members, parallelism)
        }
        SpecKind::Sweep { .. } => {
            let (labels, members) = sweep_grid(spec)
                .expect("sweep kind has a grid")
                .into_iter()
                .unzip();
            plan_fleet(spec, labels, members, parallelism)
        }
        SpecKind::Cluster { nodes, policy } => {
            let mut cluster_fleet = ClusterFleet::new();
            for i in 0..spec.repeats {
                let seed = repeat_seed(spec.seed, i, spec.repeats);
                let base = spec
                    .platform
                    .config()
                    .with_duration(spec.duration)
                    .with_seed(seed);
                let base = match spec.timeseries_interval {
                    Some(every) => base.with_timeseries(every),
                    None => base,
                };
                let base = observe(base, spec);
                let rate = spec.traffic.mean_rate_per_sec();
                let mut member =
                    ClusterMember::homogeneous(&base, *nodes, *policy, spec.workload.spec(), rate);
                if let Some(net) = spec.network {
                    member = member.with_network(net);
                }
                cluster_fleet.push(member);
            }
            if let Some(workers) = parallelism {
                cluster_fleet = cluster_fleet.with_parallelism(workers);
            }
            ExecutionPlan::Cluster {
                name: spec.name.clone(),
                fleet: cluster_fleet,
            }
        }
        SpecKind::Chain {
            nodes,
            fanout,
            policy,
            frontend_service,
            leaf_service,
        } => {
            let graph = chain_graph(spec.workload, *fanout, *frontend_service, *leaf_service);
            let mut chain_fleet = ChainFleet::new();
            for i in 0..spec.repeats {
                let seed = repeat_seed(spec.seed, i, spec.repeats);
                let base = spec
                    .platform
                    .config()
                    .with_duration(spec.duration)
                    .with_seed(seed);
                let base = match spec.timeseries_interval {
                    Some(every) => base.with_timeseries(every),
                    None => base,
                };
                let base = observe(base, spec);
                let rate = spec.traffic.mean_rate_per_sec();
                let mut member =
                    ChainMember::homogeneous(&base, *nodes, *policy, graph.clone(), rate);
                if let Some(net) = spec.network {
                    member = member.with_network(net);
                }
                chain_fleet.push(member);
            }
            if let Some(workers) = parallelism {
                chain_fleet = chain_fleet.with_parallelism(workers);
            }
            ExecutionPlan::Chain {
                name: spec.name.clone(),
                fleet: chain_fleet,
            }
        }
    }
}

/// Executes a parsed spec end-to-end (see [`plan_spec`] for the
/// `parallelism` contract).
#[must_use]
pub fn execute_spec(spec: &ExperimentSpec, parallelism: Option<usize>) -> Outcome {
    plan_spec(spec, parallelism).run()
}

/// Applies the spec's observability knobs — `[trace]` and the `--profile`
/// flag — to a built server config. Neither perturbs the simulation: the
/// results stay bit-identical with or without them.
fn observe(mut config: ServerConfig, spec: &ExperimentSpec) -> ServerConfig {
    if let Some(trace) = spec.trace {
        config = config.with_trace(trace);
    }
    if spec.profile {
        config = config.with_profile();
    }
    config
}

/// The seed of repeat `i`: the root seed itself for a single run (matching
/// a direct `run_experiment`), else forked per repeat with the canonical
/// fleet scheme.
fn repeat_seed(root: u64, i: usize, repeats: usize) -> u64 {
    if repeats == 1 {
        root
    } else {
        Fleet::member_seed(root, i)
    }
}

/// Builds one fleet member for `spec` on `platform` under `seed`.
fn spec_member(spec: &ExperimentSpec, platform: PlatformKind, seed: u64) -> FleetMember {
    let config = platform
        .config()
        .with_duration(spec.duration)
        .with_seed(seed);
    let config = match spec.timeseries_interval {
        Some(every) => config.with_timeseries(every),
        None => config,
    };
    let config = observe(config, spec);
    let rate = spec.traffic.mean_rate_per_sec();
    let mut member = FleetMember::new(config, spec.workload.spec(), rate);
    if let Some(arrivals) = spec.traffic.arrival_process(spec.duration) {
        member = member.with_arrival_process(arrivals);
    }
    member
}

fn plan_fleet(
    spec: &ExperimentSpec,
    labels: Vec<String>,
    members: Vec<FleetMember>,
    parallelism: Option<usize>,
) -> ExecutionPlan {
    let mut fleet = Fleet::new();
    for member in members {
        fleet.push(member);
    }
    if let Some(workers) = parallelism {
        fleet = fleet.with_parallelism(workers);
    }
    ExecutionPlan::Fleet {
        name: spec.name.clone(),
        labels,
        fleet,
    }
}

impl Outcome {
    /// Renders the outcome in `format`.
    #[must_use]
    pub fn render(&self, format: OutputFormat) -> String {
        match (self, format) {
            (
                Outcome::Runs {
                    name,
                    labels,
                    fleet,
                },
                OutputFormat::Table,
            ) => runs_table(name, labels, &fleet.runs),
            // The JSON shape is a function of the outcome kind alone, never
            // of the result count: run-level outcomes are always a fleet
            // object (even for one run), clusters always an array (even for
            // one repeat) — consumers keep parsing when a count changes.
            (Outcome::Runs { labels, fleet, .. }, OutputFormat::Json) => {
                let mut o = fleet_result_json(fleet);
                o.push(
                    "labels",
                    JsonValue::Array(labels.iter().map(|l| JsonValue::Str(l.clone())).collect()),
                );
                o.to_pretty_string()
            }
            (Outcome::Runs { labels, fleet, .. }, OutputFormat::Csv) => run_results_csv(
                labels
                    .iter()
                    .map(String::as_str)
                    .zip(fleet.runs.iter())
                    .collect::<Vec<_>>(),
            ),
            (Outcome::Clusters { name, results }, OutputFormat::Table) => {
                let mut out = String::new();
                for (i, result) in results.iter().enumerate() {
                    if results.len() > 1 {
                        out.push_str(&format!("== {name} repeat {i} ==\n"));
                    } else {
                        out.push_str(&format!("== {name} ==\n"));
                    }
                    out.push_str(&format!("{result}\n"));
                }
                out
            }
            (Outcome::Clusters { results, .. }, OutputFormat::Json) => {
                JsonValue::Array(results.iter().map(cluster_result_json).collect())
                    .to_pretty_string()
            }
            (Outcome::Clusters { results, .. }, OutputFormat::Csv) => cluster_results_csv(results),
            (Outcome::Chains { name, results }, OutputFormat::Table) => {
                let mut out = String::new();
                for (i, result) in results.iter().enumerate() {
                    if results.len() > 1 {
                        out.push_str(&format!("== {name} repeat {i} ==\n"));
                    } else {
                        out.push_str(&format!("== {name} ==\n"));
                    }
                    out.push_str(&format!("{result}\n"));
                }
                out
            }
            (Outcome::Chains { results, .. }, OutputFormat::Json) => {
                JsonValue::Array(results.iter().map(chain_result_json).collect()).to_pretty_string()
            }
            (Outcome::Chains { results, .. }, OutputFormat::Csv) => chain_results_csv(results),
        }
    }

    /// The per-run results with their labels, for time-series extraction.
    #[must_use]
    pub fn labelled_runs(&self) -> Vec<(String, &RunResult)> {
        match self {
            Outcome::Runs { labels, fleet, .. } => {
                labels.iter().cloned().zip(fleet.runs.iter()).collect()
            }
            Outcome::Clusters { results, .. } => {
                cluster_node_rows(results.iter().map(|c| &c.nodes).collect())
            }
            Outcome::Chains { results, .. } => {
                cluster_node_rows(results.iter().map(|c| &c.nodes).collect())
            }
        }
    }

    /// Merges every collected request-span log into one (the first log's
    /// bound wins), or `None` when no run traced. Span `pid`s are node
    /// indices, so with `repeats > 1` the repeats share the node rows of
    /// the exported timeline — trace ids still tell them apart.
    #[must_use]
    pub fn merged_trace(&self) -> Option<TraceLog> {
        let logs: Vec<&TraceLog> = match self {
            Outcome::Runs { fleet, .. } => {
                fleet.runs.iter().filter_map(|r| r.trace.as_ref()).collect()
            }
            Outcome::Clusters { results, .. } => {
                results.iter().filter_map(|r| r.trace.as_ref()).collect()
            }
            Outcome::Chains { results, .. } => {
                results.iter().filter_map(|r| r.trace.as_ref()).collect()
            }
        };
        let (first, rest) = logs.split_first()?;
        let mut merged = (*first).clone();
        for log in rest {
            merged.absorb(log);
        }
        Some(merged)
    }

    /// Renders every recorded time series as one concatenated CSV, or
    /// `None` when no run recorded one.
    #[must_use]
    pub fn timeseries_csv(&self) -> Option<String> {
        let mut out = String::new();
        let mut any = false;
        for (label, run) in self.labelled_runs() {
            if let Some(ts) = &run.timeseries {
                let block = timeseries_csv(&label, ts);
                if any {
                    // Drop the repeated header; one header tops the file.
                    out.push_str(block.split_once('\n').map_or("", |(_, rest)| rest));
                } else {
                    out.push_str(&block);
                    any = true;
                }
            }
        }
        any.then_some(out)
    }
}

/// Labels the per-node runs of several cluster-shaped results (`node <i>`,
/// prefixed with the repeat when there is more than one result).
fn cluster_node_rows(fleets: Vec<&FleetResult>) -> Vec<(String, &RunResult)> {
    let mut rows = Vec::new();
    let repeats = fleets.len();
    for (repeat, fleet) in fleets.into_iter().enumerate() {
        for (i, r) in fleet.runs.iter().enumerate() {
            let label = if repeats > 1 {
                format!("repeat {repeat} node {i}")
            } else {
                format!("node {i}")
            };
            rows.push((label, r));
        }
    }
    rows
}

fn runs_table(name: &str, labels: &[String], runs: &[RunResult]) -> String {
    let mut table = TextTable::new(
        name,
        &[
            "run",
            "config",
            "workload",
            "rate",
            "throughput",
            "power W",
            "mean",
            "p99",
            "p999",
            "PC1A %",
            "idle 20-200us %",
        ],
    );
    for (label, r) in labels.iter().zip(runs) {
        table.add_row(&[
            label.clone(),
            r.config_name.to_owned(),
            r.workload.to_owned(),
            format!("{:.0}", r.offered_rate),
            format!("{:.0}", r.throughput()),
            format!("{:.2}", r.avg_total_power().as_f64()),
            format!("{}", r.latency.mean),
            format!("{}", r.latency.p99),
            format!("{}", r.latency.p999),
            format!("{:.1}", r.pc1a_residency * 100.0),
            format!("{:.1}", r.idle_periods_20_200us * 100.0),
        ]);
    }
    table.render()
}
