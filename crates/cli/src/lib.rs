//! # `apc-cli` — the experiment runner
//!
//! Declarative spec files in, machine-readable results out: every figure of
//! the paper is an experiment sweep (platform × workload × load →
//! power/latency/residency), and this binary runs such sweeps without a
//! recompile per scenario.
//!
//! ```text
//! apc-cli list                                # named scenario libraries
//! apc-cli run examples/specs/smoke.toml       # run a spec file
//! apc-cli run cluster-8-mid --format json     # run a named scenario
//! apc-cli sweep examples/specs/low_load_sweep.toml --format csv --out sweep.csv
//! apc-cli cluster cluster-8-trough --policy power-aware
//! apc-cli validate out.json                   # round-trip the JSON export
//! ```
//!
//! Subcommands: `list` (the built-in scenario and cluster-scenario
//! libraries), `run` (a spec file or a named scenario), `sweep` (a spec
//! with a `[sweep]` table: cartesian rates × platforms), `cluster` (a
//! cluster spec or named cluster scenario) and `validate` (parse a JSON
//! export with the bundled parser).
//!
//! All execution goes through the `apc-server` parallel pools, so results
//! are bit-identical whatever `--parallelism` says, and the JSON/CSV
//! exporters are deterministic — identical seeds yield byte-identical
//! output files.

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod checkpoint;
pub mod runner;
pub mod spec;
mod stream_out;

use std::fmt;

use apc_analysis::export::{chrome_trace_json, csv_escape, JsonValue};
use apc_analysis::report::TextTable;
use apc_server::balancer::RoutingPolicyKind;
use apc_server::fleet::Fleet;
use apc_server::scenario::{ChainScenario, ClusterScenario, Scenario};
use apc_sim::SimDuration;

use crate::checkpoint::{merge_checkpoints, Checkpoint, CheckpointPoint};
use crate::runner::{execute_spec, plan_spec, sweep_grid, Outcome, OutputFormat};
use crate::spec::{parse_policy, ExperimentSpec, PlatformKind, SpecKind};

/// A CLI failure: what went wrong and which exit code it maps to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CliError {
    /// Bad invocation: unknown subcommand/flag, conflicting or duplicate
    /// flags, missing arguments. Exit code 2.
    Usage(String),
    /// A spec or input file failed to parse or validate. Exit code 1.
    Input(String),
    /// Reading or writing a file failed. Exit code 1.
    Io(String),
}

impl CliError {
    /// The process exit code this error maps to.
    #[must_use]
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Input(_) | CliError::Io(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}\n\n{USAGE}"),
            CliError::Input(m) | CliError::Io(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for CliError {}

/// The one-screen usage text.
pub const USAGE: &str = "\
usage: apc-cli <command> [options]

commands:
  list                      the named scenario / cluster / chain libraries
  run <spec|name>           run a spec file or a named scenario
                            (fleet, cluster or fan-out chain)
  sweep <spec>              run a spec's [sweep] grid (rates x platforms)
  merge <checkpoint...>     combine `sweep --shard` checkpoints (one per
                            shard) into the unsharded sweep output
  cluster <spec|name>       run a cluster spec or named cluster scenario
  validate <file.json>      parse a JSON export (round-trip check)

options:
  --format table|json|csv   output format (default table)
  --out <path>              write the output to a file instead of stdout
  --stream-out <path>       write json/csv output to a file incrementally,
                            flushing each result as it finishes — the final
                            file is byte-identical to --out (spec files)
  --shard <i/n>             with `sweep --out <path>`: run only grid points
                            with index ≡ i (mod n) and write a checkpoint
                            for `merge` instead of results
  --timeseries-out <path>   write recorded time series as CSV to a file
  --trace-out <path>        write sampled request spans as Chrome trace
                            JSON (needs a spec with a [trace] table)
  --profile                 attach the engine self-profiler report to the
                            results (spec files only; shown in JSON output)
  --platform <name>         cshallow|cdeep|cpc1a (named scenarios; default cpc1a)
  --policy <name>           random|round-robin|jsq|power-aware
                            (cluster and chain scenarios)
  --duration-ms <n>         override the simulated duration
  --seed <n>                override the root seed
  --parallelism <n>         pin the worker count (default: host cores; wins
                            over a spec's `parallelism` key). A single
                            cluster/chain run with a nonzero-latency
                            [network] partitions across the workers";

/// Runs the CLI on `args` (the program name already stripped), returning
/// the text to print on stdout.
///
/// # Errors
///
/// Returns a [`CliError`] describing the failure; the caller maps it to an
/// exit code via [`CliError::exit_code`].
pub fn execute(args: &[String]) -> Result<String, CliError> {
    let (command, rest) = args
        .split_first()
        .ok_or_else(|| CliError::Usage("missing command".to_owned()))?;
    match command.as_str() {
        "list" => cmd_list(&Invocation::parse(rest, &["format"], 0)?),
        "run" => cmd_run(&Invocation::parse(
            rest,
            &[
                "format",
                "out",
                "stream-out",
                "timeseries-out",
                "trace-out",
                "profile",
                "platform",
                "policy",
                "duration-ms",
                "seed",
                "parallelism",
            ],
            1,
        )?),
        "sweep" => cmd_sweep(&Invocation::parse(
            rest,
            &[
                "format",
                "out",
                "stream-out",
                "shard",
                "timeseries-out",
                "profile",
                "duration-ms",
                "seed",
                "parallelism",
            ],
            1,
        )?),
        "merge" => cmd_merge(&Invocation::parse_at_least(
            rest,
            &["format", "out", "timeseries-out"],
            1,
        )?),
        "cluster" => cmd_cluster(&Invocation::parse(
            rest,
            &[
                "format",
                "out",
                "stream-out",
                "timeseries-out",
                "trace-out",
                "profile",
                "platform",
                "policy",
                "duration-ms",
                "seed",
                "parallelism",
            ],
            1,
        )?),
        "validate" => cmd_validate(&Invocation::parse(rest, &[], 1)?),
        "--help" | "-h" | "help" => Ok(format!("{USAGE}\n")),
        other => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

/// A parsed invocation: positional arguments plus `--flag value` options.
struct Invocation {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Invocation {
    /// Parses `args`, accepting only `allowed` flags. Duplicate flags,
    /// unknown flags and missing values are usage errors; arity is the
    /// caller's to check (see [`Invocation::parse`]).
    fn parse_free(args: &[String], allowed: &[&str]) -> Result<Self, CliError> {
        // Boolean switches never consume a value; everything else does.
        const SWITCHES: [&str; 1] = ["profile"];
        let mut inv = Invocation {
            positional: Vec::new(),
            flags: Vec::new(),
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if !allowed.contains(&name) {
                    return Err(CliError::Usage(format!(
                        "unknown or inapplicable flag `--{name}`"
                    )));
                }
                if inv.flags.iter().any(|(k, _)| k == name) {
                    return Err(CliError::Usage(format!(
                        "conflicting flags: `--{name}` given twice"
                    )));
                }
                if SWITCHES.contains(&name) {
                    inv.flags.push((name.to_owned(), String::new()));
                    continue;
                }
                let value = iter
                    .next()
                    .ok_or_else(|| CliError::Usage(format!("`--{name}` needs a value")))?;
                inv.flags.push((name.to_owned(), value.clone()));
            } else {
                inv.positional.push(arg.clone());
            }
        }
        Ok(inv)
    }

    /// Parses `args` with exactly `positional` positional arguments.
    fn parse(args: &[String], allowed: &[&str], positional: usize) -> Result<Self, CliError> {
        let inv = Self::parse_free(args, allowed)?;
        if inv.positional.len() != positional {
            return Err(CliError::Usage(format!(
                "expected {positional} positional argument(s), got {}",
                inv.positional.len()
            )));
        }
        Ok(inv)
    }

    /// Parses `args` with at least `min` positional arguments (the `merge`
    /// command takes one checkpoint per shard).
    fn parse_at_least(args: &[String], allowed: &[&str], min: usize) -> Result<Self, CliError> {
        let inv = Self::parse_free(args, allowed)?;
        if inv.positional.len() < min {
            return Err(CliError::Usage(format!(
                "expected at least {min} positional argument(s), got {}",
                inv.positional.len()
            )));
        }
        Ok(inv)
    }

    fn flag(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// True when the boolean switch `name` was given.
    fn switch(&self, name: &str) -> bool {
        self.flag(name).is_some()
    }

    fn format(&self) -> Result<OutputFormat, CliError> {
        match self.flag("format") {
            None => Ok(OutputFormat::default()),
            Some(name) => OutputFormat::parse(name).ok_or_else(|| {
                CliError::Usage(format!("unknown format `{name}` (table|json|csv)"))
            }),
        }
    }

    fn platform(&self) -> Result<Option<PlatformKind>, CliError> {
        match self.flag("platform") {
            None => Ok(None),
            Some(name) => PlatformKind::parse(name).map(Some).ok_or_else(|| {
                CliError::Usage(format!("unknown platform `{name}` (cshallow|cdeep|cpc1a)"))
            }),
        }
    }

    fn policy(&self) -> Result<Option<RoutingPolicyKind>, CliError> {
        match self.flag("policy") {
            None => Ok(None),
            Some(name) => parse_policy(name).map(Some).ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown policy `{name}` (random|round-robin|jsq|power-aware)"
                ))
            }),
        }
    }

    fn u64_flag(&self, name: &str) -> Result<Option<u64>, CliError> {
        match self.flag(name) {
            None => Ok(None),
            Some(v) => v.parse::<u64>().map(Some).map_err(|_| {
                CliError::Usage(format!(
                    "`--{name}` must be a non-negative integer, got `{v}`"
                ))
            }),
        }
    }

    fn parallelism(&self) -> Result<Option<usize>, CliError> {
        match self.u64_flag("parallelism")? {
            None => Ok(None),
            Some(0) => Err(CliError::Usage(
                "`--parallelism` must be at least 1".to_owned(),
            )),
            Some(n) => Ok(Some(n as usize)),
        }
    }

    fn duration(&self) -> Result<Option<SimDuration>, CliError> {
        match self.u64_flag("duration-ms")? {
            None => Ok(None),
            Some(0) => Err(CliError::Usage(
                "`--duration-ms` must be at least 1".to_owned(),
            )),
            Some(ms) => Ok(Some(SimDuration::from_millis(ms))),
        }
    }
}

/// How a `run`/`cluster` target resolves.
enum Target {
    Spec(ExperimentSpec),
    Scenario(Scenario),
    ClusterScenario(ClusterScenario),
    ChainScenario(ChainScenario),
}

/// Resolves a positional target: a readable file parses as a spec; anything
/// else must name a library (cluster-/chain-)scenario.
fn resolve_target(arg: &str) -> Result<Target, CliError> {
    let looks_like_path = arg.contains('/')
        || arg.contains('\\')
        || arg.ends_with(".toml")
        || std::path::Path::new(arg).exists();
    if looks_like_path {
        let text = std::fs::read_to_string(arg)
            .map_err(|e| CliError::Io(format!("cannot read spec `{arg}`: {e}")))?;
        let spec = ExperimentSpec::parse(&text).map_err(|e| {
            let message = format!("{arg}: {e}");
            // Usage-flagged spec errors ([network] table mistakes) map to
            // the usage exit code, like a bad flag would.
            if e.usage {
                CliError::Usage(message)
            } else {
                CliError::Input(message)
            }
        })?;
        return Ok(Target::Spec(spec));
    }
    if let Some(s) = Scenario::library().into_iter().find(|s| s.name == arg) {
        return Ok(Target::Scenario(s));
    }
    if let Some(s) = ClusterScenario::library()
        .into_iter()
        .find(|s| s.name == arg)
    {
        return Ok(Target::ClusterScenario(s));
    }
    if let Some(s) = ChainScenario::library().into_iter().find(|s| s.name == arg) {
        return Ok(Target::ChainScenario(s));
    }
    let known: Vec<&str> = Scenario::library()
        .iter()
        .map(|s| s.name)
        .chain(ClusterScenario::library().iter().map(|s| s.name))
        .chain(ChainScenario::library().iter().map(|s| s.name))
        .collect();
    Err(CliError::Input(format!(
        "unknown scenario `{arg}` (not a spec file; known scenarios: {})",
        known.join(", ")
    )))
}

/// Converts a named fleet scenario into a runnable spec-shaped outcome.
fn run_scenario(
    scenario: &Scenario,
    platform: PlatformKind,
    duration: Option<SimDuration>,
    seed: Option<u64>,
    parallelism: Option<usize>,
) -> Outcome {
    let mut scenario = scenario.clone();
    if let Some(d) = duration {
        scenario = scenario.with_duration(d);
    }
    if let Some(s) = seed {
        scenario = scenario.with_seed(s);
    }
    let mut fleet = scenario.build_fleet(&platform.config());
    if let Some(workers) = parallelism {
        fleet = fleet.with_parallelism(workers);
    }
    let labels = (0..scenario.servers())
        .map(|i| format!("server {i}"))
        .collect();
    Outcome::Runs {
        name: format!("{} ({})", scenario.name, platform.name()),
        labels,
        fleet: fleet.run(),
    }
}

fn run_chain_scenario(
    scenario: &ChainScenario,
    platform: PlatformKind,
    policy: RoutingPolicyKind,
    duration: Option<SimDuration>,
    seed: Option<u64>,
    parallelism: Option<usize>,
) -> Outcome {
    let mut scenario = scenario.clone();
    if let Some(d) = duration {
        scenario = scenario.with_duration(d);
    }
    if let Some(s) = seed {
        scenario = scenario.with_seed(s);
    }
    // Route through the ChainFleet pool like the spec path does, so
    // `--parallelism` means the same thing everywhere.
    let base = platform
        .config()
        .with_duration(scenario.duration)
        .with_seed(scenario.seed);
    let mut fleet = apc_server::chain::ChainFleet::new();
    fleet.push(apc_server::chain::ChainMember::homogeneous(
        &base,
        scenario.nodes,
        policy,
        scenario.graph.clone(),
        scenario.chains_per_sec,
    ));
    if let Some(workers) = parallelism {
        fleet = fleet.with_parallelism(workers);
    }
    Outcome::Chains {
        name: format!("{} ({}, {})", scenario.name, platform.name(), policy.name()),
        results: fleet.run(),
    }
}

fn run_cluster_scenario(
    scenario: &ClusterScenario,
    platform: PlatformKind,
    policy: RoutingPolicyKind,
    duration: Option<SimDuration>,
    seed: Option<u64>,
    parallelism: Option<usize>,
) -> Outcome {
    let mut scenario = scenario.clone();
    if let Some(d) = duration {
        scenario = scenario.with_duration(d);
    }
    if let Some(s) = seed {
        scenario = scenario.with_seed(s);
    }
    // Route through the ClusterFleet pool like the spec path does, so
    // `--parallelism` means the same thing everywhere (the pool clamps to
    // the job count — one cluster runs on one worker either way).
    let base = platform
        .config()
        .with_duration(scenario.duration)
        .with_seed(scenario.seed);
    let mut fleet = apc_server::cluster::ClusterFleet::new();
    fleet.push(apc_server::cluster::ClusterMember::homogeneous(
        &base,
        scenario.nodes,
        policy,
        scenario.workload.spec(),
        scenario.total_rate_per_sec,
    ));
    if let Some(workers) = parallelism {
        fleet = fleet.with_parallelism(workers);
    }
    Outcome::Clusters {
        name: format!("{} ({}, {})", scenario.name, platform.name(), policy.name()),
        results: fleet.run(),
    }
}

/// Rejects `--timeseries-out` up front when nothing will record a series —
/// before the (possibly long) simulation runs and before `--out` is
/// written, so a usage error never leaves partial outputs behind.
fn check_timeseries_flag(inv: &Invocation, series_enabled: bool) -> Result<(), CliError> {
    if inv.flag("timeseries-out").is_some() && !series_enabled {
        return Err(CliError::Usage(
            "conflicting flags: `--timeseries-out` needs a spec with a [telemetry] table \
             (named library scenarios never record a time series)"
                .to_owned(),
        ));
    }
    Ok(())
}

/// Rejects `--trace-out` / `--profile` up front when they cannot apply —
/// before the (possibly long) simulation runs and before `--out` is
/// written, same stance as [`check_timeseries_flag`].
fn check_observability_flags(
    inv: &Invocation,
    trace_enabled: bool,
    spec_target: bool,
) -> Result<(), CliError> {
    if inv.flag("trace-out").is_some() && !trace_enabled {
        return Err(CliError::Usage(
            "conflicting flags: `--trace-out` needs a spec with a [trace] table \
             (named library scenarios never record request spans)"
                .to_owned(),
        ));
    }
    if inv.switch("profile") && !spec_target {
        return Err(CliError::Usage(
            "conflicting flags: `--profile` applies to spec files \
             (named library scenarios run without the self-profiler)"
                .to_owned(),
        ));
    }
    if inv.flag("stream-out").is_some() && !spec_target {
        return Err(CliError::Usage(
            "conflicting flags: `--stream-out` applies to spec files \
             (named library scenarios render their output whole; use `--out`)"
                .to_owned(),
        ));
    }
    Ok(())
}

/// Resolves `--stream-out`: `Some((path, format))` when incremental output
/// was requested, after rejecting the combinations it cannot serve. Tables
/// need the whole result set for column widths, so streaming is json/csv
/// only; `--out` would write the same artefact twice.
fn stream_request(inv: &Invocation) -> Result<Option<(&str, OutputFormat)>, CliError> {
    let Some(path) = inv.flag("stream-out") else {
        return Ok(None);
    };
    if inv.flag("out").is_some() {
        return Err(CliError::Usage(
            "conflicting flags: `--stream-out` and `--out` write the same artefact; give one"
                .to_owned(),
        ));
    }
    let format = inv.format()?;
    if format == OutputFormat::Table {
        return Err(CliError::Usage(
            "conflicting flags: `--stream-out` needs `--format json` or `--format csv` \
             (tables are rendered whole)"
                .to_owned(),
        ));
    }
    Ok(Some((path, format)))
}

/// The `--stream-out` execution path for a spec target: plans the spec,
/// streams the artefact (and any `--timeseries-out`) while it runs, then
/// honours `--trace-out` on the completed outcome.
fn finish_streamed(
    inv: &Invocation,
    spec: &ExperimentSpec,
    path: &str,
    format: OutputFormat,
) -> Result<String, CliError> {
    let plan = plan_spec(spec, inv.parallelism()?);
    let (outcome, mut stdout) = stream_out::execute_plan_streamed(
        plan,
        format,
        path,
        inv.flag("timeseries-out"),
        spec.repeats,
        spec.network.is_some(),
    )?;
    write_trace_out(inv, &outcome, &mut stdout)?;
    Ok(stdout)
}

/// The deduplicated `+`-joined workload names of a fleet scenario.
fn scenario_workloads(s: &Scenario) -> String {
    let mut workloads: Vec<&str> = s.groups.iter().map(|g| g.workload.name()).collect();
    workloads.dedup();
    workloads.join("+")
}

fn cmd_list(inv: &Invocation) -> Result<String, CliError> {
    match inv.format()? {
        OutputFormat::Table => {
            let mut table = TextTable::new(
                "scenario libraries",
                &["name", "kind", "servers", "workloads", "description"],
            );
            for s in Scenario::library() {
                table.add_row(&[
                    s.name.to_owned(),
                    "fleet".to_owned(),
                    s.servers().to_string(),
                    scenario_workloads(&s),
                    s.description.to_owned(),
                ]);
            }
            for s in ClusterScenario::library() {
                table.add_row(&[
                    s.name.to_owned(),
                    "cluster".to_owned(),
                    s.nodes.to_string(),
                    s.workload.name().to_owned(),
                    s.description.to_owned(),
                ]);
            }
            for s in ChainScenario::library() {
                table.add_row(&[
                    s.name.to_owned(),
                    "chain".to_owned(),
                    s.nodes.to_string(),
                    s.graph.describe(),
                    s.description.to_owned(),
                ]);
            }
            Ok(table.render())
        }
        OutputFormat::Json => {
            let mut items = Vec::new();
            for s in Scenario::library() {
                let mut o = JsonValue::object();
                o.push("name", JsonValue::Str(s.name.to_owned()))
                    .push("kind", JsonValue::Str("fleet".to_owned()))
                    .push("servers", JsonValue::UInt(s.servers() as u64))
                    .push("workloads", JsonValue::Str(scenario_workloads(&s)))
                    .push("description", JsonValue::Str(s.description.to_owned()));
                items.push(o);
            }
            for s in ClusterScenario::library() {
                let mut o = JsonValue::object();
                o.push("name", JsonValue::Str(s.name.to_owned()))
                    .push("kind", JsonValue::Str("cluster".to_owned()))
                    .push("servers", JsonValue::UInt(s.nodes as u64))
                    .push("workloads", JsonValue::Str(s.workload.name().to_owned()))
                    .push("description", JsonValue::Str(s.description.to_owned()));
                items.push(o);
            }
            for s in ChainScenario::library() {
                let mut o = JsonValue::object();
                o.push("name", JsonValue::Str(s.name.to_owned()))
                    .push("kind", JsonValue::Str("chain".to_owned()))
                    .push("servers", JsonValue::UInt(s.nodes as u64))
                    .push("workloads", JsonValue::Str(s.graph.describe()))
                    .push("description", JsonValue::Str(s.description.to_owned()));
                items.push(o);
            }
            Ok(JsonValue::Array(items).to_pretty_string())
        }
        OutputFormat::Csv => {
            let mut out = String::from("name,kind,servers,workloads,description\n");
            for s in Scenario::library() {
                out.push_str(&format!(
                    "{},fleet,{},{},{}\n",
                    csv_escape(s.name),
                    s.servers(),
                    csv_escape(&scenario_workloads(&s)),
                    csv_escape(s.description)
                ));
            }
            for s in ClusterScenario::library() {
                out.push_str(&format!(
                    "{},cluster,{},{},{}\n",
                    csv_escape(s.name),
                    s.nodes,
                    csv_escape(s.workload.name()),
                    csv_escape(s.description)
                ));
            }
            for s in ChainScenario::library() {
                out.push_str(&format!(
                    "{},chain,{},{},{}\n",
                    csv_escape(s.name),
                    s.nodes,
                    csv_escape(&s.graph.describe()),
                    csv_escape(s.description)
                ));
            }
            Ok(out)
        }
    }
}

fn cmd_run(inv: &Invocation) -> Result<String, CliError> {
    let target = resolve_target(&inv.positional[0])?;
    let outcome = match &target {
        Target::Spec(spec) => {
            if inv.flag("platform").is_some() {
                return Err(CliError::Usage(
                    "conflicting flags: `--platform` applies to named scenarios; \
                     spec files declare their platform in [platform]"
                        .to_owned(),
                ));
            }
            if inv.flag("policy").is_some() {
                return Err(CliError::Usage(
                    "conflicting flags: `--policy` applies to named cluster/chain scenarios; \
                     spec files declare their policy in [cluster]/[chain]"
                        .to_owned(),
                ));
            }
            check_timeseries_flag(inv, spec.timeseries_interval.is_some())?;
            check_observability_flags(inv, spec.trace.is_some(), true)?;
            let spec = override_spec(spec, inv)?;
            if let Some((path, format)) = stream_request(inv)? {
                return finish_streamed(inv, &spec, path, format);
            }
            execute_spec(&spec, inv.parallelism()?)
        }
        Target::Scenario(s) => {
            if inv.flag("policy").is_some() {
                return Err(CliError::Usage(format!(
                    "conflicting flags: `--policy` does not apply to fleet scenario `{}`",
                    s.name
                )));
            }
            check_timeseries_flag(inv, false)?;
            check_observability_flags(inv, false, false)?;
            run_scenario(
                s,
                inv.platform()?.unwrap_or(PlatformKind::Cpc1a),
                inv.duration()?,
                inv.u64_flag("seed")?,
                inv.parallelism()?,
            )
        }
        Target::ClusterScenario(s) => {
            check_timeseries_flag(inv, false)?;
            check_observability_flags(inv, false, false)?;
            run_cluster_scenario(
                s,
                inv.platform()?.unwrap_or(PlatformKind::Cpc1a),
                inv.policy()?.unwrap_or(RoutingPolicyKind::PowerAware),
                inv.duration()?,
                inv.u64_flag("seed")?,
                inv.parallelism()?,
            )
        }
        Target::ChainScenario(s) => {
            check_timeseries_flag(inv, false)?;
            check_observability_flags(inv, false, false)?;
            run_chain_scenario(
                s,
                inv.platform()?.unwrap_or(PlatformKind::Cpc1a),
                inv.policy()?
                    .unwrap_or(RoutingPolicyKind::JoinShortestQueue),
                inv.duration()?,
                inv.u64_flag("seed")?,
                inv.parallelism()?,
            )
        }
    };
    finish(inv, &outcome)
}

fn cmd_sweep(inv: &Invocation) -> Result<String, CliError> {
    let target = resolve_target(&inv.positional[0])?;
    let Target::Spec(spec) = target else {
        return Err(CliError::Usage(
            "`sweep` needs a spec file with a [sweep] table".to_owned(),
        ));
    };
    if !matches!(spec.kind, SpecKind::Sweep { .. }) {
        return Err(CliError::Input(format!(
            "`{}` is not a sweep spec (kind = \"sweep\" with a [sweep] table)",
            inv.positional[0]
        )));
    }
    if let Some(shard) = inv.flag("shard") {
        return cmd_sweep_shard(inv, &spec, shard);
    }
    check_timeseries_flag(inv, spec.timeseries_interval.is_some())?;
    check_observability_flags(inv, spec.trace.is_some(), true)?;
    let spec = override_spec(&spec, inv)?;
    if let Some((path, format)) = stream_request(inv)? {
        return finish_streamed(inv, &spec, path, format);
    }
    let outcome = execute_spec(&spec, inv.parallelism()?);
    finish(inv, &outcome)
}

/// Parses a `--shard i/n` spelling.
fn parse_shard(s: &str) -> Result<(usize, usize), CliError> {
    let err = || {
        CliError::Usage(format!(
            "`--shard` must be `i/n` with 0 <= i < n, got `{s}`"
        ))
    };
    let (i, n) = s.split_once('/').ok_or_else(err)?;
    let i: usize = i.parse().map_err(|_| err())?;
    let n: usize = n.parse().map_err(|_| err())?;
    if n == 0 || i >= n {
        return Err(err());
    }
    Ok((i, n))
}

/// The `sweep --shard i/n` path: runs only the grid points whose global
/// index is congruent to `i` modulo `n`, and writes a [`Checkpoint`] to
/// `--out` for `merge` to recombine — not rendered results, which is why
/// the result-shaping flags conflict with `--shard`.
fn cmd_sweep_shard(
    inv: &Invocation,
    spec: &ExperimentSpec,
    shard: &str,
) -> Result<String, CliError> {
    let (i, n) = parse_shard(shard)?;
    for flag in ["format", "stream-out", "timeseries-out", "profile"] {
        if inv.flag(flag).is_some() {
            return Err(CliError::Usage(format!(
                "conflicting flags: `--shard` writes a checkpoint, not results; \
                 `--{flag}` does not apply (give it to `merge` instead)"
            )));
        }
    }
    let Some(out_path) = inv.flag("out") else {
        return Err(CliError::Usage(
            "`--shard` needs `--out <path>` for the checkpoint".to_owned(),
        ));
    };
    let spec = override_spec(spec, inv)?;
    let grid = sweep_grid(&spec).expect("checked above: sweep kind");
    let total_points = grid.len();
    let mut points_meta = Vec::new();
    let mut fleet = Fleet::new();
    for (index, (label, member)) in grid.into_iter().enumerate() {
        if index % n != i {
            continue;
        }
        points_meta.push((index, label));
        fleet.push(member);
    }
    if let Some(workers) = inv.parallelism()?.or(spec.parallelism) {
        fleet = fleet.with_parallelism(workers);
    }
    let result = fleet.run();
    let points = points_meta
        .into_iter()
        .zip(result.runs)
        .map(|((index, label), run)| CheckpointPoint { index, label, run })
        .collect();
    let ck = Checkpoint {
        spec_name: spec.name.clone(),
        shard: i,
        of: n,
        total_points,
        seed: spec.seed,
        duration: spec.duration,
        points,
    };
    let text = ck.to_json().to_pretty_string();
    std::fs::write(out_path, &text)
        .map_err(|e| CliError::Io(format!("cannot write `{out_path}`: {e}")))?;
    Ok(format!("wrote {out_path} ({} bytes)\n", text.len()))
}

/// The `merge` command: parses one checkpoint per shard and renders the
/// recombined sweep exactly as an unsharded run would have.
fn cmd_merge(inv: &Invocation) -> Result<String, CliError> {
    let mut shards = Vec::new();
    for path in &inv.positional {
        let text = std::fs::read_to_string(path)
            .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
        let value = JsonValue::parse(&text).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
        let ck =
            Checkpoint::from_json(&value).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
        shards.push(ck);
    }
    let (name, labels, fleet) = merge_checkpoints(shards).map_err(CliError::Input)?;
    let outcome = Outcome::Runs {
        name,
        labels,
        fleet,
    };
    finish(inv, &outcome)
}

fn cmd_cluster(inv: &Invocation) -> Result<String, CliError> {
    let target = resolve_target(&inv.positional[0])?;
    let outcome = match &target {
        Target::Spec(spec) => {
            let SpecKind::Cluster { .. } = spec.kind else {
                return Err(CliError::Input(format!(
                    "`{}` is not a cluster spec (kind = \"cluster\" with a [cluster] table)",
                    inv.positional[0]
                )));
            };
            if inv.flag("platform").is_some() {
                return Err(CliError::Usage(
                    "conflicting flags: `--platform` applies to named scenarios; \
                     spec files declare their platform in [platform]"
                        .to_owned(),
                ));
            }
            if inv.flag("policy").is_some() {
                return Err(CliError::Usage(
                    "conflicting flags: `--policy` applies to named cluster/chain scenarios; \
                     spec files declare their policy in [cluster]/[chain]"
                        .to_owned(),
                ));
            }
            check_timeseries_flag(inv, spec.timeseries_interval.is_some())?;
            check_observability_flags(inv, spec.trace.is_some(), true)?;
            let spec = override_spec(spec, inv)?;
            if let Some((path, format)) = stream_request(inv)? {
                return finish_streamed(inv, &spec, path, format);
            }
            execute_spec(&spec, inv.parallelism()?)
        }
        Target::Scenario(s) => {
            return Err(CliError::Input(format!(
                "`{}` is a fleet scenario; use `apc-cli run {}`",
                s.name, s.name
            )))
        }
        Target::ChainScenario(s) => {
            return Err(CliError::Input(format!(
                "`{}` is a chain scenario; use `apc-cli run {}`",
                s.name, s.name
            )))
        }
        Target::ClusterScenario(s) => {
            check_timeseries_flag(inv, false)?;
            check_observability_flags(inv, false, false)?;
            run_cluster_scenario(
                s,
                inv.platform()?.unwrap_or(PlatformKind::Cpc1a),
                inv.policy()?.unwrap_or(RoutingPolicyKind::PowerAware),
                inv.duration()?,
                inv.u64_flag("seed")?,
                inv.parallelism()?,
            )
        }
    };
    finish(inv, &outcome)
}

fn cmd_validate(inv: &Invocation) -> Result<String, CliError> {
    let path = &inv.positional[0];
    let text = std::fs::read_to_string(path)
        .map_err(|e| CliError::Io(format!("cannot read `{path}`: {e}")))?;
    let value = JsonValue::parse(&text).map_err(|e| CliError::Input(format!("{path}: {e}")))?;
    let kind = match &value {
        JsonValue::Object(_) => "object",
        JsonValue::Array(_) => "array",
        _ => "scalar",
    };
    Ok(format!(
        "{path}: valid JSON ({kind}, {} bytes)\n",
        text.len()
    ))
}

/// Applies `--duration-ms` / `--seed` / `--profile` overrides to a parsed
/// spec.
fn override_spec(spec: &ExperimentSpec, inv: &Invocation) -> Result<ExperimentSpec, CliError> {
    let mut spec = spec.clone();
    if let Some(d) = inv.duration()? {
        spec.duration = d;
    }
    if let Some(s) = inv.u64_flag("seed")? {
        spec.seed = s;
    }
    spec.profile = inv.switch("profile");
    Ok(spec)
}

/// Renders the outcome, honours `--out` / `--timeseries-out`, and returns
/// what to print on stdout.
fn finish(inv: &Invocation, outcome: &Outcome) -> Result<String, CliError> {
    let rendered = outcome.render(inv.format()?);
    let mut stdout = String::new();
    match inv.flag("out") {
        Some(path) => {
            std::fs::write(path, &rendered)
                .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
            stdout.push_str(&format!("wrote {path} ({} bytes)\n", rendered.len()));
        }
        None => stdout.push_str(&rendered),
    }
    if let Some(path) = inv.flag("timeseries-out") {
        let csv = outcome.timeseries_csv().ok_or_else(|| {
            CliError::Usage(
                "conflicting flags: `--timeseries-out` needs a spec with a [telemetry] table \
                 (no run recorded a time series)"
                    .to_owned(),
            )
        })?;
        std::fs::write(path, &csv)
            .map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
        stdout.push_str(&format!("wrote {path} ({} bytes)\n", csv.len()));
    }
    write_trace_out(inv, outcome, &mut stdout)?;
    Ok(stdout)
}

/// Honours `--trace-out`, appending its `wrote …` line to `stdout`.
fn write_trace_out(
    inv: &Invocation,
    outcome: &Outcome,
    stdout: &mut String,
) -> Result<(), CliError> {
    let Some(path) = inv.flag("trace-out") else {
        return Ok(());
    };
    let log = outcome.merged_trace().ok_or_else(|| {
        CliError::Usage(
            "conflicting flags: `--trace-out` needs a spec with a [trace] table \
             (no run recorded request spans)"
                .to_owned(),
        )
    })?;
    let json = chrome_trace_json(&log).to_pretty_string();
    std::fs::write(path, &json).map_err(|e| CliError::Io(format!("cannot write `{path}`: {e}")))?;
    stdout.push_str(&format!("wrote {path} ({} bytes)\n", json.len()));
    Ok(())
}
