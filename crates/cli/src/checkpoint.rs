//! Sweep-shard checkpoints: serialized partial sweep results that
//! `apc-cli merge` recombines into the unsharded artefact, byte for byte.
//!
//! `apc-cli sweep <spec> --shard i/n --out shard_i.json` runs every grid
//! point whose *global grid index* is congruent to `i` modulo `n` and
//! writes one checkpoint: an envelope identifying the sweep (spec name,
//! shard arity, grid size, seed, duration) plus, per completed point, its
//! label, end-of-timeline stamp, the full [`RunResult`] export and — the
//! piece the plain export lacks — the run's serialized quantile sketch.
//! The sketch is what makes the cross-process round trip *exact*: `merge`
//! re-derives every latency summary from the parsed sketch (never from the
//! printed summary), re-aggregates combined fleet latency by sketch merge,
//! and therefore renders output bit-identical to a single-process run of
//! the same spec. The differential tests pin that identity.
//!
//! Checkpoints are deliberately strict on the way in: wrong version, shard
//! mismatches, points outside the shard's residue class, duplicate or
//! missing grid indices, and summaries inconsistent with their sketch are
//! all hard errors — a corrupted shard must fail loudly at merge, not bend
//! the final artefact.

use apc_analysis::export::{
    run_result_from_json, run_result_json, sketch_from_json, sketch_json, JsonValue,
};
use apc_server::fleet::FleetResult;
use apc_server::result::RunResult;
use apc_sim::{SimDuration, SimTime};

/// The checkpoint format version this build writes and accepts.
pub const CHECKPOINT_VERSION: u64 = 1;

/// One completed grid point of a sharded sweep.
pub struct CheckpointPoint {
    /// The point's global grid index (platform-major, see
    /// [`crate::runner::sweep_grid`]).
    pub index: usize,
    /// The point's display label (`<platform>@<rate>`).
    pub label: String,
    /// The completed run.
    pub run: RunResult,
}

/// One shard's worth of sweep results plus the envelope identifying the
/// sweep it came from.
pub struct Checkpoint {
    /// The sweep spec's experiment name.
    pub spec_name: String,
    /// This shard's id, `0 <= shard < of`.
    pub shard: usize,
    /// The shard arity the sweep was split into.
    pub of: usize,
    /// The full grid's point count (all shards together).
    pub total_points: usize,
    /// The sweep's root seed (every grid point reuses it).
    pub seed: u64,
    /// The simulated duration of each grid point.
    pub duration: SimDuration,
    /// The shard's completed points, in global grid order.
    pub points: Vec<CheckpointPoint>,
}

impl Checkpoint {
    /// Serialises the checkpoint (pretty-print the result to write it).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let points = self
            .points
            .iter()
            .map(|p| {
                let mut o = JsonValue::object();
                o.push("index", JsonValue::UInt(p.index as u64))
                    .push("label", JsonValue::Str(p.label.clone()))
                    .push(
                        "finished_at_ns",
                        JsonValue::UInt((p.run.finished_at - SimTime::ZERO).as_nanos()),
                    )
                    .push("sketch", sketch_json(&p.run.latency_sketch))
                    .push("run", run_result_json(&p.run));
                o
            })
            .collect();
        let mut o = JsonValue::object();
        o.push("apc_sweep_checkpoint", JsonValue::UInt(CHECKPOINT_VERSION))
            .push("spec_name", JsonValue::Str(self.spec_name.clone()))
            .push("shard", JsonValue::UInt(self.shard as u64))
            .push("of", JsonValue::UInt(self.of as u64))
            .push("total_points", JsonValue::UInt(self.total_points as u64))
            .push("seed", JsonValue::UInt(self.seed))
            .push("duration_ns", JsonValue::UInt(self.duration.as_nanos()))
            .push("points", JsonValue::Array(points));
        o
    }

    /// Parses and validates a checkpoint document.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural or consistency
    /// problem (see the module docs for the strictness stance).
    pub fn from_json(v: &JsonValue) -> Result<Checkpoint, String> {
        fn usize_field(v: &JsonValue, key: &str) -> Result<usize, String> {
            v.get(key)
                .and_then(JsonValue::as_u64)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or_else(|| format!("checkpoint: missing or non-integer `{key}`"))
        }
        match v.get("apc_sweep_checkpoint").and_then(JsonValue::as_u64) {
            Some(CHECKPOINT_VERSION) => {}
            Some(other) => {
                return Err(format!(
                    "checkpoint: version {other} (this build reads version {CHECKPOINT_VERSION})"
                ))
            }
            None => return Err("not a sweep checkpoint (no `apc_sweep_checkpoint` key)".to_owned()),
        }
        let spec_name = v
            .get("spec_name")
            .and_then(JsonValue::as_str)
            .ok_or("checkpoint: missing or non-string `spec_name`")?
            .to_owned();
        let shard = usize_field(v, "shard")?;
        let of = usize_field(v, "of")?;
        let total_points = usize_field(v, "total_points")?;
        if of == 0 || shard >= of {
            return Err(format!("checkpoint: shard {shard}/{of} is out of range"));
        }
        let seed = v
            .get("seed")
            .and_then(JsonValue::as_u64)
            .ok_or("checkpoint: missing or non-integer `seed`")?;
        let duration = SimDuration::from_nanos(
            v.get("duration_ns")
                .and_then(JsonValue::as_u64)
                .ok_or("checkpoint: missing or non-integer `duration_ns`")?,
        );
        let mut points = Vec::new();
        for p in v
            .get("points")
            .and_then(JsonValue::as_array)
            .ok_or("checkpoint: missing or non-array `points`")?
        {
            let index = usize_field(p, "index").map_err(|e| e.replace("checkpoint:", "point:"))?;
            if index >= total_points {
                return Err(format!(
                    "point {index}: index out of range (grid has {total_points} points)"
                ));
            }
            if index % of != shard {
                return Err(format!(
                    "point {index}: does not belong to shard {shard}/{of}"
                ));
            }
            let label = p
                .get("label")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| format!("point {index}: missing or non-string `label`"))?
                .to_owned();
            let finished_at = SimTime::ZERO
                + SimDuration::from_nanos(
                    p.get("finished_at_ns")
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| {
                            format!("point {index}: missing or non-integer `finished_at_ns`")
                        })?,
                );
            let sketch = p
                .get("sketch")
                .map(sketch_from_json)
                .transpose()
                .map_err(|e| format!("point {index}: {e}"))?
                .ok_or_else(|| format!("point {index}: missing `sketch`"))?;
            let run = p
                .get("run")
                .map(|run| run_result_from_json(run, sketch, finished_at))
                .transpose()
                .map_err(|e| format!("point {index}: {e}"))?
                .ok_or_else(|| format!("point {index}: missing `run`"))?;
            points.push(CheckpointPoint { index, label, run });
        }
        Ok(Checkpoint {
            spec_name,
            shard,
            of,
            total_points,
            seed,
            duration,
            points,
        })
    }
}

/// Recombines one checkpoint per shard into the unsharded sweep outcome:
/// the experiment name, the grid labels and the reconstructed fleet, in
/// global grid order — exactly what rendering an unsharded `sweep` run
/// would have produced.
///
/// # Errors
///
/// Returns a description of the first inconsistency: mismatched envelopes,
/// a missing or repeated shard, and missing or duplicate grid points.
pub fn merge_checkpoints(
    shards: Vec<Checkpoint>,
) -> Result<(String, Vec<String>, FleetResult), String> {
    let Some(first) = shards.first() else {
        return Err("no checkpoints to merge".to_owned());
    };
    let spec_name = first.spec_name.clone();
    let (of, total_points, seed, duration) =
        (first.of, first.total_points, first.seed, first.duration);
    if shards.len() != of {
        return Err(format!(
            "the sweep was split {of} ways but {} checkpoint(s) were given",
            shards.len()
        ));
    }
    let mut seen_shards = vec![false; of];
    let mut slots: Vec<Option<CheckpointPoint>> = Vec::new();
    slots.resize_with(total_points, || None);
    for ck in shards {
        if ck.spec_name != spec_name {
            return Err(format!(
                "checkpoint spec `{}` does not match `{spec_name}`",
                ck.spec_name
            ));
        }
        if ck.of != of || ck.total_points != total_points {
            return Err(format!(
                "checkpoint shard {}/{} over {} points does not match {of} shards over {total_points} points",
                ck.shard, ck.of, ck.total_points
            ));
        }
        if ck.seed != seed || ck.duration != duration {
            return Err(format!(
                "checkpoint shard {} ran under a different seed or duration than the first checkpoint",
                ck.shard
            ));
        }
        if seen_shards[ck.shard] {
            return Err(format!("shard {} given more than once", ck.shard));
        }
        seen_shards[ck.shard] = true;
        for point in ck.points {
            let slot = &mut slots[point.index];
            if slot.is_some() {
                return Err(format!("grid point {} given more than once", point.index));
            }
            *slot = Some(point);
        }
    }
    let mut labels = Vec::with_capacity(total_points);
    let mut runs = Vec::with_capacity(total_points);
    for (index, slot) in slots.into_iter().enumerate() {
        let point = slot.ok_or_else(|| format!("grid point {index} is missing"))?;
        labels.push(point.label);
        runs.push(point.run);
    }
    Ok((spec_name, labels, FleetResult { runs }))
}
