//! The `apc-cli` binary: a thin shell around [`apc_cli::execute`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match apc_cli::execute(&args) {
        Ok(output) => print!("{output}"),
        Err(err) => {
            eprintln!("apc-cli: {err}");
            std::process::exit(err.exit_code());
        }
    }
}
