//! The experiment-spec file format and its hand-rolled parser.
//!
//! Specs are written in a small, offline-safe **TOML subset** (the
//! workspace has no external dependencies, so the parser is hand-rolled in
//! the spirit of the vendored criterion shim): `[table]` headers, `key =
//! value` pairs, `#` comments, and values that are strings, numbers,
//! booleans or single-line arrays of those. Underscores in numbers
//! (`60_000`) are accepted. What the subset deliberately leaves out:
//! nested/dotted keys, inline tables, multi-line strings and arrays, dates.
//!
//! A spec describes one experiment end-to-end:
//!
//! ```toml
//! [experiment]
//! kind = "cluster"          # single | fleet | cluster | sweep
//! seed = 7
//! duration_ms = 50
//! repeats = 2               # single/cluster only
//! parallelism = 4           # worker threads (default: host cores);
//!                           # `--parallelism` on the command line wins
//!
//! [platform]
//! name = "cpc1a"            # cshallow | cdeep | cpc1a
//!
//! [workload]
//! kind = "memcached"        # memcached | kafka | mysql
//! rate_per_sec = 160_000.0
//! pattern = "constant"      # constant | diurnal | flash-crowd
//!
//! [cluster]
//! nodes = 8
//! policy = "power-aware"    # random | round-robin | jsq | power-aware
//!
//! [telemetry]
//! sample_interval_us = 100  # enables the time-series sink
//! ```
//!
//! A `kind = "chain"` experiment swaps `[cluster]` for a `[chain]` table
//! describing the multi-tier fan-out executed across the cluster
//! (`rate_per_sec` then counts *root chains* per second):
//!
//! ```toml
//! [chain]
//! nodes = 8
//! fanout = 4                # leaf RPCs per chain (1 = a linear hop)
//! policy = "jsq"            # default jsq (latency-optimal for joins)
//! frontend_service_us = 10  # optional frontend-tier mean service time
//! leaf_service_us = 19      # optional leaf-tier mean service time
//! ```
//!
//! Cluster and chain experiments may add a `[network]` table routing every
//! balancer/coordinator RPC (and leaf-completion report) through a
//! simulated wire with per-link latency and optional store-and-forward
//! serialization; without it, delivery is instantaneous (the historical
//! behaviour, bit for bit):
//!
//! ```toml
//! [network]
//! topology = "two-tier"     # flat | two-tier | fat-tree
//! latency_us = 5            # per-link propagation latency (>= 0)
//! rack_size = 4             # two-tier/fat-tree (default 4)
//! racks_per_pod = 2         # fat-tree only (default 2)
//! oversubscription = 4.0    # fat-tree pod->core thinning (default 1.0)
//! bandwidth_gbps = 25       # omit for infinite bandwidth
//! rpc_bytes = 2_000         # serialized payload size (default 0)
//! ```
//!
//! Single, cluster and chain experiments may add a `[trace]` table turning
//! on end-to-end request-span tracing (head-sampled off a dedicated RNG
//! fork, so the simulation itself is bit-identical with or without it);
//! the collected spans are written by the `--trace-out` flag as Chrome
//! trace-event JSON:
//!
//! ```toml
//! [trace]
//! sample_every = 16         # trace one in N root requests (1 = all)
//! max_spans = 65_536        # retained-span bound (default 65_536)
//! ```
//!
//! Parsing is **strict**: unknown tables, unknown keys, missing required
//! keys and type mismatches are errors carrying the offending line number,
//! so a typo fails loudly instead of silently running a default.
//! `[network]` and `[trace]` errors are additionally flagged as *usage*
//! errors (CLI exit code 2): a bad fabric or tracing parameter fails the
//! invocation itself.

use apc_network::NetworkConfig;
use apc_server::balancer::RoutingPolicyKind;
use apc_server::config::ServerConfig;
use apc_server::scenario::{TrafficPattern, WorkloadKind};
use apc_sim::SimDuration;
use apc_trace::TraceConfig;

/// A spec parse/validation error with the 1-based line it occurred on
/// (line 0 marks document-level problems, e.g. a missing table).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line (0 = whole document).
    pub line: usize,
    /// Usage-level mistake: the CLI maps these to exit code 2 (like a bad
    /// flag) instead of the general input-error exit code 1. Set for
    /// `[network]` table errors, where a fat-fingered fabric parameter
    /// should fail the *invocation* loudly.
    pub usage: bool,
}

impl SpecError {
    fn at(line: usize, message: impl Into<String>) -> Self {
        SpecError {
            message: message.into(),
            line,
            usage: false,
        }
    }

    fn doc(message: impl Into<String>) -> Self {
        SpecError::at(0, message)
    }

    /// Re-flags the error as a usage-level mistake (exit code 2).
    fn into_usage(mut self) -> Self {
        self.usage = true;
        self
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "spec error: {}", self.message)
        } else {
            write!(f, "spec error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SpecError {}

/// A scalar or array value in the TOML subset.
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    Str(String),
    /// A non-negative integer literal, kept exact — `seed` uses the full
    /// `u64` range, which `f64` would silently round above 2^53.
    UInt(u64),
    Num(f64),
    Bool(bool),
    Array(Vec<TomlValue>),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::Str(_) => "string",
            TomlValue::UInt(_) | TomlValue::Num(_) => "number",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Array(_) => "array",
        }
    }

    /// The value as an `f64` (integers widen; `None` for non-numbers).
    fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::UInt(u) => Some(*u as f64),
            TomlValue::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// One `key = value` entry with its line, consumed-flag tracking unknown
/// keys.
#[derive(Debug)]
struct Entry {
    key: String,
    value: TomlValue,
    line: usize,
    used: std::cell::Cell<bool>,
}

/// One `[name]` table.
#[derive(Debug)]
struct Table {
    name: String,
    line: usize,
    entries: Vec<Entry>,
}

impl Table {
    fn entry(&self, key: &str) -> Option<&Entry> {
        let e = self.entries.iter().find(|e| e.key == key)?;
        e.used.set(true);
        Some(e)
    }

    fn str(&self, key: &str) -> Result<Option<(String, usize)>, SpecError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match &e.value {
                TomlValue::Str(s) => Ok(Some((s.clone(), e.line))),
                other => Err(SpecError::at(
                    e.line,
                    format!("`{key}` must be a string, got a {}", other.type_name()),
                )),
            },
        }
    }

    fn num(&self, key: &str) -> Result<Option<(f64, usize)>, SpecError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match e.value.as_f64() {
                Some(n) => Ok(Some((n, e.line))),
                None => Err(SpecError::at(
                    e.line,
                    format!("`{key}` must be a number, got a {}", e.value.type_name()),
                )),
            },
        }
    }

    /// An exact non-negative integer (full `u64` range, no float rounding).
    fn uint(&self, key: &str) -> Result<Option<(u64, usize)>, SpecError> {
        match self.entry(key) {
            None => Ok(None),
            Some(e) => match e.value {
                TomlValue::UInt(u) => Ok(Some((u, e.line))),
                ref other => Err(SpecError::at(
                    e.line,
                    format!(
                        "`{key}` must be a non-negative integer, got a {}",
                        other.type_name()
                    ),
                )),
            },
        }
    }

    fn positive(&self, key: &str) -> Result<Option<(f64, usize)>, SpecError> {
        match self.num(key)? {
            Some((n, line)) if n > 0.0 => Ok(Some((n, line))),
            Some((n, line)) => Err(SpecError::at(line, format!("`{key}` must be > 0, got {n}"))),
            None => Ok(None),
        }
    }

    fn count(&self, key: &str) -> Result<Option<(usize, usize)>, SpecError> {
        // Counts size allocations and pool fan-outs, so an absurd value is
        // a typo to reject loudly, not an instruction to OOM.
        const MAX_COUNT: f64 = 100_000.0;
        match self.positive(key)? {
            Some((n, line)) if n.fract() == 0.0 && n <= MAX_COUNT => Ok(Some((n as usize, line))),
            Some((n, line)) => Err(SpecError::at(
                line,
                format!("`{key}` must be an integer in 1..={MAX_COUNT}, got {n}"),
            )),
            None => Ok(None),
        }
    }

    /// A positive duration built via `to_duration`, rejected when it rounds
    /// to zero nanoseconds (a zero interval would silently disable or stall
    /// whatever it configures).
    fn duration(
        &self,
        key: &str,
        to_duration: impl Fn(f64) -> SimDuration,
    ) -> Result<Option<SimDuration>, SpecError> {
        match self.positive(key)? {
            None => Ok(None),
            Some((n, line)) => {
                let d = to_duration(n);
                if d.is_zero() {
                    return Err(SpecError::at(
                        line,
                        format!("`{key}` = {n} rounds to zero nanoseconds"),
                    ));
                }
                Ok(Some(d))
            }
        }
    }

    fn unused_key_error(&self) -> Option<SpecError> {
        self.entries.iter().find(|e| !e.used.get()).map(|e| {
            SpecError::at(
                e.line,
                format!("unknown key `{}` in [{}]", e.key, self.name),
            )
        })
    }
}

fn parse_tables(text: &str) -> Result<Vec<Table>, SpecError> {
    let mut tables: Vec<Table> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| SpecError::at(line_no, "unterminated table header"))?
                .trim();
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
            {
                return Err(SpecError::at(
                    line_no,
                    format!("invalid table name `{name}`"),
                ));
            }
            if tables.iter().any(|t| t.name == name) {
                return Err(SpecError::at(
                    line_no,
                    format!("table [{name}] defined twice"),
                ));
            }
            tables.push(Table {
                name: name.to_owned(),
                line: line_no,
                entries: Vec::new(),
            });
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| SpecError::at(line_no, "expected `key = value` or `[table]`"))?;
        let key = key.trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(SpecError::at(line_no, format!("invalid key `{key}`")));
        }
        let table = tables
            .last_mut()
            .ok_or_else(|| SpecError::at(line_no, "key outside any [table]"))?;
        if table.entries.iter().any(|e| e.key == key) {
            return Err(SpecError::at(
                line_no,
                format!("key `{key}` defined twice in [{}]", table.name),
            ));
        }
        let value = parse_value(value.trim(), line_no)?;
        table.entries.push(Entry {
            key: key.to_owned(),
            value,
            line: line_no,
            used: std::cell::Cell::new(false),
        });
    }
    Ok(tables)
}

/// Strips a `#` comment, respecting `"`-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(text: &str, line: usize) -> Result<TomlValue, SpecError> {
    if text.is_empty() {
        return Err(SpecError::at(line, "missing value after `=`"));
    }
    if let Some(rest) = text.strip_prefix('[') {
        let inner = rest
            .strip_suffix(']')
            .ok_or_else(|| SpecError::at(line, "unterminated array (arrays are single-line)"))?;
        let mut items = Vec::new();
        for part in split_array_items(inner, line)? {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            let item = parse_value(part, line)?;
            if matches!(item, TomlValue::Array(_)) {
                return Err(SpecError::at(line, "nested arrays are not supported"));
            }
            items.push(item);
        }
        return Ok(TomlValue::Array(items));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| SpecError::at(line, "unterminated string"))?;
        if inner.contains('"') {
            return Err(SpecError::at(line, "escapes are not supported in strings"));
        }
        return Ok(TomlValue::Str(inner.to_owned()));
    }
    match text {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    let numeric: String = text.chars().filter(|&c| c != '_').collect();
    // Plain integer literals stay exact (u64); everything else goes through
    // f64 — rejecting the non-finite spellings `f64::parse` would accept
    // (`inf`, `nan`, overflowing exponents), which have no physical meaning
    // in a spec and must fail loudly like any other typo.
    if !numeric.contains(['.', 'e', 'E']) {
        if let Ok(u) = numeric.parse::<u64>() {
            return Ok(TomlValue::UInt(u));
        }
    }
    match numeric.parse::<f64>() {
        Ok(v) if v.is_finite() => Ok(TomlValue::Num(v)),
        Ok(_) => Err(SpecError::at(
            line,
            format!("non-finite value `{text}` is not allowed"),
        )),
        Err(_) => Err(SpecError::at(line, format!("invalid value `{text}`"))),
    }
}

/// Splits array items on commas outside quotes.
fn split_array_items(inner: &str, line: usize) -> Result<Vec<&str>, SpecError> {
    let mut items = Vec::new();
    let mut start = 0;
    let mut in_string = false;
    for (i, c) in inner.char_indices() {
        match c {
            '"' => in_string = !in_string,
            ',' if !in_string => {
                items.push(&inner[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    if in_string {
        return Err(SpecError::at(line, "unterminated string in array"));
    }
    items.push(&inner[start..]);
    Ok(items)
}

// ---- the spec model ----------------------------------------------------

/// The three platform configurations of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlatformKind {
    /// CC1-only baseline (`Cshallow`).
    Cshallow,
    /// All C-states enabled (`Cdeep`).
    Cdeep,
    /// `Cshallow` plus the APC hardware (`CPC1A`).
    Cpc1a,
}

impl PlatformKind {
    /// All platforms, in presentation order.
    #[must_use]
    pub fn all() -> [PlatformKind; 3] {
        [
            PlatformKind::Cshallow,
            PlatformKind::Cdeep,
            PlatformKind::Cpc1a,
        ]
    }

    /// The spec-file spelling.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PlatformKind::Cshallow => "cshallow",
            PlatformKind::Cdeep => "cdeep",
            PlatformKind::Cpc1a => "cpc1a",
        }
    }

    /// Parses a spec-file platform name (case-insensitive).
    #[must_use]
    pub fn parse(name: &str) -> Option<PlatformKind> {
        match name.to_ascii_lowercase().as_str() {
            "cshallow" => Some(PlatformKind::Cshallow),
            "cdeep" => Some(PlatformKind::Cdeep),
            "cpc1a" => Some(PlatformKind::Cpc1a),
            _ => None,
        }
    }

    /// Builds the base server configuration for this platform.
    #[must_use]
    pub fn config(self) -> ServerConfig {
        match self {
            PlatformKind::Cshallow => ServerConfig::c_shallow(),
            PlatformKind::Cdeep => ServerConfig::c_deep(),
            PlatformKind::Cpc1a => ServerConfig::c_pc1a(),
        }
    }
}

/// What shape of experiment a spec runs.
#[derive(Debug, Clone, PartialEq)]
pub enum SpecKind {
    /// One server (optionally repeated under derived seeds).
    Single,
    /// A fleet of independent servers sharing the workload and traffic.
    Fleet {
        /// Number of servers.
        servers: usize,
    },
    /// An N-node cluster behind a load balancer.
    Cluster {
        /// Number of nodes.
        nodes: usize,
        /// The routing policy.
        policy: RoutingPolicyKind,
    },
    /// An N-node cluster executing multi-tier fan-out request chains
    /// through a chain coordinator (`rate_per_sec` counts root chains).
    Chain {
        /// Number of nodes.
        nodes: usize,
        /// Leaf RPCs issued per chain (the fan-out width; 1 = linear hop).
        fanout: usize,
        /// The routing policy RPCs are spread with.
        policy: RoutingPolicyKind,
        /// Frontend-tier mean service time override.
        frontend_service: Option<SimDuration>,
        /// Leaf-tier mean service time override.
        leaf_service: Option<SimDuration>,
    },
    /// A cartesian sweep over offered rates × platforms (single-server runs).
    Sweep {
        /// The load axis (requests per second).
        rates: Vec<f64>,
        /// The platform axis.
        platforms: Vec<PlatformKind>,
    },
}

/// A parsed, validated experiment specification.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentSpec {
    /// Experiment name (defaults to `"experiment"`).
    pub name: String,
    /// The experiment shape.
    pub kind: SpecKind,
    /// Base platform (for sweeps, the per-point platform axis wins).
    pub platform: PlatformKind,
    /// The service the servers run.
    pub workload: WorkloadKind,
    /// The offered-traffic shape.
    pub traffic: TrafficPattern,
    /// Simulated duration of each run.
    pub duration: SimDuration,
    /// Root seed.
    pub seed: u64,
    /// Repeat count (single and cluster kinds only).
    pub repeats: usize,
    /// Worker-thread pin from the spec itself (`None` sizes the pool to the
    /// host; an explicit `--parallelism` flag overrides this knob). Besides
    /// sizing the fleet pools, this is the worker budget of the
    /// conservative-lookahead partitioned run a single cluster/chain
    /// experiment takes when its `[network]` topology admits one.
    pub parallelism: Option<usize>,
    /// Time-series sampling interval, when `[telemetry]` enables the sink.
    pub timeseries_interval: Option<SimDuration>,
    /// Network fabric configuration, when `[network]` declares one
    /// (cluster and chain experiments only).
    pub network: Option<NetworkConfig>,
    /// Request-span tracing configuration, when `[trace]` declares one
    /// (single, cluster and chain experiments only). `--trace-out` writes
    /// the collected spans as Chrome trace-event JSON.
    pub trace: Option<TraceConfig>,
    /// Engine self-profiler switch; never set by the spec file itself —
    /// the `--profile` flag turns it on after parsing.
    pub profile: bool,
}

/// Parses a routing-policy spelling shared by spec files and `--policy`.
#[must_use]
pub fn parse_policy(name: &str) -> Option<RoutingPolicyKind> {
    match name.to_ascii_lowercase().as_str() {
        "random" => Some(RoutingPolicyKind::Random),
        "round-robin" => Some(RoutingPolicyKind::RoundRobin),
        "jsq" | "join-shortest-queue" => Some(RoutingPolicyKind::JoinShortestQueue),
        "power-aware" => Some(RoutingPolicyKind::PowerAware),
        _ => None,
    }
}

/// Parses a workload spelling shared by spec files and results.
#[must_use]
pub fn parse_workload(name: &str) -> Option<WorkloadKind> {
    match name.to_ascii_lowercase().as_str() {
        "memcached" => Some(WorkloadKind::MemcachedEtc),
        "kafka" => Some(WorkloadKind::Kafka),
        "mysql" => Some(WorkloadKind::MysqlOltp),
        _ => None,
    }
}

impl ExperimentSpec {
    /// Parses and validates a spec document.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the offending line for syntax errors,
    /// unknown tables/keys, type mismatches, missing required keys and
    /// inconsistent table/kind combinations.
    pub fn parse(text: &str) -> Result<ExperimentSpec, SpecError> {
        let tables = parse_tables(text)?;
        for t in &tables {
            if !matches!(
                t.name.as_str(),
                "experiment"
                    | "platform"
                    | "workload"
                    | "fleet"
                    | "cluster"
                    | "chain"
                    | "sweep"
                    | "telemetry"
                    | "network"
                    | "trace"
            ) {
                return Err(SpecError::at(t.line, format!("unknown table [{}]", t.name)));
            }
        }
        let find = |name: &str| tables.iter().find(|t| t.name == name);

        // [experiment]
        let experiment = find("experiment")
            .ok_or_else(|| SpecError::doc("missing required table [experiment]"))?;
        let (kind_name, kind_line) = experiment
            .str("kind")?
            .ok_or_else(|| SpecError::at(experiment.line, "[experiment] needs `kind`"))?;
        let name = experiment
            .str("name")?
            .map_or_else(|| "experiment".to_owned(), |(s, _)| s);
        let seed = experiment.uint("seed")?.map_or(0x5eed, |(u, _)| u);
        let duration = experiment
            .duration("duration_ms", |ms| {
                SimDuration::from_micros_f64(ms * 1_000.0)
            })?
            .unwrap_or(SimDuration::from_millis(100));
        let repeats = experiment.count("repeats")?.map_or(1, |(n, _)| n);
        // Like a bad `--parallelism` flag, a bad spec knob is a usage-level
        // mistake (exit code 2), still carrying the offending line number.
        let parallelism = experiment
            .count("parallelism")
            .map_err(SpecError::into_usage)?
            .map(|(n, _)| n);

        // [platform]
        let platform_declared = find("platform").is_some();
        let platform = match find("platform") {
            None => PlatformKind::Cpc1a,
            Some(t) => match t.str("name")? {
                None => PlatformKind::Cpc1a,
                Some((s, line)) => PlatformKind::parse(&s).ok_or_else(|| {
                    SpecError::at(
                        line,
                        format!("unknown platform `{s}` (cshallow|cdeep|cpc1a)"),
                    )
                })?,
            },
        };

        // [workload]
        let workload_table =
            find("workload").ok_or_else(|| SpecError::doc("missing required table [workload]"))?;
        let (workload_name, workload_line) = workload_table
            .str("kind")?
            .ok_or_else(|| SpecError::at(workload_table.line, "[workload] needs `kind`"))?;
        let workload = parse_workload(&workload_name).ok_or_else(|| {
            SpecError::at(
                workload_line,
                format!("unknown workload `{workload_name}` (memcached|kafka|mysql)"),
            )
        })?;
        let (rate, _) = workload_table
            .positive("rate_per_sec")?
            .ok_or_else(|| SpecError::at(workload_table.line, "[workload] needs `rate_per_sec`"))?;
        let traffic = parse_traffic(workload_table, rate)?;

        // [telemetry]
        let timeseries_interval = match find("telemetry") {
            None => None,
            Some(t) => {
                let interval = t
                    .duration("sample_interval_us", SimDuration::from_micros_f64)?
                    .ok_or_else(|| {
                        SpecError::at(t.line, "[telemetry] needs `sample_interval_us`")
                    })?;
                Some(interval)
            }
        };

        // [network] — every error is usage-flagged (CLI exit code 2).
        let network = match find("network") {
            None => None,
            Some(t) => Some(parse_network(t).map_err(SpecError::into_usage)?),
        };

        // [trace] — same stance: a bad tracing parameter is a usage error.
        let trace = match find("trace") {
            None => None,
            Some(t) => Some(parse_trace(t).map_err(SpecError::into_usage)?),
        };

        // kind + its table
        let kind = match kind_name.as_str() {
            "single" => SpecKind::Single,
            "fleet" => {
                let t = find("fleet").ok_or_else(|| {
                    SpecError::at(kind_line, "kind = \"fleet\" needs a [fleet] table")
                })?;
                let (servers, _) = t
                    .count("servers")?
                    .ok_or_else(|| SpecError::at(t.line, "[fleet] needs `servers`"))?;
                SpecKind::Fleet { servers }
            }
            "cluster" => {
                let t = find("cluster").ok_or_else(|| {
                    SpecError::at(kind_line, "kind = \"cluster\" needs a [cluster] table")
                })?;
                let (nodes, _) = t
                    .count("nodes")?
                    .ok_or_else(|| SpecError::at(t.line, "[cluster] needs `nodes`"))?;
                let policy = match t.str("policy")? {
                    None => RoutingPolicyKind::PowerAware,
                    Some((s, line)) => parse_policy(&s).ok_or_else(|| {
                        SpecError::at(
                            line,
                            format!("unknown policy `{s}` (random|round-robin|jsq|power-aware)"),
                        )
                    })?,
                };
                SpecKind::Cluster { nodes, policy }
            }
            "chain" => {
                let t = find("chain").ok_or_else(|| {
                    SpecError::at(kind_line, "kind = \"chain\" needs a [chain] table")
                })?;
                let (nodes, _) = t
                    .count("nodes")?
                    .ok_or_else(|| SpecError::at(t.line, "[chain] needs `nodes`"))?;
                let (fanout, _) = t
                    .count("fanout")?
                    .ok_or_else(|| SpecError::at(t.line, "[chain] needs `fanout`"))?;
                let policy = match t.str("policy")? {
                    None => RoutingPolicyKind::JoinShortestQueue,
                    Some((s, line)) => parse_policy(&s).ok_or_else(|| {
                        SpecError::at(
                            line,
                            format!("unknown policy `{s}` (random|round-robin|jsq|power-aware)"),
                        )
                    })?,
                };
                let frontend_service =
                    t.duration("frontend_service_us", SimDuration::from_micros_f64)?;
                let leaf_service = t.duration("leaf_service_us", SimDuration::from_micros_f64)?;
                SpecKind::Chain {
                    nodes,
                    fanout,
                    policy,
                    frontend_service,
                    leaf_service,
                }
            }
            "sweep" => {
                let t = find("sweep").ok_or_else(|| {
                    SpecError::at(kind_line, "kind = \"sweep\" needs a [sweep] table")
                })?;
                let rates = match t.entry("rates") {
                    None => return Err(SpecError::at(t.line, "[sweep] needs `rates`")),
                    Some(e) => match &e.value {
                        TomlValue::Array(items) => {
                            let mut rates = Vec::new();
                            for item in items {
                                match item.as_f64() {
                                    Some(n) if n > 0.0 => rates.push(n),
                                    _ => {
                                        return Err(SpecError::at(
                                            e.line,
                                            "`rates` must be positive numbers",
                                        ))
                                    }
                                }
                            }
                            if rates.is_empty() {
                                return Err(SpecError::at(e.line, "`rates` must not be empty"));
                            }
                            rates
                        }
                        other => {
                            return Err(SpecError::at(
                                e.line,
                                format!("`rates` must be an array, got a {}", other.type_name()),
                            ))
                        }
                    },
                };
                // The platform axis and the base [platform] table are the
                // same knob spelled two ways: a declared [platform] becomes
                // the (single-point) axis, an explicit `platforms` array
                // alongside it is a conflict, and with neither the sweep
                // covers all three platforms.
                let platforms = match t.entry("platforms") {
                    None if platform_declared => vec![platform],
                    None => PlatformKind::all().to_vec(),
                    Some(e) if platform_declared => {
                        return Err(SpecError::at(
                            e.line,
                            "`platforms` conflicts with the [platform] table \
                             (declare the axis in one place)",
                        ))
                    }
                    Some(e) => match &e.value {
                        TomlValue::Array(items) => {
                            let mut platforms = Vec::new();
                            for item in items {
                                match item {
                                    TomlValue::Str(s) => {
                                        platforms.push(PlatformKind::parse(s).ok_or_else(
                                            || {
                                                SpecError::at(
                                                    e.line,
                                                    format!("unknown platform `{s}`"),
                                                )
                                            },
                                        )?);
                                    }
                                    _ => {
                                        return Err(SpecError::at(
                                            e.line,
                                            "`platforms` must be strings",
                                        ))
                                    }
                                }
                            }
                            if platforms.is_empty() {
                                return Err(SpecError::at(e.line, "`platforms` must not be empty"));
                            }
                            platforms
                        }
                        other => {
                            return Err(SpecError::at(
                                e.line,
                                format!(
                                    "`platforms` must be an array, got a {}",
                                    other.type_name()
                                ),
                            ))
                        }
                    },
                };
                SpecKind::Sweep { rates, platforms }
            }
            other => {
                return Err(SpecError::at(
                    kind_line,
                    format!("unknown experiment kind `{other}` (single|fleet|cluster|chain|sweep)"),
                ))
            }
        };

        // Shape tables that contradict the declared kind are conflicts, not
        // silently ignored data.
        for (table, wanted) in [
            ("fleet", "fleet"),
            ("cluster", "cluster"),
            ("chain", "chain"),
            ("sweep", "sweep"),
        ] {
            if let Some(t) = find(table) {
                if kind_name != wanted {
                    return Err(SpecError::at(
                        t.line,
                        format!("[{table}] conflicts with kind = \"{kind_name}\""),
                    ));
                }
            }
        }
        if let Some(t) = find("network") {
            if !matches!(kind, SpecKind::Cluster { .. } | SpecKind::Chain { .. }) {
                return Err(SpecError::at(
                    t.line,
                    format!(
                        "[network] applies to cluster and chain experiments, \
                         not kind = \"{kind_name}\""
                    ),
                ));
            }
        }
        if let Some(t) = find("trace") {
            if !matches!(
                kind,
                SpecKind::Single | SpecKind::Cluster { .. } | SpecKind::Chain { .. }
            ) {
                return Err(SpecError::at(
                    t.line,
                    format!(
                        "[trace] applies to single, cluster and chain experiments, \
                         not kind = \"{kind_name}\""
                    ),
                ));
            }
        }
        if repeats > 1 && matches!(kind, SpecKind::Fleet { .. } | SpecKind::Sweep { .. }) {
            return Err(SpecError::doc(format!(
                "`repeats` applies to single, cluster and chain experiments, \
                 not kind = \"{kind_name}\""
            )));
        }
        if matches!(kind, SpecKind::Cluster { .. })
            && !matches!(traffic, TrafficPattern::Constant { .. })
        {
            return Err(SpecError::doc(
                "cluster experiments support only pattern = \"constant\" \
                 (the balancer owns one stationary arrival stream)",
            ));
        }
        if matches!(kind, SpecKind::Chain { .. })
            && !matches!(traffic, TrafficPattern::Constant { .. })
        {
            return Err(SpecError::doc(
                "chain experiments support only pattern = \"constant\" \
                 (the coordinator owns one stationary root-arrival stream)",
            ));
        }
        if matches!(kind, SpecKind::Sweep { .. })
            && !matches!(traffic, TrafficPattern::Constant { .. })
        {
            return Err(SpecError::doc(
                "sweep experiments support only pattern = \"constant\" \
                 (the rate axis replaces the pattern's rate)",
            ));
        }

        // Every key must have been consumed by now.
        for t in &tables {
            if let Some(err) = t.unused_key_error() {
                return Err(err);
            }
        }

        Ok(ExperimentSpec {
            name,
            kind,
            platform,
            workload,
            traffic,
            duration,
            seed,
            repeats,
            parallelism,
            timeseries_interval,
            network,
            trace,
            profile: false,
        })
    }
}

/// Parses the `[trace]` table into a [`TraceConfig`]. Strict like
/// [`parse_network`]: unknown keys and out-of-range rates fail with the
/// offending line (the caller re-flags every error as a usage error).
fn parse_trace(t: &Table) -> Result<TraceConfig, SpecError> {
    // Check unknown keys up front so they carry the usage flag instead of
    // falling through to the generic unused-key sweep.
    const KNOWN: [&str; 2] = ["sample_every", "max_spans"];
    for e in &t.entries {
        if !KNOWN.contains(&e.key.as_str()) {
            return Err(SpecError::at(
                e.line,
                format!("unknown key `{}` in [trace]", e.key),
            ));
        }
    }
    let (sample_every, line) = t
        .uint("sample_every")?
        .ok_or_else(|| SpecError::at(t.line, "[trace] needs `sample_every`"))?;
    if sample_every == 0 {
        return Err(SpecError::at(
            line,
            "`sample_every` must be at least 1 (1 traces every request)",
        ));
    }
    let mut config = TraceConfig::new(sample_every);
    if let Some((max_spans, line)) = t.uint("max_spans")? {
        if max_spans == 0 {
            return Err(SpecError::at(line, "`max_spans` must be at least 1"));
        }
        let max_spans = usize::try_from(max_spans)
            .map_err(|_| SpecError::at(line, "`max_spans` does not fit in memory"))?;
        config = config.with_max_spans(max_spans);
    }
    Ok(config)
}

/// Parses the `[network]` table into a [`NetworkConfig`]. Validation is
/// eager and strict: unknown keys, unknown topology names, negative
/// latencies and non-positive bandwidths all fail here with the offending
/// line (the caller re-flags every error as a usage error).
fn parse_network(t: &Table) -> Result<NetworkConfig, SpecError> {
    // Check unknown keys up front so they carry the usage flag instead of
    // falling through to the generic unused-key sweep.
    const KNOWN: [&str; 7] = [
        "topology",
        "latency_us",
        "bandwidth_gbps",
        "rpc_bytes",
        "rack_size",
        "racks_per_pod",
        "oversubscription",
    ];
    for e in &t.entries {
        if !KNOWN.contains(&e.key.as_str()) {
            return Err(SpecError::at(
                e.line,
                format!("unknown key `{}` in [network]", e.key),
            ));
        }
    }
    let (topo_name, topo_line) = t
        .str("topology")?
        .ok_or_else(|| SpecError::at(t.line, "[network] needs `topology`"))?;
    let latency = match t.num("latency_us")? {
        None => SimDuration::ZERO,
        Some((n, line)) => {
            if n < 0.0 {
                return Err(SpecError::at(
                    line,
                    format!("`latency_us` must be >= 0, got {n}"),
                ));
            }
            SimDuration::from_micros_f64(n)
        }
    };
    let rack_size = t.count("rack_size")?.map_or(4, |(n, _)| n);
    let racks_per_pod = t.count("racks_per_pod")?.map_or(2, |(n, _)| n);
    let oversubscription = t.positive("oversubscription")?.map_or(1.0, |(n, _)| n);
    // Keys that only shape the deeper topologies are conflicts elsewhere,
    // not silently ignored data (same stance as the shape tables).
    let reject = |key: &str| -> Result<(), SpecError> {
        match t.entry(key) {
            Some(e) => Err(SpecError::at(
                e.line,
                format!("`{key}` does not apply to topology = \"{topo_name}\""),
            )),
            None => Ok(()),
        }
    };
    let mut config = match topo_name.as_str() {
        "flat" => {
            for key in ["rack_size", "racks_per_pod", "oversubscription"] {
                reject(key)?;
            }
            NetworkConfig::flat(latency)
        }
        "two-tier" => {
            for key in ["racks_per_pod", "oversubscription"] {
                reject(key)?;
            }
            NetworkConfig::two_tier(latency, rack_size)
        }
        "fat-tree" => NetworkConfig::fat_tree(latency, rack_size, racks_per_pod, oversubscription),
        other => {
            return Err(SpecError::at(
                topo_line,
                format!("unknown topology `{other}` (flat|two-tier|fat-tree)"),
            ))
        }
    };
    if let Some((gbps, _)) = t.positive("bandwidth_gbps")? {
        // 1 Gbit/s = 125 MB/s.
        config = config.with_bandwidth((gbps * 125_000_000.0) as u64);
    }
    if let Some((bytes, _)) = t.uint("rpc_bytes")? {
        config = config.with_rpc_bytes(bytes);
    }
    Ok(config)
}

fn parse_traffic(table: &Table, rate: f64) -> Result<TrafficPattern, SpecError> {
    let pattern = table.str("pattern")?;
    let (pattern_name, pattern_line) = match &pattern {
        None => ("constant", table.line),
        Some((s, line)) => (s.as_str(), *line),
    };
    let reject = |key: &str| -> Result<(), SpecError> {
        match table.entry(key) {
            Some(e) => Err(SpecError::at(
                e.line,
                format!("`{key}` conflicts with pattern = \"{pattern_name}\""),
            )),
            None => Ok(()),
        }
    };
    match pattern_name {
        "constant" => {
            for key in [
                "swing",
                "peak_multiplier",
                "start_fraction",
                "length_fraction",
            ] {
                reject(key)?;
            }
            Ok(TrafficPattern::Constant { rate_per_sec: rate })
        }
        "diurnal" => {
            for key in ["peak_multiplier", "start_fraction", "length_fraction"] {
                reject(key)?;
            }
            let swing = match table.num("swing")? {
                None => 0.75,
                Some((s, line)) => {
                    if !(0.0..1.0).contains(&s) {
                        return Err(SpecError::at(
                            line,
                            format!("`swing` must be in [0, 1), got {s}"),
                        ));
                    }
                    s
                }
            };
            Ok(TrafficPattern::Diurnal {
                mean_rate_per_sec: rate,
                swing,
            })
        }
        "flash-crowd" => {
            reject("swing")?;
            let fraction = |key: &str, default: f64| -> Result<f64, SpecError> {
                match table.num(key)? {
                    None => Ok(default),
                    Some((v, line)) => {
                        if !(0.0..1.0).contains(&v) || v == 0.0 {
                            return Err(SpecError::at(
                                line,
                                format!("`{key}` must be in (0, 1), got {v}"),
                            ));
                        }
                        Ok(v)
                    }
                }
            };
            let peak = match table.positive("peak_multiplier")? {
                None => 6.0,
                Some((v, _)) => v,
            };
            Ok(TrafficPattern::FlashCrowd {
                base_rate_per_sec: rate,
                peak_multiplier: peak,
                start_fraction: fraction("start_fraction", 0.4)?,
                length_fraction: fraction("length_fraction", 0.2)?,
            })
        }
        other => Err(SpecError::at(
            pattern_line,
            format!("unknown pattern `{other}` (constant|diurnal|flash-crowd)"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLUSTER_SPEC: &str = r#"
# A cluster experiment.
[experiment]
kind = "cluster"
seed = 7
duration_ms = 50
repeats = 2

[workload]
kind = "memcached"
rate_per_sec = 160_000.0

[cluster]
nodes = 8
policy = "jsq"
"#;

    #[test]
    fn parses_a_cluster_spec() {
        let spec = ExperimentSpec::parse(CLUSTER_SPEC).unwrap();
        assert_eq!(
            spec.kind,
            SpecKind::Cluster {
                nodes: 8,
                policy: RoutingPolicyKind::JoinShortestQueue
            }
        );
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.duration, SimDuration::from_millis(50));
        assert_eq!(spec.repeats, 2);
        assert_eq!(spec.platform, PlatformKind::Cpc1a, "platform defaults");
        assert_eq!(
            spec.traffic,
            TrafficPattern::Constant {
                rate_per_sec: 160_000.0
            }
        );
        assert!(spec.timeseries_interval.is_none());
        assert!(spec.parallelism.is_none(), "parallelism defaults to host");
    }

    #[test]
    fn parallelism_knob_parses_and_rejects_nonsense_as_usage() {
        let with_knob = CLUSTER_SPEC.replace("repeats = 2", "repeats = 2\nparallelism = 4");
        let spec = ExperimentSpec::parse(&with_knob).unwrap();
        assert_eq!(spec.parallelism, Some(4));
        // `repeats = 2` sits on line 7, so the appended knob is line 8; a
        // zero or non-integer value is a usage error carrying that line.
        for bad in [
            "parallelism = 0",
            "parallelism = 2.5",
            "parallelism = \"all\"",
        ] {
            let text = CLUSTER_SPEC.replace("repeats = 2", &format!("repeats = 2\n{bad}"));
            let err = ExperimentSpec::parse(&text).unwrap_err();
            assert!(err.usage, "{bad} -> {err}");
            assert_eq!(err.line, 8, "{bad} -> {err}");
            assert!(err.message.contains("parallelism"), "{bad} -> {err}");
        }
    }

    #[test]
    fn parses_patterns_and_telemetry() {
        let text = r#"
[experiment]
kind = "fleet"

[workload]
kind = "kafka"
rate_per_sec = 8000
pattern = "diurnal"
swing = 0.5

[fleet]
servers = 4

[telemetry]
sample_interval_us = 250
"#;
        let spec = ExperimentSpec::parse(text).unwrap();
        assert_eq!(spec.kind, SpecKind::Fleet { servers: 4 });
        assert_eq!(
            spec.traffic,
            TrafficPattern::Diurnal {
                mean_rate_per_sec: 8000.0,
                swing: 0.5
            }
        );
        assert_eq!(
            spec.timeseries_interval,
            Some(SimDuration::from_micros(250))
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "[experiment]\nkind = \"single\"\nbogus_key = 1\n\n[workload]\nkind = \"memcached\"\nrate_per_sec = 100\n";
        let err = ExperimentSpec::parse(text).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("bogus_key"), "{err}");
    }

    #[test]
    fn rejects_contradictory_shapes() {
        let text = r#"
[experiment]
kind = "single"

[workload]
kind = "memcached"
rate_per_sec = 100

[cluster]
nodes = 4
"#;
        let err = ExperimentSpec::parse(text).unwrap_err();
        assert!(err.message.contains("conflicts with kind"), "{err}");
    }

    #[test]
    fn rejects_syntax_errors() {
        for (text, needle) in [
            ("key = 1", "outside any"),
            ("[experiment", "unterminated table"),
            ("[experiment]\nkind\n", "expected `key = value`"),
            ("[experiment]\nkind = \n", "missing value"),
            (
                "[experiment]\nkind = \"single\nx = 1\n",
                "unterminated string",
            ),
            ("[experiment]\nkind = oops\n", "invalid value"),
            (
                "[experiment]\nkind = \"x\"\n[experiment]\n",
                "defined twice",
            ),
        ] {
            let err = ExperimentSpec::parse(text).unwrap_err();
            assert!(err.message.contains(needle), "{text:?} -> {err}");
        }
    }

    #[test]
    fn sweep_platform_axis_and_platform_table_are_one_knob() {
        let base = |sweep: &str| {
            format!(
                "[experiment]\nkind = \"sweep\"\n\n[platform]\nname = \"cshallow\"\n\n\
                 [workload]\nkind = \"memcached\"\nrate_per_sec = 100\n\n[sweep]\nrates = [100]\n{sweep}"
            )
        };
        // A declared [platform] becomes the single-point axis.
        let spec = ExperimentSpec::parse(&base("")).unwrap();
        let SpecKind::Sweep { platforms, .. } = spec.kind else {
            panic!("expected sweep");
        };
        assert_eq!(platforms, vec![PlatformKind::Cshallow]);
        // Declaring both is a conflict, not a silent shadowing.
        let err = ExperimentSpec::parse(&base("platforms = [\"cpc1a\"]\n")).unwrap_err();
        assert!(
            err.message.contains("conflicts with the [platform]"),
            "{err}"
        );
    }

    #[test]
    fn seeds_keep_full_u64_precision() {
        let text = format!(
            "[experiment]\nkind = \"single\"\nseed = {}\n\n[workload]\nkind = \"memcached\"\nrate_per_sec = 100\n",
            u64::MAX
        );
        let spec = ExperimentSpec::parse(&text).unwrap();
        assert_eq!(spec.seed, u64::MAX, "no float rounding above 2^53");
        // Float and negative seeds are rejected, not rounded.
        for bad in ["seed = 1.5", "seed = -1"] {
            let text = format!(
                "[experiment]\nkind = \"single\"\n{bad}\n\n[workload]\nkind = \"memcached\"\nrate_per_sec = 100\n"
            );
            let err = ExperimentSpec::parse(&text).unwrap_err();
            assert!(
                err.message.contains("non-negative integer") || err.message.contains("invalid"),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn non_finite_numbers_are_rejected() {
        for bad in ["inf", "-inf", "nan", "1e999"] {
            let text = format!(
                "[experiment]\nkind = \"single\"\n\n[workload]\nkind = \"memcached\"\nrate_per_sec = {bad}\n"
            );
            let err = ExperimentSpec::parse(&text).unwrap_err();
            assert_eq!(err.line, 6, "{bad:?} -> {err}");
            assert!(
                err.message.contains("non-finite") || err.message.contains("invalid value"),
                "{bad:?} -> {err}"
            );
        }
    }

    #[test]
    fn parses_a_network_table() {
        let text = r#"
[experiment]
kind = "chain"

[workload]
kind = "memcached"
rate_per_sec = 4_000

[chain]
nodes = 8
fanout = 4

[network]
topology = "two-tier"
latency_us = 5
rack_size = 4
bandwidth_gbps = 25
rpc_bytes = 2_000
"#;
        let spec = ExperimentSpec::parse(text).unwrap();
        let net = spec.network.expect("network config parsed");
        assert_eq!(
            net,
            NetworkConfig::two_tier(SimDuration::from_micros(5), 4)
                .with_bandwidth(3_125_000_000)
                .with_rpc_bytes(2_000)
        );
        // Zero latency is a valid (instantaneous) fabric, not an error.
        let text = text.replace("latency_us = 5", "latency_us = 0");
        let net = ExperimentSpec::parse(&text).unwrap().network.unwrap();
        assert_eq!(net.link_latency, SimDuration::ZERO);
    }

    #[test]
    fn network_errors_are_usage_flagged_with_line_numbers() {
        let base = |network: &str| {
            format!(
                "[experiment]\nkind = \"cluster\"\n\n[workload]\nkind = \"memcached\"\n\
                 rate_per_sec = 100\n\n[cluster]\nnodes = 4\n\n[network]\n{network}"
            )
        };
        // The [network] table starts at line 11; its first key is line 12.
        for (table, needle, line) in [
            ("topology = \"ring\"\n", "unknown topology `ring`", 12),
            (
                "topology = \"flat\"\nbogus = 1\n",
                "unknown key `bogus`",
                13,
            ),
            (
                "topology = \"flat\"\nlatency_us = -3\n",
                "`latency_us` must be >= 0",
                13,
            ),
            (
                "topology = \"flat\"\nbandwidth_gbps = -1\n",
                "`bandwidth_gbps` must be > 0",
                13,
            ),
            (
                "topology = \"flat\"\nrack_size = 4\n",
                "`rack_size` does not apply",
                13,
            ),
            (
                "topology = \"two-tier\"\noversubscription = 4\n",
                "`oversubscription` does not apply",
                13,
            ),
        ] {
            let err = ExperimentSpec::parse(&base(table)).unwrap_err();
            assert!(err.usage, "{table:?} -> {err}");
            assert_eq!(err.line, line, "{table:?} -> {err}");
            assert!(err.message.contains(needle), "{table:?} -> {err}");
        }
        // Missing topology anchors to the table header line.
        let err = ExperimentSpec::parse(&base("latency_us = 1\n")).unwrap_err();
        assert!(err.usage, "{err}");
        assert_eq!(err.line, 11, "{err}");
        assert!(err.message.contains("needs `topology`"), "{err}");
        // A [network] table outside cluster/chain kinds is a plain
        // (non-usage) shape conflict.
        let text = "[experiment]\nkind = \"single\"\n\n[workload]\nkind = \"memcached\"\n\
                    rate_per_sec = 100\n\n[network]\ntopology = \"flat\"\n";
        let err = ExperimentSpec::parse(text).unwrap_err();
        assert!(!err.usage, "{err}");
        assert!(
            err.message
                .contains("[network] applies to cluster and chain"),
            "{err}"
        );
    }

    #[test]
    fn parses_a_trace_table() {
        let text = "[experiment]\nkind = \"single\"\n\n[workload]\nkind = \"memcached\"\n\
                    rate_per_sec = 100\n\n[trace]\nsample_every = 16\nmax_spans = 1_000\n";
        let spec = ExperimentSpec::parse(text).unwrap();
        assert_eq!(spec.trace, Some(TraceConfig::new(16).with_max_spans(1_000)));
        assert!(!spec.profile, "profiling is a CLI flag, never a spec key");
        // `max_spans` is optional and defaults.
        let text = text.replace("max_spans = 1_000\n", "");
        let spec = ExperimentSpec::parse(&text).unwrap();
        assert_eq!(spec.trace, Some(TraceConfig::new(16)));
    }

    #[test]
    fn trace_errors_are_usage_flagged_with_line_numbers() {
        let base = |trace: &str| {
            format!(
                "[experiment]\nkind = \"single\"\n\n[workload]\nkind = \"memcached\"\n\
                 rate_per_sec = 100\n\n[trace]\n{trace}"
            )
        };
        // The [trace] table starts at line 8; its first key is line 9.
        for (table, needle, line) in [
            ("sample_every = 16\nbogus = 1\n", "unknown key `bogus`", 10),
            ("sample_every = 0\n", "`sample_every` must be at least 1", 9),
            (
                "sample_every = 1.5\n",
                "`sample_every` must be a non-negative integer",
                9,
            ),
            (
                "sample_every = 16\nmax_spans = 0\n",
                "`max_spans` must be at least 1",
                10,
            ),
        ] {
            let err = ExperimentSpec::parse(&base(table)).unwrap_err();
            assert!(err.usage, "{table:?} -> {err}");
            assert_eq!(err.line, line, "{table:?} -> {err}");
            assert!(err.message.contains(needle), "{table:?} -> {err}");
        }
        // Missing sample_every anchors to the table header line.
        let err = ExperimentSpec::parse(&base("max_spans = 10\n")).unwrap_err();
        assert!(err.usage, "{err}");
        assert_eq!(err.line, 8, "{err}");
        assert!(err.message.contains("needs `sample_every`"), "{err}");
        // A [trace] table on fleet/sweep kinds is a plain (non-usage)
        // shape conflict, like [network] outside cluster/chain.
        let text = "[experiment]\nkind = \"fleet\"\n\n[workload]\nkind = \"memcached\"\n\
                    rate_per_sec = 100\n\n[fleet]\nservers = 2\n\n[trace]\nsample_every = 4\n";
        let err = ExperimentSpec::parse(text).unwrap_err();
        assert!(!err.usage, "{err}");
        assert!(
            err.message
                .contains("[trace] applies to single, cluster and chain"),
            "{err}"
        );
    }

    #[test]
    fn sweep_axes_parse() {
        let text = r#"
[experiment]
kind = "sweep"

[workload]
kind = "memcached"
rate_per_sec = 1 # overridden per point; must still be positive

[sweep]
rates = [4_000, 10_000, 25_000]
platforms = ["cshallow", "cpc1a"]
"#;
        let spec = ExperimentSpec::parse(text).unwrap();
        let SpecKind::Sweep { rates, platforms } = spec.kind else {
            panic!("expected sweep");
        };
        assert_eq!(rates, vec![4_000.0, 10_000.0, 25_000.0]);
        assert_eq!(platforms, vec![PlatformKind::Cshallow, PlatformKind::Cpc1a]);
    }
}
