//! Integration tests of the `apc-cli` command layer: spec execution end to
//! end, export determinism, and every documented error path.

use std::path::PathBuf;

use apc_analysis::export::JsonValue;
use apc_cli::{execute, CliError};

/// A scratch file unique to this test process, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let path = std::env::temp_dir().join(format!("apc-cli-test-{}-{name}", std::process::id()));
        Scratch(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp paths are UTF-8")
    }

    fn write(&self, content: &str) -> &Self {
        std::fs::write(&self.0, content).expect("write scratch file");
        self
    }

    fn read(&self) -> String {
        std::fs::read_to_string(&self.0).expect("read scratch file")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

const SINGLE_SPEC: &str = r#"
[experiment]
kind = "single"
name = "test-single"
seed = 7
duration_ms = 2

[workload]
kind = "memcached"
rate_per_sec = 20_000
"#;

const CLUSTER_SPEC: &str = r#"
[experiment]
kind = "cluster"
seed = 7
duration_ms = 5

[workload]
kind = "memcached"
rate_per_sec = 40_000

[cluster]
nodes = 2
policy = "jsq"

[telemetry]
sample_interval_us = 1000
"#;

#[test]
fn runs_a_single_spec_to_json() {
    let spec = Scratch::new("single.toml");
    spec.write(SINGLE_SPEC);
    let out = execute(&args(&["run", spec.path(), "--format", "json"])).unwrap();
    let parsed = JsonValue::parse(&out).expect("output is valid JSON");
    // The JSON shape is count-independent: one run still exports the fleet
    // object (consumers keep parsing when a count changes).
    assert_eq!(parsed.get("servers").and_then(JsonValue::as_u64), Some(1));
    let run = &parsed.get("runs").and_then(JsonValue::as_array).unwrap()[0];
    assert_eq!(
        run.get("config").and_then(JsonValue::as_str),
        Some("CPC1A"),
        "platform defaults to cpc1a"
    );
    assert!(
        run.get("completed_requests")
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0
    );
}

#[test]
fn cluster_spec_runs_end_to_end_with_timeseries() {
    let spec = Scratch::new("cluster.toml");
    spec.write(CLUSTER_SPEC);
    let json_out = Scratch::new("cluster.json");
    let ts_out = Scratch::new("cluster-ts.csv");
    let stdout = execute(&args(&[
        "run",
        spec.path(),
        "--format",
        "json",
        "--out",
        json_out.path(),
        "--timeseries-out",
        ts_out.path(),
    ]))
    .unwrap();
    assert!(stdout.contains("wrote"), "{stdout}");
    let parsed = JsonValue::parse(&json_out.read()).expect("file is valid JSON");
    // Cluster outcomes always export as an array (one entry per repeat).
    let clusters = parsed.as_array().expect("cluster JSON is an array");
    assert_eq!(clusters.len(), 1);
    assert_eq!(
        clusters[0].get("policy").and_then(JsonValue::as_str),
        Some("join-shortest-queue")
    );
    let ts = ts_out.read();
    assert!(ts.starts_with("node,at_ns,"), "{ts}");
    assert!(ts.contains("node 0,") && ts.contains("node 1,"));
    // The `validate` subcommand round-trips the export.
    let report = execute(&args(&["validate", json_out.path()])).unwrap();
    assert!(report.contains("valid JSON (array"), "{report}");
}

#[test]
fn identical_seeds_export_byte_identically_across_pool_sizes() {
    let spec = Scratch::new("pool.toml");
    spec.write(CLUSTER_SPEC);
    let run = |workers: &str, format: &str| {
        execute(&args(&[
            "run",
            spec.path(),
            "--format",
            format,
            "--parallelism",
            workers,
        ]))
        .unwrap()
    };
    assert_eq!(run("1", "json"), run("8", "json"));
    assert_eq!(run("1", "csv"), run("8", "csv"));
}

#[test]
fn named_scenarios_run_through_the_cli() {
    let out = execute(&args(&[
        "run",
        "cluster-8-mid",
        "--duration-ms",
        "2",
        "--format",
        "csv",
    ]))
    .unwrap();
    assert!(out.starts_with("repeat,node,policy,routed,"), "{out}");
    assert_eq!(out.lines().count(), 9, "header + 8 nodes");

    let out = execute(&args(&[
        "cluster",
        "cluster-8-trough",
        "--duration-ms",
        "2",
    ]))
    .unwrap();
    assert!(out.contains("cluster (power-aware)"), "{out}");
}

const CHAIN_SPEC: &str = r#"
[experiment]
kind = "chain"
name = "test-chain"
seed = 7
duration_ms = 5

[workload]
kind = "memcached"
rate_per_sec = 4_000   # root chains per second

[chain]
nodes = 4
fanout = 4
policy = "jsq"
"#;

#[test]
fn chain_spec_runs_end_to_end() {
    let spec = Scratch::new("chain.toml");
    spec.write(CHAIN_SPEC);
    let out = execute(&args(&["run", spec.path(), "--format", "json"])).unwrap();
    let parsed = JsonValue::parse(&out).expect("output is valid JSON");
    // Chain outcomes always export as an array (one entry per repeat).
    let chains = parsed.as_array().expect("chain JSON is an array");
    assert_eq!(chains.len(), 1);
    let c = &chains[0];
    assert_eq!(
        c.get("policy").and_then(JsonValue::as_str),
        Some("join-shortest-queue")
    );
    assert_eq!(
        c.get("graph").and_then(JsonValue::as_str),
        Some("1x frontend -> 4x kv-get")
    );
    assert!(
        c.get("chains_completed")
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0
    );
    let latency = c.get("chain_latency").expect("chain_latency object");
    for key in ["p50_ns", "p99_ns", "p999_ns"] {
        assert!(
            latency.get(key).and_then(JsonValue::as_u64).unwrap() > 0,
            "{key}"
        );
    }
    assert!(c.get("straggler").is_some(), "straggler breakdown exported");

    // The CSV shape leads with the chain percentiles header.
    let csv = execute(&args(&["run", spec.path(), "--format", "csv"])).unwrap();
    assert!(csv.starts_with("repeat,policy,graph,"), "{csv}");
    assert!(csv.contains("e2e_p999_ns"), "{csv}");
    assert!(csv.contains("straggler_p999_ns"), "{csv}");
    assert_eq!(csv.lines().count(), 2, "header + one run: {csv}");
}

#[test]
fn chain_exports_are_byte_identical_across_pool_sizes() {
    let spec = Scratch::new("chain-pool.toml");
    spec.write(CHAIN_SPEC);
    let run = |workers: &str, format: &str| {
        execute(&args(&[
            "run",
            spec.path(),
            "--format",
            format,
            "--parallelism",
            workers,
        ]))
        .unwrap()
    };
    assert_eq!(run("1", "json"), run("8", "json"));
    assert_eq!(run("1", "csv"), run("8", "csv"));
}

#[test]
fn named_chain_scenarios_run_through_the_cli() {
    let out = execute(&args(&[
        "run",
        "mesh-8-fanout4",
        "--duration-ms",
        "2",
        "--platform",
        "cpc1a",
    ]))
    .unwrap();
    assert!(
        out.contains("mesh-8-fanout4 (cpc1a, join-shortest-queue)"),
        "{out}"
    );
    assert!(out.contains("e2e p50"), "{out}");
    // Chain scenarios are `run` targets, not `cluster` targets.
    let err = execute(&args(&["cluster", "mesh-8-fanout4"])).unwrap_err();
    let CliError::Input(message) = &err else {
        panic!("expected input error, got {err:?}");
    };
    assert!(message.contains("chain scenario"), "{message}");
}

#[test]
fn chain_spec_validation_errors_carry_line_numbers() {
    // Missing [chain] table.
    let spec = Scratch::new("chain-missing.toml");
    spec.write(
        "[experiment]\nkind = \"chain\"\n\n[workload]\nkind = \"memcached\"\nrate_per_sec = 100\n",
    );
    let err = execute(&args(&["run", spec.path()])).unwrap_err();
    assert!(err.to_string().contains("needs a [chain] table"), "{err}");
    // Missing fanout.
    let spec = Scratch::new("chain-nofanout.toml");
    spec.write(
        "[experiment]\nkind = \"chain\"\n\n[workload]\nkind = \"memcached\"\nrate_per_sec = 100\n\n[chain]\nnodes = 4\n",
    );
    let err = execute(&args(&["run", spec.path()])).unwrap_err();
    assert!(err.to_string().contains("[chain] needs `fanout`"), "{err}");
    // A [chain] table under a different kind is a conflict.
    let spec = Scratch::new("chain-conflict.toml");
    spec.write(
        "[experiment]\nkind = \"single\"\n\n[workload]\nkind = \"memcached\"\nrate_per_sec = 100\n\n[chain]\nnodes = 4\nfanout = 2\n",
    );
    let err = execute(&args(&["run", spec.path()])).unwrap_err();
    assert!(
        err.to_string().contains("[chain] conflicts with kind"),
        "{err}"
    );
    // Non-constant patterns cannot drive the coordinator's root stream.
    let spec = Scratch::new("chain-pattern.toml");
    spec.write(
        "[experiment]\nkind = \"chain\"\n\n[workload]\nkind = \"memcached\"\nrate_per_sec = 100\npattern = \"diurnal\"\n\n[chain]\nnodes = 4\nfanout = 2\n",
    );
    let err = execute(&args(&["run", spec.path()])).unwrap_err();
    assert!(
        err.to_string().contains("chain experiments support only"),
        "{err}"
    );
}

const NETWORK_CHAIN_SPEC: &str = r#"
[experiment]
kind = "chain"
name = "test-chain-net"
seed = 7
duration_ms = 5

[workload]
kind = "memcached"
rate_per_sec = 4_000

[chain]
nodes = 4
fanout = 4
policy = "jsq"

[network]
topology = "two-tier"
latency_us = 5
rack_size = 2
"#;

#[test]
fn network_spec_runs_and_exports_fabric_stats() {
    let spec = Scratch::new("chain-net.toml");
    spec.write(NETWORK_CHAIN_SPEC);
    let out = execute(&args(&["run", spec.path(), "--format", "json"])).unwrap();
    let parsed = JsonValue::parse(&out).expect("output is valid JSON");
    let c = &parsed.as_array().expect("chain JSON is an array")[0];
    let net = c.get("network").expect("network object exported");
    assert_eq!(
        net.get("topology").and_then(JsonValue::as_str),
        Some("two-tier")
    );
    assert_eq!(
        net.get("link_latency_ns").and_then(JsonValue::as_u64),
        Some(5_000)
    );
    assert!(net.get("messages").and_then(JsonValue::as_u64).unwrap() > 0);
    assert!(
        net.get("total_wire_delay_ns")
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0
    );
    // The CSV gains the network columns only because a fabric ran.
    let csv = execute(&args(&["run", spec.path(), "--format", "csv"])).unwrap();
    assert!(csv.contains("net_topology"), "{csv}");
    assert!(csv.contains("two-tier"), "{csv}");
}

#[test]
fn network_spec_errors_are_line_numbered_usage_errors() {
    // Each bad table: the error names the offending line and exits 2.
    for (name, network, needle, line) in [
        (
            "net-topo.toml",
            "topology = \"ring\"\n",
            "unknown topology `ring`",
            "line 18",
        ),
        (
            "net-key.toml",
            "topology = \"flat\"\njitter_us = 3\n",
            "unknown key `jitter_us`",
            "line 19",
        ),
        (
            "net-latency.toml",
            "topology = \"flat\"\nlatency_us = -5\n",
            "`latency_us` must be >= 0",
            "line 19",
        ),
        (
            "net-bw.toml",
            "topology = \"flat\"\nbandwidth_gbps = 0\n",
            "`bandwidth_gbps` must be > 0",
            "line 19",
        ),
    ] {
        let spec = Scratch::new(name);
        // CHAIN_SPEC is 16 lines ending in a newline; [network] lands on
        // line 17 and its first key on line 18.
        spec.write(&format!("{CHAIN_SPEC}\n[network]\n{network}"));
        let err = execute(&args(&["run", spec.path()])).unwrap_err();
        let CliError::Usage(message) = &err else {
            panic!("expected usage error for {network:?}, got {err:?}");
        };
        assert!(message.contains(needle), "{network:?} -> {message}");
        assert!(message.contains(line), "{network:?} -> {message}");
        assert_eq!(err.exit_code(), 2);
    }
    // A [network] table on a non-cluster kind stays a plain input error
    // (exit 1), like every other shape conflict.
    let spec = Scratch::new("net-kind.toml");
    spec.write(&format!("{SINGLE_SPEC}\n[network]\ntopology = \"flat\"\n"));
    let err = execute(&args(&["run", spec.path()])).unwrap_err();
    let CliError::Input(message) = &err else {
        panic!("expected input error, got {err:?}");
    };
    assert!(
        message.contains("[network] applies to cluster and chain"),
        "{message}"
    );
    assert_eq!(err.exit_code(), 1);
}

#[test]
fn trace_spec_runs_and_writes_chrome_trace_json() {
    let spec = Scratch::new("trace-chain.toml");
    // CHAIN_SPEC plus a [trace] table; every root chain is traced.
    spec.write(&format!("{CHAIN_SPEC}\n[trace]\nsample_every = 1\n"));
    let json_out = Scratch::new("trace-chain.json");
    let trace_out = Scratch::new("trace-chain-trace.json");
    let stdout = execute(&args(&[
        "run",
        spec.path(),
        "--format",
        "json",
        "--out",
        json_out.path(),
        "--trace-out",
        trace_out.path(),
        "--profile",
    ]))
    .unwrap();
    assert!(stdout.contains("wrote"), "{stdout}");

    // The result export gains the self-profiler report (and only that —
    // simulated values are pinned elsewhere to be identical either way).
    let parsed = JsonValue::parse(&json_out.read()).expect("result JSON parses");
    let c = &parsed.as_array().expect("chain JSON is an array")[0];
    let profile = c.get("profile").expect("profile report exported");
    let engine = profile.get("engine").expect("engine counters");
    assert!(
        engine
            .get("dispatched")
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0
    );
    assert!(profile
        .get("events")
        .and_then(JsonValue::as_array)
        .is_some());
    assert!(
        c.get("events_dispatched")
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0
    );

    // The Chrome trace file is valid JSON with complete events carrying
    // the span taxonomy; `validate` round-trips it like any other export.
    let trace = JsonValue::parse(&trace_out.read()).expect("trace JSON parses");
    let events = trace
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty(), "no spans exported");
    for event in events {
        assert_eq!(event.get("ph").and_then(JsonValue::as_str), Some("X"));
    }
    for cat in ["queue", "service", "root", "tier"] {
        assert!(
            events
                .iter()
                .any(|e| e.get("cat").and_then(JsonValue::as_str) == Some(cat)),
            "no `{cat}` span in the export"
        );
    }
    let report = execute(&args(&["validate", trace_out.path()])).unwrap();
    assert!(report.contains("valid JSON (object"), "{report}");
}

#[test]
fn trace_exports_are_byte_identical_across_pool_sizes() {
    let spec = Scratch::new("trace-pool.toml");
    spec.write(&format!("{CHAIN_SPEC}\n[trace]\nsample_every = 2\n"));
    let run = |workers: &str| {
        let out = Scratch::new(&format!("trace-pool-{workers}.json"));
        execute(&args(&[
            "run",
            spec.path(),
            "--trace-out",
            out.path(),
            "--parallelism",
            workers,
        ]))
        .unwrap();
        out.read()
    };
    assert_eq!(run("1"), run("8"));
}

#[test]
fn trace_spec_errors_are_line_numbered_usage_errors() {
    // Each bad table: the error names the offending line and exits 2.
    for (name, trace, needle, line) in [
        (
            "trace-key.toml",
            "sample_every = 4\nspan_cap = 3\n",
            "unknown key `span_cap`",
            "line 19",
        ),
        (
            "trace-rate.toml",
            "sample_every = 0\n",
            "`sample_every` must be at least 1",
            "line 18",
        ),
        (
            "trace-float.toml",
            "sample_every = 0.5\n",
            "`sample_every` must be a non-negative integer",
            "line 18",
        ),
        (
            "trace-bound.toml",
            "sample_every = 4\nmax_spans = 0\n",
            "`max_spans` must be at least 1",
            "line 19",
        ),
        (
            "trace-missing.toml",
            "max_spans = 16\n",
            "[trace] needs `sample_every`",
            "line 17",
        ),
    ] {
        let spec = Scratch::new(name);
        // Same arithmetic as the [network] error tests: CHAIN_SPEC is 16
        // lines, so [trace] lands on line 17 and its first key on line 18.
        spec.write(&format!("{CHAIN_SPEC}\n[trace]\n{trace}"));
        let err = execute(&args(&["run", spec.path()])).unwrap_err();
        let CliError::Usage(message) = &err else {
            panic!("expected usage error for {trace:?}, got {err:?}");
        };
        assert!(message.contains(needle), "{trace:?} -> {message}");
        assert!(message.contains(line), "{trace:?} -> {message}");
        assert_eq!(err.exit_code(), 2);
    }
    // A [trace] table on a fleet/sweep kind stays a plain input error
    // (exit 1), like every other shape conflict.
    let spec = Scratch::new("trace-kind.toml");
    spec.write(
        "[experiment]\nkind = \"fleet\"\n\n[workload]\nkind = \"memcached\"\n\
         rate_per_sec = 100\n\n[fleet]\nservers = 2\n\n[trace]\nsample_every = 4\n",
    );
    let err = execute(&args(&["run", spec.path()])).unwrap_err();
    let CliError::Input(message) = &err else {
        panic!("expected input error, got {err:?}");
    };
    assert!(
        message.contains("[trace] applies to single, cluster and chain"),
        "{message}"
    );
    assert_eq!(err.exit_code(), 1);
}

#[test]
fn trace_out_needs_a_trace_table_and_profile_needs_a_spec() {
    // --trace-out without a [trace] table fails before anything runs.
    let spec = Scratch::new("trace-noflag.toml");
    spec.write(SINGLE_SPEC);
    let err = execute(&args(&[
        "run",
        spec.path(),
        "--trace-out",
        "/tmp/nope.json",
    ]))
    .unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("[trace]")),
        "{err:?}"
    );
    assert_eq!(err.exit_code(), 2);
    // Named library scenarios never trace or profile.
    let err = execute(&args(&[
        "run",
        "mesh-8-fanout4",
        "--trace-out",
        "/tmp/nope.json",
    ]))
    .unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("--trace-out")),
        "{err:?}"
    );
    let err = execute(&args(&["run", "cluster-8-mid", "--profile"])).unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("--profile")),
        "{err:?}"
    );
}

#[test]
fn sweep_expands_the_cartesian_grid() {
    let spec = Scratch::new("sweep.toml");
    spec.write(
        r#"
[experiment]
kind = "sweep"
duration_ms = 2

[workload]
kind = "memcached"
rate_per_sec = 1

[sweep]
rates = [5_000, 20_000]
platforms = ["cshallow", "cpc1a"]
"#,
    );
    let out = execute(&args(&["sweep", spec.path(), "--format", "csv"])).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 5, "header + 2x2 grid: {out}");
    assert!(lines[1].starts_with("cshallow@5000,"));
    assert!(lines[4].starts_with("cpc1a@20000,"));
}

#[test]
fn list_names_every_library_scenario() {
    let table = execute(&args(&["list"])).unwrap();
    for name in [
        "diurnal",
        "flash-crowd",
        "heterogeneous",
        "low-load-sweep",
        "cluster-8-mid",
        "cluster-8-trough",
        "cluster-16-kafka",
        "mesh-8-fanout4",
        "mesh-16-memcached",
    ] {
        assert!(table.contains(name), "missing {name} in\n{table}");
    }
    let json = execute(&args(&["list", "--format", "json"])).unwrap();
    let parsed = JsonValue::parse(&json).expect("list JSON parses");
    assert_eq!(parsed.as_array().map(<[_]>::len), Some(9));
}

// ---- error paths -------------------------------------------------------

#[test]
fn malformed_specs_fail_with_line_numbers() {
    let spec = Scratch::new("bad.toml");
    spec.write("[experiment]\nkind = \"single\"\n[workload]\nkind = memcached\n");
    let err = execute(&args(&["run", spec.path()])).unwrap_err();
    let CliError::Input(message) = &err else {
        panic!("expected input error, got {err:?}");
    };
    assert!(message.contains("line 4"), "{message}");
    assert!(message.contains("invalid value"), "{message}");
    assert_eq!(err.exit_code(), 1);
}

#[test]
fn unknown_scenario_names_are_rejected_with_suggestions() {
    let err = execute(&args(&["run", "no-such-scenario"])).unwrap_err();
    let CliError::Input(message) = &err else {
        panic!("expected input error, got {err:?}");
    };
    assert!(message.contains("unknown scenario"), "{message}");
    assert!(message.contains("cluster-8-mid"), "{message}");
}

#[test]
fn conflicting_flags_are_usage_errors() {
    // The same flag twice.
    let err = execute(&args(&[
        "run",
        "cluster-8-mid",
        "--format",
        "json",
        "--format",
        "csv",
    ]))
    .unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("given twice")),
        "{err:?}"
    );
    assert_eq!(err.exit_code(), 2);

    // A policy on a fleet scenario.
    let err = execute(&args(&["run", "diurnal", "--policy", "jsq"])).unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("does not apply to fleet scenario")),
        "{err:?}"
    );

    // A policy override on a cluster spec file (specs own their policy;
    // `--policy` only applies to named cluster scenarios).
    let cluster_spec = Scratch::new("conflict-cluster.toml");
    cluster_spec.write(CLUSTER_SPEC);
    let err = execute(&args(&[
        "cluster",
        cluster_spec.path(),
        "--policy",
        "random",
    ]))
    .unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("--policy")),
        "{err:?}"
    );

    // A platform override on a spec file (specs own their platform).
    let spec = Scratch::new("conflict.toml");
    spec.write(SINGLE_SPEC);
    let err = execute(&args(&["run", spec.path(), "--platform", "cdeep"])).unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("--platform")),
        "{err:?}"
    );

    // --timeseries-out without a [telemetry] table.
    let err = execute(&args(&[
        "run",
        spec.path(),
        "--timeseries-out",
        "/tmp/nope.csv",
    ]))
    .unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("[telemetry]")),
        "{err:?}"
    );
}

#[test]
fn unknown_flags_and_commands_are_usage_errors() {
    let err = execute(&args(&["run", "diurnal", "--nodes", "4"])).unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("--nodes")),
        "{err:?}"
    );
    let err = execute(&args(&["frobnicate"])).unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("frobnicate")),
        "{err:?}"
    );
    let err = execute(&args(&[])).unwrap_err();
    assert!(matches!(err, CliError::Usage(_)), "{err:?}");
}

#[test]
fn sweep_rejects_non_sweep_specs() {
    let spec = Scratch::new("notsweep.toml");
    spec.write(SINGLE_SPEC);
    let err = execute(&args(&["sweep", spec.path()])).unwrap_err();
    assert!(
        matches!(&err, CliError::Input(m) if m.contains("not a sweep spec")),
        "{err:?}"
    );
}

#[test]
fn cluster_rejects_non_cluster_targets() {
    let spec = Scratch::new("notcluster.toml");
    spec.write(SINGLE_SPEC);
    let err = execute(&args(&["cluster", spec.path()])).unwrap_err();
    assert!(
        matches!(&err, CliError::Input(m) if m.contains("not a cluster spec")),
        "{err:?}"
    );
    let err = execute(&args(&["cluster", "diurnal"])).unwrap_err();
    assert!(
        matches!(&err, CliError::Input(m) if m.contains("fleet scenario")),
        "{err:?}"
    );
}

#[test]
fn validate_rejects_invalid_json() {
    let bad = Scratch::new("bad.json");
    bad.write("{\"unterminated\": ");
    let err = execute(&args(&["validate", bad.path()])).unwrap_err();
    assert!(
        matches!(&err, CliError::Input(m) if m.contains("JSON error")),
        "{err:?}"
    );
    let err = execute(&args(&["validate", "/no/such/file.json"])).unwrap_err();
    assert!(matches!(err, CliError::Io(_)), "{err:?}");
}
