//! Integration tests of the streaming result path: `--stream-out`
//! incremental exports, `sweep --shard` checkpoints and `merge`.
//!
//! The contract under test is *byte identity*: streaming a result to disk,
//! or sharding a sweep across processes and merging the checkpoints, must
//! reproduce the buffered single-process artefact exactly — same bytes,
//! not just same numbers. Every identity assertion here compares whole
//! file contents.

use std::path::PathBuf;

use apc_analysis::export::JsonValue;
use apc_cli::{execute, CliError};

/// A scratch file unique to this test process, cleaned up on drop.
struct Scratch(PathBuf);

impl Scratch {
    fn new(name: &str) -> Self {
        let path =
            std::env::temp_dir().join(format!("apc-stream-test-{}-{name}", std::process::id()));
        Scratch(path)
    }

    fn path(&self) -> &str {
        self.0.to_str().expect("temp paths are UTF-8")
    }

    fn write(&self, content: &str) -> &Self {
        std::fs::write(&self.0, content).expect("write scratch file");
        self
    }

    fn read(&self) -> String {
        std::fs::read_to_string(&self.0).expect("read scratch file")
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| (*s).to_owned()).collect()
}

const SWEEP_SPEC: &str = r#"
[experiment]
kind = "sweep"
name = "shard-sweep"
seed = 7
duration_ms = 2

[workload]
kind = "memcached"
rate_per_sec = 1

[sweep]
rates = [5_000, 20_000]
platforms = ["cshallow", "cpc1a"]
"#;

const CLUSTER_SPEC: &str = r#"
[experiment]
kind = "cluster"
seed = 7
duration_ms = 5

[workload]
kind = "memcached"
rate_per_sec = 40_000

[cluster]
nodes = 2
policy = "jsq"

[telemetry]
sample_interval_us = 1000
"#;

// ---- --stream-out ------------------------------------------------------

#[test]
fn streamed_sweep_output_is_byte_identical_to_buffered() {
    let spec = Scratch::new("sweep.toml");
    spec.write(SWEEP_SPEC);
    for format in ["json", "csv"] {
        let buffered = Scratch::new(&format!("sweep-buf.{format}"));
        let streamed = Scratch::new(&format!("sweep-stream.{format}"));
        execute(&args(&[
            "sweep",
            spec.path(),
            "--format",
            format,
            "--out",
            buffered.path(),
        ]))
        .unwrap();
        let stdout = execute(&args(&[
            "sweep",
            spec.path(),
            "--format",
            format,
            "--stream-out",
            streamed.path(),
        ]))
        .unwrap();
        assert!(stdout.contains("wrote"), "{stdout}");
        assert_eq!(buffered.read(), streamed.read(), "{format}");
    }
}

#[test]
fn streamed_cluster_output_and_timeseries_are_byte_identical_to_buffered() {
    let spec = Scratch::new("cluster.toml");
    spec.write(CLUSTER_SPEC);
    let buffered = Scratch::new("cluster-buf.json");
    let buffered_ts = Scratch::new("cluster-buf-ts.csv");
    let streamed = Scratch::new("cluster-stream.json");
    let streamed_ts = Scratch::new("cluster-stream-ts.csv");
    execute(&args(&[
        "run",
        spec.path(),
        "--format",
        "json",
        "--out",
        buffered.path(),
        "--timeseries-out",
        buffered_ts.path(),
    ]))
    .unwrap();
    execute(&args(&[
        "run",
        spec.path(),
        "--format",
        "json",
        "--stream-out",
        streamed.path(),
        "--timeseries-out",
        streamed_ts.path(),
    ]))
    .unwrap();
    assert_eq!(buffered.read(), streamed.read());
    assert_eq!(buffered_ts.read(), streamed_ts.read());
    // The `cluster` alias streams the same bytes as `run`.
    let via_cluster = Scratch::new("cluster-alias.json");
    let via_cluster_ts = Scratch::new("cluster-alias-ts.csv");
    execute(&args(&[
        "cluster",
        spec.path(),
        "--format",
        "json",
        "--stream-out",
        via_cluster.path(),
        "--timeseries-out",
        via_cluster_ts.path(),
    ]))
    .unwrap();
    assert_eq!(buffered.read(), via_cluster.read());
    assert_eq!(buffered_ts.read(), via_cluster_ts.read());
}

#[test]
fn stream_out_flag_conflicts_are_usage_errors() {
    let spec = Scratch::new("conflicts.toml");
    spec.write(SWEEP_SPEC);
    // --stream-out and --out write the same artefact.
    let err = execute(&args(&[
        "sweep",
        spec.path(),
        "--format",
        "json",
        "--out",
        "/tmp/a.json",
        "--stream-out",
        "/tmp/b.json",
    ]))
    .unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("write the same artefact")),
        "{err:?}"
    );
    assert_eq!(err.exit_code(), 2);
    // Tables are rendered whole; streaming needs json or csv.
    let err = execute(&args(&["sweep", spec.path(), "--stream-out", "/tmp/b.txt"])).unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("tables are rendered whole")),
        "{err:?}"
    );
    // Named library scenarios render their output whole.
    let err = execute(&args(&[
        "run",
        "cluster-8-mid",
        "--format",
        "json",
        "--stream-out",
        "/tmp/b.json",
    ]))
    .unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("--stream-out") && m.contains("spec files")),
        "{err:?}"
    );
}

// ---- sweep --shard / merge ---------------------------------------------

#[test]
fn shard_checkpoints_merge_into_the_unsharded_artefact_byte_for_byte() {
    let spec = Scratch::new("shard.toml");
    spec.write(SWEEP_SPEC);
    let shard0 = Scratch::new("shard0.json");
    let shard1 = Scratch::new("shard1.json");
    for (shard, out) in [("0/2", &shard0), ("1/2", &shard1)] {
        let stdout = execute(&args(&[
            "sweep",
            spec.path(),
            "--shard",
            shard,
            "--out",
            out.path(),
        ]))
        .unwrap();
        assert!(stdout.contains("wrote"), "{stdout}");
    }
    // The checkpoint envelope is versioned and carries only this shard's
    // residue class of the grid.
    let ck = JsonValue::parse(&shard0.read()).expect("checkpoint is valid JSON");
    assert_eq!(
        ck.get("apc_sweep_checkpoint").and_then(JsonValue::as_u64),
        Some(1)
    );
    assert_eq!(
        ck.get("spec_name").and_then(JsonValue::as_str),
        Some("shard-sweep")
    );
    assert_eq!(ck.get("total_points").and_then(JsonValue::as_u64), Some(4));
    let points = ck.get("points").and_then(JsonValue::as_array).unwrap();
    assert_eq!(points.len(), 2, "2 of 4 grid points belong to shard 0");
    for p in points {
        let index = p.get("index").and_then(JsonValue::as_u64).unwrap();
        assert_eq!(index % 2, 0, "shard 0 holds even grid indices");
        assert!(p.get("sketch").is_some(), "point carries its sketch");
    }
    // Merged output == unsharded output, for every format — with the
    // shards given in reverse order, so ordering comes from grid indices,
    // not argument position.
    for format in ["json", "csv", "table"] {
        let unsharded = execute(&args(&["sweep", spec.path(), "--format", format])).unwrap();
        let merged = execute(&args(&[
            "merge",
            shard1.path(),
            shard0.path(),
            "--format",
            format,
        ]))
        .unwrap();
        assert_eq!(unsharded, merged, "{format}");
    }
}

#[test]
fn shard_flag_errors_are_usage_errors() {
    let spec = Scratch::new("shard-errs.toml");
    spec.write(SWEEP_SPEC);
    // Malformed or out-of-range shard spellings.
    for bad in ["2", "a/b", "1/0", "2/2", "3/2", "/2", "1/"] {
        let err = execute(&args(&[
            "sweep",
            spec.path(),
            "--shard",
            bad,
            "--out",
            "/tmp/ck.json",
        ]))
        .unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(m) if m.contains("`--shard` must be `i/n`")),
            "{bad}: {err:?}"
        );
        assert_eq!(err.exit_code(), 2);
    }
    // A checkpoint needs a destination.
    let err = execute(&args(&["sweep", spec.path(), "--shard", "0/2"])).unwrap_err();
    assert!(
        matches!(&err, CliError::Usage(m) if m.contains("needs `--out <path>`")),
        "{err:?}"
    );
    // Result-shaping flags belong to `merge`, not to the shard run.
    for flag in [
        &["--format", "json"][..],
        &["--stream-out", "/tmp/x.json"][..],
        &["--profile"][..],
    ] {
        let mut cmd = vec![
            "sweep",
            spec.path(),
            "--shard",
            "0/2",
            "--out",
            "/tmp/ck.json",
        ];
        cmd.extend_from_slice(flag);
        let err = execute(&args(&cmd)).unwrap_err();
        assert!(
            matches!(&err, CliError::Usage(m) if m.contains("give it to `merge` instead")),
            "{flag:?}: {err:?}"
        );
    }
}

#[test]
fn merge_rejects_inconsistent_or_tampered_checkpoints() {
    let spec = Scratch::new("merge-errs.toml");
    spec.write(SWEEP_SPEC);
    let shard0 = Scratch::new("merge-errs0.json");
    let shard1 = Scratch::new("merge-errs1.json");
    for (shard, out) in [("0/2", &shard0), ("1/2", &shard1)] {
        execute(&args(&[
            "sweep",
            spec.path(),
            "--shard",
            shard,
            "--out",
            out.path(),
        ]))
        .unwrap();
    }

    // Too few checkpoints for the declared split.
    let err = execute(&args(&["merge", shard0.path()])).unwrap_err();
    assert!(
        matches!(&err, CliError::Input(m) if m.contains("split 2 ways but 1 checkpoint")),
        "{err:?}"
    );
    assert_eq!(err.exit_code(), 1);

    // The same shard twice.
    let err = execute(&args(&["merge", shard0.path(), shard0.path()])).unwrap_err();
    assert!(
        matches!(&err, CliError::Input(m) if m.contains("shard 0 given more than once")),
        "{err:?}"
    );

    // A shard from a different sweep.
    let other_spec = Scratch::new("merge-other.toml");
    other_spec.write(&SWEEP_SPEC.replace("shard-sweep", "other-sweep"));
    let other1 = Scratch::new("merge-other1.json");
    execute(&args(&[
        "sweep",
        other_spec.path(),
        "--shard",
        "1/2",
        "--out",
        other1.path(),
    ]))
    .unwrap();
    let err = execute(&args(&["merge", shard0.path(), other1.path()])).unwrap_err();
    assert!(
        matches!(&err, CliError::Input(m) if m.contains("does not match `shard-sweep`")),
        "{err:?}"
    );

    // Not a checkpoint at all.
    let junk = Scratch::new("merge-junk.json");
    junk.write("{\"runs\": []}\n");
    let err = execute(&args(&["merge", junk.path(), shard1.path()])).unwrap_err();
    assert!(
        matches!(&err, CliError::Input(m) if m.contains("not a sweep checkpoint")),
        "{err:?}"
    );

    // A tampered summary: edit one printed percentile so it no longer
    // agrees with the point's sketch. The strict loader must refuse it —
    // this is the guard that keeps merged artefacts exact.
    let text = shard0.read();
    let needle = "\"p50_ns\": ";
    let at = text.find(needle).expect("checkpoint prints p50") + needle.len();
    let end = at + text[at..].find(',').expect("value is comma-terminated");
    let tampered = Scratch::new("merge-tampered.json");
    tampered.write(&format!("{}{}{}", &text[..at], "1", &text[end..]));
    let err = execute(&args(&["merge", tampered.path(), shard1.path()])).unwrap_err();
    assert!(
        matches!(&err, CliError::Input(m) if m.contains("does not match its sketch")),
        "{err:?}"
    );

    // A missing file is an I/O error.
    let err = execute(&args(&["merge", "/no/such/checkpoint.json"])).unwrap_err();
    assert!(matches!(err, CliError::Io(_)), "{err:?}");
}
