//! # `apc-trace` — zero-perturbation observability
//!
//! Request span tracing and engine self-profiling for the APC simulation
//! stack. The crate owns the *data model* only — the span/stamp types that
//! ride inside requests, the bounded log they are collected into, and the
//! profiler report surfaced by run results. The server crate does the
//! stamping; `apc-analysis` renders the Chrome trace-event JSON.
//!
//! ## Determinism contract
//!
//! Tracing and profiling are pure observers:
//!
//! * sampling decisions draw from a **dedicated forked RNG stream**
//!   (`"trace-sampler"`), so enabling tracing never advances any component
//!   or load-generator stream;
//! * span stamps live in an `Option<TraceCtx>` carried *by value* inside the
//!   request — no behavioural branch in the simulation inspects it;
//! * profiler counters are plain monotonic integers incremented alongside
//!   existing event-queue operations.
//!
//! Consequently a run with tracing/profiling enabled produces bit-identical
//! simulation results to the same run with them disabled.
//!
//! ```
//! use apc_sim::SimRng;
//! use apc_trace::{HeadSampler, TraceConfig, TraceState};
//!
//! let config = TraceConfig::new(4);
//! let mut trace = TraceState::new(config, SimRng::from_seed(7).fork("trace-sampler"));
//! let picks: Vec<bool> = (0..8).map(|_| trace.sampler.sample()).collect();
//! // Deterministic for a fixed seed, roughly 1-in-4.
//! assert_eq!(picks, {
//!     let mut again = HeadSampler::new(4, SimRng::from_seed(7).fork("trace-sampler"));
//!     (0..8).map(|_| again.sample()).collect::<Vec<bool>>()
//! });
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

use std::fmt;

use apc_sim::engine::QueueCounters;
use apc_sim::rng::SimRng;
use apc_sim::time::{SimDuration, SimTime};

/// Configuration for request span tracing, normally parsed from a `[trace]`
/// spec table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Head-sampling rate: one in `sample_every` root requests is traced.
    /// A value of `1` (or `0`) traces every request.
    pub sample_every: u64,
    /// Upper bound on retained spans; further spans are counted as dropped.
    pub max_spans: usize,
}

/// Default bound on retained spans when a spec does not override it.
pub const DEFAULT_MAX_SPANS: usize = 65_536;

impl TraceConfig {
    /// Creates a config sampling one in `sample_every` requests with the
    /// [`DEFAULT_MAX_SPANS`] bound.
    pub fn new(sample_every: u64) -> Self {
        Self {
            sample_every,
            max_spans: DEFAULT_MAX_SPANS,
        }
    }

    /// Replaces the retained-span bound.
    pub fn with_max_spans(mut self, max_spans: usize) -> Self {
        self.max_spans = max_spans;
        self
    }
}

/// Per-request trace context, carried by value inside a sampled request.
///
/// Components stamp the context as the request moves through the pipeline;
/// the final service-completion handler turns the stamps into [`Span`]s.
/// Stamps are `Option`s so paths that skip a stage (e.g. a core that was
/// already awake) degrade to zero-length spans instead of lying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// Trace identifier: the root request id, or the chain id for chain RPCs.
    pub trace: u64,
    /// When the root entered the system (balancer routing / chain tier issue).
    pub arrival: SimTime,
    /// When the request was deposited into the destination NIC buffer.
    pub deposited: Option<SimTime>,
    /// When NIC coalescing released it into the scheduler queue.
    pub delivered: Option<SimTime>,
    /// When the scheduler handed it to a core (queue exit).
    pub assigned: Option<SimTime>,
    /// When the core began its wakeup transition for this request.
    pub wake_start: Option<SimTime>,
    /// Name of the C-state the core left to serve this request.
    pub wake_cstate: Option<&'static str>,
    /// When service execution began on the core.
    pub service_start: Option<SimTime>,
}

impl TraceCtx {
    /// Starts a trace context for root `trace` arriving at `arrival`.
    pub fn root(trace: u64, arrival: SimTime) -> Self {
        Self {
            trace,
            arrival,
            deposited: None,
            delivered: None,
            assigned: None,
            wake_start: None,
            wake_cstate: None,
            service_start: None,
        }
    }
}

/// The pipeline stage a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Wire transit from the routing point to the destination NIC.
    WireOut,
    /// Wait inside the NIC coalescing buffer.
    Coalesce,
    /// Wait in the scheduler run queue.
    Queue,
    /// Core wakeup (C-state exit) latency; labelled with the C-state name.
    Wake,
    /// Service execution on the core.
    Service,
    /// Wire transit of the completion report back to the chain coordinator.
    WireBack,
    /// Wait at the chain coordinator for sibling leaves of the same tier.
    Join,
    /// One chain tier: issue to last sibling joined.
    Tier,
    /// Whole root request / chain, end to end.
    Root,
}

impl SpanKind {
    /// Stable lowercase name used as the Chrome trace-event category.
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::WireOut => "wire-out",
            SpanKind::Coalesce => "coalesce",
            SpanKind::Queue => "queue",
            SpanKind::Wake => "wake",
            SpanKind::Service => "service",
            SpanKind::WireBack => "wire-back",
            SpanKind::Join => "join",
            SpanKind::Tier => "tier",
            SpanKind::Root => "root",
        }
    }
}

/// One closed interval of a traced request's life, in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Trace this span belongs to (root request id / chain id).
    pub trace: u64,
    /// Stage covered.
    pub kind: SpanKind,
    /// Extra attribution: the C-state name for [`SpanKind::Wake`] spans,
    /// `""` otherwise.
    pub label: &'static str,
    /// Node the span executed on (chain coordinators use the node count as a
    /// pseudo-node id).
    pub node: u32,
    /// Lane within the node: `0` for NIC/queue spans, `1 + core` for
    /// wake/service spans, the sibling index for join spans.
    pub lane: u32,
    /// Inclusive start of the interval.
    pub start: SimTime,
    /// Exclusive end of the interval; `end >= start` always holds.
    pub end: SimTime,
}

impl Span {
    /// Length of the interval.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// Bounded, insertion-ordered collection of [`Span`]s.
///
/// Once `max_spans` spans are retained further pushes only increment
/// [`TraceLog::dropped`], keeping memory bounded on huge runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceLog {
    spans: Vec<Span>,
    max_spans: usize,
    dropped: u64,
}

impl TraceLog {
    /// Creates an empty log retaining at most `max_spans` spans.
    pub fn new(max_spans: usize) -> Self {
        Self {
            spans: Vec::new(),
            max_spans,
            dropped: 0,
        }
    }

    /// Records `span`, or counts it as dropped when the log is full.
    pub fn push(&mut self, span: Span) {
        if self.spans.len() < self.max_spans {
            self.spans.push(span);
        } else {
            self.dropped += 1;
        }
    }

    /// Retained spans, in emission order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Number of spans discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// True when no span was retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Appends every span of `other` (respecting this log's bound).
    pub fn absorb(&mut self, other: &TraceLog) {
        for span in &other.spans {
            self.push(*span);
        }
        self.dropped += other.dropped;
    }
}

/// Deterministic 1-in-N head sampler drawing from a dedicated RNG fork.
///
/// The stream is forked once (label `"trace-sampler"`) from the experiment
/// seed, so draws never perturb component or load-generator streams.
#[derive(Debug, Clone)]
pub struct HeadSampler {
    every: u64,
    rng: SimRng,
}

impl HeadSampler {
    /// Creates a sampler keeping one in `every` roots (`every <= 1` keeps all).
    pub fn new(every: u64, rng: SimRng) -> Self {
        Self { every, rng }
    }

    /// Draws the head-sampling decision for the next root request.
    pub fn sample(&mut self) -> bool {
        if self.every <= 1 {
            return true;
        }
        self.rng.next_u64() % self.every == 0
    }
}

/// Live tracing state owned by the experiment driver while a run executes.
#[derive(Debug, Clone)]
pub struct TraceState {
    /// Head-sampling decision source.
    pub sampler: HeadSampler,
    /// Collected spans.
    pub log: TraceLog,
}

impl TraceState {
    /// Builds the state for `config`, drawing decisions from `rng`.
    pub fn new(config: TraceConfig, rng: SimRng) -> Self {
        Self {
            sampler: HeadSampler::new(config.sample_every, rng),
            log: TraceLog::new(config.max_spans),
        }
    }

    /// Consumes the state, returning the collected log.
    pub fn into_log(self) -> TraceLog {
        self.log
    }
}

/// Aggregate event-core counters (see [`QueueCounters`] for field semantics).
///
/// For parallel runs this is the sum over every partition's event queue;
/// `max_batch` takes the maximum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineProfile {
    /// Events scheduled (including backdated cross-partition deposits).
    pub scheduled: u64,
    /// Events dispatched to handlers.
    pub dispatched: u64,
    /// Events cancelled before dispatch.
    pub cancelled: u64,
    /// Level-0 wheel batches staged.
    pub level0_batches: u64,
    /// Events dispatched through level-0 batches.
    pub batched_events: u64,
    /// Largest single same-timestamp batch.
    pub max_batch: u64,
    /// Events that missed the wheel horizon and hit the overflow heap.
    pub overflow_hits: u64,
}

impl EngineProfile {
    /// Lifts one event queue's counters into a profile.
    pub fn from_counters(c: QueueCounters) -> Self {
        Self {
            scheduled: c.scheduled,
            dispatched: c.dispatched,
            cancelled: c.cancelled,
            level0_batches: c.level0_batches,
            batched_events: c.batched_events,
            max_batch: c.max_batch,
            overflow_hits: c.overflow_hits,
        }
    }

    /// Accumulates another queue's counters (partition merge).
    pub fn merge(&mut self, c: QueueCounters) {
        self.scheduled += c.scheduled;
        self.dispatched += c.dispatched;
        self.cancelled += c.cancelled;
        self.level0_batches += c.level0_batches;
        self.batched_events += c.batched_events;
        self.max_batch = self.max_batch.max(c.max_batch);
        self.overflow_hits += c.overflow_hits;
    }
}

/// Scheduled/dispatched/cancelled counts for one event kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventKindCount {
    /// Stable event-kind name (e.g. `"ServiceDone"`).
    pub kind: &'static str,
    /// Events of this kind scheduled.
    pub scheduled: u64,
    /// Events of this kind dispatched.
    pub dispatched: u64,
    /// Events of this kind cancelled.
    pub cancelled: u64,
}

/// Wall-clock profile of one worker thread in a parallel run.
///
/// The `*_ns` fields are host wall-clock measurements: useful for diagnosing
/// scaling, **never** compared between runs (they are not deterministic).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerProfile {
    /// Worker index.
    pub worker: u32,
    /// Epochs this worker executed.
    pub epochs: u64,
    /// Total wall-clock nanoseconds spent waiting at epoch barriers.
    pub barrier_wait_ns: u64,
    /// Cross-partition wire transfers replayed into this worker's partitions.
    pub cross_wires: u64,
}

/// Engine self-profile surfaced by `RunResult` / `ClusterResult` /
/// `ChainResult` when profiling is enabled.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ProfileReport {
    /// Aggregate event-core counters.
    pub engine: EngineProfile,
    /// Per-event-kind counters (empty if the kind classifier was not enabled).
    pub events: Vec<EventKindCount>,
    /// Per-worker profiles; empty for sequential runs.
    pub workers: Vec<WorkerProfile>,
    /// Wall-clock nanoseconds the hub spent planning/replaying epochs
    /// (parallel runs only; not deterministic, never compared).
    pub hub_replay_ns: u64,
}

impl ProfileReport {
    /// Drops every event kind that never appeared, keeping reports short.
    pub fn retain_active_kinds(&mut self) {
        self.events
            .retain(|k| k.scheduled != 0 || k.dispatched != 0 || k.cancelled != 0);
    }
}

impl fmt::Display for ProfileReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "engine: scheduled {} dispatched {} cancelled {} | level0 batches {} \
             (events {}, max {}) overflow hits {}",
            self.engine.scheduled,
            self.engine.dispatched,
            self.engine.cancelled,
            self.engine.level0_batches,
            self.engine.batched_events,
            self.engine.max_batch,
            self.engine.overflow_hits,
        )?;
        for kind in &self.events {
            writeln!(
                f,
                "  {:<18} scheduled {:>10} dispatched {:>10} cancelled {:>10}",
                kind.kind, kind.scheduled, kind.dispatched, kind.cancelled
            )?;
        }
        for w in &self.workers {
            writeln!(
                f,
                "  worker {} epochs {} barrier-wait {} ns cross-wires {}",
                w.worker, w.epochs, w.barrier_wait_ns, w.cross_wires
            )?;
        }
        if self.hub_replay_ns != 0 {
            writeln!(f, "  hub replay {} ns", self.hub_replay_ns)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_and_respects_rate_one() {
        let mut always = HeadSampler::new(1, SimRng::from_seed(3).fork("trace-sampler"));
        assert!((0..32).all(|_| always.sample()));

        let draws = |seed: u64| {
            let mut s = HeadSampler::new(8, SimRng::from_seed(seed).fork("trace-sampler"));
            (0..256).map(|_| s.sample()).collect::<Vec<_>>()
        };
        assert_eq!(draws(7), draws(7));
        assert_ne!(draws(7), draws(8));
        let kept = draws(7).iter().filter(|&&b| b).count();
        assert!(kept > 0 && kept < 256, "1-in-8 sampling kept {kept} of 256");
    }

    #[test]
    fn trace_log_bounds_memory_and_counts_drops() {
        let span = Span {
            trace: 1,
            kind: SpanKind::Service,
            label: "",
            node: 0,
            lane: 1,
            start: SimTime::ZERO,
            end: SimTime::from_nanos(10),
        };
        let mut log = TraceLog::new(2);
        for _ in 0..5 {
            log.push(span);
        }
        assert_eq!(log.spans().len(), 2);
        assert_eq!(log.dropped(), 3);

        let mut merged = TraceLog::new(3);
        merged.absorb(&log);
        assert_eq!(merged.spans().len(), 2);
        assert_eq!(merged.dropped(), 3);
    }

    #[test]
    fn engine_profile_merges_counters() {
        let a = QueueCounters {
            scheduled: 10,
            dispatched: 8,
            cancelled: 1,
            level0_batches: 4,
            batched_events: 8,
            max_batch: 3,
            overflow_hits: 2,
        };
        let mut p = EngineProfile::from_counters(a);
        p.merge(QueueCounters { max_batch: 5, ..a });
        assert_eq!(p.scheduled, 20);
        assert_eq!(p.max_batch, 5);
        assert_eq!(p.overflow_hits, 4);
    }

    #[test]
    fn span_duration_and_kind_names() {
        let span = Span {
            trace: 9,
            kind: SpanKind::Wake,
            label: "CC6",
            node: 2,
            lane: 3,
            start: SimTime::from_nanos(100),
            end: SimTime::from_nanos(350),
        };
        assert_eq!(span.duration(), SimDuration::from_nanos(250));
        assert_eq!(SpanKind::Wake.name(), "wake");
        assert_eq!(SpanKind::WireBack.name(), "wire-back");
    }

    #[test]
    fn profile_report_display_and_retain() {
        let mut report = ProfileReport {
            engine: EngineProfile {
                scheduled: 3,
                dispatched: 3,
                ..Default::default()
            },
            events: vec![
                EventKindCount {
                    kind: "ServiceDone",
                    scheduled: 2,
                    dispatched: 2,
                    cancelled: 0,
                },
                EventKindCount {
                    kind: "Unused",
                    scheduled: 0,
                    dispatched: 0,
                    cancelled: 0,
                },
            ],
            workers: vec![WorkerProfile {
                worker: 0,
                epochs: 5,
                barrier_wait_ns: 10,
                cross_wires: 2,
            }],
            hub_replay_ns: 7,
        };
        report.retain_active_kinds();
        assert_eq!(report.events.len(), 1);
        let text = report.to_string();
        assert!(text.contains("ServiceDone"));
        assert!(text.contains("hub replay 7 ns"));
    }
}
