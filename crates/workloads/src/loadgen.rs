//! Open-loop load generator (the Mutilate / sysbench / Kafka-client stand-in).
//!
//! A [`LoadGenerator`] owns an arrival process and a workload specification
//! and produces the request stream the server simulation consumes. It is an
//! *open-loop* generator: requests arrive according to the configured rate
//! regardless of how the server is coping, which is the behaviour that makes
//! tail latency meaningful.

use apc_sim::rng::SimRng;
use apc_sim::SimTime;

use crate::arrival::ArrivalProcess;
use crate::request::{Request, RequestId};
use crate::spec::WorkloadSpec;

/// An open-loop request generator.
#[derive(Debug)]
pub struct LoadGenerator {
    spec: WorkloadSpec,
    arrivals: Box<dyn ArrivalProcess>,
    rng: SimRng,
    next_id: u64,
    next_arrival: SimTime,
    rate_per_sec: f64,
}

impl LoadGenerator {
    /// Creates a generator for `spec` at the given request rate, seeded
    /// deterministically, using the spec's default (stationary) arrival
    /// process.
    #[must_use]
    pub fn new(spec: WorkloadSpec, rate_per_sec: f64, seed: u64) -> Self {
        let arrivals = spec.arrival_process(rate_per_sec);
        LoadGenerator::with_arrival_process(spec, arrivals, rate_per_sec, seed)
    }

    /// Creates a generator driving `spec` with an explicit arrival process.
    ///
    /// This is the entry point for scenario-driven time-varying traffic
    /// ([`crate::arrival::PiecewiseRateArrivals`],
    /// [`crate::arrival::SinusoidArrivals`]). `rate_per_sec` is the nominal
    /// rate reported by [`LoadGenerator::rate_per_sec`] (and recorded in run
    /// results); pass the process's long-run average over the intended run —
    /// for repeating schedules that is simply
    /// [`ArrivalProcess::rate_per_sec`].
    ///
    /// Randomness is seeded exactly as in [`LoadGenerator::new`], but note
    /// that arrival gaps and service times interleave on one `"loadgen"`
    /// stream and different processes consume different numbers of draws
    /// per gap, so swapping the process shifts subsequent service-time
    /// draws as well.
    #[must_use]
    pub fn with_arrival_process(
        spec: WorkloadSpec,
        arrivals: Box<dyn ArrivalProcess>,
        rate_per_sec: f64,
        seed: u64,
    ) -> Self {
        let mut rng = SimRng::from_seed(seed).fork("loadgen");
        let mut gen = LoadGenerator {
            spec,
            arrivals,
            rng: rng.clone(),
            next_id: 0,
            next_arrival: SimTime::ZERO,
            rate_per_sec,
        };
        // Draw the first gap so arrivals do not all start at t = 0.
        let gap = gen.arrivals.next_gap(&mut rng);
        gen.rng = rng;
        gen.next_arrival = SimTime::ZERO + gap;
        gen
    }

    /// The workload specification.
    #[must_use]
    pub fn spec(&self) -> &WorkloadSpec {
        &self.spec
    }

    /// The configured request rate.
    #[must_use]
    pub fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }

    /// The arrival time of the next request (without consuming it).
    #[must_use]
    pub fn peek_next_arrival(&self) -> SimTime {
        self.next_arrival
    }

    /// Produces the next request and advances the arrival clock.
    pub fn next_request(&mut self) -> Request {
        let arrival = self.next_arrival;
        let request = self
            .spec
            .sample_request(&mut self.rng, RequestId(self.next_id), arrival);
        self.next_id += 1;
        let gap = self.arrivals.next_gap(&mut self.rng);
        self.next_arrival = arrival + gap;
        request
    }

    /// Produces every request arriving up to (and including) `until`.
    pub fn requests_until(&mut self, until: SimTime) -> Vec<Request> {
        let mut out = Vec::new();
        while self.next_arrival <= until {
            out.push(self.next_request());
        }
        out
    }

    /// Number of requests generated so far.
    #[must_use]
    pub fn generated(&self) -> u64 {
        self.next_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use apc_sim::SimDuration;

    #[test]
    fn generates_monotonic_arrivals_at_the_configured_rate() {
        let mut gen = LoadGenerator::new(WorkloadSpec::memcached_etc(), 50_000.0, 42);
        let horizon = SimTime::from_secs(1);
        let requests = gen.requests_until(horizon);
        let n = requests.len() as f64;
        assert!((n - 50_000.0).abs() / 50_000.0 < 0.05, "generated {n}");
        assert!(requests.windows(2).all(|w| w[0].arrival <= w[1].arrival));
        assert_eq!(gen.generated(), requests.len() as u64);
        assert!(gen.peek_next_arrival() > horizon);
        assert_eq!(gen.rate_per_sec(), 50_000.0);
        assert_eq!(gen.spec().name, "memcached");
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let mut a = LoadGenerator::new(WorkloadSpec::kafka(), 8_000.0, 7);
        let mut b = LoadGenerator::new(WorkloadSpec::kafka(), 8_000.0, 7);
        for _ in 0..1000 {
            let ra = a.next_request();
            let rb = b.next_request();
            assert_eq!(ra.arrival, rb.arrival);
            assert_eq!(ra.service, rb.service);
            assert_eq!(ra.class, rb.class);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = LoadGenerator::new(WorkloadSpec::mysql_oltp(), 800.0, 1);
        let mut b = LoadGenerator::new(WorkloadSpec::mysql_oltp(), 800.0, 2);
        let same = (0..100)
            .filter(|_| a.next_request().arrival == b.next_request().arrival)
            .count();
        assert!(same < 5);
    }

    #[test]
    fn service_times_have_the_expected_mean() {
        let mut gen = LoadGenerator::new(WorkloadSpec::memcached_etc(), 100_000.0, 3);
        let total: SimDuration = (0..50_000).map(|_| gen.next_request().service).sum();
        let mean_us = total.as_micros_f64() / 50_000.0;
        assert!(
            mean_us > 17.0 && mean_us < 24.0,
            "mean service {mean_us} us"
        );
    }
}
