//! Per-tier service-time specifications for multi-tier request chains.
//!
//! Microservice datacenters rarely serve a request on one machine: a
//! frontend parses it, fans out to N storage leaves (the memcached
//! scatter-gather pattern) and joins the responses, so end-to-end latency is
//! decided by the *slowest* leaf and wake latency compounds at every tier.
//! A [`TierService`] describes the CPU work of one such tier as a
//! declarative, `Send + Clone` value — the chain counterpart of
//! [`crate::spec::ClassMix`], which owns boxed distributions and therefore
//! cannot cross the thread boundary of the parallel experiment pools.
//!
//! The shape of the chain (how many tiers, the fan-out width per tier) lives
//! with the coordinator that executes it (`apc-server`'s request-chain
//! layer); this module only owns the per-tier *work* model.

use apc_sim::dist::{Distribution, LogNormal};
use apc_sim::rng::SimRng;
use apc_sim::SimDuration;

use crate::request::RequestClass;

/// The CPU service-time specification of one tier of a request chain.
///
/// Service times are log-normally distributed (the same family the
/// single-server workload mixes use), parameterised by mean and coefficient
/// of variation so the spec stays plain `Clone + PartialEq` data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TierService {
    /// The tier's request class (what the per-node telemetry records).
    pub class: RequestClass,
    /// Mean CPU service time, in nanoseconds.
    pub mean_service_ns: f64,
    /// Coefficient of variation of the service time.
    pub cv: f64,
}

impl TierService {
    /// A tier serving `class` with the given mean service time and
    /// coefficient of variation.
    ///
    /// # Panics
    ///
    /// Panics when the mean is not positive or the CV is negative — a
    /// non-positive service time has no physical meaning and would silently
    /// produce empty tiers.
    #[must_use]
    pub fn new(class: RequestClass, mean_service: SimDuration, cv: f64) -> Self {
        assert!(
            !mean_service.is_zero(),
            "a chain tier needs a positive mean service time"
        );
        assert!(cv >= 0.0, "service-time CV must be non-negative");
        TierService {
            class,
            mean_service_ns: mean_service.as_nanos() as f64,
            cv,
        }
    }

    /// The frontend tier of a memcached-style scatter-gather service:
    /// request parsing, fan-out bookkeeping and response aggregation
    /// (~10 µs of CPU work, moderately variable).
    #[must_use]
    pub fn frontend() -> Self {
        TierService::new(RequestClass::Frontend, SimDuration::from_micros(10), 0.5)
    }

    /// A memcached leaf lookup, calibrated like the KV-GET class of
    /// [`crate::spec::WorkloadSpec::memcached_etc`] (~19 µs mean, CV 0.8).
    #[must_use]
    pub fn memcached_leaf() -> Self {
        TierService::new(RequestClass::KvGet, SimDuration::from_nanos(19_000), 0.8)
    }

    /// A kafka-broker leaf (per-message append/fetch work, ~100 µs mean).
    #[must_use]
    pub fn kafka_leaf() -> Self {
        TierService::new(RequestClass::Produce, SimDuration::from_nanos(100_000), 0.7)
    }

    /// A MySQL OLTP leaf, calibrated like
    /// [`crate::spec::WorkloadSpec::mysql_oltp`]'s transaction class
    /// (~1 ms mean, CV 0.6).
    #[must_use]
    pub fn mysql_leaf() -> Self {
        TierService::new(
            RequestClass::OltpTransaction,
            SimDuration::from_nanos(1_000_000),
            0.6,
        )
    }

    /// The mean CPU service time of the tier.
    #[must_use]
    pub fn mean_service(&self) -> SimDuration {
        SimDuration::from_nanos(self.mean_service_ns.round() as u64)
    }

    /// Overrides the mean service time, keeping class and CV.
    #[must_use]
    pub fn with_mean_service(mut self, mean: SimDuration) -> Self {
        assert!(
            !mean.is_zero(),
            "a chain tier needs a positive mean service time"
        );
        self.mean_service_ns = mean.as_nanos() as f64;
        self
    }

    /// Draws one RPC's CPU service time from the tier's distribution
    /// (floored at 100 ns like every workload service-time draw).
    pub fn sample_service(&self, rng: &mut SimRng) -> SimDuration {
        let d = LogNormal::from_mean_cv(self.mean_service_ns, self.cv);
        SimDuration::from_nanos(d.sample(rng).max(100.0).round() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_of_the_builtin_tiers() {
        assert_eq!(
            TierService::frontend().mean_service(),
            SimDuration::from_micros(10)
        );
        assert_eq!(
            TierService::memcached_leaf().mean_service(),
            SimDuration::from_nanos(19_000)
        );
        assert_eq!(TierService::frontend().class, RequestClass::Frontend);
        assert!(
            TierService::kafka_leaf().mean_service() > TierService::memcached_leaf().mean_service()
        );
    }

    #[test]
    fn sampling_respects_the_mean_and_floor() {
        let tier = TierService::memcached_leaf();
        let mut rng = SimRng::from_seed(9);
        let n = 20_000;
        let total: SimDuration = (0..n).map(|_| tier.sample_service(&mut rng)).sum();
        let mean_us = total.as_micros_f64() / f64::from(n);
        assert!(mean_us > 17.0 && mean_us < 21.0, "mean {mean_us} us");
        let mut rng = SimRng::from_seed(10);
        assert!((0..1000).all(|_| tier.sample_service(&mut rng) >= SimDuration::from_nanos(100)));
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let tier = TierService::frontend().with_mean_service(SimDuration::from_micros(5));
        let draw = |seed| {
            let mut rng = SimRng::from_seed(seed);
            (0..100)
                .map(|_| tier.sample_service(&mut rng))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    #[should_panic(expected = "positive mean service time")]
    fn zero_mean_service_is_rejected() {
        let _ = TierService::new(RequestClass::KvGet, SimDuration::ZERO, 0.5);
    }
}
