//! Arrival processes.
//!
//! The paper's workloads are driven by open-loop load generators (Mutilate,
//! Kafka perf clients, sysbench) whose request streams are bursty at the
//! microsecond scale: requests arrive over the network, are coalesced by the
//! NIC, and exhibit on/off behaviour from client-side batching and TCP
//! dynamics. The reproduction models arrivals as either a plain Poisson
//! process or a two-state Markov-modulated Poisson process (MMPP), which is
//! the standard way to introduce controlled burstiness.

use apc_sim::rng::SimRng;
use apc_sim::SimDuration;

/// An open-loop arrival process producing inter-arrival gaps.
pub trait ArrivalProcess: std::fmt::Debug + Send {
    /// Draws the gap until the next request arrival.
    fn next_gap(&mut self, rng: &mut SimRng) -> SimDuration;

    /// The long-run average arrival rate in requests per second.
    fn rate_per_sec(&self) -> f64;
}

/// A Poisson arrival process with exponential inter-arrival gaps.
#[derive(Debug, Clone)]
pub struct PoissonArrivals {
    rate_per_sec: f64,
}

impl PoissonArrivals {
    /// Creates a Poisson process with the given request rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive and finite.
    #[must_use]
    pub fn new(rate_per_sec: f64) -> Self {
        assert!(
            rate_per_sec.is_finite() && rate_per_sec > 0.0,
            "arrival rate must be positive"
        );
        PoissonArrivals { rate_per_sec }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_gap(&mut self, rng: &mut SimRng) -> SimDuration {
        let mean_ns = 1e9 / self.rate_per_sec;
        SimDuration::from_nanos(rng.exponential(mean_ns).round() as u64)
    }

    fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }
}

/// A two-state (burst / quiet) Markov-modulated Poisson process.
///
/// While in the *burst* state arrivals follow a Poisson process at
/// `burst_multiplier ×` the average rate; in the *quiet* state the rate drops
/// so that the long-run average equals the configured rate. State holding
/// times are exponential. This captures the "bursty and unpredictable load"
/// the paper attributes to user-facing services.
#[derive(Debug, Clone)]
pub struct MmppArrivals {
    rate_per_sec: f64,
    burst_multiplier: f64,
    burst_fraction: f64,
    mean_burst: SimDuration,
    in_burst: bool,
    state_left: SimDuration,
}

impl MmppArrivals {
    /// Creates an MMPP with the given average rate.
    ///
    /// * `burst_multiplier` — how much faster arrivals come during a burst
    ///   (e.g. 3.0);
    /// * `burst_fraction` — long-run fraction of time spent in the burst
    ///   state (0–1);
    /// * `mean_burst` — mean burst episode duration.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive, the multiplier is < 1, or the
    /// fraction is outside (0, 1).
    #[must_use]
    pub fn new(
        rate_per_sec: f64,
        burst_multiplier: f64,
        burst_fraction: f64,
        mean_burst: SimDuration,
    ) -> Self {
        assert!(rate_per_sec.is_finite() && rate_per_sec > 0.0);
        assert!(burst_multiplier >= 1.0, "burst multiplier must be >= 1");
        assert!(
            burst_fraction > 0.0 && burst_fraction < 1.0,
            "burst fraction must be in (0, 1)"
        );
        MmppArrivals {
            rate_per_sec,
            burst_multiplier,
            burst_fraction,
            mean_burst,
            in_burst: false,
            state_left: SimDuration::ZERO,
        }
    }

    /// The arrival rate in the quiet state, derived so that the long-run
    /// average matches `rate_per_sec`.
    fn quiet_rate(&self) -> f64 {
        let burst_rate = self.rate_per_sec * self.burst_multiplier;
        let quiet =
            (self.rate_per_sec - self.burst_fraction * burst_rate) / (1.0 - self.burst_fraction);
        quiet.max(self.rate_per_sec * 0.01)
    }

    fn mean_quiet(&self) -> SimDuration {
        // Holding times chosen so the stationary burst fraction is honoured.
        let ratio = (1.0 - self.burst_fraction) / self.burst_fraction;
        self.mean_burst.mul_f64(ratio)
    }

    fn maybe_switch_state(&mut self, rng: &mut SimRng, consumed: SimDuration) {
        if self.state_left > consumed {
            self.state_left -= consumed;
            return;
        }
        // Switch states and draw a new holding time.
        self.in_burst = !self.in_burst;
        let mean = if self.in_burst {
            self.mean_burst
        } else {
            self.mean_quiet()
        };
        self.state_left =
            SimDuration::from_nanos(rng.exponential(mean.as_nanos() as f64).round() as u64);
    }
}

impl ArrivalProcess for MmppArrivals {
    fn next_gap(&mut self, rng: &mut SimRng) -> SimDuration {
        let rate = if self.in_burst {
            self.rate_per_sec * self.burst_multiplier
        } else {
            self.quiet_rate()
        };
        let gap = SimDuration::from_nanos(rng.exponential(1e9 / rate).round() as u64);
        self.maybe_switch_state(rng, gap);
        gap
    }

    fn rate_per_sec(&self) -> f64 {
        self.rate_per_sec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measured_rate<A: ArrivalProcess>(a: &mut A, n: usize, seed: u64) -> f64 {
        let mut rng = SimRng::from_seed(seed);
        let total: SimDuration = (0..n).map(|_| a.next_gap(&mut rng)).sum();
        n as f64 / total.as_secs_f64()
    }

    #[test]
    fn poisson_rate_matches_configuration() {
        let mut p = PoissonArrivals::new(50_000.0);
        let r = measured_rate(&mut p, 100_000, 1);
        assert!((r - 50_000.0).abs() / 50_000.0 < 0.02, "rate {r}");
        assert_eq!(p.rate_per_sec(), 50_000.0);
    }

    #[test]
    #[should_panic(expected = "arrival rate must be positive")]
    fn poisson_rejects_zero_rate() {
        let _ = PoissonArrivals::new(0.0);
    }

    #[test]
    fn mmpp_long_run_rate_matches_configuration() {
        let mut m = MmppArrivals::new(20_000.0, 4.0, 0.2, SimDuration::from_millis(2));
        let r = measured_rate(&mut m, 200_000, 2);
        assert!((r - 20_000.0).abs() / 20_000.0 < 0.10, "rate {r}");
        assert_eq!(m.rate_per_sec(), 20_000.0);
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Compare the coefficient of variation of inter-arrival gaps.
        let cv = |gaps: &[f64]| {
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
            var.sqrt() / mean
        };
        let mut rng = SimRng::from_seed(3);
        let mut p = PoissonArrivals::new(10_000.0);
        let pg: Vec<f64> = (0..50_000)
            .map(|_| p.next_gap(&mut rng).as_nanos() as f64)
            .collect();
        let mut m = MmppArrivals::new(10_000.0, 6.0, 0.15, SimDuration::from_millis(1));
        let mg: Vec<f64> = (0..50_000)
            .map(|_| m.next_gap(&mut rng).as_nanos() as f64)
            .collect();
        assert!(
            cv(&mg) > cv(&pg),
            "MMPP cv {} vs Poisson cv {}",
            cv(&mg),
            cv(&pg)
        );
    }

    #[test]
    #[should_panic(expected = "burst fraction")]
    fn mmpp_rejects_bad_fraction() {
        let _ = MmppArrivals::new(1000.0, 2.0, 1.5, SimDuration::from_millis(1));
    }
}
