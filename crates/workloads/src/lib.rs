//! # `apc-workloads` — latency-critical datacenter workload models
//!
//! Synthetic stand-ins for the three services the paper evaluates
//! (Memcached with the Facebook ETC mix, Kafka, MySQL/sysbench OLTP) plus the
//! OS background noise that bounds full-system idleness.
//!
//! * [`request`] — request/class types (including the chain tag multi-tier
//!   RPCs carry);
//! * [`arrival`] — stationary (Poisson, MMPP) and time-varying
//!   (piecewise-rate, sinusoidal) arrival processes;
//! * [`spec`] — per-service specifications, operating points and the
//!   background-noise model;
//! * [`chain`] — per-tier service-time specifications for multi-tier
//!   request chains (frontend → fan-out leaves);
//! * [`loadgen`] — the open-loop load generator.
//!
//! # Example
//!
//! ```
//! use apc_workloads::loadgen::LoadGenerator;
//! use apc_workloads::spec::WorkloadSpec;
//! use apc_sim::SimTime;
//!
//! let mut gen = LoadGenerator::new(WorkloadSpec::memcached_etc(), 4_000.0, 1);
//! let first = gen.next_request();
//! assert!(first.arrival > SimTime::ZERO);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod arrival;
pub mod chain;
pub mod loadgen;
pub mod request;
pub mod spec;

pub use arrival::{
    ArrivalProcess, MmppArrivals, PiecewiseRateArrivals, PoissonArrivals, RateSegment,
    SinusoidArrivals,
};
pub use chain::TierService;
pub use loadgen::LoadGenerator;
pub use request::{ChainTag, Request, RequestClass, RequestId};
pub use spec::{BackgroundNoise, OperatingPoint, WorkloadSpec};
