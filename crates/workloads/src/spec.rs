//! Workload specifications for the paper's three services.
//!
//! Each specification bundles a request-class mix, per-class service-time
//! distributions, the burstiness of the arrival process and the network round
//! trip, plus the operating points (request rates) at which the paper
//! evaluates the service. The parameters are calibrated so that the
//! *processor utilisation* and *full-system idleness* land in the ranges the
//! paper reports (see DESIGN.md §5), not to reproduce the services'
//! micro-architectural behaviour.

use apc_sim::dist::{Distribution, LogNormal};
use apc_sim::rng::SimRng;
use apc_sim::{SimDuration, SimTime};

use crate::arrival::{ArrivalProcess, MmppArrivals, PoissonArrivals};
use crate::request::{Request, RequestClass, RequestId};

/// One request class within a workload mix.
#[derive(Debug)]
pub struct ClassMix {
    /// The request class.
    pub class: RequestClass,
    /// Relative weight of this class in the mix.
    pub weight: f64,
    /// CPU service-time distribution, in nanoseconds.
    pub service_ns: Box<dyn Distribution>,
}

/// Burstiness parameters of the arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burstiness {
    /// Rate multiplier during bursts (1.0 = plain Poisson).
    pub multiplier: f64,
    /// Long-run fraction of time in the burst state.
    pub fraction: f64,
    /// Mean burst episode duration.
    pub mean_burst: SimDuration,
}

impl Burstiness {
    /// Plain Poisson arrivals.
    #[must_use]
    pub fn none() -> Self {
        Burstiness {
            multiplier: 1.0,
            fraction: 0.5,
            mean_burst: SimDuration::from_millis(1),
        }
    }
}

/// A named operating point (label + request rate) used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperatingPoint {
    /// Human-readable label ("low", "50K QPS", ...).
    pub label: &'static str,
    /// Request rate in requests per second.
    pub rate_per_sec: f64,
}

/// A complete workload specification.
#[derive(Debug)]
pub struct WorkloadSpec {
    /// Service name ("memcached", "kafka", "mysql").
    pub name: &'static str,
    /// Request class mix.
    pub mix: Vec<ClassMix>,
    /// Arrival burstiness.
    pub burstiness: Burstiness,
    /// Client-observed network round-trip time added to every request's
    /// end-to-end latency (the paper's testbed measures ≈ 117 µs).
    pub network_rtt: SimDuration,
    /// The operating points the paper evaluates for this service.
    pub operating_points: Vec<OperatingPoint>,
}

impl WorkloadSpec {
    /// Memcached running the Facebook ETC workload via a Mutilate-like
    /// client (paper Sec. 6): ~20 µs mean service time, GET-dominated, very
    /// bursty arrivals, evaluated from 4 K to 600 K QPS with the low-load
    /// region at 4 K–100 K QPS.
    #[must_use]
    pub fn memcached_etc() -> Self {
        WorkloadSpec {
            name: "memcached",
            mix: vec![
                ClassMix {
                    class: RequestClass::KvGet,
                    weight: 0.95,
                    service_ns: Box::new(LogNormal::from_mean_cv(19_000.0, 0.8)),
                },
                ClassMix {
                    class: RequestClass::KvSet,
                    weight: 0.05,
                    service_ns: Box::new(LogNormal::from_mean_cv(38_000.0, 0.8)),
                },
            ],
            burstiness: Burstiness {
                multiplier: 3.0,
                fraction: 0.25,
                mean_burst: SimDuration::from_micros(500),
            },
            network_rtt: SimDuration::from_micros(117),
            operating_points: vec![
                OperatingPoint {
                    label: "4K",
                    rate_per_sec: 4_000.0,
                },
                OperatingPoint {
                    label: "10K",
                    rate_per_sec: 10_000.0,
                },
                OperatingPoint {
                    label: "25K",
                    rate_per_sec: 25_000.0,
                },
                OperatingPoint {
                    label: "50K",
                    rate_per_sec: 50_000.0,
                },
                OperatingPoint {
                    label: "100K",
                    rate_per_sec: 100_000.0,
                },
                OperatingPoint {
                    label: "200K",
                    rate_per_sec: 200_000.0,
                },
                OperatingPoint {
                    label: "300K",
                    rate_per_sec: 300_000.0,
                },
                OperatingPoint {
                    label: "400K",
                    rate_per_sec: 400_000.0,
                },
            ],
        }
    }

    /// Kafka producer/consumer streaming (paper Sec. 7.4): ~100 µs mean
    /// per-message broker work, evaluated at 8 % and 16 % processor load.
    #[must_use]
    pub fn kafka() -> Self {
        WorkloadSpec {
            name: "kafka",
            mix: vec![
                ClassMix {
                    class: RequestClass::Produce,
                    weight: 0.5,
                    service_ns: Box::new(LogNormal::from_mean_cv(110_000.0, 0.7)),
                },
                ClassMix {
                    class: RequestClass::Consume,
                    weight: 0.5,
                    service_ns: Box::new(LogNormal::from_mean_cv(90_000.0, 0.7)),
                },
            ],
            burstiness: Burstiness {
                multiplier: 4.0,
                fraction: 0.2,
                mean_burst: SimDuration::from_millis(2),
            },
            network_rtt: SimDuration::from_micros(117),
            operating_points: vec![
                OperatingPoint {
                    label: "low",
                    rate_per_sec: 8_000.0,
                },
                OperatingPoint {
                    label: "high",
                    rate_per_sec: 16_000.0,
                },
            ],
        }
    }

    /// MySQL running a sysbench-OLTP-like transaction mix (paper Sec. 7.4):
    /// ~1 ms mean transaction service time, evaluated at 8 %, 16 % and 42 %
    /// processor load.
    #[must_use]
    pub fn mysql_oltp() -> Self {
        WorkloadSpec {
            name: "mysql",
            mix: vec![ClassMix {
                class: RequestClass::OltpTransaction,
                weight: 1.0,
                service_ns: Box::new(LogNormal::from_mean_cv(1_000_000.0, 0.6)),
            }],
            burstiness: Burstiness {
                multiplier: 2.5,
                fraction: 0.3,
                mean_burst: SimDuration::from_millis(5),
            },
            network_rtt: SimDuration::from_micros(117),
            operating_points: vec![
                OperatingPoint {
                    label: "low",
                    rate_per_sec: 800.0,
                },
                OperatingPoint {
                    label: "mid",
                    rate_per_sec: 1_600.0,
                },
                OperatingPoint {
                    label: "high",
                    rate_per_sec: 4_200.0,
                },
            ],
        }
    }

    /// Mean CPU service time across the class mix.
    #[must_use]
    pub fn mean_service(&self) -> SimDuration {
        let total_weight: f64 = self.mix.iter().map(|c| c.weight).sum();
        if total_weight <= 0.0 {
            return SimDuration::ZERO;
        }
        let mean_ns: f64 = self
            .mix
            .iter()
            .map(|c| c.service_ns.mean() * c.weight / total_weight)
            .sum();
        SimDuration::from_nanos(mean_ns.round() as u64)
    }

    /// Expected processor utilisation at a given request rate on `cores`
    /// cores.
    #[must_use]
    pub fn utilization(&self, rate_per_sec: f64, cores: usize) -> f64 {
        rate_per_sec * self.mean_service().as_secs_f64() / cores.max(1) as f64
    }

    /// The request rate that produces a target processor utilisation.
    #[must_use]
    pub fn rate_for_utilization(&self, utilization: f64, cores: usize) -> f64 {
        let s = self.mean_service().as_secs_f64();
        if s <= 0.0 {
            return 0.0;
        }
        utilization.max(0.0) * cores.max(1) as f64 / s
    }

    /// Draws a request of this workload.
    pub fn sample_request(&self, rng: &mut SimRng, id: RequestId, arrival: SimTime) -> Request {
        let total_weight: f64 = self.mix.iter().map(|c| c.weight).sum();
        let mut pick = rng.uniform() * total_weight;
        let mut chosen = &self.mix[0];
        for entry in &self.mix {
            if pick <= entry.weight {
                chosen = entry;
                break;
            }
            pick -= entry.weight;
        }
        let service_ns = chosen.service_ns.sample(rng).max(100.0);
        Request::new(
            id,
            chosen.class,
            arrival,
            SimDuration::from_nanos(service_ns.round() as u64),
        )
    }

    /// Builds the arrival process for a given request rate.
    #[must_use]
    pub fn arrival_process(&self, rate_per_sec: f64) -> Box<dyn ArrivalProcess> {
        if self.burstiness.multiplier <= 1.0 {
            Box::new(PoissonArrivals::new(rate_per_sec))
        } else {
            Box::new(MmppArrivals::new(
                rate_per_sec,
                self.burstiness.multiplier,
                self.burstiness.fraction,
                self.burstiness.mean_burst,
            ))
        }
    }
}

/// OS background activity: periodic timer ticks and housekeeping daemons that
/// briefly wake individual cores even when no client requests are present.
///
/// This is what limits the all-cores-idle residency to well below 100 % even
/// on an otherwise idle server (the paper measures ≈ 77 % all-idle residency
/// at 4 K QPS).
#[derive(Debug, Clone)]
pub struct BackgroundNoise {
    /// Mean interval between background wakeups on each core.
    pub tick_period: SimDuration,
    /// Mean CPU time consumed per background wakeup.
    pub mean_tick_work: SimDuration,
    /// Coefficient of variation of the background work.
    pub work_cv: f64,
}

impl BackgroundNoise {
    /// The default calibration: a 1 ms tick per core with ~18 µs of work,
    /// which bounds all-idle residency at roughly 80 % on 10 cores.
    #[must_use]
    pub fn default_server() -> Self {
        BackgroundNoise {
            tick_period: SimDuration::from_millis(1),
            mean_tick_work: SimDuration::from_micros(18),
            work_cv: 0.5,
        }
    }

    /// A quieter profile (tickless kernel, few daemons) for sensitivity
    /// studies.
    #[must_use]
    pub fn quiet() -> Self {
        BackgroundNoise {
            tick_period: SimDuration::from_millis(4),
            mean_tick_work: SimDuration::from_micros(10),
            work_cv: 0.5,
        }
    }

    /// Draws the CPU time of one background wakeup.
    pub fn sample_work(&self, rng: &mut SimRng) -> SimDuration {
        let d = LogNormal::from_mean_cv(self.mean_tick_work.as_nanos() as f64, self.work_cv);
        SimDuration::from_nanos(d.sample(rng).max(500.0).round() as u64)
    }

    /// Draws the interval until a core's next background wakeup.
    pub fn sample_interval(&self, rng: &mut SimRng) -> SimDuration {
        // Jittered around the tick period (±25 %) so cores do not tick in
        // lockstep.
        let base = self.tick_period.as_nanos() as f64;
        SimDuration::from_nanos(rng.uniform_range(base * 0.75, base * 1.25).round() as u64)
    }

    /// The expected per-core utilisation contributed by background noise.
    #[must_use]
    pub fn expected_utilization(&self) -> f64 {
        self.mean_tick_work.as_secs_f64() / self.tick_period.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memcached_calibration_targets() {
        let w = WorkloadSpec::memcached_etc();
        let mean = w.mean_service();
        assert!(
            mean >= SimDuration::from_micros(18) && mean <= SimDuration::from_micros(23),
            "mean service {mean}"
        );
        // 100 K QPS on 10 cores ≈ 20 % utilisation (the top of the paper's
        // low-load region).
        let util = w.utilization(100_000.0, 10);
        assert!(util > 0.15 && util < 0.25, "util {util}");
        // Rate for 5 % utilisation is in the tens of thousands of QPS.
        let rate = w.rate_for_utilization(0.05, 10);
        assert!(rate > 20_000.0 && rate < 30_000.0, "rate {rate}");
        assert_eq!(w.network_rtt, SimDuration::from_micros(117));
        assert!(w.operating_points.len() >= 6);
    }

    #[test]
    fn mysql_and_kafka_operating_points_match_paper_loads() {
        let mysql = WorkloadSpec::mysql_oltp();
        let low = mysql.utilization(mysql.operating_points[0].rate_per_sec, 10);
        let high = mysql.utilization(mysql.operating_points[2].rate_per_sec, 10);
        assert!((low - 0.08).abs() < 0.02, "mysql low {low}");
        assert!((high - 0.42).abs() < 0.05, "mysql high {high}");

        let kafka = WorkloadSpec::kafka();
        let klow = kafka.utilization(kafka.operating_points[0].rate_per_sec, 10);
        let khigh = kafka.utilization(kafka.operating_points[1].rate_per_sec, 10);
        assert!((klow - 0.08).abs() < 0.02, "kafka low {klow}");
        assert!((khigh - 0.16).abs() < 0.04, "kafka high {khigh}");
    }

    #[test]
    fn sample_request_respects_mix() {
        let w = WorkloadSpec::memcached_etc();
        let mut rng = SimRng::from_seed(11);
        let mut gets = 0u64;
        let n = 20_000u64;
        for i in 0..n {
            let r = w.sample_request(&mut rng, RequestId(i), SimTime::ZERO);
            if r.class == RequestClass::KvGet {
                gets += 1;
            }
            assert!(r.service >= SimDuration::from_nanos(100));
        }
        let frac = gets as f64 / n as f64;
        assert!((frac - 0.95).abs() < 0.01, "GET fraction {frac}");
    }

    #[test]
    fn arrival_process_kind_follows_burstiness() {
        let w = WorkloadSpec::memcached_etc();
        let a = w.arrival_process(10_000.0);
        assert_eq!(a.rate_per_sec(), 10_000.0);
        let mut plain = WorkloadSpec::mysql_oltp();
        plain.burstiness = Burstiness::none();
        let p = plain.arrival_process(500.0);
        assert_eq!(p.rate_per_sec(), 500.0);
    }

    #[test]
    fn background_noise_calibration() {
        let n = BackgroundNoise::default_server();
        // ~1.8 % per-core utilisation from background work.
        let u = n.expected_utilization();
        assert!(u > 0.01 && u < 0.03, "background util {u}");
        let mut rng = SimRng::from_seed(5);
        for _ in 0..100 {
            let w = n.sample_work(&mut rng);
            assert!(w >= SimDuration::from_nanos(500));
            let i = n.sample_interval(&mut rng);
            assert!(i >= SimDuration::from_micros(750));
            assert!(i <= SimDuration::from_micros(1_250));
        }
        assert!(BackgroundNoise::quiet().expected_utilization() < u);
    }
}
