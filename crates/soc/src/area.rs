//! Die floorplan and area model.
//!
//! Section 5 of the paper argues APC's hardware additions are cheap by
//! expressing them as fractions of the SKX die area:
//!
//! * the IO interconnect occupies < 6 % of the die and is 128–512 bit wide,
//!   so a handful of extra long-distance wires cost < 0.24 % / < 0.06 %;
//! * the IO controllers occupy < 15 % of the die and need < 0.5 % of their
//!   area for the new control/status logic;
//! * the GPMU occupies < 2 % of the die and the APMU adds < 5 % of that;
//! * each FIVR control module gains an 8-bit RVID register (< 0.5 % of the
//!   FCM, itself < 10 % of a core, itself < 10 % of the die).
//!
//! This module encodes those floorplan fractions; the `apc-core::area`
//! module layers the APC-specific overhead computation (reproducing the
//! < 0.75 % total claim) on top.

/// Relative area of the major SKX die regions, as fractions of the total die
/// area. Derived from the floorplan discussion in the paper (Sec. 5.1–5.3)
/// and the SKX die photographs it references.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DieFloorplan {
    /// Fraction of the die occupied by the IO interconnect (mesh/ring wiring
    /// in the north cap).
    pub io_interconnect: f64,
    /// Fraction of the die occupied by the high-speed IO controllers.
    pub io_controllers: f64,
    /// Fraction of the die occupied by the firmware GPMU.
    pub gpmu: f64,
    /// Fraction of the die occupied by one core tile (core + private caches
    /// + its LLC/CHA slice).
    pub core_tile: f64,
    /// Fraction of a core tile occupied by its FIVR.
    pub fivr_of_core: f64,
    /// Number of core tiles on the die.
    pub core_tiles: usize,
    /// Width of the IO interconnect data path in bits (128–512).
    pub io_interconnect_width_bits: u32,
}

impl DieFloorplan {
    /// The SKX floorplan assumed by the paper's overhead analysis, with the
    /// conservative (pessimistic) choices the paper makes.
    #[must_use]
    pub fn skx() -> Self {
        DieFloorplan {
            io_interconnect: 0.06,
            io_controllers: 0.15,
            gpmu: 0.02,
            core_tile: 0.10,
            fivr_of_core: 0.10,
            core_tiles: 10,
            io_interconnect_width_bits: 128,
        }
    }

    /// The area cost, as a fraction of the die, of routing `signals` extra
    /// long-distance wires through the IO interconnect (paper Sec. 5.1:
    /// extra wires / interconnect width × interconnect area).
    ///
    /// # Panics
    ///
    /// Panics if the floorplan's interconnect width is zero.
    #[must_use]
    pub fn long_distance_signal_area(&self, signals: u32) -> f64 {
        assert!(self.io_interconnect_width_bits > 0);
        f64::from(signals) / f64::from(self.io_interconnect_width_bits) * self.io_interconnect
    }

    /// The area cost, as a fraction of the die, of adding logic worth
    /// `fraction_of_region` of a region that itself occupies
    /// `region_fraction` of the die.
    #[must_use]
    pub fn region_logic_area(&self, region_fraction: f64, fraction_of_region: f64) -> f64 {
        region_fraction * fraction_of_region
    }

    /// Area of one FIVR control module as a fraction of the die.
    #[must_use]
    pub fn fivr_fcm_area(&self) -> f64 {
        self.core_tile * self.fivr_of_core
    }
}

impl Default for DieFloorplan {
    fn default() -> Self {
        DieFloorplan::skx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skx_fractions_are_sane() {
        let f = DieFloorplan::skx();
        assert!(f.io_interconnect <= 0.06);
        assert!(f.io_controllers <= 0.15);
        assert!(f.gpmu <= 0.02);
        assert_eq!(f.core_tiles, 10);
        assert_eq!(DieFloorplan::default(), f);
    }

    #[test]
    fn five_signals_cost_less_than_quarter_percent() {
        // Paper Sec. 5.1: five new long-distance signals over a 128-bit
        // interconnect cost < 0.24 % of the die.
        let f = DieFloorplan::skx();
        let area = f.long_distance_signal_area(5);
        assert!(area < 0.0024, "area {area}");
        // And < 0.06 % with a 512-bit interconnect.
        let wide = DieFloorplan {
            io_interconnect_width_bits: 512,
            ..f
        };
        assert!(wide.long_distance_signal_area(5) < 0.0006);
    }

    #[test]
    fn region_logic_area_composes_fractions() {
        let f = DieFloorplan::skx();
        // IO controller logic: 0.5 % of 15 % of the die < 0.08 %.
        let io_logic = f.region_logic_area(f.io_controllers, 0.005);
        assert!(io_logic < 0.0008);
        // APMU: 5 % of the 2 % GPMU < 0.1 %.
        let apmu = f.region_logic_area(f.gpmu, 0.05);
        assert!(apmu <= 0.001);
    }

    #[test]
    fn fcm_area_is_one_percent_of_die() {
        let f = DieFloorplan::skx();
        assert!((f.fivr_fcm_area() - 0.01).abs() < 1e-12);
    }
}
