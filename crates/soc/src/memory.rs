//! Memory controller and DDR4 DRAM power-mode model.
//!
//! The paper contrasts two DRAM power-saving mechanisms (Sec. 3.1):
//!
//! * **CKE modes** (clock-enable off): per-rank, 10–30 ns transition,
//!   ≥ 50 % power saving — the mode PC1A uses (`Allow_CKE_OFF` signal);
//! * **Self-refresh**: the DRAM refreshes itself and most of the SoC↔DRAM
//!   interface can power down — several µs exit, used only by deep package
//!   C-states (PC6).

use std::fmt;

use apc_sim::{SimDuration, SimTime};

/// Identifier of a memory controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct McId(pub usize);

impl fmt::Display for McId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mc{}", self.0)
    }
}

/// DRAM power modes (per memory controller; the model treats all ranks
/// behind one controller as transitioning together, which matches the
/// package-level flows the paper describes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DramPowerMode {
    /// Active / active-standby: CKE asserted, pages may be open.
    Active,
    /// Active power-down: CKE de-asserted, pages left open, row buffer on.
    ActivePowerDown,
    /// Pre-charged power-down: CKE de-asserted, pages closed, row buffer off.
    /// This is the "CKE off" mode PC1A uses.
    PrechargePowerDown,
    /// Self-refresh: DRAM refreshes itself; SoC-side interface mostly off.
    SelfRefresh,
}

impl DramPowerMode {
    /// Worst-case exit latency back to `Active`.
    #[must_use]
    pub fn exit_latency(self) -> SimDuration {
        match self {
            DramPowerMode::Active => SimDuration::ZERO,
            DramPowerMode::ActivePowerDown => SimDuration::from_nanos(10),
            DramPowerMode::PrechargePowerDown => SimDuration::from_nanos(24),
            DramPowerMode::SelfRefresh => SimDuration::from_micros(5),
        }
    }

    /// Entry latency from `Active`.
    #[must_use]
    pub fn entry_latency(self) -> SimDuration {
        match self {
            DramPowerMode::Active => SimDuration::ZERO,
            DramPowerMode::ActivePowerDown => SimDuration::from_nanos(10),
            DramPowerMode::PrechargePowerDown => SimDuration::from_nanos(10),
            DramPowerMode::SelfRefresh => SimDuration::from_micros(1),
        }
    }

    /// `true` for the CKE-off modes (nanosecond-scale, usable by PC1A).
    #[must_use]
    pub fn is_cke_off(self) -> bool {
        matches!(
            self,
            DramPowerMode::ActivePowerDown | DramPowerMode::PrechargePowerDown
        )
    }
}

impl fmt::Display for DramPowerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DramPowerMode::Active => "active",
            DramPowerMode::ActivePowerDown => "APD (CKE off)",
            DramPowerMode::PrechargePowerDown => "PPD (CKE off)",
            DramPowerMode::SelfRefresh => "self-refresh",
        };
        f.write_str(s)
    }
}

/// A memory controller together with the DDR4 channel(s) it drives.
///
/// The controller exposes the two control inputs the package flows drive:
/// `Allow_CKE_OFF` (new in APC) and "opportunistic self-refresh allowed"
/// (the PC6-era mechanism), plus the request-activity notifications that the
/// full-system simulation generates.
#[derive(Debug, Clone)]
pub struct MemoryController {
    id: McId,
    mode: DramPowerMode,
    /// The `Allow_CKE_OFF` control input (paper Sec. 4.2.2).
    allow_cke_off: bool,
    /// Whether opportunistic self-refresh is permitted (PC6 flows).
    allow_self_refresh: bool,
    /// Outstanding memory transactions.
    outstanding: u32,
    since: SimTime,
    cke_off_entries: u64,
    self_refresh_entries: u64,
    wakeups: u64,
}

impl MemoryController {
    /// CKE-off entry happens as soon as the controller is idle once allowed
    /// (within ~10 ns, paper Sec. 5.5.1).
    pub const CKE_OFF_ENTRY: SimDuration = SimDuration::from_nanos(10);

    /// CKE-off exit latency (paper Sec. 5.5.2: within 24 ns).
    pub const CKE_OFF_EXIT: SimDuration = SimDuration::from_nanos(24);

    /// Creates a controller in the active mode with all power-down modes
    /// disabled (datacenter default).
    #[must_use]
    pub fn new(id: McId) -> Self {
        MemoryController {
            id,
            mode: DramPowerMode::Active,
            allow_cke_off: false,
            allow_self_refresh: false,
            outstanding: 0,
            since: SimTime::ZERO,
            cke_off_entries: 0,
            self_refresh_entries: 0,
            wakeups: 0,
        }
    }

    /// The controller's identifier.
    #[must_use]
    pub fn id(&self) -> McId {
        self.id
    }

    /// Current DRAM power mode.
    #[must_use]
    pub fn mode(&self) -> DramPowerMode {
        self.mode
    }

    /// `true` when DRAM is in a CKE-off mode.
    #[must_use]
    pub fn in_cke_off(&self) -> bool {
        self.mode.is_cke_off()
    }

    /// Number of outstanding transactions.
    #[must_use]
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// Number of CKE-off entries so far.
    #[must_use]
    pub fn cke_off_entries(&self) -> u64 {
        self.cke_off_entries
    }

    /// Number of self-refresh entries so far.
    #[must_use]
    pub fn self_refresh_entries(&self) -> u64 {
        self.self_refresh_entries
    }

    /// Number of wakeups back to the active mode.
    #[must_use]
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Drives the `Allow_CKE_OFF` control signal. When set and the controller
    /// is idle, DRAM enters precharge power-down after
    /// [`MemoryController::CKE_OFF_ENTRY`]; when cleared, the controller
    /// returns to active and the caller should account for the returned exit
    /// latency.
    pub fn set_allow_cke_off(&mut self, now: SimTime, allow: bool) -> SimDuration {
        self.allow_cke_off = allow;
        if allow {
            if self.outstanding == 0 && self.mode == DramPowerMode::Active {
                self.mode = DramPowerMode::PrechargePowerDown;
                self.since = now;
                self.cke_off_entries += 1;
            }
            SimDuration::ZERO
        } else if self.mode.is_cke_off() {
            self.wake(now)
        } else {
            SimDuration::ZERO
        }
    }

    /// Whether `Allow_CKE_OFF` is currently asserted.
    #[must_use]
    pub fn allow_cke_off(&self) -> bool {
        self.allow_cke_off
    }

    /// Enables or disables opportunistic self-refresh (PC6 flow).
    pub fn set_allow_self_refresh(&mut self, allow: bool) {
        self.allow_self_refresh = allow;
    }

    /// Enters self-refresh (the PC6 entry flow step). Only takes effect when
    /// permitted and idle; returns `true` on success.
    pub fn enter_self_refresh(&mut self, now: SimTime) -> bool {
        if self.allow_self_refresh && self.outstanding == 0 {
            self.mode = DramPowerMode::SelfRefresh;
            self.since = now;
            self.self_refresh_entries += 1;
            true
        } else {
            false
        }
    }

    /// Notifies the controller that a memory transaction has started.
    /// Returns the wake latency the transaction observes (zero when DRAM was
    /// already active).
    pub fn begin_access(&mut self, now: SimTime) -> SimDuration {
        self.outstanding += 1;
        self.wake(now)
    }

    /// Notifies the controller that a memory transaction has completed. If
    /// the controller becomes idle and `Allow_CKE_OFF` is set, DRAM drops
    /// back into CKE-off.
    pub fn end_access(&mut self, now: SimTime) {
        self.outstanding = self.outstanding.saturating_sub(1);
        if self.outstanding == 0 && self.allow_cke_off && self.mode == DramPowerMode::Active {
            self.mode = DramPowerMode::PrechargePowerDown;
            self.since = now;
            self.cke_off_entries += 1;
        }
    }

    /// Wakes DRAM to the active mode and returns the exit latency paid.
    pub fn wake(&mut self, now: SimTime) -> SimDuration {
        let latency = self.mode.exit_latency();
        if self.mode != DramPowerMode::Active {
            self.mode = DramPowerMode::Active;
            self.since = now;
            self.wakeups += 1;
        }
        latency
    }
}

/// The memory subsystem: the set of memory controllers of one socket
/// (the reference SKX system has two, each driving three DDR4-2666 channels).
#[derive(Debug, Clone)]
pub struct MemorySet {
    controllers: Vec<MemoryController>,
}

impl MemorySet {
    /// Builds the reference two-controller inventory.
    #[must_use]
    pub fn skx_reference() -> Self {
        MemorySet::new(2)
    }

    /// Builds an inventory with `n` controllers.
    #[must_use]
    pub fn new(n: usize) -> Self {
        MemorySet {
            controllers: (0..n).map(|i| MemoryController::new(McId(i))).collect(),
        }
    }

    /// Number of controllers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.controllers.len()
    }

    /// `true` when there are no controllers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.controllers.is_empty()
    }

    /// Immutable access to a controller.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn controller(&self, id: McId) -> &MemoryController {
        &self.controllers[id.0]
    }

    /// Mutable access to a controller.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn controller_mut(&mut self, id: McId) -> &mut MemoryController {
        &mut self.controllers[id.0]
    }

    /// Iterator over all controllers.
    pub fn iter(&self) -> impl Iterator<Item = &MemoryController> {
        self.controllers.iter()
    }

    /// Mutable iterator over all controllers.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut MemoryController> {
        self.controllers.iter_mut()
    }

    /// `true` when every controller has DRAM in a CKE-off mode or deeper.
    #[must_use]
    pub fn all_in_cke_off_or_deeper(&self) -> bool {
        !self.controllers.is_empty()
            && self
                .controllers
                .iter()
                .all(|m| m.mode().is_cke_off() || m.mode() == DramPowerMode::SelfRefresh)
    }

    /// Drives `Allow_CKE_OFF` on every controller; returns the worst exit
    /// latency triggered (only non-zero when clearing the signal).
    pub fn set_allow_cke_off_all(&mut self, now: SimTime, allow: bool) -> SimDuration {
        self.controllers
            .iter_mut()
            .map(|m| m.set_allow_cke_off(now, allow))
            .fold(SimDuration::ZERO, SimDuration::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_latencies_match_paper_scales() {
        assert!(DramPowerMode::PrechargePowerDown.exit_latency() <= SimDuration::from_nanos(30));
        assert!(DramPowerMode::ActivePowerDown.exit_latency() <= SimDuration::from_nanos(30));
        assert!(DramPowerMode::SelfRefresh.exit_latency() >= SimDuration::from_micros(1));
        assert!(DramPowerMode::PrechargePowerDown.is_cke_off());
        assert!(!DramPowerMode::SelfRefresh.is_cke_off());
        assert_eq!(
            DramPowerMode::PrechargePowerDown.to_string(),
            "PPD (CKE off)"
        );
    }

    #[test]
    fn cke_off_requires_allow_and_idle() {
        let mut mc = MemoryController::new(McId(0));
        assert_eq!(mc.mode(), DramPowerMode::Active);
        // Allowing while idle drops straight into CKE off.
        mc.set_allow_cke_off(SimTime::ZERO, true);
        assert!(mc.in_cke_off());
        assert_eq!(mc.cke_off_entries(), 1);
        // Clearing wakes it and reports the 24 ns exit.
        let lat = mc.set_allow_cke_off(SimTime::from_micros(1), false);
        assert_eq!(lat, MemoryController::CKE_OFF_EXIT);
        assert_eq!(mc.mode(), DramPowerMode::Active);
    }

    #[test]
    fn accesses_wake_dram_and_reenter_cke_off() {
        let mut mc = MemoryController::new(McId(0));
        mc.set_allow_cke_off(SimTime::ZERO, true);
        assert!(mc.in_cke_off());
        let lat = mc.begin_access(SimTime::from_micros(1));
        assert_eq!(lat, MemoryController::CKE_OFF_EXIT);
        assert_eq!(mc.outstanding(), 1);
        assert_eq!(mc.mode(), DramPowerMode::Active);
        // Another access while active costs nothing extra.
        assert_eq!(mc.begin_access(SimTime::from_micros(1)), SimDuration::ZERO);
        mc.end_access(SimTime::from_micros(2));
        assert_eq!(mc.mode(), DramPowerMode::Active, "still one outstanding");
        mc.end_access(SimTime::from_micros(3));
        assert!(mc.in_cke_off(), "idle + allowed => back to CKE off");
        assert_eq!(mc.wakeups(), 1);
    }

    #[test]
    fn self_refresh_requires_permission() {
        let mut mc = MemoryController::new(McId(0));
        assert!(!mc.enter_self_refresh(SimTime::ZERO));
        mc.set_allow_self_refresh(true);
        assert!(mc.enter_self_refresh(SimTime::ZERO));
        assert_eq!(mc.mode(), DramPowerMode::SelfRefresh);
        assert_eq!(mc.self_refresh_entries(), 1);
        let lat = mc.wake(SimTime::from_micros(10));
        assert_eq!(lat, SimDuration::from_micros(5));
    }

    #[test]
    fn busy_controller_does_not_self_refresh() {
        let mut mc = MemoryController::new(McId(0));
        mc.set_allow_self_refresh(true);
        mc.begin_access(SimTime::ZERO);
        assert!(!mc.enter_self_refresh(SimTime::from_nanos(5)));
    }

    #[test]
    fn memory_set_aggregation() {
        let mut set = MemorySet::skx_reference();
        assert_eq!(set.len(), 2);
        assert!(!set.all_in_cke_off_or_deeper());
        set.set_allow_cke_off_all(SimTime::ZERO, true);
        assert!(set.all_in_cke_off_or_deeper());
        let lat = set.set_allow_cke_off_all(SimTime::from_micros(1), false);
        assert_eq!(lat, MemoryController::CKE_OFF_EXIT);
        assert!(!set.all_in_cke_off_or_deeper());
        assert_eq!(set.controller(McId(1)).id().to_string(), "mc1");
    }
}
