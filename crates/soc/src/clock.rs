//! Clock distribution network (CDN) model.
//!
//! The CLMR technique clock-gates the CLM clock tree (a 1–2 cycle operation
//! in an optimised clock distribution system, paper Sec. 5.5.1) instead of
//! turning the CLM PLL off as PC6 does. This module models a gateable clock
//! tree and the power-management controller clock used to convert APMU FSM
//! cycles into nanoseconds.

use std::fmt;

use apc_sim::{SimDuration, SimTime};

/// A clock frequency in megahertz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MegaHertz(pub u32);

impl MegaHertz {
    /// The period of one cycle at this frequency, rounded up to a whole
    /// nanosecond (we never under-estimate latency).
    ///
    /// # Panics
    ///
    /// Panics if the frequency is zero.
    #[must_use]
    pub fn cycle_period(self) -> SimDuration {
        assert!(self.0 > 0, "cannot compute the period of a 0 MHz clock");
        SimDuration::from_nanos((1_000 / u64::from(self.0)).max(1))
    }

    /// The duration of `cycles` cycles at this frequency.
    #[must_use]
    pub fn cycles(self, cycles: u64) -> SimDuration {
        SimDuration::from_nanos(self.cycle_period().as_nanos() * cycles)
    }
}

impl fmt::Display for MegaHertz {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}MHz", self.0)
    }
}

/// The power-management controller clock frequency assumed by the paper's
/// latency analysis (Sec. 5.5.1: 500 MHz, i.e. 2 ns per cycle).
pub const PMU_CLOCK: MegaHertz = MegaHertz(500);

/// Gating state of a clock tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockGateState {
    /// Clock toggling, downstream logic operational.
    Running,
    /// Clock gated at the root; downstream logic frozen but state retained.
    Gated,
}

/// A gateable clock tree (e.g. the CLM clock distribution).
///
/// # Examples
///
/// ```
/// use apc_soc::clock::{ClockTree, ClockGateState, PMU_CLOCK};
/// use apc_sim::SimTime;
///
/// let mut tree = ClockTree::new("clm", PMU_CLOCK);
/// let latency = tree.gate(SimTime::ZERO);
/// assert_eq!(latency.as_nanos(), 4); // 2 cycles at 500 MHz
/// assert_eq!(tree.state(), ClockGateState::Gated);
/// ```
#[derive(Debug, Clone)]
pub struct ClockTree {
    name: &'static str,
    frequency: MegaHertz,
    state: ClockGateState,
    since: SimTime,
    gate_events: u64,
    /// Number of controller cycles a gate/ungate operation takes
    /// (1–2 cycles per the paper; we use the conservative 2).
    gate_cycles: u64,
}

impl ClockTree {
    /// Creates a running clock tree.
    #[must_use]
    pub fn new(name: &'static str, frequency: MegaHertz) -> Self {
        ClockTree {
            name,
            frequency,
            state: ClockGateState::Running,
            since: SimTime::ZERO,
            gate_events: 0,
            gate_cycles: 2,
        }
    }

    /// The tree's name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The distributed clock frequency.
    #[must_use]
    pub fn frequency(&self) -> MegaHertz {
        self.frequency
    }

    /// Current gate state.
    #[must_use]
    pub fn state(&self) -> ClockGateState {
        self.state
    }

    /// `true` when the tree is gated.
    #[must_use]
    pub fn is_gated(&self) -> bool {
        self.state == ClockGateState::Gated
    }

    /// Number of gate/ungate operations performed.
    #[must_use]
    pub fn gate_events(&self) -> u64 {
        self.gate_events
    }

    /// Gates the clock tree, returning the latency of the operation
    /// (2 controller cycles). Gating an already-gated tree is a no-op that
    /// costs nothing.
    pub fn gate(&mut self, now: SimTime) -> SimDuration {
        if self.state == ClockGateState::Gated {
            return SimDuration::ZERO;
        }
        self.state = ClockGateState::Gated;
        self.since = now;
        self.gate_events += 1;
        PMU_CLOCK.cycles(self.gate_cycles)
    }

    /// Un-gates the clock tree, returning the latency of the operation.
    /// Un-gating a running tree costs nothing.
    pub fn ungate(&mut self, now: SimTime) -> SimDuration {
        if self.state == ClockGateState::Running {
            return SimDuration::ZERO;
        }
        self.state = ClockGateState::Running;
        self.since = now;
        self.gate_events += 1;
        PMU_CLOCK.cycles(self.gate_cycles)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmu_clock_period_is_2ns() {
        assert_eq!(PMU_CLOCK.cycle_period(), SimDuration::from_nanos(2));
        assert_eq!(PMU_CLOCK.cycles(2), SimDuration::from_nanos(4));
        assert_eq!(MegaHertz(1000).cycle_period(), SimDuration::from_nanos(1));
        assert_eq!(MegaHertz(500).to_string(), "500MHz");
    }

    #[test]
    #[should_panic(expected = "0 MHz")]
    fn zero_frequency_is_rejected() {
        let _ = MegaHertz(0).cycle_period();
    }

    #[test]
    fn gate_ungate_cycle() {
        let mut tree = ClockTree::new("clm", PMU_CLOCK);
        assert_eq!(tree.state(), ClockGateState::Running);
        assert!(!tree.is_gated());

        let g = tree.gate(SimTime::ZERO);
        assert_eq!(g, SimDuration::from_nanos(4));
        assert!(tree.is_gated());

        // Idempotent.
        assert_eq!(tree.gate(SimTime::from_nanos(10)), SimDuration::ZERO);

        let u = tree.ungate(SimTime::from_nanos(20));
        assert_eq!(u, SimDuration::from_nanos(4));
        assert!(!tree.is_gated());
        assert_eq!(tree.ungate(SimTime::from_nanos(30)), SimDuration::ZERO);
        assert_eq!(tree.gate_events(), 2);
        assert_eq!(tree.name(), "clm");
        assert_eq!(tree.frequency(), PMU_CLOCK);
    }
}
