//! The CLM domain: Caching-and-home-agent, Last-level cache and Mesh NoC.
//!
//! On SKX the LLC is distributed as one slice per core tile, each paired with
//! a caching/home agent (CHA) and a snoop filter (SF); a mesh NoC connects
//! the tiles to the IO controllers and memory controllers. Two FIVRs
//! (Vccclm0/Vccclm1) power the whole ensemble (paper Sec. 3 and Fig. 1).
//!
//! For package C-state purposes the CLM behaves as a single domain with two
//! operational knobs: its clock tree can be gated, and its voltage can be
//! dropped to a retention level at which state is preserved but no accesses
//! are possible.

use std::fmt;

use apc_sim::{SimDuration, SimTime};

use crate::clock::{ClockTree, PMU_CLOCK};
use crate::vr::Fivr;

/// Operational state of the CLM domain as a whole.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClmState {
    /// Clocked and at nominal voltage: LLC/CHA/mesh fully operational.
    Operational,
    /// Clock gated but voltage nominal (transient during flow entry/exit).
    ClockGated,
    /// Clock gated and voltage at retention: contents retained, not
    /// accessible. This is the PC1A / PC6 resident state.
    Retention,
}

impl fmt::Display for ClmState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ClmState::Operational => "operational",
            ClmState::ClockGated => "clock-gated",
            ClmState::Retention => "retention",
        };
        f.write_str(s)
    }
}

/// One LLC slice with its CHA and snoop filter (per core tile).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcSlice {
    /// Tile index this slice belongs to.
    pub tile: usize,
    /// Slice capacity in KiB (1.375 MiB per tile on SKX).
    pub capacity_kib: u32,
}

/// The CLM domain: all LLC slices, CHAs, the snoop filters and the mesh,
/// powered by two FIVRs and clocked by one gateable clock tree.
#[derive(Debug, Clone)]
pub struct ClmDomain {
    slices: Vec<LlcSlice>,
    fivrs: [Fivr; 2],
    clock: ClockTree,
    mesh_columns: usize,
    mesh_rows: usize,
}

impl ClmDomain {
    /// LLC slice capacity per tile on SKX (1.375 MiB).
    pub const SLICE_CAPACITY_KIB: u32 = 1408;

    /// Creates the CLM domain for a socket with `tiles` core tiles arranged
    /// in a mesh of the given dimensions.
    #[must_use]
    pub fn new(tiles: usize, mesh_columns: usize, mesh_rows: usize) -> Self {
        ClmDomain {
            slices: (0..tiles)
                .map(|tile| LlcSlice {
                    tile,
                    capacity_kib: Self::SLICE_CAPACITY_KIB,
                })
                .collect(),
            fivrs: [Fivr::new_clm("vccclm0"), Fivr::new_clm("vccclm1")],
            clock: ClockTree::new("clm", PMU_CLOCK),
            mesh_columns,
            mesh_rows,
        }
    }

    /// Number of LLC slices (== number of core tiles).
    #[must_use]
    pub fn slice_count(&self) -> usize {
        self.slices.len()
    }

    /// Total LLC capacity in KiB.
    #[must_use]
    pub fn total_llc_kib(&self) -> u64 {
        self.slices.iter().map(|s| u64::from(s.capacity_kib)).sum()
    }

    /// Iterator over the LLC slices.
    pub fn slices(&self) -> impl Iterator<Item = &LlcSlice> {
        self.slices.iter()
    }

    /// Mesh dimensions as `(columns, rows)`.
    #[must_use]
    pub fn mesh_dimensions(&self) -> (usize, usize) {
        (self.mesh_columns, self.mesh_rows)
    }

    /// Access to the two CLM FIVRs.
    #[must_use]
    pub fn fivrs(&self) -> &[Fivr; 2] {
        &self.fivrs
    }

    /// Mutable access to the two CLM FIVRs.
    pub fn fivrs_mut(&mut self) -> &mut [Fivr; 2] {
        &mut self.fivrs
    }

    /// Access to the CLM clock tree.
    #[must_use]
    pub fn clock(&self) -> &ClockTree {
        &self.clock
    }

    /// The domain's aggregate operational state, derived from the clock tree
    /// and the FIVR targets.
    #[must_use]
    pub fn state(&self) -> ClmState {
        let at_retention = self.fivrs.iter().all(Fivr::at_or_below_retention);
        if at_retention {
            ClmState::Retention
        } else if self.clock.is_gated() {
            ClmState::ClockGated
        } else {
            ClmState::Operational
        }
    }

    /// `true` when both FIVRs report stable output (`PwrOk` AND-tree).
    #[must_use]
    pub fn pwr_ok(&self) -> bool {
        self.fivrs.iter().all(Fivr::pwr_ok)
    }

    /// Gates the CLM clock tree (`ClkGate` signal); returns the gate latency.
    pub fn clock_gate(&mut self, now: SimTime) -> SimDuration {
        self.clock.gate(now)
    }

    /// Un-gates the CLM clock tree; returns the ungate latency.
    pub fn clock_ungate(&mut self, now: SimTime) -> SimDuration {
        self.clock.ungate(now)
    }

    /// Asserts `Ret` on both CLM FIVRs (non-blocking voltage ramp to
    /// retention). Returns the worst-case time until both outputs are stable
    /// at retention.
    pub fn assert_retention(&mut self, now: SimTime) -> SimDuration {
        self.fivrs
            .iter_mut()
            .map(|f| f.assert_ret(now))
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// De-asserts `Ret`: ramps both FIVRs back to nominal. Returns the
    /// worst-case time until `PwrOk`.
    pub fn deassert_retention(&mut self, now: SimTime) -> SimDuration {
        self.fivrs
            .iter_mut()
            .map(|f| f.deassert_ret(now))
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Marks the in-flight FIVR transitions complete (caller waited the
    /// duration returned by the assert/deassert call).
    pub fn complete_voltage_transition(&mut self, now: SimTime) {
        for f in &mut self.fivrs {
            f.complete_transition(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vr::Millivolts;

    #[test]
    fn skx_clm_capacity() {
        let clm = ClmDomain::new(10, 5, 4);
        assert_eq!(clm.slice_count(), 10);
        // 10 x 1.375 MiB = 13.75 MiB.
        assert_eq!(clm.total_llc_kib(), 14_080);
        assert_eq!(clm.mesh_dimensions(), (5, 4));
        assert_eq!(clm.slices().count(), 10);
    }

    #[test]
    fn initial_state_is_operational() {
        let clm = ClmDomain::new(10, 5, 4);
        assert_eq!(clm.state(), ClmState::Operational);
        assert!(clm.pwr_ok());
        assert_eq!(clm.state().to_string(), "operational");
    }

    #[test]
    fn retention_entry_and_exit() {
        let mut clm = ClmDomain::new(10, 5, 4);
        let t0 = SimTime::ZERO;

        let gate = clm.clock_gate(t0);
        assert_eq!(gate, SimDuration::from_nanos(4));
        assert_eq!(clm.state(), ClmState::ClockGated);

        let ramp = clm.assert_retention(t0);
        assert_eq!(ramp, SimDuration::from_nanos(150));
        assert_eq!(clm.state(), ClmState::Retention);
        assert!(!clm.pwr_ok(), "still slewing");
        clm.complete_voltage_transition(t0 + ramp);
        assert!(clm.pwr_ok());

        // Exit: ramp up, then ungate.
        let up = clm.deassert_retention(SimTime::from_micros(1));
        assert_eq!(up, SimDuration::from_nanos(150));
        clm.complete_voltage_transition(SimTime::from_micros(1) + up);
        assert!(clm.pwr_ok());
        assert_eq!(clm.state(), ClmState::ClockGated);
        clm.clock_ungate(SimTime::from_micros(2));
        assert_eq!(clm.state(), ClmState::Operational);
    }

    #[test]
    fn custom_retention_vid_shortens_ramp() {
        let mut clm = ClmDomain::new(10, 5, 4);
        for f in clm.fivrs_mut() {
            f.program_retention_vid(Millivolts(700));
        }
        let ramp = clm.assert_retention(SimTime::ZERO);
        assert_eq!(ramp, SimDuration::from_nanos(50));
    }

    #[test]
    fn fivr_names_match_skx() {
        let clm = ClmDomain::new(10, 5, 4);
        let names: Vec<_> = clm.fivrs().iter().map(|f| f.name()).collect();
        assert_eq!(names, vec!["vccclm0", "vccclm1"]);
    }
}
