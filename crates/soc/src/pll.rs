//! Phase-locked loop (PLL) model.
//!
//! The paper's fourth key technique is to **keep all PLLs locked** while in
//! PC1A, trading a tiny amount of power (modern all-digital PLLs consume
//! ≈7 mW each) for the elimination of the microsecond-scale re-locking
//! latency that PC6 pays on exit (Sec. 3, Sec. 5.4).

use std::fmt;

use apc_sim::{SimDuration, SimTime};

/// What a PLL is clocking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PllDomain {
    /// One per CPU core.
    Core(usize),
    /// The CLM (CHA/LLC/mesh) and memory-controller clock.
    Clm,
    /// One per high-speed IO controller (PCIe/DMI/UPI).
    Io(usize),
    /// The global power-management unit's own clock.
    Gpmu,
}

impl fmt::Display for PllDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PllDomain::Core(i) => write!(f, "pll-core{i}"),
            PllDomain::Clm => write!(f, "pll-clm"),
            PllDomain::Io(i) => write!(f, "pll-io{i}"),
            PllDomain::Gpmu => write!(f, "pll-gpmu"),
        }
    }
}

/// Lock state of a PLL.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PllState {
    /// Powered and locked: downstream logic can be clocked immediately.
    Locked,
    /// Powered off (as in PC6).
    Off,
    /// Powering up / re-acquiring lock.
    Relocking,
}

/// An all-digital PLL (ADPLL) as used across the SKX uncore and cores.
///
/// # Examples
///
/// ```
/// use apc_soc::pll::{Pll, PllDomain, PllState};
/// use apc_sim::SimTime;
///
/// let mut pll = Pll::new_adpll(PllDomain::Clm);
/// assert_eq!(pll.state(), PllState::Locked);
///
/// let t = SimTime::from_micros(1);
/// pll.power_off(t);
/// let relock = pll.begin_relock(t);
/// assert!(relock.as_micros() >= 1, "re-locking costs microseconds");
/// pll.complete_relock(t + relock);
/// assert_eq!(pll.state(), PllState::Locked);
/// ```
#[derive(Debug, Clone)]
pub struct Pll {
    domain: PllDomain,
    state: PllState,
    /// Power drawn while locked.
    active_power_w: f64,
    /// Time to re-acquire lock from the off state.
    relock_latency: SimDuration,
    since: SimTime,
    relocks: u64,
}

impl Pll {
    /// Power of one all-digital PLL while locked (paper Sec. 5.4: 7 mW,
    /// roughly constant across voltage/frequency).
    pub const ADPLL_ACTIVE_POWER_W: f64 = 0.007;

    /// Typical re-lock latency of a powered-off PLL ("a few microseconds",
    /// paper Sec. 1 and Sec. 4.3). We use 3 µs.
    pub const RELOCK_LATENCY: SimDuration = SimDuration::from_micros(3);

    /// Creates an all-digital PLL for the given domain, initially locked.
    #[must_use]
    pub fn new_adpll(domain: PllDomain) -> Self {
        Pll {
            domain,
            state: PllState::Locked,
            active_power_w: Self::ADPLL_ACTIVE_POWER_W,
            relock_latency: Self::RELOCK_LATENCY,
            since: SimTime::ZERO,
            relocks: 0,
        }
    }

    /// The domain this PLL clocks.
    #[must_use]
    pub fn domain(&self) -> PllDomain {
        self.domain
    }

    /// Current lock state.
    #[must_use]
    pub fn state(&self) -> PllState {
        self.state
    }

    /// Timestamp of the last state change.
    #[must_use]
    pub fn since(&self) -> SimTime {
        self.since
    }

    /// Number of completed re-lock operations.
    #[must_use]
    pub fn relocks(&self) -> u64 {
        self.relocks
    }

    /// Instantaneous power draw in watts for the current state.
    /// A re-locking PLL is modelled at full power (it is charging loops and
    /// running calibration).
    #[must_use]
    pub fn power_w(&self) -> f64 {
        match self.state {
            PllState::Locked | PllState::Relocking => self.active_power_w,
            PllState::Off => 0.0,
        }
    }

    /// The re-lock latency this PLL pays when powered back on.
    #[must_use]
    pub fn relock_latency(&self) -> SimDuration {
        self.relock_latency
    }

    /// Powers the PLL off (PC6 entry flow, Fig. 2).
    pub fn power_off(&mut self, now: SimTime) {
        self.state = PllState::Off;
        self.since = now;
    }

    /// Begins re-locking a powered-off PLL and returns the latency until
    /// [`Pll::complete_relock`] may be called. Calling this on a locked PLL
    /// returns zero (nothing to do), which is exactly the PC1A fast-exit
    /// property.
    pub fn begin_relock(&mut self, now: SimTime) -> SimDuration {
        match self.state {
            PllState::Locked => SimDuration::ZERO,
            PllState::Relocking => self.relock_latency,
            PllState::Off => {
                self.state = PllState::Relocking;
                self.since = now;
                self.relock_latency
            }
        }
    }

    /// Completes an in-flight re-lock.
    ///
    /// # Panics
    ///
    /// Panics if the PLL is not re-locking.
    pub fn complete_relock(&mut self, now: SimTime) {
        assert_eq!(
            self.state,
            PllState::Relocking,
            "{}: complete_relock without begin_relock",
            self.domain
        );
        self.state = PllState::Locked;
        self.since = now;
        self.relocks += 1;
    }
}

/// The collection of PLLs of one socket.
///
/// The SKX reference system has ~18 PLLs: one per core (10), one per
/// high-speed IO controller (3 PCIe + 1 DMI + 2 UPI = 6), one for the CLM and
/// memory controllers, one for the GPMU (paper Sec. 5.4).
#[derive(Debug, Clone)]
pub struct PllSet {
    plls: Vec<Pll>,
    core_count: usize,
}

impl PllSet {
    /// Builds the PLL inventory for a socket with the given core and IO
    /// controller counts.
    #[must_use]
    pub fn new(core_count: usize, io_count: usize) -> Self {
        let mut plls = Vec::with_capacity(core_count + io_count + 2);
        for i in 0..core_count {
            plls.push(Pll::new_adpll(PllDomain::Core(i)));
        }
        for i in 0..io_count {
            plls.push(Pll::new_adpll(PllDomain::Io(i)));
        }
        plls.push(Pll::new_adpll(PllDomain::Clm));
        plls.push(Pll::new_adpll(PllDomain::Gpmu));
        PllSet { plls, core_count }
    }

    /// Total number of PLLs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.plls.len()
    }

    /// `true` when the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.plls.is_empty()
    }

    /// Iterator over all PLLs.
    pub fn iter(&self) -> impl Iterator<Item = &Pll> {
        self.plls.iter()
    }

    /// Mutable iterator over all PLLs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Pll> {
        self.plls.iter_mut()
    }

    /// The PLLs that are *not* per-core (uncore PLLs). Their power is the
    /// `PPLLs_diff` term of Eq. 2: it is what PC1A keeps on and PC6 turns off.
    pub fn uncore_plls(&self) -> impl Iterator<Item = &Pll> {
        self.plls
            .iter()
            .filter(|p| !matches!(p.domain(), PllDomain::Core(_)))
    }

    /// Aggregate power of the uncore PLLs when locked, in watts.
    #[must_use]
    pub fn uncore_locked_power_w(&self) -> f64 {
        self.uncore_plls().count() as f64 * Pll::ADPLL_ACTIVE_POWER_W
    }

    /// Number of per-core PLLs.
    #[must_use]
    pub fn core_pll_count(&self) -> usize {
        self.core_count
    }

    /// Turns every uncore PLL off (the PC6 entry flow).
    pub fn power_off_uncore(&mut self, now: SimTime) {
        for pll in self
            .plls
            .iter_mut()
            .filter(|p| !matches!(p.domain(), PllDomain::Core(_)))
        {
            pll.power_off(now);
        }
    }

    /// Begins re-locking every powered-off uncore PLL and returns the worst
    /// re-lock latency across them (the PC6 exit critical path contribution).
    pub fn begin_relock_uncore(&mut self, now: SimTime) -> SimDuration {
        let mut worst = SimDuration::ZERO;
        for pll in self
            .plls
            .iter_mut()
            .filter(|p| !matches!(p.domain(), PllDomain::Core(_)))
        {
            if pll.state() == PllState::Off {
                worst = worst.max(pll.begin_relock(now));
            }
        }
        worst
    }

    /// Completes re-lock on every re-locking PLL.
    pub fn complete_relock_uncore(&mut self, now: SimTime) {
        for pll in self.plls.iter_mut() {
            if pll.state() == PllState::Relocking {
                pll.complete_relock(now);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skx_pll_inventory_matches_paper() {
        // 10 cores, 6 IO controllers (3 PCIe + 1 DMI + 2 UPI).
        let set = PllSet::new(10, 6);
        assert_eq!(set.len(), 18, "paper counts ~18 PLLs");
        assert_eq!(set.core_pll_count(), 10);
        assert_eq!(set.uncore_plls().count(), 8, "8 non-core PLLs remain");
        // PPLLs_diff = 8 * 7mW = 56 mW.
        assert!((set.uncore_locked_power_w() - 0.056).abs() < 1e-12);
    }

    #[test]
    fn locked_pll_exits_with_zero_latency() {
        let mut pll = Pll::new_adpll(PllDomain::Io(0));
        assert_eq!(pll.begin_relock(SimTime::ZERO), SimDuration::ZERO);
        assert_eq!(pll.state(), PllState::Locked);
    }

    #[test]
    fn off_pll_pays_relock_latency() {
        let mut pll = Pll::new_adpll(PllDomain::Clm);
        pll.power_off(SimTime::ZERO);
        assert_eq!(pll.power_w(), 0.0);
        let lat = pll.begin_relock(SimTime::from_micros(5));
        assert_eq!(lat, Pll::RELOCK_LATENCY);
        assert_eq!(pll.state(), PllState::Relocking);
        assert!(pll.power_w() > 0.0);
        pll.complete_relock(SimTime::from_micros(8));
        assert_eq!(pll.state(), PllState::Locked);
        assert_eq!(pll.relocks(), 1);
    }

    #[test]
    #[should_panic(expected = "complete_relock without begin_relock")]
    fn complete_relock_requires_begin() {
        let mut pll = Pll::new_adpll(PllDomain::Gpmu);
        pll.complete_relock(SimTime::ZERO);
    }

    #[test]
    fn uncore_power_cycle() {
        let mut set = PllSet::new(10, 6);
        let now = SimTime::from_micros(1);
        set.power_off_uncore(now);
        assert!(set.uncore_plls().all(|p| p.state() == PllState::Off));
        // Core PLLs untouched.
        assert!(set
            .iter()
            .filter(|p| matches!(p.domain(), PllDomain::Core(_)))
            .all(|p| p.state() == PllState::Locked));

        let worst = set.begin_relock_uncore(SimTime::from_micros(2));
        assert_eq!(worst, Pll::RELOCK_LATENCY);
        set.complete_relock_uncore(SimTime::from_micros(6));
        assert!(set.iter().all(|p| p.state() == PllState::Locked));
    }

    #[test]
    fn domain_display() {
        assert_eq!(PllDomain::Core(2).to_string(), "pll-core2");
        assert_eq!(PllDomain::Clm.to_string(), "pll-clm");
        assert_eq!(PllDomain::Io(1).to_string(), "pll-io1");
        assert_eq!(PllDomain::Gpmu.to_string(), "pll-gpmu");
    }
}
