//! Voltage regulator models: FIVR and motherboard VR (MBVR).
//!
//! The CLM Retention technique (CLMR, paper Sec. 4.3 / 5.2) relies on the
//! fast, fully-integrated voltage regulators (FIVRs) that power the CLM
//! domain: APC adds a `Ret` input that makes the FIVR slew directly to a
//! pre-programmed retention voltage (held in a new 8-bit RVID register) and a
//! `PwrOk` output asserted when the voltage is stable at its target.
//!
//! The key quantitative property is the slew rate: ≥ 2 mV/ns, so the
//! 0.8 V → 0.5 V retention transition completes in ≤ 150 ns.

use std::fmt;

use apc_sim::{SimDuration, SimTime};

/// Kind of voltage regulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VrKind {
    /// Fully-integrated voltage regulator (on-die, fast slew, per-domain).
    Fivr,
    /// Motherboard voltage regulator (fixed or slow-changing rail).
    Mbvr,
}

/// A voltage expressed in millivolts.
///
/// The VID register granularity of FIVR control is ~5–10 mV; millivolt
/// integers keep the arithmetic exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Millivolts(pub u32);

impl Millivolts {
    /// Absolute difference between two voltages.
    #[must_use]
    pub fn abs_diff(self, other: Millivolts) -> u32 {
        self.0.abs_diff(other.0)
    }

    /// The voltage in volts.
    #[must_use]
    pub fn as_volts(self) -> f64 {
        f64::from(self.0) / 1000.0
    }
}

impl fmt::Display for Millivolts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}mV", self.0)
    }
}

/// Observable output state of a regulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VrState {
    /// Output stable at the programmed voltage; `PwrOk` asserted.
    Stable,
    /// Slewing towards a new target; `PwrOk` deasserted.
    Slewing,
}

/// A voltage regulator with linear slewing and preemptive voltage commands.
///
/// "Preemptive voltage commands" (paper Sec. 5.5.2 footnote) means a new
/// target may be issued while a previous transition is still in flight; the
/// regulator abandons the old target and slews from wherever its output
/// currently is, which is what makes an interrupted PC1A entry cheap to
/// unwind.
///
/// # Examples
///
/// ```
/// use apc_soc::vr::{Fivr, Millivolts};
/// use apc_sim::SimTime;
///
/// let mut fivr = Fivr::new_clm("vccclm0");
/// let t = SimTime::ZERO;
/// let transition = fivr.set_target(t, Millivolts(500));
/// assert_eq!(transition.as_nanos(), 150); // 300 mV at 2 mV/ns
/// ```
#[derive(Debug, Clone)]
pub struct Fivr {
    name: &'static str,
    kind: VrKind,
    /// Current output voltage (interpolated during slews at observation
    /// points; we track the value at `since`).
    output_mv: f64,
    target: Millivolts,
    state: VrState,
    /// Nominal operational voltage (what `release_retention` returns to).
    nominal: Millivolts,
    /// Pre-programmed retention voltage (the new RVID register, Sec. 5.2).
    retention_vid: Millivolts,
    /// Slew rate in millivolts per nanosecond.
    slew_mv_per_ns: f64,
    since: SimTime,
    transitions: u64,
}

impl Fivr {
    /// FIVR slew rate from the paper: ≥ 2 mV/ns.
    pub const SLEW_MV_PER_NS: f64 = 2.0;

    /// Nominal CLM operating voltage (~0.8 V, paper Sec. 5.5.1).
    pub const CLM_NOMINAL: Millivolts = Millivolts(800);

    /// CLM retention voltage (~0.5 V, paper Sec. 5.5.1).
    pub const CLM_RETENTION: Millivolts = Millivolts(500);

    /// Creates a CLM FIVR (Vccclm0/Vccclm1) at nominal voltage.
    #[must_use]
    pub fn new_clm(name: &'static str) -> Self {
        Fivr {
            name,
            kind: VrKind::Fivr,
            output_mv: f64::from(Self::CLM_NOMINAL.0),
            target: Self::CLM_NOMINAL,
            state: VrState::Stable,
            nominal: Self::CLM_NOMINAL,
            retention_vid: Self::CLM_RETENTION,
            slew_mv_per_ns: Self::SLEW_MV_PER_NS,
            since: SimTime::ZERO,
            transitions: 0,
        }
    }

    /// Creates a fixed motherboard rail (e.g. Vccio / Vccsa) that never
    /// changes voltage at runtime.
    #[must_use]
    pub fn new_mbvr(name: &'static str, voltage: Millivolts) -> Self {
        Fivr {
            name,
            kind: VrKind::Mbvr,
            output_mv: f64::from(voltage.0),
            target: voltage,
            state: VrState::Stable,
            nominal: voltage,
            retention_vid: voltage,
            slew_mv_per_ns: 0.05, // motherboard VRs are ~40x slower
            since: SimTime::ZERO,
            transitions: 0,
        }
    }

    /// The rail's name (e.g. `"vccclm0"`).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The regulator kind.
    #[must_use]
    pub fn kind(&self) -> VrKind {
        self.kind
    }

    /// The `PwrOk` status output: asserted only when the output voltage is
    /// stable at its target.
    #[must_use]
    pub fn pwr_ok(&self) -> bool {
        self.state == VrState::Stable
    }

    /// Current target voltage.
    #[must_use]
    pub fn target(&self) -> Millivolts {
        self.target
    }

    /// Nominal operational voltage.
    #[must_use]
    pub fn nominal(&self) -> Millivolts {
        self.nominal
    }

    /// The retention voltage programmed in the RVID register.
    #[must_use]
    pub fn retention_vid(&self) -> Millivolts {
        self.retention_vid
    }

    /// Reprograms the RVID register (an 8-bit register added to the FIVR
    /// control module by APC, Sec. 5.2).
    pub fn program_retention_vid(&mut self, vid: Millivolts) {
        self.retention_vid = vid;
    }

    /// Number of voltage transitions issued.
    #[must_use]
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// `true` when the output (or target, while slewing) is at or below the
    /// retention voltage — i.e. the domain must be treated as non-operational.
    #[must_use]
    pub fn at_or_below_retention(&self) -> bool {
        self.target <= self.retention_vid
    }

    /// The output voltage at time `now`, linearly interpolated during slews.
    #[must_use]
    pub fn output_at(&self, now: SimTime) -> f64 {
        match self.state {
            VrState::Stable => f64::from(self.target.0),
            VrState::Slewing => {
                let elapsed_ns = now.saturating_since(self.since).as_nanos() as f64;
                let target = f64::from(self.target.0);
                let delta = target - self.output_mv;
                let travelled = self.slew_mv_per_ns * elapsed_ns;
                if travelled >= delta.abs() {
                    target
                } else {
                    self.output_mv + delta.signum() * travelled
                }
            }
        }
    }

    /// Issues a new voltage target at time `now` and returns the time until
    /// the output is stable (`PwrOk`). Supports preemptive commands: if a
    /// transition is in flight the regulator re-targets from the interpolated
    /// current output.
    pub fn set_target(&mut self, now: SimTime, target: Millivolts) -> SimDuration {
        let current = self.output_at(now);
        self.output_mv = current;
        self.target = target;
        self.since = now;
        self.transitions += 1;
        let delta_mv = (f64::from(target.0) - current).abs();
        if delta_mv < f64::EPSILON {
            self.state = VrState::Stable;
            return SimDuration::ZERO;
        }
        self.state = VrState::Slewing;
        SimDuration::from_nanos((delta_mv / self.slew_mv_per_ns).ceil() as u64)
    }

    /// Asserting the `Ret` signal: slews to the pre-programmed retention
    /// voltage. Returns the transition time.
    pub fn assert_ret(&mut self, now: SimTime) -> SimDuration {
        let vid = self.retention_vid;
        self.set_target(now, vid)
    }

    /// De-asserting `Ret`: slews back to the nominal operational voltage.
    /// Returns the transition time until `PwrOk`.
    pub fn deassert_ret(&mut self, now: SimTime) -> SimDuration {
        let vid = self.nominal;
        self.set_target(now, vid)
    }

    /// Marks an in-flight transition as complete (the caller is responsible
    /// for waiting the duration returned by [`Fivr::set_target`]).
    pub fn complete_transition(&mut self, now: SimTime) {
        self.output_mv = f64::from(self.target.0);
        self.state = VrState::Stable;
        self.since = now;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_transition_takes_150ns() {
        let mut fivr = Fivr::new_clm("vccclm0");
        let d = fivr.assert_ret(SimTime::ZERO);
        assert_eq!(d, SimDuration::from_nanos(150));
        assert!(!fivr.pwr_ok());
        assert!(fivr.at_or_below_retention());
        fivr.complete_transition(SimTime::from_nanos(150));
        assert!(fivr.pwr_ok());

        let up = fivr.deassert_ret(SimTime::from_nanos(200));
        assert_eq!(up, SimDuration::from_nanos(150));
        fivr.complete_transition(SimTime::from_nanos(350));
        assert!(fivr.pwr_ok());
        assert!(!fivr.at_or_below_retention());
        assert_eq!(fivr.transitions(), 2);
    }

    #[test]
    fn preemptive_command_retargets_mid_slew() {
        let mut fivr = Fivr::new_clm("vccclm1");
        // Start ramping down at t=0; 150 ns to finish.
        fivr.assert_ret(SimTime::ZERO);
        // 50 ns in, the flow is interrupted: ramp back up.
        let now = SimTime::from_nanos(50);
        let out = fivr.output_at(now);
        assert!((out - 700.0).abs() < 1.0, "expected ~700 mV, got {out}");
        let back = fivr.deassert_ret(now);
        // Only ~100 mV must be recovered: ~50 ns, not 150 ns.
        assert!(back <= SimDuration::from_nanos(51), "got {back}");
    }

    #[test]
    fn same_target_is_instant() {
        let mut fivr = Fivr::new_clm("vccclm0");
        let d = fivr.set_target(SimTime::ZERO, Fivr::CLM_NOMINAL);
        assert_eq!(d, SimDuration::ZERO);
        assert!(fivr.pwr_ok());
    }

    #[test]
    fn rvid_is_programmable() {
        let mut fivr = Fivr::new_clm("vccclm0");
        fivr.program_retention_vid(Millivolts(550));
        assert_eq!(fivr.retention_vid(), Millivolts(550));
        let d = fivr.assert_ret(SimTime::ZERO);
        assert_eq!(d, SimDuration::from_nanos(125));
    }

    #[test]
    fn mbvr_is_slow_and_fixed() {
        let mbvr = Fivr::new_mbvr("vccio", Millivolts(950));
        assert_eq!(mbvr.kind(), VrKind::Mbvr);
        assert!(mbvr.pwr_ok());
        assert_eq!(mbvr.nominal(), Millivolts(950));
        assert_eq!(mbvr.name(), "vccio");
    }

    #[test]
    fn millivolt_helpers() {
        assert_eq!(Millivolts(800).abs_diff(Millivolts(500)), 300);
        assert!((Millivolts(500).as_volts() - 0.5).abs() < 1e-12);
        assert_eq!(Millivolts(800).to_string(), "800mV");
    }

    #[test]
    fn output_interpolation_clamps_at_target() {
        let mut fivr = Fivr::new_clm("vccclm0");
        fivr.assert_ret(SimTime::ZERO);
        // Long after the transition would be done, interpolation returns the
        // target even if complete_transition has not been called yet.
        assert!((fivr.output_at(SimTime::from_micros(5)) - 500.0).abs() < 1e-9);
    }
}
