//! # `apc-soc` — Skylake-SP class server SoC structural model
//!
//! This crate is the hardware substrate of the AgilePkgC (APC) reproduction:
//! a structural model of an Intel Skylake-SP (SKX) server socket with the
//! components the paper's package C-state flows observe and drive.
//!
//! * [`cstate`] — core (`CCx`) and package (`PCx`) C-state definitions;
//! * [`core`] — CPU cores, their power-management agents and the aggregated
//!   `InCC1` status signal;
//! * [`clm`] — the CHA/LLC/mesh ("CLM") domain with its two FIVRs and
//!   gateable clock tree;
//! * [`io`] — PCIe/DMI/UPI controllers with LTSSM link power states
//!   (L0/L0p/L0s/L1) and the `AllowL0s`/`InL0s` signals;
//! * [`memory`] — memory controllers and DDR4 power modes (CKE-off,
//!   self-refresh) with the `Allow_CKE_OFF` signal;
//! * [`pll`] — all-digital PLLs and their re-lock latency;
//! * [`vr`] — FIVR/MBVR voltage regulators with retention VID and `PwrOk`;
//! * [`clock`] — clock distribution trees and the PMU clock;
//! * [`topology`] — [`topology::SocConfig`] / [`topology::SkxSoc`] aggregate;
//! * [`area`] — die floorplan fractions used by the Sec. 5 area analysis.
//!
//! # Example
//!
//! ```
//! use apc_soc::topology::SkxSoc;
//! use apc_soc::cstate::CoreCState;
//! use apc_sim::SimTime;
//!
//! let mut soc = SkxSoc::xeon_silver_4114();
//! assert_eq!(soc.cores().len(), 10);
//!
//! // Idle the whole socket: the aggregated InCC1 signal asserts.
//! soc.force_all_cores(SimTime::ZERO, CoreCState::CC1);
//! assert!(soc.cores().all_in_cc1_or_deeper());
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod area;
pub mod clm;
pub mod clock;
pub mod core;
pub mod cstate;
pub mod io;
pub mod memory;
pub mod pll;
pub mod topology;
pub mod vr;

pub use cstate::{CoreCState, PackageCState};
pub use topology::{SkxSoc, SocConfig};
