//! High-speed IO controllers (PCIe, DMI, UPI) and their link power states.
//!
//! The IO Standby Mode (IOSM, paper Sec. 4.2) rests on the observation that
//! the *shallow* link power states L0s/L0p have nanosecond-scale exit
//! latencies (≤ 64 ns / ≈ 10 ns) yet still save roughly half of the active
//! link power — but server BIOS guides disable them to protect latency.
//! APC re-enables them *only when all cores are idle* through a new
//! `AllowL0s` control signal, and adds an `InL0s` status output from each
//! controller's LTSSM so the APMU can tell when every link has reached its
//! standby state.

use std::fmt;

use apc_sim::{SimDuration, SimTime};

/// Kinds of high-speed IO interface present in the SKX north cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IoKind {
    /// PCI Express root port (x16).
    Pcie,
    /// Direct Media Interface to the chipset.
    Dmi,
    /// Ultra Path Interconnect to the other socket.
    Upi,
}

impl IoKind {
    /// The shallow standby state this interface supports: PCIe and DMI use
    /// L0s; UPI does not implement L0s and uses L0p instead
    /// (paper footnote 3).
    #[must_use]
    pub fn shallow_state(self) -> LinkPowerState {
        match self {
            IoKind::Pcie | IoKind::Dmi => LinkPowerState::L0s,
            IoKind::Upi => LinkPowerState::L0p,
        }
    }
}

impl fmt::Display for IoKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IoKind::Pcie => "PCIe",
            IoKind::Dmi => "DMI",
            IoKind::Upi => "UPI",
        };
        f.write_str(s)
    }
}

/// Identifier of an IO controller within the SoC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IoId(pub usize);

impl fmt::Display for IoId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "io{}", self.0)
    }
}

/// Link power states (L-states), Sec. 3.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LinkPowerState {
    /// Active: full bandwidth, minimum latency.
    L0,
    /// Partial-width standby: half the lanes asleep, ~10 ns exit, ~25% power
    /// saving. UPI's shallow state.
    L0p,
    /// Standby: lanes asleep, PLL and reference clock on, <64 ns exit, ~50%
    /// power saving.
    L0s,
    /// Power-off: link must retrain and PLLs restart; several µs exit.
    L1,
    /// No device attached (deeper than L1); only reachable at enumeration
    /// time, included for completeness.
    Nda,
}

impl LinkPowerState {
    /// Worst-case exit latency back to L0 from this state.
    #[must_use]
    pub fn exit_latency(self) -> SimDuration {
        match self {
            LinkPowerState::L0 => SimDuration::ZERO,
            LinkPowerState::L0p => SimDuration::from_nanos(10),
            LinkPowerState::L0s => SimDuration::from_nanos(64),
            LinkPowerState::L1 => SimDuration::from_micros(5),
            LinkPowerState::Nda => SimDuration::from_micros(100),
        }
    }

    /// `true` for the shallow standby states usable by PC1A.
    #[must_use]
    pub fn is_shallow_standby(self) -> bool {
        matches!(self, LinkPowerState::L0s | LinkPowerState::L0p)
    }

    /// `true` when the link is at least as deep as `other` in power-saving
    /// terms (L0 < L0p < L0s < L1 < NDA).
    #[must_use]
    pub fn at_least_as_deep_as(self, other: LinkPowerState) -> bool {
        self.depth_rank() >= other.depth_rank()
    }

    fn depth_rank(self) -> u8 {
        match self {
            LinkPowerState::L0 => 0,
            LinkPowerState::L0p => 1,
            LinkPowerState::L0s => 2,
            LinkPowerState::L1 => 3,
            LinkPowerState::Nda => 4,
        }
    }
}

impl fmt::Display for LinkPowerState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LinkPowerState::L0 => "L0",
            LinkPowerState::L0p => "L0p",
            LinkPowerState::L0s => "L0s",
            LinkPowerState::L1 => "L1",
            LinkPowerState::Nda => "NDA",
        };
        f.write_str(s)
    }
}

/// A high-speed IO controller with its Link Training and Status State Machine
/// (LTSSM).
///
/// The controller is a passive model: the surrounding simulation tells it
/// when traffic starts/stops and when the `AllowL0s` policy bit changes; the
/// controller answers what state the link is in, whether `InL0s` is asserted,
/// and how long transitions take.
#[derive(Debug, Clone)]
pub struct IoController {
    id: IoId,
    kind: IoKind,
    state: LinkPowerState,
    /// The `AllowL0s` control input driven by the APMU (or BIOS policy).
    allow_shallow: bool,
    /// Whether deep L1 entry is permitted (PC6-era behaviour).
    allow_l1: bool,
    /// `true` while the link has outstanding transactions.
    busy: bool,
    /// When the link last became idle (no outstanding transactions).
    idle_since: Option<SimTime>,
    since: SimTime,
    shallow_entries: u64,
    wakeups: u64,
}

impl IoController {
    /// L0s entry latency: the controller enters L0s after the link has been
    /// idle for 1/4 of the exit latency (paper Sec. 4.2.1: `L0S_ENTRY_LAT=1`
    /// ⇒ 16 ns for a 64 ns exit).
    pub const L0S_ENTRY_IDLE: SimDuration = SimDuration::from_nanos(16);

    /// Creates a controller with the link active and all standby states
    /// disabled (the datacenter `Cshallow` BIOS default).
    #[must_use]
    pub fn new(id: IoId, kind: IoKind) -> Self {
        IoController {
            id,
            kind,
            state: LinkPowerState::L0,
            allow_shallow: false,
            allow_l1: false,
            busy: false,
            idle_since: Some(SimTime::ZERO),
            since: SimTime::ZERO,
            shallow_entries: 0,
            wakeups: 0,
        }
    }

    /// The controller's identifier.
    #[must_use]
    pub fn id(&self) -> IoId {
        self.id
    }

    /// The interface kind.
    #[must_use]
    pub fn kind(&self) -> IoKind {
        self.kind
    }

    /// Current link power state.
    #[must_use]
    pub fn state(&self) -> LinkPowerState {
        self.state
    }

    /// The `InL0s` status output: asserted when the link is in its shallow
    /// standby state **or deeper** (paper Sec. 4.2.1).
    #[must_use]
    pub fn in_l0s(&self) -> bool {
        self.state.at_least_as_deep_as(self.kind.shallow_state())
    }

    /// `true` while transactions are outstanding on the link.
    #[must_use]
    pub fn is_busy(&self) -> bool {
        self.busy
    }

    /// Number of shallow-standby entries so far.
    #[must_use]
    pub fn shallow_entries(&self) -> u64 {
        self.shallow_entries
    }

    /// Number of wakeups back to L0 so far.
    #[must_use]
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// Drives the `AllowL0s` control signal. Clearing it while the link is in
    /// a shallow state forces an exit (the caller should account for the exit
    /// latency returned).
    pub fn set_allow_shallow(&mut self, now: SimTime, allow: bool) -> SimDuration {
        self.allow_shallow = allow;
        if !allow && self.state.is_shallow_standby() {
            self.wake(now)
        } else {
            SimDuration::ZERO
        }
    }

    /// Whether the shallow standby states are currently permitted.
    #[must_use]
    pub fn allow_shallow(&self) -> bool {
        self.allow_shallow
    }

    /// Enables or disables deep L1 entry (used by the PC6 flow).
    pub fn set_allow_l1(&mut self, allow: bool) {
        self.allow_l1 = allow;
    }

    /// Marks the beginning of link traffic at `now`. Returns the exit latency
    /// the first transaction observes (zero when the link was already in L0).
    pub fn begin_traffic(&mut self, now: SimTime) -> SimDuration {
        self.busy = true;
        self.idle_since = None;
        self.wake(now)
    }

    /// Marks the end of link traffic at `now` (no outstanding transactions).
    pub fn end_traffic(&mut self, now: SimTime) {
        self.busy = false;
        self.idle_since = Some(now);
    }

    /// The time at which the controller's autonomous LTSSM will enter the
    /// shallow standby state, given the current policy and idle time, or
    /// `None` if it will not (busy, not allowed, or already in standby).
    #[must_use]
    pub fn shallow_entry_deadline(&self) -> Option<SimTime> {
        if self.busy || !self.allow_shallow || self.in_l0s() {
            return None;
        }
        self.idle_since.map(|t| t + Self::L0S_ENTRY_IDLE)
    }

    /// Attempts the autonomous entry into the shallow standby state at `now`.
    /// Returns `true` if the link entered standby (i.e. the deadline from
    /// [`IoController::shallow_entry_deadline`] has passed and conditions
    /// still hold).
    pub fn try_enter_shallow(&mut self, now: SimTime) -> bool {
        match self.shallow_entry_deadline() {
            Some(deadline) if now >= deadline => {
                self.state = self.kind.shallow_state();
                self.since = now;
                self.shallow_entries += 1;
                true
            }
            _ => false,
        }
    }

    /// Enters the deep L1 state (PC6 entry flow). Requires the link to be
    /// idle; silently keeps the current state otherwise.
    pub fn enter_l1(&mut self, now: SimTime) {
        if !self.busy && self.allow_l1 {
            self.state = LinkPowerState::L1;
            self.since = now;
        }
    }

    /// Wakes the link back to L0 and returns the exit latency paid.
    pub fn wake(&mut self, now: SimTime) -> SimDuration {
        let latency = self.state.exit_latency();
        if self.state != LinkPowerState::L0 {
            self.wakeups += 1;
            self.state = LinkPowerState::L0;
            self.since = now;
        }
        latency
    }
}

/// The full set of high-speed IO controllers of the SKX north cap
/// (3 × PCIe, 1 × DMI, 2 × UPI on the reference Xeon Silver 4114 system,
/// paper Sec. 5.4).
#[derive(Debug, Clone)]
pub struct IoSet {
    controllers: Vec<IoController>,
}

impl IoSet {
    /// Builds the reference system's IO inventory.
    #[must_use]
    pub fn skx_reference() -> Self {
        let kinds = [
            IoKind::Pcie,
            IoKind::Pcie,
            IoKind::Pcie,
            IoKind::Dmi,
            IoKind::Upi,
            IoKind::Upi,
        ];
        IoSet {
            controllers: kinds
                .iter()
                .enumerate()
                .map(|(i, &k)| IoController::new(IoId(i), k))
                .collect(),
        }
    }

    /// Builds a custom inventory.
    #[must_use]
    pub fn new(kinds: &[IoKind]) -> Self {
        IoSet {
            controllers: kinds
                .iter()
                .enumerate()
                .map(|(i, &k)| IoController::new(IoId(i), k))
                .collect(),
        }
    }

    /// Number of controllers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.controllers.len()
    }

    /// `true` when there are no controllers.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.controllers.is_empty()
    }

    /// Immutable access to a controller.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn controller(&self, id: IoId) -> &IoController {
        &self.controllers[id.0]
    }

    /// Mutable access to a controller.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn controller_mut(&mut self, id: IoId) -> &mut IoController {
        &mut self.controllers[id.0]
    }

    /// Iterator over all controllers.
    pub fn iter(&self) -> impl Iterator<Item = &IoController> {
        self.controllers.iter()
    }

    /// Mutable iterator over all controllers.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut IoController> {
        self.controllers.iter_mut()
    }

    /// The aggregated `&InL0s` signal (AND across controllers, Fig. 3/4):
    /// `true` when every link is in its shallow standby state or deeper.
    #[must_use]
    pub fn all_in_l0s(&self) -> bool {
        !self.controllers.is_empty() && self.controllers.iter().all(IoController::in_l0s)
    }

    /// Drives `AllowL0s` on every controller; returns the worst exit latency
    /// triggered by clearing the signal (zero when setting it).
    pub fn set_allow_shallow_all(&mut self, now: SimTime, allow: bool) -> SimDuration {
        self.controllers
            .iter_mut()
            .map(|c| c.set_allow_shallow(now, allow))
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Worst-case exit latency across all controllers from their current
    /// states.
    #[must_use]
    pub fn worst_exit_latency(&self) -> SimDuration {
        self.controllers
            .iter()
            .map(|c| c.state().exit_latency())
            .fold(SimDuration::ZERO, SimDuration::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skx_reference_inventory() {
        let set = IoSet::skx_reference();
        assert_eq!(set.len(), 6);
        let pcie = set.iter().filter(|c| c.kind() == IoKind::Pcie).count();
        let dmi = set.iter().filter(|c| c.kind() == IoKind::Dmi).count();
        let upi = set.iter().filter(|c| c.kind() == IoKind::Upi).count();
        assert_eq!((pcie, dmi, upi), (3, 1, 2));
    }

    #[test]
    fn shallow_state_per_kind() {
        assert_eq!(IoKind::Pcie.shallow_state(), LinkPowerState::L0s);
        assert_eq!(IoKind::Dmi.shallow_state(), LinkPowerState::L0s);
        assert_eq!(IoKind::Upi.shallow_state(), LinkPowerState::L0p);
        assert_eq!(IoKind::Upi.to_string(), "UPI");
    }

    #[test]
    fn l_state_latencies_match_paper() {
        assert_eq!(
            LinkPowerState::L0s.exit_latency(),
            SimDuration::from_nanos(64)
        );
        assert_eq!(
            LinkPowerState::L0p.exit_latency(),
            SimDuration::from_nanos(10)
        );
        assert!(LinkPowerState::L1.exit_latency() >= SimDuration::from_micros(1));
        assert!(LinkPowerState::L0s.is_shallow_standby());
        assert!(!LinkPowerState::L1.is_shallow_standby());
        assert!(LinkPowerState::L1.at_least_as_deep_as(LinkPowerState::L0s));
        assert_eq!(LinkPowerState::L0s.to_string(), "L0s");
    }

    #[test]
    fn controller_does_not_enter_standby_without_allow() {
        let mut c = IoController::new(IoId(0), IoKind::Pcie);
        c.end_traffic(SimTime::ZERO);
        assert_eq!(c.shallow_entry_deadline(), None);
        assert!(!c.try_enter_shallow(SimTime::from_micros(1)));
        assert_eq!(c.state(), LinkPowerState::L0);
    }

    #[test]
    fn controller_enters_l0s_after_16ns_idle() {
        let mut c = IoController::new(IoId(0), IoKind::Pcie);
        c.end_traffic(SimTime::ZERO);
        c.set_allow_shallow(SimTime::ZERO, true);
        let deadline = c.shallow_entry_deadline().unwrap();
        assert_eq!(deadline, SimTime::from_nanos(16));
        assert!(!c.try_enter_shallow(SimTime::from_nanos(10)));
        assert!(c.try_enter_shallow(SimTime::from_nanos(16)));
        assert!(c.in_l0s());
        assert_eq!(c.shallow_entries(), 1);
    }

    #[test]
    fn traffic_wakes_link_and_pays_exit_latency() {
        let mut c = IoController::new(IoId(1), IoKind::Upi);
        c.end_traffic(SimTime::ZERO);
        c.set_allow_shallow(SimTime::ZERO, true);
        assert!(c.try_enter_shallow(SimTime::from_nanos(16)));
        assert_eq!(c.state(), LinkPowerState::L0p);
        let lat = c.begin_traffic(SimTime::from_micros(1));
        assert_eq!(lat, SimDuration::from_nanos(10));
        assert_eq!(c.state(), LinkPowerState::L0);
        assert!(c.is_busy());
        assert_eq!(c.wakeups(), 1);
        // While busy there is no standby deadline.
        assert_eq!(c.shallow_entry_deadline(), None);
    }

    #[test]
    fn clearing_allow_forces_exit() {
        let mut c = IoController::new(IoId(0), IoKind::Pcie);
        c.end_traffic(SimTime::ZERO);
        c.set_allow_shallow(SimTime::ZERO, true);
        assert!(c.try_enter_shallow(SimTime::from_nanos(20)));
        let lat = c.set_allow_shallow(SimTime::from_nanos(100), false);
        assert_eq!(lat, SimDuration::from_nanos(64));
        assert_eq!(c.state(), LinkPowerState::L0);
        assert!(!c.allow_shallow());
    }

    #[test]
    fn l1_requires_permission_and_idle() {
        let mut c = IoController::new(IoId(0), IoKind::Pcie);
        c.end_traffic(SimTime::ZERO);
        c.enter_l1(SimTime::from_micros(1));
        assert_eq!(c.state(), LinkPowerState::L0, "L1 not allowed yet");
        c.set_allow_l1(true);
        c.enter_l1(SimTime::from_micros(2));
        assert_eq!(c.state(), LinkPowerState::L1);
        assert!(c.in_l0s(), "L1 is deeper than L0s, so InL0s holds");
        let lat = c.wake(SimTime::from_micros(10));
        assert_eq!(lat, SimDuration::from_micros(5));
    }

    #[test]
    fn ioset_aggregate_inl0s() {
        let mut set = IoSet::skx_reference();
        assert!(!set.all_in_l0s());
        set.set_allow_shallow_all(SimTime::ZERO, true);
        for c in set.iter_mut() {
            c.end_traffic(SimTime::ZERO);
        }
        for c in set.iter_mut() {
            assert!(c.try_enter_shallow(SimTime::from_nanos(16)));
        }
        assert!(set.all_in_l0s());
        assert_eq!(set.worst_exit_latency(), SimDuration::from_nanos(64));
        // Clearing AllowL0s everywhere wakes every link.
        let lat = set.set_allow_shallow_all(SimTime::from_micros(1), false);
        assert_eq!(lat, SimDuration::from_nanos(64));
        assert!(!set.all_in_l0s());
    }
}
