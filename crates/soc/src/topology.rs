//! SoC topology: configuration and the aggregate socket model.
//!
//! [`SocConfig`] captures the structural parameters of the modelled server
//! (the defaults reproduce the paper's reference Xeon Silver 4114 system) and
//! [`SkxSoc`] aggregates all component models into one socket that the
//! package C-state flows and the full-system simulation operate on.

use std::fmt;

use apc_sim::SimTime;

use crate::clm::ClmDomain;
use crate::core::{CoreId, CoreSet};
use crate::cstate::CoreCState;
use crate::io::{IoKind, IoSet};
use crate::memory::MemorySet;
use crate::pll::PllSet;
use crate::vr::{Fivr, Millivolts};

/// Structural configuration of a socket.
///
/// # Examples
///
/// ```
/// use apc_soc::topology::SocConfig;
///
/// let cfg = SocConfig::xeon_silver_4114();
/// assert_eq!(cfg.cores, 10);
/// assert_eq!(cfg.memory_controllers, 2);
/// let soc = cfg.build();
/// assert_eq!(soc.cores().len(), 10);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SocConfig {
    /// Number of physical cores.
    pub cores: usize,
    /// Number of hardware threads per core (informational; the scheduler in
    /// `apc-server` pins one request per core, matching the paper's setup).
    pub threads_per_core: usize,
    /// Nominal core frequency in MHz.
    pub nominal_freq_mhz: u32,
    /// Minimum core frequency in MHz.
    pub min_freq_mhz: u32,
    /// Maximum (turbo) frequency in MHz.
    pub turbo_freq_mhz: u32,
    /// High-speed IO controllers present in the north cap.
    pub io_kinds: Vec<IoKind>,
    /// Number of memory controllers.
    pub memory_controllers: usize,
    /// Installed DRAM capacity in GiB (informational).
    pub dram_gib: u32,
    /// Mesh dimensions (columns, rows) of the NoC.
    pub mesh: (usize, usize),
}

impl SocConfig {
    /// The paper's reference system: Intel Xeon Silver 4114
    /// (10 cores / 20 threads, 2.2 GHz nominal, 0.8 GHz min, 3.0 GHz turbo,
    /// 3×PCIe + 1×DMI + 2×UPI, 2 memory controllers, 192 GiB DDR4-2666).
    #[must_use]
    pub fn xeon_silver_4114() -> Self {
        SocConfig {
            cores: 10,
            threads_per_core: 2,
            nominal_freq_mhz: 2_200,
            min_freq_mhz: 800,
            turbo_freq_mhz: 3_000,
            io_kinds: vec![
                IoKind::Pcie,
                IoKind::Pcie,
                IoKind::Pcie,
                IoKind::Dmi,
                IoKind::Upi,
                IoKind::Upi,
            ],
            memory_controllers: 2,
            dram_gib: 192,
            mesh: (5, 4),
        }
    }

    /// A reduced configuration handy for fast unit tests.
    #[must_use]
    pub fn small_test(cores: usize) -> Self {
        SocConfig {
            cores,
            threads_per_core: 1,
            nominal_freq_mhz: 2_000,
            min_freq_mhz: 800,
            turbo_freq_mhz: 2_500,
            io_kinds: vec![IoKind::Pcie, IoKind::Dmi],
            memory_controllers: 1,
            dram_gib: 16,
            mesh: (2, 2),
        }
    }

    /// Builds the aggregate socket model from this configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero cores, no IO
    /// controllers or no memory controllers).
    #[must_use]
    pub fn build(&self) -> SkxSoc {
        assert!(self.cores > 0, "a socket needs at least one core");
        assert!(
            !self.io_kinds.is_empty(),
            "a socket needs at least one IO controller"
        );
        assert!(
            self.memory_controllers > 0,
            "a socket needs at least one memory controller"
        );
        SkxSoc {
            cores: CoreSet::new(self.cores),
            clm: ClmDomain::new(self.cores, self.mesh.0, self.mesh.1),
            ios: IoSet::new(&self.io_kinds),
            memory: MemorySet::new(self.memory_controllers),
            plls: PllSet::new(self.cores, self.io_kinds.len()),
            motherboard_rails: vec![
                Fivr::new_mbvr("vccsa", Millivolts(850)),
                Fivr::new_mbvr("vccio", Millivolts(950)),
            ],
            config: self.clone(),
            change_epoch: 0,
            uncore_epoch: 0,
        }
    }
}

impl Default for SocConfig {
    fn default() -> Self {
        SocConfig::xeon_silver_4114()
    }
}

impl fmt::Display for SocConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cores @ {} MHz, {} IO controllers, {} MCs, {} GiB DRAM",
            self.cores,
            self.nominal_freq_mhz,
            self.io_kinds.len(),
            self.memory_controllers,
            self.dram_gib
        )
    }
}

/// The aggregate socket: every component model the package C-state flows and
/// the power model need to observe or drive.
#[derive(Debug, Clone)]
pub struct SkxSoc {
    cores: CoreSet,
    clm: ClmDomain,
    ios: IoSet,
    memory: MemorySet,
    plls: PllSet,
    motherboard_rails: Vec<Fivr>,
    config: SocConfig,
    /// Bumped by every mutable-access path (see [`SkxSoc::change_epoch`]).
    change_epoch: u64,
    /// Bumped by every mutable-access path *except* `cores_mut` (see
    /// [`SkxSoc::uncore_change_epoch`]).
    uncore_epoch: u64,
}

impl SkxSoc {
    /// Builds the paper's reference socket.
    #[must_use]
    pub fn xeon_silver_4114() -> Self {
        SocConfig::xeon_silver_4114().build()
    }

    /// The structural configuration this socket was built from.
    #[must_use]
    pub fn config(&self) -> &SocConfig {
        &self.config
    }

    /// The core set.
    #[must_use]
    pub fn cores(&self) -> &CoreSet {
        &self.cores
    }

    /// Mutable access to the core set.
    pub fn cores_mut(&mut self) -> &mut CoreSet {
        self.change_epoch += 1;
        &mut self.cores
    }

    /// The CLM domain.
    #[must_use]
    pub fn clm(&self) -> &ClmDomain {
        &self.clm
    }

    /// Mutable access to the CLM domain.
    pub fn clm_mut(&mut self) -> &mut ClmDomain {
        self.change_epoch += 1;
        self.uncore_epoch += 1;
        &mut self.clm
    }

    /// The high-speed IO controllers.
    #[must_use]
    pub fn ios(&self) -> &IoSet {
        &self.ios
    }

    /// Mutable access to the IO controllers.
    pub fn ios_mut(&mut self) -> &mut IoSet {
        self.change_epoch += 1;
        self.uncore_epoch += 1;
        &mut self.ios
    }

    /// The memory subsystem.
    #[must_use]
    pub fn memory(&self) -> &MemorySet {
        &self.memory
    }

    /// Mutable access to the memory subsystem.
    pub fn memory_mut(&mut self) -> &mut MemorySet {
        self.change_epoch += 1;
        self.uncore_epoch += 1;
        &mut self.memory
    }

    /// The PLL inventory.
    #[must_use]
    pub fn plls(&self) -> &PllSet {
        &self.plls
    }

    /// Mutable access to the PLL inventory.
    pub fn plls_mut(&mut self) -> &mut PllSet {
        self.change_epoch += 1;
        self.uncore_epoch += 1;
        &mut self.plls
    }

    /// The fixed motherboard voltage rails (Vccsa, Vccio).
    #[must_use]
    pub fn motherboard_rails(&self) -> &[Fivr] {
        &self.motherboard_rails
    }

    /// Forces every core into `state` at time `now`, bypassing transition
    /// latencies. Convenience for setting up analytical experiments
    /// ("all cores in CC1", "all cores in CC6").
    pub fn force_all_cores(&mut self, now: SimTime, state: CoreCState) {
        self.change_epoch += 1;
        for i in 0..self.cores.len() {
            self.cores.core_mut(CoreId(i)).force_state(now, state);
        }
    }

    /// A counter bumped by every mutable-access path into the socket
    /// (`cores_mut`, `clm_mut`, `ios_mut`, `memory_mut`, `plls_mut`,
    /// [`force_all_cores`](SkxSoc::force_all_cores)). Two equal epochs
    /// guarantee the socket state — and therefore any pure function of it,
    /// such as a power snapshot — is unchanged; an epoch bump does *not*
    /// guarantee a change (handing out a `&mut` that is never written still
    /// bumps). Lets callers cache derived values with an exact "maybe
    /// changed" signal instead of recomputing on every event.
    #[must_use]
    pub fn change_epoch(&self) -> u64 {
        self.change_epoch
    }

    /// Like [`change_epoch`](SkxSoc::change_epoch) but *not* bumped by
    /// `cores_mut`: it tracks only the uncore component models (CLM, IO
    /// controllers, memory, PLLs). Core C-states move orders of magnitude
    /// more often than the uncore, so callers whose derivation depends on
    /// core state only through the C-state vector can pair this epoch with
    /// [`CoreSet::cstate_fingerprint`](crate::core::CoreSet::cstate_fingerprint)
    /// and skip recomputation across the frequent core-only `&mut` accesses
    /// that leave every C-state in place.
    #[must_use]
    pub fn uncore_change_epoch(&self) -> u64 {
        self.uncore_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cstate::CoreCState;

    #[test]
    fn reference_config_matches_xeon_4114() {
        let cfg = SocConfig::xeon_silver_4114();
        assert_eq!(cfg.cores, 10);
        assert_eq!(cfg.threads_per_core, 2);
        assert_eq!(cfg.nominal_freq_mhz, 2_200);
        assert_eq!(cfg.io_kinds.len(), 6);
        assert_eq!(cfg.memory_controllers, 2);
        assert_eq!(cfg.dram_gib, 192);
        assert_eq!(SocConfig::default(), cfg);
        assert!(cfg.to_string().contains("10 cores"));
    }

    #[test]
    fn build_wires_all_components() {
        let soc = SkxSoc::xeon_silver_4114();
        assert_eq!(soc.cores().len(), 10);
        assert_eq!(soc.clm().slice_count(), 10);
        assert_eq!(soc.ios().len(), 6);
        assert_eq!(soc.memory().len(), 2);
        assert_eq!(soc.plls().len(), 18);
        assert_eq!(soc.motherboard_rails().len(), 2);
        assert_eq!(soc.config().cores, 10);
    }

    #[test]
    fn force_all_cores_sets_every_core() {
        let mut soc = SkxSoc::xeon_silver_4114();
        soc.force_all_cores(SimTime::ZERO, CoreCState::CC1);
        assert!(soc.cores().all_in_cc1_or_deeper());
        soc.force_all_cores(SimTime::ZERO, CoreCState::CC0);
        assert_eq!(soc.cores().active_count(), 10);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_core_config_is_rejected() {
        let mut cfg = SocConfig::small_test(1);
        cfg.cores = 0;
        let _ = cfg.build();
    }

    #[test]
    fn small_test_config_builds() {
        let soc = SocConfig::small_test(4).build();
        assert_eq!(soc.cores().len(), 4);
        assert_eq!(soc.ios().len(), 2);
        assert_eq!(soc.memory().len(), 1);
    }
}
