//! Core and package C-state definitions.
//!
//! Nomenclature follows the paper (Sec. 3.1): core C-states are written
//! `CCx` and package C-states `PCx`; larger `x` means deeper (lower power,
//! longer transition latency).

use std::fmt;

use apc_sim::SimDuration;

/// Core C-states supported by the modelled Skylake-SP core (Sec. 3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CoreCState {
    /// Active: the core is executing instructions.
    CC0,
    /// Shallow halt: clocks gated, caches retained, ~1 µs exit.
    CC1,
    /// Like CC1 but the core also drops to its minimum voltage/frequency
    /// operating point; slightly higher exit latency.
    CC1E,
    /// Deep sleep: core caches flushed, core power-gated; ~133 µs transition
    /// (the paper's motivation for why datacenters disable it).
    CC6,
}

impl CoreCState {
    /// All core C-states, shallow to deep.
    pub const ALL: [CoreCState; 4] = [
        CoreCState::CC0,
        CoreCState::CC1,
        CoreCState::CC1E,
        CoreCState::CC6,
    ];

    /// `true` when the core is executing (CC0).
    #[must_use]
    pub fn is_active(self) -> bool {
        self == CoreCState::CC0
    }

    /// `true` for any non-active (idle) state.
    #[must_use]
    pub fn is_idle(self) -> bool {
        !self.is_active()
    }

    /// `true` when this state is at least as deep as `other`.
    ///
    /// The derived `Ord` orders states shallow → deep, so depth comparisons
    /// are plain comparisons.
    #[must_use]
    pub fn at_least_as_deep_as(self, other: CoreCState) -> bool {
        self >= other
    }

    /// Typical worst-case exit latency for this core C-state on the modelled
    /// server (CC6 value from the paper's Sec. 3.1: ≈133 µs transition).
    #[must_use]
    pub fn exit_latency(self) -> SimDuration {
        match self {
            CoreCState::CC0 => SimDuration::ZERO,
            CoreCState::CC1 => SimDuration::from_nanos(1_000),
            CoreCState::CC1E => SimDuration::from_nanos(4_000),
            CoreCState::CC6 => SimDuration::from_micros(133),
        }
    }

    /// Typical entry latency (time from the decision to enter until the state
    /// is established and its power level applies).
    #[must_use]
    pub fn entry_latency(self) -> SimDuration {
        match self {
            CoreCState::CC0 => SimDuration::ZERO,
            CoreCState::CC1 => SimDuration::from_nanos(500),
            CoreCState::CC1E => SimDuration::from_nanos(2_000),
            CoreCState::CC6 => SimDuration::from_micros(50),
        }
    }

    /// The OS "target residency": the minimum idle-period length for which
    /// entering this state is worthwhile. Mirrors the Linux `intel_idle`
    /// table shape for Skylake servers.
    #[must_use]
    pub fn target_residency(self) -> SimDuration {
        match self {
            CoreCState::CC0 => SimDuration::ZERO,
            CoreCState::CC1 => SimDuration::from_micros(2),
            CoreCState::CC1E => SimDuration::from_micros(20),
            CoreCState::CC6 => SimDuration::from_micros(600),
        }
    }
}

impl fmt::Display for CoreCState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CoreCState::CC0 => "CC0",
            CoreCState::CC1 => "CC1",
            CoreCState::CC1E => "CC1E",
            CoreCState::CC6 => "CC6",
        };
        f.write_str(s)
    }
}

/// Package C-states, including the paper's new PC1A (Table 2).
///
/// The derived ordering follows declaration order and is provided only so
/// the type can key ordered collections; it is *not* a statement about
/// power-saving depth (use [`PackageCState::is_power_saving`] and the
/// latency/power models for that).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PackageCState {
    /// Active package state: at least one core in CC0, all shared resources
    /// available.
    PC0,
    /// Not an architectural state: all cores idle in CC1 but no package-level
    /// power action has been taken. The paper calls this operating point
    /// `PC0idle` in Table 1 and `ACC1` when it is the staging state of the
    /// PC1A flow.
    PC0Idle,
    /// Transient state between PC0 and deeper package C-states.
    PC2,
    /// Existing deep package C-state: IOs in L1, DRAM in self-refresh, CLM at
    /// retention, PLLs off. >50 µs transition.
    PC6,
    /// The paper's new agile deep package C-state: cores in CC1, IOs in
    /// L0s/L0p, DRAM CKE-off, CLM at retention, PLLs on. <200 ns transition.
    PC1A,
}

impl PackageCState {
    /// All modelled package C-states.
    pub const ALL: [PackageCState; 5] = [
        PackageCState::PC0,
        PackageCState::PC0Idle,
        PackageCState::PC2,
        PackageCState::PC6,
        PackageCState::PC1A,
    ];

    /// `true` for the states in which the uncore is fully available
    /// (memory path open, no wake needed).
    #[must_use]
    pub fn uncore_available(self) -> bool {
        matches!(
            self,
            PackageCState::PC0 | PackageCState::PC0Idle | PackageCState::PC2
        )
    }

    /// `true` for states that deliver package-level power savings.
    #[must_use]
    pub fn is_power_saving(self) -> bool {
        matches!(self, PackageCState::PC6 | PackageCState::PC1A)
    }

    /// Worst-case entry+exit transition latency to reopen the path to memory
    /// (Table 1).
    #[must_use]
    pub fn transition_latency(self) -> SimDuration {
        match self {
            PackageCState::PC0 | PackageCState::PC0Idle => SimDuration::ZERO,
            PackageCState::PC2 => SimDuration::from_micros(1),
            PackageCState::PC6 => SimDuration::from_micros(50),
            PackageCState::PC1A => SimDuration::from_nanos(200),
        }
    }

    /// The core C-state every core must reach before the package controller
    /// may initiate entry into this package state (Table 2).
    #[must_use]
    pub fn required_core_cstate(self) -> CoreCState {
        match self {
            PackageCState::PC0 => CoreCState::CC0,
            PackageCState::PC0Idle | PackageCState::PC2 | PackageCState::PC1A => CoreCState::CC1,
            PackageCState::PC6 => CoreCState::CC6,
        }
    }
}

impl fmt::Display for PackageCState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PackageCState::PC0 => "PC0",
            PackageCState::PC0Idle => "PC0idle",
            PackageCState::PC2 => "PC2",
            PackageCState::PC6 => "PC6",
            PackageCState::PC1A => "PC1A",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_cstate_ordering_reflects_depth() {
        assert!(CoreCState::CC6 > CoreCState::CC1);
        assert!(CoreCState::CC1E > CoreCState::CC1);
        assert!(CoreCState::CC1 > CoreCState::CC0);
        assert!(CoreCState::CC6.at_least_as_deep_as(CoreCState::CC1));
        assert!(!CoreCState::CC1.at_least_as_deep_as(CoreCState::CC6));
    }

    #[test]
    fn deeper_core_states_have_longer_latencies() {
        let lats: Vec<_> = CoreCState::ALL.iter().map(|c| c.exit_latency()).collect();
        assert!(lats.windows(2).all(|w| w[0] <= w[1]));
        let entries: Vec<_> = CoreCState::ALL.iter().map(|c| c.entry_latency()).collect();
        assert!(entries.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn cc6_latency_matches_paper_scale() {
        assert_eq!(
            CoreCState::CC6.exit_latency(),
            SimDuration::from_micros(133)
        );
        assert!(CoreCState::CC1.exit_latency() <= SimDuration::from_micros(2));
    }

    #[test]
    fn active_and_idle_classification() {
        assert!(CoreCState::CC0.is_active());
        assert!(!CoreCState::CC0.is_idle());
        assert!(CoreCState::CC1.is_idle());
        assert!(CoreCState::CC6.is_idle());
    }

    #[test]
    fn package_latency_ratio_exceeds_250x() {
        let pc6 = PackageCState::PC6.transition_latency().as_nanos() as f64;
        let pc1a = PackageCState::PC1A.transition_latency().as_nanos() as f64;
        assert!(pc6 / pc1a >= 250.0, "ratio {}", pc6 / pc1a);
    }

    #[test]
    fn package_required_core_states_match_table2() {
        assert_eq!(PackageCState::PC6.required_core_cstate(), CoreCState::CC6);
        assert_eq!(PackageCState::PC1A.required_core_cstate(), CoreCState::CC1);
        assert_eq!(PackageCState::PC0.required_core_cstate(), CoreCState::CC0);
    }

    #[test]
    fn package_classification() {
        assert!(PackageCState::PC0.uncore_available());
        assert!(PackageCState::PC0Idle.uncore_available());
        assert!(!PackageCState::PC6.uncore_available());
        assert!(!PackageCState::PC1A.uncore_available());
        assert!(PackageCState::PC1A.is_power_saving());
        assert!(PackageCState::PC6.is_power_saving());
        assert!(!PackageCState::PC0.is_power_saving());
    }

    #[test]
    fn display_names() {
        assert_eq!(CoreCState::CC1E.to_string(), "CC1E");
        assert_eq!(PackageCState::PC1A.to_string(), "PC1A");
        assert_eq!(PackageCState::PC0Idle.to_string(), "PC0idle");
    }
}
