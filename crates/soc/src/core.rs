//! CPU core model and its power-management agent (PMA).
//!
//! Each core tile of the modelled SKX SoC contains a core, its private
//! caches, and a per-core power-management agent. The PMA knows the core's
//! current C-state and exposes it as the `InCC1` status signal the APMU
//! aggregates (paper Sec. 5.3).

use std::fmt;

use apc_sim::{SimDuration, SimTime};

use crate::cstate::CoreCState;

/// Identifier of a CPU core within the SoC (0-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// What a core is doing right now, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoreActivity {
    /// Executing a request (or OS work).
    Busy,
    /// Idle in some C-state, immediately schedulable after the C-state exit
    /// latency.
    Idle,
    /// In transition between C-states (entry or exit in progress); cannot
    /// execute until the transition completes.
    Transitioning,
}

/// A CPU core together with its power-management agent.
///
/// The core is a passive state machine: the surrounding simulation decides
/// *when* to request transitions, the core records the state and answers
/// questions about latency and status signals.
///
/// # Examples
///
/// ```
/// use apc_soc::core::{Core, CoreId};
/// use apc_soc::cstate::CoreCState;
/// use apc_sim::SimTime;
///
/// let mut core = Core::new(CoreId(0));
/// assert!(core.cstate().is_active());
///
/// // The OS idles the core into CC1.
/// let t = SimTime::from_micros(10);
/// core.begin_idle(t, CoreCState::CC1);
/// core.complete_transition(t + CoreCState::CC1.entry_latency());
/// assert!(core.in_cc1_or_deeper());
/// ```
#[derive(Debug, Clone)]
pub struct Core {
    id: CoreId,
    cstate: CoreCState,
    activity: CoreActivity,
    /// Target of an in-flight transition, if any.
    pending: Option<CoreCState>,
    /// When the current state/activity was established.
    since: SimTime,
    /// Cumulative number of C-state transitions (entries into idle states).
    idle_entries: u64,
    /// Cumulative number of wakeups (returns to CC0).
    wakeups: u64,
}

impl Core {
    /// Creates a core in the active state (CC0, busy) at time zero.
    #[must_use]
    pub fn new(id: CoreId) -> Self {
        Core {
            id,
            cstate: CoreCState::CC0,
            activity: CoreActivity::Busy,
            pending: None,
            since: SimTime::ZERO,
            idle_entries: 0,
            wakeups: 0,
        }
    }

    /// The core's identifier.
    #[must_use]
    pub fn id(&self) -> CoreId {
        self.id
    }

    /// Current (established) core C-state.
    #[must_use]
    pub fn cstate(&self) -> CoreCState {
        self.cstate
    }

    /// Current activity classification.
    #[must_use]
    pub fn activity(&self) -> CoreActivity {
        self.activity
    }

    /// Timestamp at which the current state was established.
    #[must_use]
    pub fn since(&self) -> SimTime {
        self.since
    }

    /// Number of idle-state entries so far.
    #[must_use]
    pub fn idle_entries(&self) -> u64 {
        self.idle_entries
    }

    /// Number of wakeups (CC0 resumptions) so far.
    #[must_use]
    pub fn wakeups(&self) -> u64 {
        self.wakeups
    }

    /// The `InCC1` status signal exposed by the core's PMA: `true` when the
    /// core currently resides in CC1 or any deeper C-state (paper Sec. 5.3).
    ///
    /// A core that is *transitioning* does not assert the signal, matching
    /// hardware where the status flops update only once the state is
    /// established.
    #[must_use]
    pub fn in_cc1_or_deeper(&self) -> bool {
        self.pending.is_none()
            && self.activity != CoreActivity::Busy
            && self.cstate.at_least_as_deep_as(CoreCState::CC1)
    }

    /// Starts an idle transition into `target` at time `now`.
    ///
    /// Returns the entry latency the caller should wait before calling
    /// [`Core::complete_transition`].
    ///
    /// # Panics
    ///
    /// Panics if `target` is `CC0` (use [`Core::begin_wakeup`]) or if the core
    /// is already idle or transitioning.
    pub fn begin_idle(&mut self, now: SimTime, target: CoreCState) -> SimDuration {
        assert!(target.is_idle(), "begin_idle requires an idle target state");
        assert_eq!(
            self.activity,
            CoreActivity::Busy,
            "{}: cannot enter {target} while {:?}",
            self.id,
            self.activity
        );
        self.pending = Some(target);
        self.activity = CoreActivity::Transitioning;
        self.since = now;
        self.idle_entries += 1;
        target.entry_latency()
    }

    /// Starts a wakeup (transition back to CC0) at time `now`.
    ///
    /// Returns the exit latency of the state the core is leaving. Waking a
    /// core that is still completing its idle entry is allowed (hardware
    /// aborts the entry); the exit latency is then the target state's exit
    /// latency, which is the conservative choice.
    ///
    /// # Panics
    ///
    /// Panics if the core is already busy.
    pub fn begin_wakeup(&mut self, now: SimTime) -> SimDuration {
        assert_ne!(
            self.activity,
            CoreActivity::Busy,
            "{}: busy cores cannot be woken",
            self.id
        );
        let leaving = self.pending.take().unwrap_or(self.cstate);
        self.pending = Some(CoreCState::CC0);
        self.activity = CoreActivity::Transitioning;
        self.since = now;
        self.wakeups += 1;
        leaving.exit_latency()
    }

    /// Completes an in-flight transition at time `now`, establishing the
    /// pending state.
    ///
    /// # Panics
    ///
    /// Panics if no transition is pending.
    pub fn complete_transition(&mut self, now: SimTime) {
        let target = self
            .pending
            .take()
            .unwrap_or_else(|| panic!("{}: no transition in flight", self.id));
        self.cstate = target;
        self.activity = if target.is_active() {
            CoreActivity::Busy
        } else {
            CoreActivity::Idle
        };
        self.since = now;
    }

    /// Forces the core into an established state without modelling the
    /// transition latency. Used for initial conditions and by analytical
    /// (non-event-driven) experiments.
    pub fn force_state(&mut self, now: SimTime, state: CoreCState) {
        self.pending = None;
        self.cstate = state;
        self.activity = if state.is_active() {
            CoreActivity::Busy
        } else {
            CoreActivity::Idle
        };
        self.since = now;
    }
}

/// The set of cores of a socket, with helpers for the all-core status signals
/// the package controllers consume.
#[derive(Debug, Clone)]
pub struct CoreSet {
    cores: Vec<Core>,
}

impl CoreSet {
    /// Creates `n` cores, all active.
    #[must_use]
    pub fn new(n: usize) -> Self {
        CoreSet {
            cores: (0..n).map(|i| Core::new(CoreId(i))).collect(),
        }
    }

    /// Number of cores.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cores.len()
    }

    /// `true` when the socket has no cores (never the case in practice, but
    /// required for a well-behaved collection API).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cores.is_empty()
    }

    /// Immutable access to a core.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[must_use]
    pub fn core(&self, id: CoreId) -> &Core {
        &self.cores[id.0]
    }

    /// Mutable access to a core.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn core_mut(&mut self, id: CoreId) -> &mut Core {
        &mut self.cores[id.0]
    }

    /// Iterator over all cores.
    pub fn iter(&self) -> impl Iterator<Item = &Core> {
        self.cores.iter()
    }

    /// A compact injective encoding of every core's C-state (2 bits per
    /// core), or `None` when the socket has more cores than fit one word.
    /// Equal fingerprints guarantee bit-identical per-core C-states, so a
    /// cached value derived from them (e.g. a power breakdown) can be
    /// reused without recomputation; `None` means callers must assume a
    /// change.
    #[must_use]
    pub fn cstate_fingerprint(&self) -> Option<u64> {
        if self.cores.len() > 32 {
            return None;
        }
        let mut fp = 0u64;
        for (i, c) in self.cores.iter().enumerate() {
            fp |= (c.cstate() as u64) << (2 * i);
        }
        Some(fp)
    }

    /// The aggregated `InCC1` signal: `true` when **all** cores assert their
    /// per-core `InCC1` (i.e. every core is established in CC1 or deeper).
    /// This is the AND-tree the APMU consumes (paper Fig. 3).
    #[must_use]
    pub fn all_in_cc1_or_deeper(&self) -> bool {
        !self.cores.is_empty() && self.cores.iter().all(Core::in_cc1_or_deeper)
    }

    /// `true` when every core is established in a state at least as deep as
    /// `target` (the GPMU's condition for PC6 requires CC6 everywhere).
    #[must_use]
    pub fn all_at_least(&self, target: CoreCState) -> bool {
        !self.cores.is_empty()
            && self.cores.iter().all(|c| {
                c.activity() != CoreActivity::Busy
                    && c.activity() != CoreActivity::Transitioning
                    && c.cstate().at_least_as_deep_as(target)
            })
    }

    /// Number of cores currently active (CC0 established or transitioning to
    /// it).
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.cores
            .iter()
            .filter(|c| c.activity() == CoreActivity::Busy)
            .count()
    }

    /// `true` when at least one core is active — a nonzero
    /// [`CoreSet::active_count`] with an early exit, for the per-event hot
    /// paths that only need the yes/no answer.
    #[must_use]
    pub fn any_active(&self) -> bool {
        self.cores
            .iter()
            .any(|c| c.activity() == CoreActivity::Busy)
    }

    /// Number of cores established in exactly the given C-state.
    #[must_use]
    pub fn count_in(&self, state: CoreCState) -> usize {
        self.cores
            .iter()
            .filter(|c| c.activity() == CoreActivity::Idle && c.cstate() == state)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_core_is_active() {
        let c = Core::new(CoreId(3));
        assert_eq!(c.id(), CoreId(3));
        assert_eq!(c.cstate(), CoreCState::CC0);
        assert_eq!(c.activity(), CoreActivity::Busy);
        assert!(!c.in_cc1_or_deeper());
        assert_eq!(c.id().to_string(), "core3");
    }

    #[test]
    fn idle_entry_and_wakeup_cycle() {
        let mut c = Core::new(CoreId(0));
        let t0 = SimTime::from_micros(10);
        let entry = c.begin_idle(t0, CoreCState::CC1);
        assert_eq!(entry, CoreCState::CC1.entry_latency());
        assert_eq!(c.activity(), CoreActivity::Transitioning);
        assert!(!c.in_cc1_or_deeper(), "signal not asserted mid-transition");

        let t1 = t0 + entry;
        c.complete_transition(t1);
        assert!(c.in_cc1_or_deeper());
        assert_eq!(c.activity(), CoreActivity::Idle);
        assert_eq!(c.idle_entries(), 1);

        let exit = c.begin_wakeup(t1 + SimDuration::from_micros(50));
        assert_eq!(exit, CoreCState::CC1.exit_latency());
        c.complete_transition(t1 + SimDuration::from_micros(51));
        assert_eq!(c.cstate(), CoreCState::CC0);
        assert_eq!(c.wakeups(), 1);
    }

    #[test]
    fn wakeup_during_entry_uses_target_exit_latency() {
        let mut c = Core::new(CoreId(0));
        c.begin_idle(SimTime::ZERO, CoreCState::CC6);
        // Interrupt arrives before the entry completed.
        let exit = c.begin_wakeup(SimTime::from_micros(1));
        assert_eq!(exit, CoreCState::CC6.exit_latency());
        c.complete_transition(SimTime::from_micros(150));
        assert!(c.cstate().is_active());
    }

    #[test]
    #[should_panic(expected = "cannot enter")]
    fn cannot_idle_twice() {
        let mut c = Core::new(CoreId(0));
        c.begin_idle(SimTime::ZERO, CoreCState::CC1);
        c.complete_transition(SimTime::from_nanos(500));
        // Already idle: a second begin_idle is a protocol violation.
        let _ = c.begin_idle(SimTime::from_micros(1), CoreCState::CC6);
    }

    #[test]
    #[should_panic(expected = "busy cores cannot be woken")]
    fn cannot_wake_busy_core() {
        let mut c = Core::new(CoreId(0));
        let _ = c.begin_wakeup(SimTime::ZERO);
    }

    #[test]
    fn force_state_bypasses_latency() {
        let mut c = Core::new(CoreId(0));
        c.force_state(SimTime::ZERO, CoreCState::CC6);
        assert_eq!(c.cstate(), CoreCState::CC6);
        assert!(c.in_cc1_or_deeper());
        c.force_state(SimTime::ZERO, CoreCState::CC0);
        assert!(c.cstate().is_active());
    }

    #[test]
    fn coreset_aggregated_signals() {
        let mut set = CoreSet::new(4);
        assert_eq!(set.len(), 4);
        assert!(!set.all_in_cc1_or_deeper());
        assert_eq!(set.active_count(), 4);

        for i in 0..4 {
            set.core_mut(CoreId(i))
                .force_state(SimTime::ZERO, CoreCState::CC1);
        }
        assert!(set.all_in_cc1_or_deeper());
        assert!(set.all_at_least(CoreCState::CC1));
        assert!(!set.all_at_least(CoreCState::CC6));
        assert_eq!(set.count_in(CoreCState::CC1), 4);
        assert_eq!(set.active_count(), 0);

        set.core_mut(CoreId(2))
            .force_state(SimTime::ZERO, CoreCState::CC0);
        assert!(!set.all_in_cc1_or_deeper());
        assert_eq!(set.active_count(), 1);
    }

    #[test]
    fn empty_coreset_never_asserts_all_idle() {
        let set = CoreSet::new(0);
        assert!(set.is_empty());
        assert!(!set.all_in_cc1_or_deeper());
        assert!(!set.all_at_least(CoreCState::CC1));
    }
}
