//! PC1A power estimation (paper Sec. 5.4, Eq. 2–3).
//!
//! The paper derives the PC1A power level it cannot measure directly (the
//! hardware does not exist) from quantities it *can* measure on a stock
//! server: the PC6 power plus the component deltas between the states PC1A
//! and PC6 keep different —
//!
//! ```text
//! Psoc_PC1A  = Psoc_PC6  + Pcores_diff + PIOs_diff + PPLLs_diff     (Eq. 2)
//! Pdram_PC1A = Pdram_PC6 + Pdram_diff                               (Eq. 3)
//! ```
//!
//! This module reproduces that derivation on top of the calibrated power
//! model and checks it against the direct composition of the PC1A recipe.

use std::fmt;

use apc_power::budget::{ComponentDeltas, PackageStatePower, StatePower};
use apc_soc::cstate::PackageCState;

/// The Sec. 5.4 derivation: measured PC6 power, measured component deltas,
/// and the resulting PC1A estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pc1aPowerEstimate {
    /// The PC6 baseline (RAPL measurement in the paper).
    pub pc6: StatePower,
    /// The component deltas (cores, IOs, PLLs, DRAM).
    pub deltas: ComponentDeltas,
    /// The Eq. 2/3 result.
    pub pc1a: StatePower,
}

impl fmt::Display for Pc1aPowerEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Psoc_PC6 = {}  Pdram_PC6 = {}",
            self.pc6.soc, self.pc6.dram
        )?;
        writeln!(
            f,
            "Pcores_diff = {}  PIOs_diff = {}  PPLLs_diff = {}  Pdram_diff = {}",
            self.deltas.cores, self.deltas.ios, self.deltas.plls, self.deltas.dram
        )?;
        write!(
            f,
            "=> Psoc_PC1A = {}  Pdram_PC1A = {}  (total {})",
            self.pc1a.soc,
            self.pc1a.dram,
            self.pc1a.total()
        )
    }
}

/// Estimates PC1A power per the paper's methodology.
#[derive(Debug, Clone, Default)]
pub struct Pc1aPowerEstimator {
    budget: PackageStatePower,
}

impl Pc1aPowerEstimator {
    /// Creates an estimator over the reference calibration.
    #[must_use]
    pub fn new(budget: PackageStatePower) -> Self {
        Pc1aPowerEstimator { budget }
    }

    /// The estimator for the paper's reference system.
    #[must_use]
    pub fn skx_reference() -> Self {
        Pc1aPowerEstimator::new(PackageStatePower::skx_reference())
    }

    /// Runs the Eq. 2/3 derivation.
    #[must_use]
    pub fn estimate(&self) -> Pc1aPowerEstimate {
        let pc6 = self.budget.state_power(PackageCState::PC6);
        let deltas = self.budget.pc1a_component_deltas();
        let pc1a = deltas.apply_to(pc6);
        Pc1aPowerEstimate { pc6, deltas, pc1a }
    }

    /// The direct composition of the PC1A recipe (what the simulator's power
    /// model produces); used to validate that the Eq. 2/3 path and the direct
    /// path agree.
    #[must_use]
    pub fn direct(&self) -> StatePower {
        self.budget.state_power(PackageCState::PC1A)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eq2_estimate_matches_paper_numbers() {
        let est = Pc1aPowerEstimator::skx_reference().estimate();
        assert!((est.pc6.soc.as_f64() - 11.9).abs() < 0.35);
        assert!(
            (est.pc1a.soc.as_f64() - 27.5).abs() < 0.4,
            "SoC {}",
            est.pc1a.soc
        );
        assert!(
            (est.pc1a.dram.as_f64() - 1.6).abs() < 0.1,
            "DRAM {}",
            est.pc1a.dram
        );
        assert!((est.pc1a.total().as_f64() - 29.1).abs() < 0.5);
    }

    #[test]
    fn derivation_agrees_with_direct_composition() {
        let estimator = Pc1aPowerEstimator::skx_reference();
        let derived = estimator.estimate().pc1a;
        let direct = estimator.direct();
        assert!((derived.soc.as_f64() - direct.soc.as_f64()).abs() < 1e-9);
        assert!((derived.dram.as_f64() - direct.dram.as_f64()).abs() < 1e-9);
    }

    #[test]
    fn display_shows_all_terms() {
        let s = Pc1aPowerEstimator::skx_reference().estimate().to_string();
        assert!(s.contains("Pcores_diff"));
        assert!(s.contains("Psoc_PC1A"));
    }
}
