//! APC area-overhead model (paper Sec. 5.1–5.3).
//!
//! The paper argues that the three APC components are cheap in silicon by
//! expressing each addition as a fraction of the SKX die:
//!
//! * **IOSM** (Sec. 5.1): five long-distance signals (`AllowL0s`, `InL0s`
//!   aggregates, `Allow_CKE_OFF`) routed through the IO interconnect
//!   (< 0.24 % of the die at 128-bit interconnect width), plus < 0.5 % of
//!   each IO controller's area for the new control/status logic (< 0.08 % of
//!   the die since the controllers occupy < 15 %).
//! * **CLMR** (Sec. 5.2): three long-distance signals (`ClkGate`, `Ret`,
//!   `PwrOk`) (< 0.14 % of the die) plus an 8-bit RVID register and mux in
//!   each of the two FIVR control modules (negligible, < 0.005 %).
//! * **APMU** (Sec. 5.3): an FSM worth < 5 % of the GPMU (< 0.1 % of the die
//!   since the GPMU is < 2 %) plus three long-distance `InCC1` aggregation
//!   signals (< 0.14 %).
//!
//! Total: **< 0.75 %** of the SKX die.

use std::fmt;

use apc_soc::area::DieFloorplan;

/// Area overhead of one APC component, as a fraction of the SKX die area.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComponentArea {
    /// Area of the new long-distance signal routing.
    pub routing: f64,
    /// Area of the new logic added inside existing blocks.
    pub logic: f64,
}

impl ComponentArea {
    /// Total component overhead.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.routing + self.logic
    }
}

/// The complete APC area-overhead breakdown.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ApcAreaReport {
    /// IO Standby Mode additions.
    pub iosm: ComponentArea,
    /// CLM Retention additions.
    pub clmr: ComponentArea,
    /// Agile PMU additions.
    pub apmu: ComponentArea,
}

impl ApcAreaReport {
    /// Total APC area overhead as a fraction of the die.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.iosm.total() + self.clmr.total() + self.apmu.total()
    }

    /// Total overhead as a percentage of the die.
    #[must_use]
    pub fn total_percent(&self) -> f64 {
        self.total() * 100.0
    }
}

impl fmt::Display for ApcAreaReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "APC area overhead (fraction of SKX die):")?;
        writeln!(
            f,
            "  IOSM: routing {:.4}% + logic {:.4}% = {:.4}%",
            self.iosm.routing * 100.0,
            self.iosm.logic * 100.0,
            self.iosm.total() * 100.0
        )?;
        writeln!(
            f,
            "  CLMR: routing {:.4}% + logic {:.4}% = {:.4}%",
            self.clmr.routing * 100.0,
            self.clmr.logic * 100.0,
            self.clmr.total() * 100.0
        )?;
        writeln!(
            f,
            "  APMU: routing {:.4}% + logic {:.4}% = {:.4}%",
            self.apmu.routing * 100.0,
            self.apmu.logic * 100.0,
            self.apmu.total() * 100.0
        )?;
        write!(f, "  total: {:.3}%", self.total_percent())
    }
}

/// Computes the APC area overhead for a given floorplan.
#[derive(Debug, Clone)]
pub struct ApcAreaModel {
    floorplan: DieFloorplan,
    /// Long-distance signals added by IOSM (AllowL0s, aggregated InL0s,
    /// Allow_CKE_OFF groups): 5 per the paper.
    iosm_signals: u32,
    /// Long-distance signals added by CLMR (ClkGate, Ret, PwrOk): 3.
    clmr_signals: u32,
    /// Long-distance signals added for InCC1 aggregation: 3.
    apmu_signals: u32,
    /// Fraction of each IO controller devoted to the new IOSM logic.
    io_controller_logic: f64,
    /// Fraction of a FIVR occupied by its control module (the FCM is the
    /// digital controller, a small part of the regulator).
    fcm_of_fivr: f64,
    /// Fraction of each FIVR control module devoted to the RVID register/mux.
    fcm_logic: f64,
    /// Number of FIVR control modules touched (the two CLM FIVRs).
    fcm_count: u32,
    /// APMU FSM size as a fraction of the GPMU.
    apmu_of_gpmu: f64,
}

impl ApcAreaModel {
    /// The paper's assumptions on the SKX floorplan.
    #[must_use]
    pub fn skx() -> Self {
        ApcAreaModel {
            floorplan: DieFloorplan::skx(),
            iosm_signals: 5,
            clmr_signals: 3,
            apmu_signals: 3,
            io_controller_logic: 0.005,
            fcm_of_fivr: 0.05,
            fcm_logic: 0.005,
            fcm_count: 2,
            apmu_of_gpmu: 0.05,
        }
    }

    /// The floorplan in use.
    #[must_use]
    pub fn floorplan(&self) -> &DieFloorplan {
        &self.floorplan
    }

    /// Computes the full overhead report.
    #[must_use]
    pub fn report(&self) -> ApcAreaReport {
        let fp = &self.floorplan;
        let iosm = ComponentArea {
            routing: fp.long_distance_signal_area(self.iosm_signals),
            logic: fp.region_logic_area(fp.io_controllers, self.io_controller_logic),
        };
        let clmr = ComponentArea {
            routing: fp.long_distance_signal_area(self.clmr_signals),
            logic: fp.fivr_fcm_area()
                * self.fcm_of_fivr
                * self.fcm_logic
                * f64::from(self.fcm_count),
        };
        let apmu = ComponentArea {
            routing: fp.long_distance_signal_area(self.apmu_signals),
            logic: fp.region_logic_area(fp.gpmu, self.apmu_of_gpmu),
        };
        ApcAreaReport { iosm, clmr, apmu }
    }
}

impl Default for ApcAreaModel {
    fn default() -> Self {
        ApcAreaModel::skx()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iosm_routing_is_under_a_quarter_percent() {
        let r = ApcAreaModel::skx().report();
        assert!(r.iosm.routing < 0.0024, "IOSM routing {}", r.iosm.routing);
        assert!(r.iosm.logic < 0.0008, "IOSM logic {}", r.iosm.logic);
    }

    #[test]
    fn clmr_overhead_matches_paper_bounds() {
        let r = ApcAreaModel::skx().report();
        assert!(r.clmr.routing < 0.0015, "CLMR routing {}", r.clmr.routing);
        assert!(r.clmr.logic < 0.00005, "CLMR FCM logic {}", r.clmr.logic);
    }

    #[test]
    fn apmu_overhead_matches_paper_bounds() {
        let r = ApcAreaModel::skx().report();
        assert!(r.apmu.logic <= 0.001, "APMU logic {}", r.apmu.logic);
        assert!(r.apmu.routing < 0.0015, "APMU routing {}", r.apmu.routing);
    }

    #[test]
    fn total_overhead_is_under_0_75_percent() {
        let r = ApcAreaModel::skx().report();
        assert!(
            r.total_percent() < 0.75,
            "total {}% must stay under the paper's 0.75% bound",
            r.total_percent()
        );
        assert!(r.total_percent() > 0.0);
    }

    #[test]
    fn report_display_mentions_each_component() {
        let s = ApcAreaModel::default().report().to_string();
        assert!(s.contains("IOSM"));
        assert!(s.contains("CLMR"));
        assert!(s.contains("APMU"));
        assert!(s.contains("total"));
    }
}
