//! PC1A transition-latency model (paper Sec. 5.5).
//!
//! The paper budgets the PC1A flow as follows, assuming a 500 MHz power
//! management controller (2 ns per cycle):
//!
//! * **Entry** (measured from ACC1, i.e. once all links are already in
//!   L0s/L0p): clock-gating the CLM (1–2 cycles), asserting
//!   `Allow_CKE_OFF` (1–2 cycles) and the ≤ 10 ns CKE-off entry; the CLM
//!   voltage ramp is non-blocking. Total ≈ 18 ns.
//! * **Exit**: the CLM voltage ramp from retention back to nominal dominates
//!   (300 mV at ≥ 2 mV/ns ⇒ ≤ 150 ns); clock-ungate, `Allow_CKE_OFF`
//!   de-assertion and the 24 ns CKE-off exit proceed concurrently.
//!   Total ≤ 150 ns.
//! * Worst-case entry + exit ≤ 168 ns, conservatively quoted as < 200 ns —
//!   more than 250× faster than PC6.

use std::fmt;

use apc_sim::SimDuration;
use apc_soc::clock::PMU_CLOCK;
use apc_soc::io::IoController;
use apc_soc::memory::MemoryController;
use apc_soc::vr::Fivr;

/// The component latencies composing a PC1A transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pc1aLatencyModel {
    /// Asserting `AllowL0s` and moving the FSM into ACC1 (1 controller cycle).
    pub acc1_entry: SimDuration,
    /// Link idle time required before the LTSSM enters L0s
    /// (`L0S_ENTRY_LAT = 1` ⇒ 16 ns).
    pub io_standby_entry: SimDuration,
    /// Clock-gating the CLM clock tree (2 controller cycles).
    pub clm_clock_gate: SimDuration,
    /// Asserting `Allow_CKE_OFF` (2 controller cycles).
    pub cke_off_assert: SimDuration,
    /// DRAM CKE-off entry once allowed (≤ 10 ns).
    pub cke_off_entry: SimDuration,
    /// CLM FIVR ramp to retention (non-blocking on entry).
    pub clm_voltage_ramp: SimDuration,
    /// IO link exit from L0s (worst of L0s 64 ns / L0p 10 ns), concurrent
    /// with the CLM ramp on exit.
    pub io_standby_exit: SimDuration,
    /// DRAM CKE-off exit (≤ 24 ns), concurrent with the CLM ramp on exit.
    pub cke_off_exit: SimDuration,
    /// Un-gating the CLM clock tree after `PwrOk` (2 controller cycles).
    pub clm_clock_ungate: SimDuration,
}

impl Pc1aLatencyModel {
    /// The paper's conservative overall bound for entry + exit.
    pub const CONSERVATIVE_BOUND: SimDuration = SimDuration::from_nanos(200);

    /// Builds the latency model from the component models' constants, so the
    /// budget stays consistent with the substrate crates.
    #[must_use]
    pub fn from_components() -> Self {
        Pc1aLatencyModel {
            acc1_entry: PMU_CLOCK.cycles(1),
            io_standby_entry: IoController::L0S_ENTRY_IDLE,
            clm_clock_gate: PMU_CLOCK.cycles(2),
            cke_off_assert: PMU_CLOCK.cycles(2),
            cke_off_entry: MemoryController::CKE_OFF_ENTRY,
            clm_voltage_ramp: SimDuration::from_nanos(
                (f64::from(Fivr::CLM_NOMINAL.0 - Fivr::CLM_RETENTION.0) / Fivr::SLEW_MV_PER_NS)
                    .ceil() as u64,
            ),
            io_standby_exit: SimDuration::from_nanos(64),
            cke_off_exit: MemoryController::CKE_OFF_EXIT,
            clm_clock_ungate: PMU_CLOCK.cycles(2),
        }
    }

    /// PC1A entry latency measured from ACC1 (paper: ≈ 18 ns). The blocking
    /// steps are the CLM clock gate, the `Allow_CKE_OFF` assertion and the
    /// CKE-off entry; the voltage ramp is non-blocking.
    #[must_use]
    pub fn entry(&self) -> SimDuration {
        self.clm_clock_gate + self.cke_off_assert + self.cke_off_entry
    }

    /// PC1A exit latency (paper: ≤ 150 ns). The CLM voltage ramp dominates;
    /// the IO link exit, CKE-off exit and clock ungate overlap with it, so
    /// the exit is the maximum of the three concurrent branches plus the
    /// final ungate only if it extends past the ramp (it does not, but the
    /// `max` keeps the model honest if constants change).
    #[must_use]
    pub fn exit(&self) -> SimDuration {
        let clm_branch = self.clm_voltage_ramp;
        let dram_branch = self.cke_off_exit;
        let io_branch = self.io_standby_exit;
        clm_branch.max(dram_branch).max(io_branch)
    }

    /// Worst-case entry followed immediately by exit (paper: ≤ 168 ns,
    /// quoted conservatively as < 200 ns).
    #[must_use]
    pub fn round_trip(&self) -> SimDuration {
        self.entry() + self.exit()
    }

    /// The speedup factor vs. the PC6 round trip.
    #[must_use]
    pub fn speedup_vs(&self, pc6_round_trip: SimDuration) -> f64 {
        let own = self.round_trip().as_nanos().max(1) as f64;
        pc6_round_trip.as_nanos() as f64 / own
    }
}

impl Default for Pc1aLatencyModel {
    fn default() -> Self {
        Pc1aLatencyModel::from_components()
    }
}

impl fmt::Display for Pc1aLatencyModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "PC1A latency budget (500 MHz controller):")?;
        writeln!(f, "  entry: CLM clock gate     {}", self.clm_clock_gate)?;
        writeln!(f, "         Allow_CKE_OFF      {}", self.cke_off_assert)?;
        writeln!(f, "         CKE-off entry      {}", self.cke_off_entry)?;
        writeln!(f, "         (CLM ramp, async)  {}", self.clm_voltage_ramp)?;
        writeln!(f, "         total              {}", self.entry())?;
        writeln!(f, "  exit:  CLM ramp to nominal {}", self.clm_voltage_ramp)?;
        writeln!(f, "         IO standby exit    {}", self.io_standby_exit)?;
        writeln!(f, "         CKE-off exit       {}", self.cke_off_exit)?;
        writeln!(f, "         total              {}", self.exit())?;
        write!(f, "  round trip               {}", self.round_trip())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_pmu::gpmu::Pc6LatencyModel;

    #[test]
    fn entry_is_about_18ns() {
        let m = Pc1aLatencyModel::from_components();
        assert_eq!(m.entry(), SimDuration::from_nanos(18));
    }

    #[test]
    fn exit_is_at_most_150ns() {
        let m = Pc1aLatencyModel::from_components();
        assert_eq!(m.exit(), SimDuration::from_nanos(150));
    }

    #[test]
    fn round_trip_is_under_200ns() {
        let m = Pc1aLatencyModel::from_components();
        assert!(m.round_trip() <= SimDuration::from_nanos(168));
        assert!(m.round_trip() <= Pc1aLatencyModel::CONSERVATIVE_BOUND);
    }

    #[test]
    fn speedup_vs_pc6_exceeds_250x() {
        let m = Pc1aLatencyModel::from_components();
        let pc6 = Pc6LatencyModel::skx();
        assert!(m.speedup_vs(pc6.round_trip()) >= 250.0);
    }

    #[test]
    fn voltage_ramp_matches_fivr_slew() {
        let m = Pc1aLatencyModel::from_components();
        assert_eq!(m.clm_voltage_ramp, SimDuration::from_nanos(150));
        assert_eq!(m.io_standby_entry, SimDuration::from_nanos(16));
    }

    #[test]
    fn display_contains_budget_lines() {
        let s = Pc1aLatencyModel::default().to_string();
        assert!(s.contains("entry"));
        assert!(s.contains("round trip"));
    }
}
