//! IO Standby Mode (IOSM) controller.
//!
//! IOSM (paper Sec. 4.2) is the part of APC that harvests power from the IO
//! domain without paying microsecond wakeups: when the APMU signals that all
//! cores are idle it asserts `AllowL0s` towards every high-speed IO
//! controller (which then autonomously enter L0s/L0p once idle for 16 ns) and
//! `Allow_CKE_OFF` towards every memory controller (which then put DRAM into
//! precharge power-down as soon as outstanding transactions drain).
//!
//! This module wraps those two signal groups and the aggregated `&InL0s`
//! status the APMU FSM consumes.

use apc_sim::{SimDuration, SimTime};
use apc_soc::io::IoController;
use apc_soc::topology::SkxSoc;

/// The IOSM signal driver.
///
/// The struct itself is stateless apart from statistics: the authoritative
/// signal state lives in the IO and memory controller models, exactly as the
/// real signals live in the controllers' configuration registers.
#[derive(Debug, Clone, Default)]
pub struct IoStandbyMode {
    allow_l0s_assertions: u64,
    allow_cke_off_assertions: u64,
}

impl IoStandbyMode {
    /// Creates the IOSM driver.
    #[must_use]
    pub fn new() -> Self {
        IoStandbyMode::default()
    }

    /// Number of times `AllowL0s` has been asserted.
    #[must_use]
    pub fn allow_l0s_assertions(&self) -> u64 {
        self.allow_l0s_assertions
    }

    /// Number of times `Allow_CKE_OFF` has been asserted.
    #[must_use]
    pub fn allow_cke_off_assertions(&self) -> u64 {
        self.allow_cke_off_assertions
    }

    /// Asserts `AllowL0s` on every high-speed IO controller (ACC1 entry,
    /// Fig. 4 step "Set AllowL0s"). Also programs the fast L0s entry latency
    /// (`L0S_ENTRY_LAT = 1`, i.e. 16 ns of link idleness).
    pub fn assert_allow_l0s(&mut self, soc: &mut SkxSoc, now: SimTime) {
        self.allow_l0s_assertions += 1;
        soc.ios_mut().set_allow_shallow_all(now, true);
    }

    /// De-asserts `AllowL0s` everywhere (return to PC0). Returns the worst
    /// link exit latency triggered by the de-assertion.
    pub fn deassert_allow_l0s(&mut self, soc: &mut SkxSoc, now: SimTime) -> SimDuration {
        soc.ios_mut().set_allow_shallow_all(now, false)
    }

    /// Asserts `Allow_CKE_OFF` on every memory controller (Fig. 4 step 3).
    pub fn assert_allow_cke_off(&mut self, soc: &mut SkxSoc, now: SimTime) {
        self.allow_cke_off_assertions += 1;
        soc.memory_mut().set_allow_cke_off_all(now, true);
    }

    /// De-asserts `Allow_CKE_OFF` everywhere (Fig. 4 step 6). Returns the
    /// CKE-off exit latency the memory controllers pay.
    pub fn deassert_allow_cke_off(&mut self, soc: &mut SkxSoc, now: SimTime) -> SimDuration {
        soc.memory_mut().set_allow_cke_off_all(now, false)
    }

    /// The earliest time by which every currently-idle link can have entered
    /// its shallow state, or `None` when some link is busy (the flow then
    /// stays in ACC1 until traffic drains — or a wakeup sends it back to
    /// PC0).
    #[must_use]
    pub fn standby_deadline(&self, soc: &SkxSoc) -> Option<SimTime> {
        let mut worst: Option<SimTime> = None;
        for io in soc.ios().iter() {
            if io.in_l0s() {
                continue;
            }
            match io.shallow_entry_deadline() {
                Some(d) => worst = Some(worst.map_or(d, |w: SimTime| w.max(d))),
                None => return None,
            }
        }
        worst.or(Some(SimTime::ZERO))
    }

    /// Attempts the autonomous L0s/L0p entry on every link whose idle timer
    /// has expired; returns the aggregated `&InL0s` signal.
    pub fn try_enter_standby(&mut self, soc: &mut SkxSoc, now: SimTime) -> bool {
        for io in soc.ios_mut().iter_mut() {
            if !io.in_l0s() {
                let _ = io.try_enter_shallow(now);
            }
        }
        soc.ios().all_in_l0s()
    }

    /// The aggregated `&InL0s` status signal.
    #[must_use]
    pub fn all_in_l0s(&self, soc: &SkxSoc) -> bool {
        soc.ios().all_in_l0s()
    }

    /// The worst wake-up latency the IO domain currently exposes: the longest
    /// link exit latency plus the memory-controller CKE-off exit. This is the
    /// quantity that must stay nanosecond-scale for PC1A to be viable.
    #[must_use]
    pub fn worst_wake_latency(&self, soc: &SkxSoc) -> SimDuration {
        let links = soc.ios().worst_exit_latency();
        let dram = soc
            .memory()
            .iter()
            .map(|m| m.mode().exit_latency())
            .fold(SimDuration::ZERO, SimDuration::max);
        links.max(dram)
    }

    /// The per-controller `InL0s` status (useful for tracing).
    #[must_use]
    pub fn in_l0s_vector(&self, soc: &SkxSoc) -> Vec<bool> {
        soc.ios().iter().map(IoController::in_l0s).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_soc::io::LinkPowerState;
    use apc_soc::memory::DramPowerMode;

    fn idle_soc(now: SimTime) -> SkxSoc {
        let mut soc = SkxSoc::xeon_silver_4114();
        for io in soc.ios_mut().iter_mut() {
            io.end_traffic(now);
        }
        soc
    }

    #[test]
    fn allow_l0s_gates_standby_entry() {
        let mut soc = idle_soc(SimTime::ZERO);
        let mut iosm = IoStandbyMode::new();
        // Without AllowL0s nothing happens.
        assert!(!iosm.try_enter_standby(&mut soc, SimTime::from_micros(1)));
        assert_eq!(iosm.standby_deadline(&soc), None);

        iosm.assert_allow_l0s(&mut soc, SimTime::from_micros(1));
        // The links have been idle since t=0, so the 16 ns idleness
        // requirement is measured from then.
        let deadline = iosm.standby_deadline(&soc).unwrap();
        assert_eq!(deadline, SimTime::ZERO + IoController::L0S_ENTRY_IDLE);
        assert!(!iosm.try_enter_standby(&mut soc, SimTime::from_nanos(10)));
        assert!(iosm.try_enter_standby(&mut soc, deadline));
        assert!(iosm.all_in_l0s(&soc));
        assert_eq!(iosm.allow_l0s_assertions(), 1);
        assert!(iosm.in_l0s_vector(&soc).iter().all(|&b| b));
    }

    #[test]
    fn busy_link_blocks_the_deadline() {
        let mut soc = idle_soc(SimTime::ZERO);
        let mut iosm = IoStandbyMode::new();
        iosm.assert_allow_l0s(&mut soc, SimTime::ZERO);
        soc.ios_mut()
            .controller_mut(apc_soc::io::IoId(0))
            .begin_traffic(SimTime::from_nanos(5));
        assert_eq!(iosm.standby_deadline(&soc), None);
        assert!(!iosm.try_enter_standby(&mut soc, SimTime::from_micros(1)));
    }

    #[test]
    fn cke_off_assert_and_release() {
        let mut soc = idle_soc(SimTime::ZERO);
        let mut iosm = IoStandbyMode::new();
        iosm.assert_allow_cke_off(&mut soc, SimTime::ZERO);
        assert!(soc
            .memory()
            .iter()
            .all(|m| m.mode() == DramPowerMode::PrechargePowerDown));
        assert_eq!(iosm.allow_cke_off_assertions(), 1);
        let exit = iosm.deassert_allow_cke_off(&mut soc, SimTime::from_micros(1));
        assert_eq!(exit, SimDuration::from_nanos(24));
        assert!(soc
            .memory()
            .iter()
            .all(|m| m.mode() == DramPowerMode::Active));
    }

    #[test]
    fn worst_wake_latency_is_nanosecond_scale_in_standby() {
        let mut soc = idle_soc(SimTime::ZERO);
        let mut iosm = IoStandbyMode::new();
        iosm.assert_allow_l0s(&mut soc, SimTime::ZERO);
        iosm.assert_allow_cke_off(&mut soc, SimTime::ZERO);
        iosm.try_enter_standby(&mut soc, SimTime::from_nanos(16));
        let wake = iosm.worst_wake_latency(&soc);
        assert!(wake <= SimDuration::from_nanos(64), "wake {wake}");
        // De-asserting AllowL0s wakes every link.
        let lat = iosm.deassert_allow_l0s(&mut soc, SimTime::from_micros(1));
        assert_eq!(lat, SimDuration::from_nanos(64));
        assert!(soc.ios().iter().all(|c| c.state() == LinkPowerState::L0));
    }
}
