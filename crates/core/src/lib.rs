//! # `apc-core` — the AgilePkgC (APC) architecture
//!
//! This crate implements the paper's contribution: the **PC1A** agile deep
//! package C-state and the three hardware components that realise it.
//!
//! * [`apmu`] — the Agile Power Management Unit: the hardware FSM that
//!   detects all-cores-in-CC1, orchestrates the PC1A entry/exit flow
//!   (paper Fig. 4) and interfaces with the firmware GPMU;
//! * [`iosm`] — IO Standby Mode: `AllowL0s`, `InL0s` and `Allow_CKE_OFF`
//!   control of the high-speed IO links and memory controllers;
//! * [`clmr`] — CLM Retention: `ClkGate`, `Ret`, `PwrOk` control of the
//!   CLM clock tree and FIVRs, with PLLs kept locked;
//! * [`latency`] — the Sec. 5.5 PC1A transition-latency budget
//!   (≈ 18 ns entry, ≤ 150 ns exit, < 200 ns round trip);
//! * [`power`] — the Sec. 5.4 (Eq. 2–3) PC1A power derivation;
//! * [`area`] — the Sec. 5.1–5.3 area-overhead model (< 0.75 % of the die).
//!
//! # Example
//!
//! ```
//! use apc_core::apmu::{Apmu, WakeCause};
//! use apc_soc::topology::SkxSoc;
//! use apc_soc::cstate::CoreCState;
//! use apc_sim::SimTime;
//!
//! let mut soc = SkxSoc::xeon_silver_4114();
//! let mut apmu = Apmu::new();
//!
//! // All cores idle in CC1, all links idle: the APMU walks the PC1A flow.
//! let t0 = SimTime::from_micros(100);
//! soc.force_all_cores(t0, CoreCState::CC1);
//! for link in soc.ios_mut().iter_mut() {
//!     link.end_traffic(t0);
//! }
//! let standby_deadline = apmu.on_all_cores_idle(&mut soc, t0).unwrap();
//! let resident_at = apmu.on_standby_deadline(&mut soc, standby_deadline).unwrap();
//! apmu.on_entry_complete(resident_at);
//! assert!(apmu.in_pc1a());
//!
//! // A request arrives 40 µs later: the exit is nanosecond-scale.
//! let outcome = apmu.wakeup(&mut soc, resident_at + apc_sim::SimDuration::from_micros(40),
//!                           WakeCause::IoTraffic);
//! assert!(outcome.latency().as_nanos() <= 200);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod apmu;
pub mod area;
pub mod clmr;
pub mod iosm;
pub mod latency;
pub mod power;

pub use apmu::{Apmu, ApmuState, ApmuStats, WakeCause, WakeOutcome};
pub use area::{ApcAreaModel, ApcAreaReport};
pub use clmr::ClmRetention;
pub use iosm::IoStandbyMode;
pub use latency::Pc1aLatencyModel;
pub use power::{Pc1aPowerEstimate, Pc1aPowerEstimator};
