//! CLM Retention (CLMR) controller.
//!
//! CLMR (paper Sec. 4.3 / 5.2) drops the CLM (CHA + LLC + mesh) domain to a
//! retention voltage while all cores are idle, using three mechanisms:
//!
//! 1. a `ClkGate` signal that gates the CLM clock tree while **keeping the
//!    CLM PLL locked** (1–2 controller cycles);
//! 2. a `Ret` signal to the two CLM FIVRs that makes them slew to the
//!    pre-programmed retention VID (≈ 0.5 V) at ≥ 2 mV/ns — a *non-blocking*
//!    ramp of ≤ 150 ns;
//! 3. a `PwrOk` status from the FIVRs that gates clock-ungating on exit.

use apc_sim::{SimDuration, SimTime};
use apc_soc::clm::ClmState;
use apc_soc::topology::SkxSoc;

/// The CLMR signal driver.
#[derive(Debug, Clone, Default)]
pub struct ClmRetention {
    retention_entries: u64,
}

impl ClmRetention {
    /// Creates the CLMR driver.
    #[must_use]
    pub fn new() -> Self {
        ClmRetention::default()
    }

    /// Number of retention entries performed.
    #[must_use]
    pub fn retention_entries(&self) -> u64 {
        self.retention_entries
    }

    /// PC1A entry steps 1–2 (Fig. 4): gate the CLM clock tree and assert
    /// `Ret` on both FIVRs. Returns `(gate_latency, ramp_latency)`; the ramp
    /// is non-blocking so only the gate latency sits on the entry critical
    /// path.
    pub fn enter_retention(
        &mut self,
        soc: &mut SkxSoc,
        now: SimTime,
    ) -> (SimDuration, SimDuration) {
        self.retention_entries += 1;
        let gate = soc.clm_mut().clock_gate(now);
        let ramp = soc.clm_mut().assert_retention(now);
        (gate, ramp)
    }

    /// Marks the (non-blocking) downward voltage ramp complete.
    pub fn ramp_complete(&self, soc: &mut SkxSoc, now: SimTime) {
        soc.clm_mut().complete_voltage_transition(now);
    }

    /// PC1A exit steps 4–5 (Fig. 4): de-assert `Ret` (ramp back to nominal)
    /// and, once `PwrOk`, ungate the clock tree. Returns
    /// `(ramp_latency, ungate_latency)`; the exit critical path is their sum,
    /// dominated by the 150 ns ramp.
    pub fn exit_retention(&mut self, soc: &mut SkxSoc, now: SimTime) -> (SimDuration, SimDuration) {
        let ramp = soc.clm_mut().deassert_retention(now);
        // The clock may only be ungated once PwrOk asserts; the caller waits
        // `ramp`, calls `exit_complete`, and the ungate latency is the tail.
        let ungate = apc_soc::clock::PMU_CLOCK.cycles(2);
        (ramp, ungate)
    }

    /// Completes the exit: marks the FIVR transition done (PwrOk) and ungates
    /// the clock tree.
    pub fn exit_complete(&self, soc: &mut SkxSoc, now: SimTime) {
        soc.clm_mut().complete_voltage_transition(now);
        soc.clm_mut().clock_ungate(now);
    }

    /// The aggregated `PwrOk` status from the two CLM FIVRs.
    #[must_use]
    pub fn pwr_ok(&self, soc: &SkxSoc) -> bool {
        soc.clm().pwr_ok()
    }

    /// The CLM domain's current aggregate state.
    #[must_use]
    pub fn state(&self, soc: &SkxSoc) -> ClmState {
        soc.clm().state()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_soc::pll::PllState;

    #[test]
    fn retention_entry_is_fast_and_nonblocking() {
        let mut soc = SkxSoc::xeon_silver_4114();
        let mut clmr = ClmRetention::new();
        let (gate, ramp) = clmr.enter_retention(&mut soc, SimTime::ZERO);
        assert_eq!(gate, SimDuration::from_nanos(4), "2 cycles at 500 MHz");
        assert_eq!(ramp, SimDuration::from_nanos(150), "300 mV at 2 mV/ns");
        assert_eq!(clmr.state(&soc), ClmState::Retention);
        assert!(!clmr.pwr_ok(&soc), "ramp still in flight");
        clmr.ramp_complete(&mut soc, SimTime::from_nanos(150));
        assert!(clmr.pwr_ok(&soc));
        assert_eq!(clmr.retention_entries(), 1);
    }

    #[test]
    fn plls_stay_locked_throughout() {
        let mut soc = SkxSoc::xeon_silver_4114();
        let mut clmr = ClmRetention::new();
        clmr.enter_retention(&mut soc, SimTime::ZERO);
        assert!(
            soc.plls().iter().all(|p| p.state() == PllState::Locked),
            "APC never unlocks a PLL"
        );
        let (ramp, ungate) = clmr.exit_retention(&mut soc, SimTime::from_micros(1));
        assert_eq!(ramp, SimDuration::from_nanos(150));
        assert_eq!(ungate, SimDuration::from_nanos(4));
        clmr.exit_complete(&mut soc, SimTime::from_micros(1) + ramp + ungate);
        assert_eq!(clmr.state(&soc), ClmState::Operational);
        assert!(soc.plls().iter().all(|p| p.state() == PllState::Locked));
    }

    #[test]
    fn exit_critical_path_is_dominated_by_the_ramp() {
        let mut soc = SkxSoc::xeon_silver_4114();
        let mut clmr = ClmRetention::new();
        clmr.enter_retention(&mut soc, SimTime::ZERO);
        clmr.ramp_complete(&mut soc, SimTime::from_nanos(150));
        let (ramp, ungate) = clmr.exit_retention(&mut soc, SimTime::from_micros(1));
        assert!(ramp + ungate <= SimDuration::from_nanos(160));
    }

    #[test]
    fn interrupted_entry_exits_cheaply() {
        // Preemptive voltage command: a wakeup 40 ns into the downward ramp
        // only has to recover the voltage already lost.
        let mut soc = SkxSoc::xeon_silver_4114();
        let mut clmr = ClmRetention::new();
        clmr.enter_retention(&mut soc, SimTime::ZERO);
        let (ramp_back, _) = clmr.exit_retention(&mut soc, SimTime::from_nanos(40));
        assert!(ramp_back <= SimDuration::from_nanos(81), "got {ramp_back}");
    }
}
