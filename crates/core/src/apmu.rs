//! The Agile Power Management Unit (APMU) and the PC1A entry/exit flow.
//!
//! The APMU (paper Sec. 4.1) is a small hardware FSM placed in the north cap
//! next to the firmware GPMU. It watches the aggregated `InCC1` signal from
//! the cores and the aggregated `&InL0s` signal from the IO controllers, and
//! orchestrates the PC1A flow of Fig. 4:
//!
//! ```text
//! PC0 --all cores CC1 / set AllowL0s--> ACC1 --&InL0s--> (1) gate CLM clock
//!                                                        (2) Ret -> CLM FIVRs   [non-blocking]
//!                                                        (3) set Allow_CKE_OFF
//!                                                        ==> PC1A  (+ InPC1A to GPMU)
//! PC1A --wakeup--> (4) unset Ret  (5) PwrOk -> ungate CLM  (6) unset Allow_CKE_OFF
//!      ==> ACC1 --core interrupt / unset AllowL0s--> PC0
//! ```
//!
//! The APMU is event-driven: the surrounding simulation notifies it of the
//! relevant edges (all cores idle, standby deadline reached, wakeup, core
//! active) and the APMU mutates the socket's component models and reports the
//! latencies that the flow incurs.

use std::fmt;

use apc_sim::{SimDuration, SimTime};
use apc_soc::cstate::PackageCState;
use apc_soc::topology::SkxSoc;

use crate::clmr::ClmRetention;
use crate::iosm::IoStandbyMode;
use crate::latency::Pc1aLatencyModel;

/// The APMU FSM state (Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApmuState {
    /// Package active; at least one core running (or recently running).
    Pc0,
    /// All cores idle in CC1; `AllowL0s` asserted, waiting for `&InL0s`.
    Acc1,
    /// PC1A entry steps in flight; resident at `done_at`.
    Entering {
        /// When the entry flow completes.
        done_at: SimTime,
    },
    /// Resident in PC1A; `InPC1A` asserted towards the GPMU.
    InPc1a {
        /// When residency began.
        since: SimTime,
    },
    /// PC1A exit steps in flight; back in ACC1 at `done_at`.
    Exiting {
        /// When the exit flow completes.
        done_at: SimTime,
    },
}

impl fmt::Display for ApmuState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApmuState::Pc0 => f.write_str("PC0"),
            ApmuState::Acc1 => f.write_str("ACC1"),
            ApmuState::Entering { .. } => f.write_str("entering-PC1A"),
            ApmuState::InPc1a { .. } => f.write_str("PC1A"),
            ApmuState::Exiting { .. } => f.write_str("exiting-PC1A"),
        }
    }
}

/// Why the APMU was asked to wake the package.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WakeCause {
    /// An IO link detected traffic and left L0s/L0p (`InL0s` de-asserted).
    IoTraffic,
    /// The GPMU forwarded a core interrupt (timer, IPI, device MSI).
    CoreInterrupt,
    /// The GPMU requested a wake for its own reasons (thermal event,
    /// firmware housekeeping).
    GpmuEvent,
}

/// Result of delivering a wakeup to the APMU.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeOutcome {
    /// The package was not in (or entering) PC1A; nothing to unwind. The
    /// reported latency is the residual IO wake cost (zero when links were
    /// already active).
    NotResident {
        /// Residual wake latency (e.g. links leaving L0s in ACC1).
        latency: SimDuration,
    },
    /// A PC1A exit flow has begun; the uncore is available again at
    /// `done_at`.
    Exiting {
        /// When the exit flow completes.
        done_at: SimTime,
        /// Total exit latency from the wakeup instant.
        latency: SimDuration,
    },
}

impl WakeOutcome {
    /// The wake latency regardless of outcome kind.
    #[must_use]
    pub fn latency(&self) -> SimDuration {
        match self {
            WakeOutcome::NotResident { latency } | WakeOutcome::Exiting { latency, .. } => *latency,
        }
    }
}

/// Statistics the APMU keeps (exposed to the telemetry layer).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApmuStats {
    /// Completed PC1A entries.
    pub pc1a_entries: u64,
    /// Entries aborted by a wakeup arriving during the entry flow.
    pub aborted_entries: u64,
    /// Cumulative residency in PC1A.
    pub pc1a_residency: SimDuration,
    /// Wakeups delivered while resident, by cause.
    pub io_wakeups: u64,
    /// Wakeups from core interrupts / GPMU events while resident.
    pub event_wakeups: u64,
    /// Transitions into ACC1 (all-cores-idle episodes observed).
    pub acc1_entries: u64,
}

/// The Agile Power Management Unit.
pub struct Apmu {
    state: ApmuState,
    iosm: IoStandbyMode,
    clmr: ClmRetention,
    latency: Pc1aLatencyModel,
    enabled: bool,
    stats: ApmuStats,
}

impl fmt::Debug for Apmu {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Apmu")
            .field("state", &self.state)
            .field("enabled", &self.enabled)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Apmu {
    /// Creates an enabled APMU with the default latency model.
    #[must_use]
    pub fn new() -> Self {
        Apmu {
            state: ApmuState::Pc0,
            iosm: IoStandbyMode::new(),
            clmr: ClmRetention::new(),
            latency: Pc1aLatencyModel::from_components(),
            enabled: true,
            stats: ApmuStats::default(),
        }
    }

    /// Creates a disabled APMU (the `Cshallow`/`Cdeep` baselines: the
    /// hardware is absent, so the FSM never leaves PC0).
    #[must_use]
    pub fn disabled() -> Self {
        let mut apmu = Apmu::new();
        apmu.enabled = false;
        apmu
    }

    /// Whether the APMU hardware is present/enabled.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Current FSM state.
    #[must_use]
    pub fn state(&self) -> ApmuState {
        self.state
    }

    /// The `InPC1A` status signal towards the GPMU.
    #[must_use]
    pub fn in_pc1a(&self) -> bool {
        matches!(self.state, ApmuState::InPc1a { .. })
    }

    /// The latency model the FSM uses.
    #[must_use]
    pub fn latency_model(&self) -> &Pc1aLatencyModel {
        &self.latency
    }

    /// Statistics accumulated so far.
    #[must_use]
    pub fn stats(&self) -> ApmuStats {
        self.stats
    }

    /// Access to the IOSM sub-controller (for tracing).
    #[must_use]
    pub fn iosm(&self) -> &IoStandbyMode {
        &self.iosm
    }

    /// Access to the CLMR sub-controller (for tracing).
    #[must_use]
    pub fn clmr(&self) -> &ClmRetention {
        &self.clmr
    }

    /// The package C-state the APMU currently holds the system in, for power
    /// accounting. Transitional phases are charged at PC0idle power
    /// (conservative: no PC1A savings are claimed during entry/exit).
    #[must_use]
    pub fn package_state(&self, any_core_active: bool) -> PackageCState {
        match self.state {
            ApmuState::InPc1a { .. } => PackageCState::PC1A,
            ApmuState::Pc0 => {
                if any_core_active {
                    PackageCState::PC0
                } else {
                    PackageCState::PC0Idle
                }
            }
            ApmuState::Acc1 | ApmuState::Entering { .. } | ApmuState::Exiting { .. } => {
                PackageCState::PC0Idle
            }
        }
    }

    /// Notification that the aggregated `InCC1` signal asserted (every core
    /// is now established in CC1). Moves PC0 → ACC1 and asserts `AllowL0s`.
    ///
    /// Returns the earliest time at which the links can all have reached
    /// L0s/L0p — the caller should invoke [`Apmu::on_standby_deadline`] at
    /// that time — or `None` when the APMU is disabled, already past PC0, or
    /// some link is busy (in which case the attempt resolves when either the
    /// traffic drains and the caller retries, or a core wakes up).
    pub fn on_all_cores_idle(&mut self, soc: &mut SkxSoc, now: SimTime) -> Option<SimTime> {
        if !self.enabled || self.state != ApmuState::Pc0 {
            return None;
        }
        self.state = ApmuState::Acc1;
        self.stats.acc1_entries += 1;
        self.iosm.assert_allow_l0s(soc, now);
        self.iosm.standby_deadline(soc)
    }

    /// Notification that the standby deadline reported by
    /// [`Apmu::on_all_cores_idle`] has been reached. If every link has indeed
    /// entered its shallow state (`&InL0s`), the PC1A entry flow starts:
    /// the CLM is clock-gated, `Ret` is asserted (non-blocking ramp) and
    /// `Allow_CKE_OFF` is set.
    ///
    /// Returns the time at which the package is resident in PC1A (the caller
    /// should then invoke [`Apmu::on_entry_complete`]), or `None` when the
    /// conditions no longer hold (a wakeup raced the deadline).
    pub fn on_standby_deadline(&mut self, soc: &mut SkxSoc, now: SimTime) -> Option<SimTime> {
        if self.state != ApmuState::Acc1 {
            return None;
        }
        // The InCC1 AND-tree must still be asserted: a core that started
        // waking since the deadline was armed vetoes the entry.
        if !soc.cores().all_in_cc1_or_deeper() {
            return None;
        }
        if !self.iosm.try_enter_standby(soc, now) {
            return None;
        }
        // Branch (i): clock-gate the CLM and start the retention ramp.
        let (_gate, _ramp) = self.clmr.enter_retention(soc, now);
        // Branch (ii): allow the MCs to drop CKE.
        self.iosm.assert_allow_cke_off(soc, now);
        let done_at = now + self.latency.entry();
        self.state = ApmuState::Entering { done_at };
        Some(done_at)
    }

    /// Notification that the entry flow completed: the package is resident in
    /// PC1A and `InPC1A` asserts.
    ///
    /// # Panics
    ///
    /// Panics if no entry flow is in flight.
    pub fn on_entry_complete(&mut self, now: SimTime) {
        match self.state {
            ApmuState::Entering { .. } => {
                self.state = ApmuState::InPc1a { since: now };
                self.stats.pc1a_entries += 1;
            }
            _ => panic!("on_entry_complete without an entry flow in flight"),
        }
    }

    /// Delivers a wakeup event (IO traffic, core interrupt or GPMU event).
    ///
    /// * Resident in PC1A (or still entering): starts the exit flow —
    ///   de-asserts `Ret`, un-gates the CLM once `PwrOk`, clears
    ///   `Allow_CKE_OFF` — and reports when the uncore is available again.
    /// * In ACC1: nothing to unwind; links that had autonomously entered L0s
    ///   wake with their nanosecond exit latency.
    /// * In PC0 or already exiting: a no-op.
    pub fn wakeup(&mut self, soc: &mut SkxSoc, now: SimTime, cause: WakeCause) -> WakeOutcome {
        match self.state {
            ApmuState::InPc1a { since } => {
                self.stats.pc1a_residency += now - since;
                self.record_wake_cause(cause);
                self.begin_exit(soc, now)
            }
            ApmuState::Entering { .. } => {
                // Entry raced a wakeup: unwind immediately. The voltage ramp
                // is interrupted pre-emptively, so the exit is never longer
                // than a full exit.
                self.stats.aborted_entries += 1;
                self.record_wake_cause(cause);
                self.begin_exit(soc, now)
            }
            ApmuState::Acc1 => {
                let latency = if cause == WakeCause::CoreInterrupt {
                    // Fig. 4: a core interrupt in ACC1 returns to PC0 and
                    // clears AllowL0s.
                    let lat = self.iosm.deassert_allow_l0s(soc, now);
                    self.state = ApmuState::Pc0;
                    lat
                } else {
                    // IO traffic in ACC1: the affected link wakes on its own;
                    // the FSM stays in ACC1 awaiting either full standby or a
                    // core interrupt.
                    soc.ios().worst_exit_latency()
                };
                WakeOutcome::NotResident { latency }
            }
            ApmuState::Pc0 | ApmuState::Exiting { .. } => WakeOutcome::NotResident {
                latency: SimDuration::ZERO,
            },
        }
    }

    /// Notification that the exit flow completed: the package is back in
    /// ACC1 (uncore available, cores still idle).
    ///
    /// # Panics
    ///
    /// Panics if no exit flow is in flight.
    pub fn on_exit_complete(&mut self, soc: &mut SkxSoc, now: SimTime) {
        match self.state {
            ApmuState::Exiting { .. } => {
                self.clmr.exit_complete(soc, now);
                self.state = ApmuState::Acc1;
            }
            _ => panic!("on_exit_complete without an exit flow in flight"),
        }
    }

    /// Notification that a core returned to CC0 (the ACC1 → PC0 edge of
    /// Fig. 4). Clears `AllowL0s`; returns the worst link wake latency paid.
    pub fn on_core_active(&mut self, soc: &mut SkxSoc, now: SimTime) -> SimDuration {
        match self.state {
            ApmuState::Acc1 => {
                let lat = self.iosm.deassert_allow_l0s(soc, now);
                self.state = ApmuState::Pc0;
                lat
            }
            ApmuState::Pc0 => SimDuration::ZERO,
            // A core cannot be running while the uncore is in PC1A or in
            // transition: the wakeup path always goes through `wakeup()` and
            // `on_exit_complete()` first. Treat as a protocol error.
            _ => panic!(
                "core became active while the APMU was in state {}",
                self.state
            ),
        }
    }

    fn begin_exit(&mut self, soc: &mut SkxSoc, now: SimTime) -> WakeOutcome {
        // Step 4/5: de-assert Ret, ungate after PwrOk.
        let (ramp, ungate) = self.clmr.exit_retention(soc, now);
        // Step 6: clear Allow_CKE_OFF (concurrent branch).
        let cke = self.iosm.deassert_allow_cke_off(soc, now);
        // IO links wake on their own when traffic arrives; their worst exit
        // latency overlaps the CLM ramp.
        let io = soc.ios().worst_exit_latency();
        // Wake the links now (the exit flow reactivates the uncore; links
        // re-enter standby only on the next ACC1 episode).
        for link in soc.ios_mut().iter_mut() {
            link.wake(now);
        }
        let latency = ramp.max(cke).max(io) + ungate;
        let done_at = now + latency;
        self.state = ApmuState::Exiting { done_at };
        WakeOutcome::Exiting { done_at, latency }
    }

    fn record_wake_cause(&mut self, cause: WakeCause) {
        match cause {
            WakeCause::IoTraffic => self.stats.io_wakeups += 1,
            WakeCause::CoreInterrupt | WakeCause::GpmuEvent => self.stats.event_wakeups += 1,
        }
    }
}

impl Default for Apmu {
    fn default() -> Self {
        Apmu::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_soc::cstate::CoreCState;
    use apc_soc::io::LinkPowerState;
    use apc_soc::memory::DramPowerMode;
    use apc_soc::pll::PllState;

    /// Prepares a socket with all cores idle in CC1 and all links idle.
    fn idle_soc(now: SimTime) -> SkxSoc {
        let mut soc = SkxSoc::xeon_silver_4114();
        soc.force_all_cores(now, CoreCState::CC1);
        for io in soc.ios_mut().iter_mut() {
            io.end_traffic(now);
        }
        soc
    }

    /// Drives the APMU through a complete entry, returning the residency
    /// start time.
    fn enter_pc1a(apmu: &mut Apmu, soc: &mut SkxSoc, t0: SimTime) -> SimTime {
        let deadline = apmu.on_all_cores_idle(soc, t0).expect("ACC1 entry");
        let resident_at = apmu
            .on_standby_deadline(soc, deadline)
            .expect("PC1A entry should start");
        apmu.on_entry_complete(resident_at);
        resident_at
    }

    #[test]
    fn full_entry_flow_reaches_pc1a() {
        let t0 = SimTime::from_micros(100);
        let mut soc = idle_soc(t0);
        let mut apmu = Apmu::new();
        assert_eq!(apmu.state(), ApmuState::Pc0);

        let deadline = apmu.on_all_cores_idle(&mut soc, t0).unwrap();
        assert_eq!(apmu.state(), ApmuState::Acc1);
        assert_eq!(deadline, t0 + SimDuration::from_nanos(16));

        let resident_at = apmu.on_standby_deadline(&mut soc, deadline).unwrap();
        assert_eq!(resident_at, deadline + SimDuration::from_nanos(18));
        assert!(matches!(apmu.state(), ApmuState::Entering { .. }));

        apmu.on_entry_complete(resident_at);
        assert!(apmu.in_pc1a());
        assert_eq!(apmu.stats().pc1a_entries, 1);
        assert_eq!(apmu.package_state(false), PackageCState::PC1A);

        // Component states match Table 2's PC1A row.
        assert!(soc.ios().all_in_l0s());
        assert!(soc
            .memory()
            .iter()
            .all(|m| m.mode() == DramPowerMode::PrechargePowerDown));
        assert!(soc.clm().clock().is_gated());
        assert!(soc.plls().iter().all(|p| p.state() == PllState::Locked));
    }

    #[test]
    fn wakeup_from_pc1a_is_nanosecond_scale() {
        let t0 = SimTime::from_micros(100);
        let mut soc = idle_soc(t0);
        let mut apmu = Apmu::new();
        let resident_at = enter_pc1a(&mut apmu, &mut soc, t0);

        let wake_at = resident_at + SimDuration::from_micros(50);
        let outcome = apmu.wakeup(&mut soc, wake_at, WakeCause::IoTraffic);
        let WakeOutcome::Exiting { done_at, latency } = outcome else {
            panic!("expected an exit flow");
        };
        assert!(latency <= SimDuration::from_nanos(160), "latency {latency}");
        assert!(latency >= SimDuration::from_nanos(100));
        apmu.on_exit_complete(&mut soc, done_at);
        assert_eq!(apmu.state(), ApmuState::Acc1);
        assert!(apmu.stats().pc1a_residency >= SimDuration::from_micros(50));
        assert_eq!(apmu.stats().io_wakeups, 1);

        // Core interrupt then returns the FSM to PC0 and reactivates links.
        apmu.on_core_active(&mut soc, done_at + SimDuration::from_nanos(10));
        assert_eq!(apmu.state(), ApmuState::Pc0);
        assert!(soc.ios().iter().all(|c| c.state() == LinkPowerState::L0));
        assert!(soc
            .memory()
            .iter()
            .all(|m| m.mode() == DramPowerMode::Active));
    }

    #[test]
    fn entry_exit_round_trip_is_under_200ns() {
        let t0 = SimTime::ZERO;
        let mut soc = idle_soc(t0);
        let mut apmu = Apmu::new();
        let deadline = apmu.on_all_cores_idle(&mut soc, t0).unwrap();
        let resident_at = apmu.on_standby_deadline(&mut soc, deadline).unwrap();
        apmu.on_entry_complete(resident_at);
        // Immediate wakeup.
        let outcome = apmu.wakeup(&mut soc, resident_at, WakeCause::CoreInterrupt);
        let total = (outcome.latency() + (resident_at - deadline)).as_nanos();
        assert!(total <= 200, "entry+exit {total} ns");
    }

    #[test]
    fn disabled_apmu_never_leaves_pc0() {
        let mut soc = idle_soc(SimTime::ZERO);
        let mut apmu = Apmu::disabled();
        assert!(!apmu.is_enabled());
        assert_eq!(apmu.on_all_cores_idle(&mut soc, SimTime::ZERO), None);
        assert_eq!(apmu.state(), ApmuState::Pc0);
        assert_eq!(apmu.package_state(false), PackageCState::PC0Idle);
        assert_eq!(apmu.package_state(true), PackageCState::PC0);
    }

    #[test]
    fn busy_link_defers_entry() {
        let t0 = SimTime::ZERO;
        let mut soc = idle_soc(t0);
        // One PCIe port still has traffic outstanding.
        soc.ios_mut()
            .controller_mut(apc_soc::io::IoId(0))
            .begin_traffic(t0);
        let mut apmu = Apmu::new();
        let deadline = apmu.on_all_cores_idle(&mut soc, t0);
        assert_eq!(deadline, None, "busy link means no standby deadline");
        assert_eq!(apmu.state(), ApmuState::Acc1);
        // Even if the caller polls later, entry does not start while busy.
        assert_eq!(
            apmu.on_standby_deadline(&mut soc, t0 + SimDuration::from_micros(1)),
            None
        );
    }

    #[test]
    fn wakeup_during_entry_aborts_and_unwinds() {
        let t0 = SimTime::ZERO;
        let mut soc = idle_soc(t0);
        let mut apmu = Apmu::new();
        let deadline = apmu.on_all_cores_idle(&mut soc, t0).unwrap();
        let _resident_at = apmu.on_standby_deadline(&mut soc, deadline).unwrap();
        // Wakeup arrives before entry completes.
        let wake_at = deadline + SimDuration::from_nanos(5);
        let outcome = apmu.wakeup(&mut soc, wake_at, WakeCause::IoTraffic);
        assert!(matches!(outcome, WakeOutcome::Exiting { .. }));
        assert_eq!(apmu.stats().aborted_entries, 1);
        assert_eq!(apmu.stats().pc1a_entries, 0);
    }

    #[test]
    fn core_interrupt_in_acc1_returns_to_pc0() {
        let t0 = SimTime::ZERO;
        let mut soc = idle_soc(t0);
        let mut apmu = Apmu::new();
        apmu.on_all_cores_idle(&mut soc, t0).unwrap();
        let outcome = apmu.wakeup(
            &mut soc,
            t0 + SimDuration::from_nanos(8),
            WakeCause::CoreInterrupt,
        );
        assert!(matches!(outcome, WakeOutcome::NotResident { .. }));
        assert_eq!(apmu.state(), ApmuState::Pc0);
    }

    #[test]
    fn io_traffic_in_acc1_keeps_acc1() {
        let t0 = SimTime::ZERO;
        let mut soc = idle_soc(t0);
        let mut apmu = Apmu::new();
        apmu.on_all_cores_idle(&mut soc, t0).unwrap();
        let outcome = apmu.wakeup(
            &mut soc,
            t0 + SimDuration::from_nanos(8),
            WakeCause::IoTraffic,
        );
        assert!(matches!(outcome, WakeOutcome::NotResident { .. }));
        assert_eq!(apmu.state(), ApmuState::Acc1);
    }

    #[test]
    #[should_panic(expected = "core became active while the APMU was in state")]
    fn core_active_while_resident_is_a_protocol_error() {
        let t0 = SimTime::ZERO;
        let mut soc = idle_soc(t0);
        let mut apmu = Apmu::new();
        enter_pc1a(&mut apmu, &mut soc, t0);
        let _ = apmu.on_core_active(&mut soc, t0 + SimDuration::from_micros(1));
    }

    #[test]
    fn repeated_cycles_accumulate_stats() {
        let mut soc = idle_soc(SimTime::ZERO);
        let mut apmu = Apmu::new();
        let mut t = SimTime::from_micros(10);
        for _ in 0..5 {
            soc.force_all_cores(t, CoreCState::CC1);
            for io in soc.ios_mut().iter_mut() {
                io.end_traffic(t);
            }
            let resident = enter_pc1a(&mut apmu, &mut soc, t);
            let wake_at = resident + SimDuration::from_micros(30);
            let outcome = apmu.wakeup(&mut soc, wake_at, WakeCause::IoTraffic);
            if let WakeOutcome::Exiting { done_at, .. } = outcome {
                apmu.on_exit_complete(&mut soc, done_at);
                apmu.on_core_active(&mut soc, done_at);
                t = done_at + SimDuration::from_micros(100);
            }
        }
        let stats = apmu.stats();
        assert_eq!(stats.pc1a_entries, 5);
        assert_eq!(stats.acc1_entries, 5);
        assert!(stats.pc1a_residency >= SimDuration::from_micros(150));
        assert_eq!(stats.io_wakeups, 5);
    }
}
