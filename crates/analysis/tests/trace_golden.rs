//! Golden-file test: the exact Chrome trace-event JSON the exporter
//! produces for one fixed-seed traced run, byte for byte, round-tripped
//! through the bundled JSON parser.
//!
//! The literal was captured from the pinned run below (CPC1A, Memcached @
//! 20 K QPS, 2 ms window, seed 7, every request traced, 12-span bound).
//! It pins the exporter's field order and float formatting *and* the
//! determinism of span emission — stamps, lanes, C-state wake labels and
//! the head-sampler's RNG fork all feed the bytes below.

use apc_analysis::export::{chrome_trace_json, JsonValue};
use apc_server::config::ServerConfig;
use apc_server::sim::run_experiment;
use apc_sim::SimDuration;
use apc_trace::TraceConfig;
use apc_workloads::spec::WorkloadSpec;

fn golden_trace_json() -> JsonValue {
    let result = run_experiment(
        ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(2))
            .with_seed(7)
            .with_trace(TraceConfig::new(1).with_max_spans(12)),
        WorkloadSpec::memcached_etc(),
        20_000.0,
    );
    chrome_trace_json(&result.trace.expect("trace log collected"))
}

const GOLDEN_TRACE_JSON: &str = r#"{
  "traceEvents": [
    {
      "name": "wire-out",
      "cat": "wire-out",
      "ph": "X",
      "ts": 152.737,
      "dur": 0.0,
      "pid": 0,
      "tid": 0,
      "args": {
        "trace": 3
      }
    },
    {
      "name": "coalesce",
      "cat": "coalesce",
      "ph": "X",
      "ts": 152.737,
      "dur": 1.007,
      "pid": 0,
      "tid": 0,
      "args": {
        "trace": 3
      }
    },
    {
      "name": "queue",
      "cat": "queue",
      "ph": "X",
      "ts": 153.744,
      "dur": 0.154,
      "pid": 0,
      "tid": 0,
      "args": {
        "trace": 3
      }
    },
    {
      "name": "CC1",
      "cat": "wake",
      "ph": "X",
      "ts": 153.898,
      "dur": 1.0,
      "pid": 0,
      "tid": 4,
      "args": {
        "trace": 3
      }
    },
    {
      "name": "service",
      "cat": "service",
      "ph": "X",
      "ts": 154.898,
      "dur": 8.769,
      "pid": 0,
      "tid": 4,
      "args": {
        "trace": 3
      }
    },
    {
      "name": "root",
      "cat": "root",
      "ph": "X",
      "ts": 152.737,
      "dur": 10.93,
      "pid": 0,
      "tid": 0,
      "args": {
        "trace": 3
      }
    },
    {
      "name": "wire-out",
      "cat": "wire-out",
      "ph": "X",
      "ts": 141.515,
      "dur": 0.0,
      "pid": 0,
      "tid": 0,
      "args": {
        "trace": 2
      }
    },
    {
      "name": "coalesce",
      "cat": "coalesce",
      "ph": "X",
      "ts": 141.515,
      "dur": 12.229,
      "pid": 0,
      "tid": 0,
      "args": {
        "trace": 2
      }
    },
    {
      "name": "queue",
      "cat": "queue",
      "ph": "X",
      "ts": 153.744,
      "dur": 0.154,
      "pid": 0,
      "tid": 0,
      "args": {
        "trace": 2
      }
    },
    {
      "name": "CC1",
      "cat": "wake",
      "ph": "X",
      "ts": 153.898,
      "dur": 1.0,
      "pid": 0,
      "tid": 3,
      "args": {
        "trace": 2
      }
    },
    {
      "name": "service",
      "cat": "service",
      "ph": "X",
      "ts": 154.898,
      "dur": 13.629,
      "pid": 0,
      "tid": 3,
      "args": {
        "trace": 2
      }
    },
    {
      "name": "root",
      "cat": "root",
      "ph": "X",
      "ts": 141.515,
      "dur": 27.012,
      "pid": 0,
      "tid": 0,
      "args": {
        "trace": 2
      }
    }
  ],
  "displayTimeUnit": "ns",
  "dropped_spans": 270
}
"#;

#[test]
fn chrome_trace_json_is_stable() {
    assert_eq!(golden_trace_json().to_pretty_string(), GOLDEN_TRACE_JSON);
}

/// The export round-trips through the bundled parser losslessly, and the
/// parsed document has the Perfetto-required shape: an `X` complete event
/// per span with microsecond `ts`/`dur`, `pid` = node, `tid` = lane.
#[test]
fn chrome_trace_json_round_trips() {
    let parsed = JsonValue::parse(GOLDEN_TRACE_JSON).expect("golden parses");
    // Byte-level round trip: re-serializing the parsed document reproduces
    // the golden exactly. (Node-level equality would not hold — the parser
    // reads non-negative integers as `Int`, the exporter writes `UInt`.)
    assert_eq!(
        parsed.to_pretty_string(),
        GOLDEN_TRACE_JSON,
        "round trip changed the document"
    );
    let events = parsed
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert_eq!(events.len(), 12, "the 12-span bound pins the event count");
    for event in events {
        assert_eq!(
            event.get("ph").and_then(JsonValue::as_str),
            Some("X"),
            "every span is a complete event"
        );
        assert!(event.get("ts").and_then(JsonValue::as_f64).is_some());
        assert!(event.get("dur").and_then(JsonValue::as_f64).is_some());
        assert!(event.get("pid").is_some() && event.get("tid").is_some());
        let cat = event.get("cat").and_then(JsonValue::as_str).unwrap();
        assert!(
            [
                "wire-out",
                "coalesce",
                "queue",
                "wake",
                "service",
                "wire-back",
                "join",
                "tier",
                "root"
            ]
            .contains(&cat),
            "unknown span category `{cat}`"
        );
    }
    assert!(
        parsed
            .get("dropped_spans")
            .and_then(JsonValue::as_u64)
            .unwrap()
            > 0,
        "the tight bound must have shed spans"
    );
}
