//! Golden-file tests of the chain exporters: the exact JSON and CSV bytes
//! one fixed-seed fan-out run produces.
//!
//! Captured from `chain_result_json` / `chain_results_csv` on the pinned
//! run (CPC1A, 2 nodes, `1x frontend -> 2x kv-get`, 4 K chains/s, 2 ms
//! window, seed 7). Like `export_golden.rs`, these pin the exporters' field
//! order / float formatting *and* the chain simulation's determinism on the
//! export path — if a behavioural change is intentional, re-capture and say
//! so in the commit.
//!
//! Re-captured when the latency path moved to the quantile sketch (the
//! percentile fields are sketch estimates now, ≤ 1 % relative error;
//! count, mean and max stayed exact) and the `nodes` object was
//! restructured runs-first
//! with a `combined_latency` aggregate for the streaming exporters.

use apc_analysis::export::{chain_result_json, chain_results_csv, JsonValue, CHAIN_CSV_HEADER};
use apc_network::NetworkConfig;
use apc_server::balancer::RoutingPolicyKind;
use apc_server::chain::{run_chain_experiment, ChainMember, ChainResult, RequestGraph};
use apc_server::config::ServerConfig;
use apc_sim::SimDuration;

fn golden_chain_run() -> ChainResult {
    run_chain_experiment(
        &ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(2))
            .with_seed(7),
        2,
        RoutingPolicyKind::JoinShortestQueue,
        RequestGraph::memcached_fanout(2),
        4_000.0,
    )
}

const GOLDEN_CHAIN_JSON: &str = r#"{
  "policy": "join-shortest-queue",
  "graph": "1x frontend -> 2x kv-get",
  "duration_ns": 2000000,
  "chains_started": 6,
  "chains_completed": 6,
  "chains_per_sec": 3000.0,
  "chain_latency": {
    "count": 6,
    "mean_ns": 105376,
    "p50_ns": 97766,
    "p95_ns": 110231,
    "p99_ns": 110231,
    "p999_ns": 110231,
    "max_ns": 137621
  },
  "straggler": {
    "count": 6,
    "mean_ns": 12882,
    "p50_ns": 12712,
    "p95_ns": 21382,
    "p99_ns": 21382,
    "p999_ns": 21382,
    "max_ns": 22460
  },
  "routed": [
    11,
    7
  ],
  "total_routed": 18,
  "routing_imbalance": 1.2222222222222223,
  "events_dispatched": 644,
  "nodes": {
    "runs": [
      {
        "config": "CPC1A",
        "workload": "chain",
        "offered_rate_rps": 6000.0,
        "duration_ns": 2000000,
        "completed_requests": 11,
        "throughput_rps": 5500.0,
        "latency": {
          "count": 11,
          "mean_ns": 53327,
          "p50_ns": 47587,
          "p95_ns": 73889,
          "p99_ns": 73889,
          "p999_ns": 73889,
          "max_ns": 96812
        },
        "avg_soc_power_w": 32.14215511999998,
        "avg_dram_power_w": 2.4727939000000014,
        "cpu_utilization": 0.025304,
        "cc0_fraction": 0.026254,
        "cc1_fraction": 0.9737459999999999,
        "cc6_fraction": 0.0,
        "all_idle_fraction": 0.7852315,
        "pc1a_residency": 0.785759,
        "pc6_residency": 0.0,
        "pc1a_transitions": 20,
        "pc1a_aborted": 0,
        "pc6_transitions": 0,
        "idle_periods": 18,
        "idle_periods_20_200us": 0.7777777777777778,
        "events_dispatched": 0
      },
      {
        "config": "CPC1A",
        "workload": "chain",
        "offered_rate_rps": 6000.0,
        "duration_ns": 2000000,
        "completed_requests": 7,
        "throughput_rps": 3500.0,
        "latency": {
          "count": 7,
          "mean_ns": 48001,
          "p50_ns": 45721,
          "p95_ns": 53654,
          "p99_ns": 53654,
          "p999_ns": 53654,
          "max_ns": 62365
        },
        "avg_soc_power_w": 32.00121404999999,
        "avg_dram_power_w": 2.452034575000003,
        "cpu_utilization": 0.02379365,
        "cc0_fraction": 0.02469365,
        "cc1_fraction": 0.97530635,
        "cc6_fraction": 0.0,
        "all_idle_fraction": 0.785591,
        "pc1a_residency": 0.790519,
        "pc6_residency": 0.0,
        "pc1a_transitions": 18,
        "pc1a_aborted": 0,
        "pc6_transitions": 0,
        "idle_periods": 12,
        "idle_periods_20_200us": 0.6666666666666666,
        "events_dispatched": 0
      }
    ],
    "servers": 2,
    "total_completed_requests": 18,
    "aggregate_throughput_rps": 9000.0,
    "total_power_w": 69.06819764499997,
    "mean_soc_power_w": 32.071684584999986,
    "mean_pc1a_residency": 0.7881389999999999,
    "mean_latency_ns": 51256,
    "combined_latency": {
      "count": 18,
      "mean_ns": 51256,
      "p50_ns": 45721,
      "p95_ns": 73889,
      "p99_ns": 73889,
      "p999_ns": 73889,
      "max_ns": 96812
    },
    "worst_p99_ns": 73889,
    "worst_p999_ns": 73889,
    "events_dispatched": 0
  }
}
"#;

const GOLDEN_CHAIN_CSV: &str = "repeat,policy,graph,duration_ns,\
chains_started,chains_completed,chains_per_sec,e2e_mean_ns,e2e_p50_ns,\
e2e_p99_ns,e2e_p999_ns,e2e_max_ns,straggler_p50_ns,straggler_p99_ns,\
straggler_p999_ns,total_routed,routing_imbalance,fleet_power_w,\
mean_pc1a_residency,worst_rpc_p99_ns\n\
0,join-shortest-queue,1x frontend -> 2x kv-get,2000000,6,6,3000,105376,\
97766,110231,110231,137621,12712,21382,21382,18,1.2222222222222223,\
69.06819764499997,0.7881389999999999,73889\n";

#[test]
fn chain_json_export_matches_golden_bytes() {
    let text = chain_result_json(&golden_chain_run()).to_pretty_string();
    assert_eq!(text, GOLDEN_CHAIN_JSON);
}

#[test]
fn chain_csv_export_matches_golden_bytes() {
    let result = golden_chain_run();
    let text = chain_results_csv(std::slice::from_ref(&result));
    assert_eq!(text, GOLDEN_CHAIN_CSV);
    assert!(text.starts_with(CHAIN_CSV_HEADER));
}

#[test]
fn golden_chain_json_round_trips_through_the_parser() {
    let parsed = JsonValue::parse(GOLDEN_CHAIN_JSON).expect("golden JSON parses");
    assert_eq!(
        parsed.get("graph").and_then(JsonValue::as_str),
        Some("1x frontend -> 2x kv-get")
    );
    assert_eq!(
        parsed.get("chains_completed").and_then(JsonValue::as_u64),
        Some(6)
    );
    assert_eq!(
        parsed
            .get("chain_latency")
            .and_then(|l| l.get("p999_ns"))
            .and_then(JsonValue::as_u64),
        Some(110_231)
    );
    assert_eq!(
        parsed
            .get("straggler")
            .and_then(|l| l.get("p99_ns"))
            .and_then(JsonValue::as_u64),
        Some(21_382)
    );
    // Every end-to-end latency bounds its chain's straggler gap.
    let e2e = parsed
        .get("chain_latency")
        .and_then(|l| l.get("p50_ns"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    let straggler = parsed
        .get("straggler")
        .and_then(|l| l.get("p50_ns"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    assert!(e2e > straggler);
}

// ---- network-fabric golden ---------------------------------------------
//
// The same pinned run, but routed through a two-tier fabric with 5 us
// links (rack size 2). Captured separately from the fabric-less goldens
// above, which remain untouched: the fabric-less export path never changed
// bytes. This pins the `network` JSON object, the CSV network columns, and
// the wired chain simulation's determinism in one shot.

fn golden_network_chain_run() -> ChainResult {
    ChainMember::homogeneous(
        &ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(2))
            .with_seed(7),
        2,
        RoutingPolicyKind::JoinShortestQueue,
        RequestGraph::memcached_fanout(2),
        4_000.0,
    )
    .with_network(NetworkConfig::two_tier(SimDuration::from_micros(5), 2))
    .run()
}

const GOLDEN_NETWORK_CHAIN_JSON: &str = r#"{
  "policy": "join-shortest-queue",
  "graph": "1x frontend -> 2x kv-get",
  "duration_ns": 2000000,
  "chains_started": 6,
  "chains_completed": 5,
  "chains_per_sec": 2500.0,
  "chain_latency": {
    "count": 5,
    "mean_ns": 160824,
    "p50_ns": 154871,
    "p95_ns": 158000,
    "p99_ns": 158000,
    "p999_ns": 158000,
    "max_ns": 197621
  },
  "straggler": {
    "count": 5,
    "mean_ns": 11212,
    "p50_ns": 12712,
    "p95_ns": 17859,
    "p99_ns": 17859,
    "p999_ns": 17859,
    "max_ns": 22460
  },
  "routed": [
    17,
    1
  ],
  "total_routed": 18,
  "routing_imbalance": 1.8888888888888888,
  "events_dispatched": 588,
  "network": {
    "topology": "two-tier",
    "link_latency_ns": 5000,
    "bandwidth_bytes_per_sec": null,
    "rpc_bytes": 0,
    "messages": 35,
    "total_wire_delay_ns": 525000,
    "mean_wire_delay_ns": 15000,
    "max_wire_delay_ns": 15000,
    "per_link": [
      {
        "link": 0,
        "messages": 16,
        "busy_ns": 0,
        "total_queue_delay_ns": 0,
        "max_queue_delay_ns": 0
      },
      {
        "link": 1,
        "messages": 17,
        "busy_ns": 0,
        "total_queue_delay_ns": 0,
        "max_queue_delay_ns": 0
      },
      {
        "link": 2,
        "messages": 1,
        "busy_ns": 0,
        "total_queue_delay_ns": 0,
        "max_queue_delay_ns": 0
      },
      {
        "link": 3,
        "messages": 1,
        "busy_ns": 0,
        "total_queue_delay_ns": 0,
        "max_queue_delay_ns": 0
      },
      {
        "link": 4,
        "messages": 18,
        "busy_ns": 0,
        "total_queue_delay_ns": 0,
        "max_queue_delay_ns": 0
      },
      {
        "link": 5,
        "messages": 17,
        "busy_ns": 0,
        "total_queue_delay_ns": 0,
        "max_queue_delay_ns": 0
      },
      {
        "link": 6,
        "messages": 17,
        "busy_ns": 0,
        "total_queue_delay_ns": 0,
        "max_queue_delay_ns": 0
      },
      {
        "link": 7,
        "messages": 18,
        "busy_ns": 0,
        "total_queue_delay_ns": 0,
        "max_queue_delay_ns": 0
      }
    ]
  },
  "nodes": {
    "runs": [
      {
        "config": "CPC1A",
        "workload": "chain",
        "offered_rate_rps": 6000.0,
        "duration_ns": 2000000,
        "completed_requests": 16,
        "throughput_rps": 8000.0,
        "latency": {
          "count": 16,
          "mean_ns": 64879,
          "p50_ns": 59297,
          "p95_ns": 88462,
          "p99_ns": 88462,
          "p999_ns": 88462,
          "max_ns": 111812
        },
        "avg_soc_power_w": 31.886016959999985,
        "avg_dram_power_w": 2.3730568,
        "cpu_utilization": 0.029080099999999998,
        "cc0_fraction": 0.030911799999999996,
        "cc1_fraction": 0.9690881999999998,
        "cc6_fraction": 0.0,
        "all_idle_fraction": 0.818161,
        "pc1a_residency": 0.813121,
        "pc6_residency": 0.0,
        "pc1a_transitions": 15,
        "pc1a_aborted": 0,
        "pc6_transitions": 0,
        "idle_periods": 15,
        "idle_periods_20_200us": 0.7333333333333333,
        "events_dispatched": 0
      },
      {
        "config": "CPC1A",
        "workload": "chain",
        "offered_rate_rps": 6000.0,
        "duration_ns": 2000000,
        "completed_requests": 1,
        "throughput_rps": 500.0,
        "latency": {
          "count": 1,
          "mean_ns": 58189,
          "p50_ns": 58189,
          "p95_ns": 58189,
          "p99_ns": 58189,
          "p999_ns": 58189,
          "max_ns": 58189
        },
        "avg_soc_power_w": 31.04172537999999,
        "avg_dram_power_w": 2.2690256500000014,
        "cpu_utilization": 0.018491300000000002,
        "cc0_fraction": 0.019241299999999996,
        "cc1_fraction": 0.9807587,
        "cc6_fraction": 0.0,
        "all_idle_fraction": 0.829169,
        "pc1a_residency": 0.835441,
        "pc6_residency": 0.0,
        "pc1a_transitions": 14,
        "pc1a_aborted": 0,
        "pc6_transitions": 0,
        "idle_periods": 8,
        "idle_periods_20_200us": 0.375,
        "events_dispatched": 0
      }
    ],
    "servers": 2,
    "total_completed_requests": 17,
    "aggregate_throughput_rps": 8500.0,
    "total_power_w": 67.56982478999998,
    "mean_soc_power_w": 31.463871169999987,
    "mean_pc1a_residency": 0.824281,
    "mean_latency_ns": 64485,
    "combined_latency": {
      "count": 17,
      "mean_ns": 64486,
      "p50_ns": 59297,
      "p95_ns": 88462,
      "p99_ns": 88462,
      "p999_ns": 88462,
      "max_ns": 111812
    },
    "worst_p99_ns": 88462,
    "worst_p999_ns": 88462,
    "events_dispatched": 0
  }
}
"#;

const GOLDEN_NETWORK_CHAIN_CSV: &str = "repeat,policy,graph,duration_ns,\
chains_started,chains_completed,chains_per_sec,e2e_mean_ns,e2e_p50_ns,\
e2e_p99_ns,e2e_p999_ns,e2e_max_ns,straggler_p50_ns,straggler_p99_ns,\
straggler_p999_ns,total_routed,routing_imbalance,fleet_power_w,\
mean_pc1a_residency,worst_rpc_p99_ns,net_topology,net_link_latency_ns,\
net_messages,net_mean_wire_delay_ns,net_max_wire_delay_ns\n\
0,join-shortest-queue,1x frontend -> 2x kv-get,2000000,6,5,2500,160824,\
154871,158000,158000,197621,12712,17859,17859,18,1.8888888888888888,\
67.56982478999998,0.824281,88462,two-tier,5000,35,15000,15000\n";

#[test]
fn network_chain_json_export_matches_golden_bytes() {
    let text = chain_result_json(&golden_network_chain_run()).to_pretty_string();
    assert_eq!(text, GOLDEN_NETWORK_CHAIN_JSON);
}

#[test]
fn network_chain_csv_export_matches_golden_bytes() {
    let result = golden_network_chain_run();
    let text = chain_results_csv(std::slice::from_ref(&result));
    assert_eq!(text, GOLDEN_NETWORK_CHAIN_CSV);
    // The network columns extend the fabric-less header, never reorder it.
    assert!(text.starts_with(CHAIN_CSV_HEADER));
}

#[test]
fn golden_network_chain_json_round_trips_through_the_parser() {
    let parsed = JsonValue::parse(GOLDEN_NETWORK_CHAIN_JSON).expect("golden JSON parses");
    let net = parsed.get("network").expect("network object present");
    assert_eq!(
        net.get("topology").and_then(JsonValue::as_str),
        Some("two-tier")
    );
    // 35 messages: 18 routed RPCs + 17 leaf-completion reports (one RPC
    // had not finished service when the window closed).
    assert_eq!(net.get("messages").and_then(JsonValue::as_u64), Some(35));
    assert_eq!(
        net.get("total_wire_delay_ns").and_then(JsonValue::as_u64),
        Some(525_000)
    );
    // Infinite bandwidth exports as an explicit null, not a missing key.
    assert!(matches!(
        net.get("bandwidth_bytes_per_sec"),
        Some(JsonValue::Null)
    ));
    // The wired run is strictly slower end-to-end than the fabric-less
    // golden above (154_871 ns vs 97_766 ns at p50): the fabric is not
    // a no-op when links cost real time.
    let wired_p50 = parsed
        .get("chain_latency")
        .and_then(|l| l.get("p50_ns"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    let baseline = JsonValue::parse(GOLDEN_CHAIN_JSON).unwrap();
    let base_p50 = baseline
        .get("chain_latency")
        .and_then(|l| l.get("p50_ns"))
        .and_then(JsonValue::as_u64)
        .unwrap();
    assert!(wired_p50 > base_p50);
}
