//! Golden-file tests: the exact JSON and CSV text the exporters produce
//! for one fixed-seed run, byte for byte.
//!
//! These literals were captured from `apc-cli run` on the pinned spec
//! (CPC1A, Memcached @ 20 K QPS, 2 ms window, seed 7). They protect two
//! properties at once: the exporters' field order / float formatting (any
//! formatting change fails here first) and the simulation's determinism on
//! the export path (any behavioural shift fails here too — if intentional,
//! re-capture and say so in the commit).
//!
//! Re-captured when the latency path moved to the quantile sketch: the
//! percentile fields are now sketch estimates (≤ 1 % relative error,
//! clamped to the exact min/max), so p50/p95/p99/p999 shifted; count,
//! mean and max are exact and did not change.

use apc_analysis::export::{
    fleet_csv, run_result_json, run_results_csv, timeseries_csv, JsonValue,
};
use apc_server::config::ServerConfig;
use apc_server::fleet::{Fleet, FleetMember};
use apc_server::result::RunResult;
use apc_server::sim::run_experiment;
use apc_sim::SimDuration;
use apc_workloads::spec::WorkloadSpec;

fn golden_run() -> RunResult {
    run_experiment(
        ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(2))
            .with_seed(7),
        WorkloadSpec::memcached_etc(),
        20_000.0,
    )
}

const GOLDEN_JSON: &str = r#"{
  "config": "CPC1A",
  "workload": "memcached",
  "offered_rate_rps": 20000.0,
  "duration_ns": 2000000,
  "completed_requests": 47,
  "throughput_rps": 23500.0,
  "latency": {
    "count": 47,
    "mean_ns": 163843,
    "p50_ns": 161192,
    "p95_ns": 200859,
    "p99_ns": 209056,
    "p999_ns": 209056,
    "max_ns": 211155
  },
  "avg_soc_power_w": 37.38770723999999,
  "avg_dram_power_w": 3.352499800000005,
  "cpu_utilization": 0.06868790000000001,
  "cc0_fraction": 0.0704629,
  "cc1_fraction": 0.9295371000000001,
  "cc6_fraction": 0.0,
  "all_idle_fraction": 0.576999,
  "pc1a_residency": 0.5768615,
  "pc6_residency": 0.0,
  "pc1a_transitions": 22,
  "pc1a_aborted": 0,
  "pc6_transitions": 0,
  "idle_periods": 20,
  "idle_periods_20_200us": 0.75,
  "events_dispatched": 551
}
"#;

const GOLDEN_CSV: &str = "label,config,workload,offered_rate_rps,duration_ns,\
completed_requests,throughput_rps,mean_ns,p50_ns,p95_ns,p99_ns,p999_ns,max_ns,\
avg_soc_power_w,avg_dram_power_w,cpu_utilization,cc0_fraction,cc1_fraction,\
cc6_fraction,all_idle_fraction,pc1a_residency,pc6_residency,pc1a_transitions,\
pc1a_aborted,pc6_transitions,idle_periods,idle_periods_20_200us\n\
run 0,CPC1A,memcached,20000,2000000,47,23500,163843,161192,200859,209056,209056,\
211155,37.38770723999999,3.352499800000005,0.06868790000000001,0.0704629,\
0.9295371000000001,0,0.576999,0.5768615,0,22,0,0,20,0.75\n";

const GOLDEN_TIMESERIES_CSV: &str = "node,at_ns,soc_power_w,queue_depth,busy_cores,\
package_state,pc0_delta_ns,pc0_idle_delta_ns,pc1a_delta_ns,pc6_delta_ns\n\
run 0,0,84.99600000000001,0,0,PC0Idle,0,0,0,0\n\
run 0,500000,60.395999999999994,3,3,PC0,219667,8360,271973,0\n\
run 0,1000000,27.555999999999997,0,0,PC1A,296216,10550,193234,0\n\
run 0,1500000,48.096,1,1,PC0,148409,9514,342077,0\n";

#[test]
fn json_export_matches_golden_bytes() {
    let text = run_result_json(&golden_run()).to_pretty_string();
    assert_eq!(text, GOLDEN_JSON);
}

#[test]
fn csv_export_matches_golden_bytes() {
    let run = golden_run();
    let text = run_results_csv([("run 0", &run)]);
    assert_eq!(text, GOLDEN_CSV);
}

#[test]
fn timeseries_csv_matches_golden_bytes() {
    let run = run_experiment(
        ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(2))
            .with_seed(7)
            .with_timeseries(SimDuration::from_micros(500)),
        WorkloadSpec::memcached_etc(),
        20_000.0,
    );
    let ts = run.timeseries.as_ref().expect("series enabled");
    assert_eq!(timeseries_csv("run 0", ts), GOLDEN_TIMESERIES_CSV);
}

#[test]
fn golden_json_round_trips_through_the_parser() {
    let parsed = JsonValue::parse(GOLDEN_JSON).expect("golden JSON parses");
    assert_eq!(
        parsed.get("config").and_then(JsonValue::as_str),
        Some("CPC1A")
    );
    assert_eq!(
        parsed.get("completed_requests").and_then(JsonValue::as_u64),
        Some(47)
    );
    assert_eq!(
        parsed
            .get("latency")
            .and_then(|l| l.get("p999_ns"))
            .and_then(JsonValue::as_u64),
        Some(209_056)
    );
    // Float fields survive exactly (shortest-round-trip formatting).
    assert_eq!(
        parsed.get("avg_soc_power_w").and_then(JsonValue::as_f64),
        Some(37.38770723999999)
    );
}

#[test]
fn exports_are_byte_identical_across_sequential_and_parallel_pools() {
    let build = |workers: usize| {
        let mut fleet = Fleet::new();
        for i in 0..4 {
            fleet.push(FleetMember::new(
                ServerConfig::c_pc1a()
                    .with_duration(SimDuration::from_millis(2))
                    .with_seed(Fleet::member_seed(7, i)),
                WorkloadSpec::memcached_etc(),
                20_000.0,
            ));
        }
        fleet.with_parallelism(workers)
    };
    let sequential = build(1).run();
    let parallel = build(8).run();
    assert_eq!(fleet_csv(&sequential), fleet_csv(&parallel));
    assert_eq!(
        apc_analysis::export::fleet_result_json(&sequential).to_pretty_string(),
        apc_analysis::export::fleet_result_json(&parallel).to_pretty_string()
    );
}
