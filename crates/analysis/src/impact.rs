//! The paper's performance-impact model (Sec. 6 / Sec. 7.3).
//!
//! The paper estimates PC1A's latency impact analytically: every PC1A
//! transition adds at most the worst-case transition latency (< 200 ns) to
//! the requests that triggered it, which — spread over all requests and
//! compared against the ≈ 117 µs end-to-end latency — amounts to less than
//! 0.1 % average-latency degradation.

use apc_server::result::RunResult;
use apc_sim::SimDuration;

/// Inputs of the analytical impact model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImpactInputs {
    /// Number of PC1A transitions during the measurement window.
    pub pc1a_transitions: u64,
    /// Number of client requests served during the window.
    pub requests: u64,
    /// Average number of requests delayed by each transition (the paper uses
    /// the distribution of active cores after a full-idle period; ≥ 1).
    pub requests_per_wakeup: f64,
    /// Worst-case PC1A transition latency.
    pub transition_cost: SimDuration,
    /// Baseline average end-to-end latency.
    pub baseline_latency: SimDuration,
}

impl ImpactInputs {
    /// Builds the model inputs from a simulated `CPC1A` run and its baseline.
    #[must_use]
    pub fn from_runs(apc: &RunResult, baseline: &RunResult) -> Self {
        ImpactInputs {
            pc1a_transitions: apc.pc1a_transitions,
            requests: apc.completed_requests.max(1),
            requests_per_wakeup: 1.0,
            transition_cost: SimDuration::from_nanos(200),
            baseline_latency: baseline.latency.mean,
        }
    }

    /// The absolute added latency, averaged over all requests.
    #[must_use]
    pub fn added_latency_per_request(&self) -> SimDuration {
        if self.requests == 0 {
            return SimDuration::ZERO;
        }
        let total_ns = self.pc1a_transitions as f64
            * self.requests_per_wakeup
            * self.transition_cost.as_nanos() as f64;
        SimDuration::from_nanos((total_ns / self.requests as f64).round() as u64)
    }

    /// The relative average-latency degradation (the paper's < 0.1 % claim).
    #[must_use]
    pub fn relative_impact(&self) -> f64 {
        let base = self.baseline_latency.as_nanos();
        if base == 0 {
            return 0.0;
        }
        self.added_latency_per_request().as_nanos() as f64 / base as f64
    }
}

/// The *measured* relative latency impact between two simulated runs.
#[must_use]
pub fn measured_impact(apc: &RunResult, baseline: &RunResult) -> f64 {
    apc.latency_overhead_vs(baseline)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn impact_is_below_0_1_percent_at_typical_operating_points() {
        // 10 000 PC1A transitions while serving 50 000 requests with a
        // 117 µs baseline: impact = 10e3 * 200ns / 50e3 / 117us ≈ 0.034 %.
        let inputs = ImpactInputs {
            pc1a_transitions: 10_000,
            requests: 50_000,
            requests_per_wakeup: 1.0,
            transition_cost: SimDuration::from_nanos(200),
            baseline_latency: SimDuration::from_micros(117),
        };
        let impact = inputs.relative_impact();
        assert!(impact < 0.001, "impact {impact}");
        assert!(inputs.added_latency_per_request() <= SimDuration::from_nanos(40));
    }

    #[test]
    fn impact_scales_with_transitions_and_cost() {
        let base = ImpactInputs {
            pc1a_transitions: 1_000,
            requests: 10_000,
            requests_per_wakeup: 1.0,
            transition_cost: SimDuration::from_nanos(200),
            baseline_latency: SimDuration::from_micros(100),
        };
        let doubled = ImpactInputs {
            pc1a_transitions: 2_000,
            ..base
        };
        assert!(doubled.relative_impact() > base.relative_impact());
        let pc6_cost = ImpactInputs {
            transition_cost: SimDuration::from_micros(50),
            ..base
        };
        // With PC6-scale transition costs the impact becomes substantial
        // (≈ 5 %), which is exactly why PC6 is unusable.
        assert!(pc6_cost.relative_impact() >= 0.049);
    }

    #[test]
    fn degenerate_inputs_are_safe() {
        let inputs = ImpactInputs {
            pc1a_transitions: 0,
            requests: 0,
            requests_per_wakeup: 1.0,
            transition_cost: SimDuration::from_nanos(200),
            baseline_latency: SimDuration::ZERO,
        };
        assert_eq!(inputs.relative_impact(), 0.0);
        assert_eq!(inputs.added_latency_per_request(), SimDuration::ZERO);
    }
}
