//! Machine-readable export of experiment results: hand-rolled JSON and CSV.
//!
//! The experiment runner's output layer. Both writers are deliberately
//! boring and fully deterministic so that exported artefacts are diffable
//! and pinnable by golden tests:
//!
//! * **field order is fixed** — JSON objects preserve the declaration order
//!   of the result structs, CSV columns are a documented constant order;
//! * **float formatting is fixed** — finite floats print via Rust's
//!   shortest-round-trip formatter (`{}`), which is a pure function of the
//!   bit pattern, so bit-identical results (what the fleet's
//!   parallel-vs-sequential invariant guarantees) export to byte-identical
//!   text; durations and timestamps are exported as integer nanoseconds;
//! * **no external dependencies** — the workspace is offline; like the
//!   vendored criterion shim, the JSON layer is a minimal hand-rolled
//!   value type with a writer *and* a parser, so round-trip validation
//!   (`apc-cli validate`) needs nothing but this crate.
//!
//! # Example
//!
//! ```
//! use apc_analysis::export::{run_result_json, JsonValue};
//! use apc_server::config::ServerConfig;
//! use apc_server::sim::run_experiment;
//! use apc_sim::SimDuration;
//! use apc_workloads::spec::WorkloadSpec;
//!
//! let config = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(5));
//! let result = run_experiment(config, WorkloadSpec::memcached_etc(), 10_000.0);
//! let text = run_result_json(&result).to_pretty_string();
//! // The export round-trips through the bundled parser.
//! let parsed = JsonValue::parse(&text).unwrap();
//! assert_eq!(parsed.get("config").and_then(JsonValue::as_str), Some("CPC1A"));
//! assert!(parsed.get("completed_requests").and_then(JsonValue::as_u64).unwrap() > 0);
//! ```

use std::fmt::Write as _;

use apc_network::NetworkStats;
use apc_power::units::Watts;
use apc_server::chain::ChainResult;
use apc_server::cluster::ClusterResult;
use apc_server::fleet::FleetResult;
use apc_server::result::RunResult;
use apc_sim::{SimDuration, SimTime};
use apc_soc::cstate::PackageCState;
use apc_telemetry::latency::{LatencyRecorder, LatencySummary};
use apc_telemetry::sketch::{QuantileSketch, SketchParts};
use apc_telemetry::timeseries::{TimeSeries, TimeSeriesSample};
use apc_trace::{ProfileReport, TraceLog};

/// A JSON value with insertion-ordered objects.
///
/// Only what the exporters need: numbers are either integers (durations in
/// nanoseconds, counters) or floats (powers, rates, fractions); objects
/// preserve the order keys were inserted in, which is what makes the
/// serialised form deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number (exported counters and nanosecond durations).
    Int(i64),
    /// An unsigned integer that may exceed `i64` (seeds).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience: an empty object builder.
    #[must_use]
    pub fn object() -> Self {
        JsonValue::Object(Vec::new())
    }

    /// Appends a key to an object (panics on non-objects; the exporters
    /// only build objects through this).
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(&mut self, key: &str, value: JsonValue) -> &mut Self {
        match self {
            JsonValue::Object(entries) => entries.push((key.to_owned(), value)),
            other => panic!("JsonValue::push on non-object {other:?}"),
        }
        self
    }

    /// Looks a key up in an object (`None` for absent keys or non-objects).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen; `None` for non-numbers).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(i) => Some(*i as f64),
            JsonValue::UInt(u) => Some(*u as f64),
            JsonValue::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a `u64` (`None` for non-integers and negatives).
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Int(i) => u64::try_from(*i).ok(),
            JsonValue::UInt(u) => Some(*u),
            _ => None,
        }
    }

    /// The value as a string slice (`None` for non-strings).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Serialises compactly (no whitespace).
    #[must_use]
    pub fn to_compact_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serialises with 2-space indentation and one key per line — the form
    /// the golden tests pin and `apc-cli --format json` emits.
    #[must_use]
    pub fn to_pretty_string(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    /// Serialises a pretty-printed *fragment*: the value rendered as if it
    /// sat at container depth `depth` of a [`Self::to_pretty_string`]
    /// document (its own first line unindented, nested lines indented
    /// `2 * (depth + 1)` spaces, no trailing newline). The streaming
    /// writers in [`crate::stream`] use this to emit array elements one at
    /// a time while staying byte-identical to the buffered form.
    #[must_use]
    pub fn to_pretty_fragment(&self, depth: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), depth);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(i) => {
                let _ = write!(out, "{i}");
            }
            JsonValue::UInt(u) => {
                let _ = write!(out, "{u}");
            }
            JsonValue::Float(f) => write_f64(out, *f),
            JsonValue::Str(s) => write_json_string(out, s),
            JsonValue::Array(items) => {
                write_sequence(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write(out, indent, depth + 1);
                });
            }
            JsonValue::Object(entries) => {
                write_sequence(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (key, value) = &entries[i];
                    write_json_string(out, key);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    value.write(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_sequence(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

/// Deterministic float formatting: Rust's shortest-round-trip `{}` for
/// finite values (a pure function of the bit pattern, with `.0` appended to
/// integral values so floats stay visibly floats), `null` for non-finite
/// values (JSON has no NaN/Inf).
fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
        return;
    }
    let start = out.len();
    let _ = write!(out, "{v}");
    if !out[start..].contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse error: what went wrong and the byte offset it went wrong at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Parses a JSON document (strict: exactly one value, nothing but
    /// whitespace after it). Numbers parse to [`JsonValue::Int`] when they
    /// are integral and fit, else [`JsonValue::Float`].
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] with the byte offset of the first problem.
    pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.error("trailing characters after the document"));
        }
        Ok(value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_owned(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", byte as char)))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error(&format!("expected {text:?}")))
        }
    }

    /// Maximum container nesting. The parser recurses per nesting level, so
    /// without a bound a hostile `[[[[…` input overflows the stack (an
    /// abort, not a `JsonError`); our own exports nest 4 levels deep.
    const MAX_DEPTH: usize = 128;

    fn value(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        if depth > Self::MAX_DEPTH {
            return Err(self.error("nesting deeper than 128 levels"));
        }
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.error("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let rest = &self.bytes[self.pos..];
            let Some(&c) = rest.first() else {
                return Err(self.error("unterminated string"));
            };
            match c {
                b'"' => {
                    self.pos += 1;
                    return Ok(s);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| self.error("unterminated escape sequence"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            // Exactly four hex digits — `from_str_radix`
                            // alone would also accept a leading sign.
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .filter(|h| h.iter().all(u8::is_ascii_hexdigit))
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not needed by our own exports;
                            // map unpaired ones to the replacement char.
                            s.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.error("invalid escape sequence")),
                    }
                }
                _ => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let text =
                        std::str::from_utf8(rest).map_err(|_| self.error("invalid UTF-8"))?;
                    let ch = text.chars().next().expect("non-empty rest");
                    s.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    /// Consumes a run of ASCII digits, erroring when none are present —
    /// JSON requires at least one digit in every numeric part.
    fn digits(&mut self, part: &str) -> Result<usize, JsonError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.pos == start {
            return Err(self.error(&format!("expected a digit in the {part} of a number")));
        }
        Ok(self.pos - start)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        let int_digits = self.digits("integer part")?;
        if int_digits > 1 && self.bytes[int_start] == b'0' {
            return Err(JsonError {
                message: "leading zeros are not allowed".to_owned(),
                offset: int_start,
            });
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            self.digits("fraction part")?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits("exponent")?;
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(JsonValue::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(JsonValue::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| JsonError {
                message: format!("invalid number {text:?}"),
                offset: start,
            })
    }
}

// ---- result -> JSON ----------------------------------------------------

/// A latency summary as an object of nanosecond integers.
#[must_use]
pub fn latency_json(latency: &LatencySummary) -> JsonValue {
    let mut o = JsonValue::object();
    o.push("count", JsonValue::UInt(latency.count as u64))
        .push("mean_ns", JsonValue::UInt(latency.mean.as_nanos()))
        .push("p50_ns", JsonValue::UInt(latency.p50.as_nanos()))
        .push("p95_ns", JsonValue::UInt(latency.p95.as_nanos()))
        .push("p99_ns", JsonValue::UInt(latency.p99.as_nanos()))
        .push("p999_ns", JsonValue::UInt(latency.p999.as_nanos()))
        .push("max_ns", JsonValue::UInt(latency.max.as_nanos()));
    o
}

/// One run's full result as an object (field order mirrors [`RunResult`]'s
/// declaration order; durations in integer nanoseconds, powers in watts).
/// The `timeseries` key appears only when the run recorded one.
#[must_use]
pub fn run_result_json(r: &RunResult) -> JsonValue {
    let mut o = JsonValue::object();
    o.push("config", JsonValue::Str(r.config_name.to_owned()))
        .push("workload", JsonValue::Str(r.workload.to_owned()))
        .push("offered_rate_rps", JsonValue::Float(r.offered_rate))
        .push("duration_ns", JsonValue::UInt(r.duration.as_nanos()))
        .push("completed_requests", JsonValue::UInt(r.completed_requests))
        .push("throughput_rps", JsonValue::Float(r.throughput()))
        .push("latency", latency_json(&r.latency))
        .push(
            "avg_soc_power_w",
            JsonValue::Float(r.avg_soc_power.as_f64()),
        )
        .push(
            "avg_dram_power_w",
            JsonValue::Float(r.avg_dram_power.as_f64()),
        )
        .push("cpu_utilization", JsonValue::Float(r.cpu_utilization))
        .push("cc0_fraction", JsonValue::Float(r.cc0_fraction))
        .push("cc1_fraction", JsonValue::Float(r.cc1_fraction))
        .push("cc6_fraction", JsonValue::Float(r.cc6_fraction))
        .push("all_idle_fraction", JsonValue::Float(r.all_idle_fraction))
        .push("pc1a_residency", JsonValue::Float(r.pc1a_residency))
        .push("pc6_residency", JsonValue::Float(r.pc6_residency))
        .push("pc1a_transitions", JsonValue::UInt(r.pc1a_transitions))
        .push("pc1a_aborted", JsonValue::UInt(r.pc1a_aborted))
        .push("pc6_transitions", JsonValue::UInt(r.pc6_transitions))
        .push("idle_periods", JsonValue::UInt(r.idle_periods))
        .push(
            "idle_periods_20_200us",
            JsonValue::Float(r.idle_periods_20_200us),
        )
        .push("events_dispatched", JsonValue::UInt(r.events_dispatched));
    if let Some(ts) = &r.timeseries {
        o.push("timeseries", timeseries_json(ts));
    }
    if let Some(profile) = &r.profile {
        o.push("profile", profile_report_json(profile));
    }
    o
}

/// Rebuilds a [`RunResult`] from the [`run_result_json`] form plus the
/// state that form does not carry: the run's latency sketch (checkpoints
/// store it beside the run, under a `sketch` key) and its end-of-timeline
/// stamp. The summary facade is re-derived *from the sketch* — never
/// parsed — so a reconstructed result renders byte-identically to the
/// original through every exporter; the JSON's own `latency` block is
/// checked against the re-derivation and a mismatch is rejected
/// (a corrupted or hand-edited checkpoint, not a format variant).
///
/// # Errors
///
/// Returns a description of the first missing, malformed or inconsistent
/// field. Results carrying a `profile` are rejected — profiles are not
/// round-trippable and sharded sweeps refuse `--profile` up front.
pub fn run_result_from_json(
    v: &JsonValue,
    sketch: QuantileSketch,
    finished_at: SimTime,
) -> Result<RunResult, String> {
    fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("run: missing or non-integer `{key}`"))
    }
    fn f64_field(v: &JsonValue, key: &str) -> Result<f64, String> {
        v.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| format!("run: missing or non-number `{key}`"))
    }
    let config_name = match v.get("config").and_then(JsonValue::as_str) {
        Some("Cshallow") => "Cshallow",
        Some("Cdeep") => "Cdeep",
        Some("CPC1A") => "CPC1A",
        Some(other) => return Err(format!("run: unknown platform config `{other}`")),
        None => return Err("run: missing or non-string `config`".to_owned()),
    };
    let workload = match v.get("workload").and_then(JsonValue::as_str) {
        Some("memcached") => "memcached",
        Some("kafka") => "kafka",
        Some("mysql") => "mysql",
        Some(other) => return Err(format!("run: unknown workload `{other}`")),
        None => return Err("run: missing or non-string `workload`".to_owned()),
    };
    if v.get("profile").is_some() {
        return Err("run: carries a `profile`, which does not round-trip".to_owned());
    }
    let latency = LatencyRecorder::from_sketch(sketch.clone()).summary();
    // Compare rendered text, not `JsonValue` structure: the parser reads
    // integers that fit as `Int` while the exporter builds `UInt`.
    let printed = v.get("latency").map_or_else(
        || JsonValue::Null.to_compact_string(),
        JsonValue::to_compact_string,
    );
    if latency_json(&latency).to_compact_string() != printed {
        return Err("run: `latency` summary does not match its sketch".to_owned());
    }
    let timeseries = v
        .get("timeseries")
        .map(timeseries_from_json)
        .transpose()
        .map_err(|e| format!("run: {e}"))?;
    Ok(RunResult {
        config_name,
        workload,
        offered_rate: f64_field(v, "offered_rate_rps")?,
        duration: SimDuration::from_nanos(u64_field(v, "duration_ns")?),
        completed_requests: u64_field(v, "completed_requests")?,
        latency,
        latency_sketch: sketch,
        avg_soc_power: Watts(f64_field(v, "avg_soc_power_w")?),
        avg_dram_power: Watts(f64_field(v, "avg_dram_power_w")?),
        cpu_utilization: f64_field(v, "cpu_utilization")?,
        cc0_fraction: f64_field(v, "cc0_fraction")?,
        cc1_fraction: f64_field(v, "cc1_fraction")?,
        cc6_fraction: f64_field(v, "cc6_fraction")?,
        all_idle_fraction: f64_field(v, "all_idle_fraction")?,
        pc1a_residency: f64_field(v, "pc1a_residency")?,
        pc6_residency: f64_field(v, "pc6_residency")?,
        pc1a_transitions: u64_field(v, "pc1a_transitions")?,
        pc1a_aborted: u64_field(v, "pc1a_aborted")?,
        pc6_transitions: u64_field(v, "pc6_transitions")?,
        idle_periods: u64_field(v, "idle_periods")?,
        idle_periods_20_200us: f64_field(v, "idle_periods_20_200us")?,
        timeseries,
        trace: None,
        profile: None,
        events_dispatched: u64_field(v, "events_dispatched")?,
        finished_at,
    })
}

/// A fleet result: the per-member runs in member order *first*, then the
/// aggregates. Runs-first is what lets `--stream-out` write each run the
/// moment it finishes — the aggregate block only becomes computable once
/// the last member completes, so it closes the object (see
/// [`crate::stream::JsonRunsWriter`]).
#[must_use]
pub fn fleet_result_json(f: &FleetResult) -> JsonValue {
    let mut o = JsonValue::object();
    o.push(
        "runs",
        JsonValue::Array(f.runs.iter().map(run_result_json).collect()),
    );
    let JsonValue::Object(aggregates) = fleet_aggregates_json(f) else {
        unreachable!("fleet_aggregates_json builds an object");
    };
    let JsonValue::Object(entries) = &mut o else {
        unreachable!("o is an object");
    };
    entries.extend(aggregates);
    o
}

/// The aggregate block of [`fleet_result_json`] — everything after the
/// `runs` array, as its own object. Split out so the streaming writer can
/// emit bytes identical to the buffered exporter.
#[must_use]
pub fn fleet_aggregates_json(f: &FleetResult) -> JsonValue {
    let mut o = JsonValue::object();
    o.push("servers", JsonValue::UInt(f.servers() as u64))
        .push(
            "total_completed_requests",
            JsonValue::UInt(f.total_completed_requests()),
        )
        .push(
            "aggregate_throughput_rps",
            JsonValue::Float(f.aggregate_throughput()),
        )
        .push("total_power_w", JsonValue::Float(f.total_power_w()))
        .push("mean_soc_power_w", JsonValue::Float(f.mean_soc_power_w()))
        .push(
            "mean_pc1a_residency",
            JsonValue::Float(f.mean_pc1a_residency()),
        )
        .push(
            "mean_latency_ns",
            JsonValue::UInt(f.mean_latency().as_nanos()),
        )
        .push("combined_latency", latency_json(&f.combined_latency()))
        .push("worst_p99_ns", JsonValue::UInt(f.worst_p99().as_nanos()))
        .push("worst_p999_ns", JsonValue::UInt(f.worst_p999().as_nanos()))
        .push("events_dispatched", JsonValue::UInt(f.events_dispatched()));
    o
}

/// A quantile sketch as JSON: its parameters, the exact scalars
/// (count/sum/min/max) and the non-zero log-buckets as `[index, count]`
/// pairs. The `sum` is a `u128` and exports as a decimal *string* — JSON
/// implementations only guarantee `u64` integers. Round-trips exactly
/// through [`sketch_from_json`]: the sweep-shard checkpoint format relies
/// on `parse(sketch_json(s)) == s`, bit for bit.
#[must_use]
pub fn sketch_json(s: &QuantileSketch) -> JsonValue {
    let parts = s.parts();
    let mut o = JsonValue::object();
    o.push("relative_error", JsonValue::Float(parts.relative_error))
        .push("max_buckets", JsonValue::UInt(parts.max_buckets as u64))
        .push(
            "floor_index",
            parts
                .floor_index
                .map_or(JsonValue::Null, |i| JsonValue::Int(i64::from(i))),
        )
        .push("zero_count", JsonValue::UInt(parts.zero_count))
        .push("sum", JsonValue::Str(parts.sum.to_string()))
        .push("min_ns", JsonValue::UInt(parts.min))
        .push("max_ns", JsonValue::UInt(parts.max))
        .push(
            "buckets",
            JsonValue::Array(
                parts
                    .buckets
                    .iter()
                    .map(|&(index, count)| {
                        JsonValue::Array(vec![
                            JsonValue::Int(i64::from(index)),
                            JsonValue::UInt(count),
                        ])
                    })
                    .collect(),
            ),
        );
    o
}

/// Rebuilds a [`QuantileSketch`] from the [`sketch_json`] form.
///
/// # Errors
///
/// Returns a description of the first malformed or inconsistent field —
/// missing keys, out-of-range parameters, unsorted buckets.
pub fn sketch_from_json(v: &JsonValue) -> Result<QuantileSketch, String> {
    fn u64_field(v: &JsonValue, key: &str) -> Result<u64, String> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("sketch: missing or non-integer `{key}`"))
    }
    let relative_error = v
        .get("relative_error")
        .and_then(JsonValue::as_f64)
        .ok_or("sketch: missing or non-number `relative_error`")?;
    let floor_index = match v.get("floor_index") {
        None => return Err("sketch: missing `floor_index`".to_owned()),
        Some(JsonValue::Null) => None,
        Some(value) => Some(
            value
                .as_f64()
                .and_then(|f| {
                    let i = f as i32;
                    (f64::from(i) == f).then_some(i)
                })
                .ok_or("sketch: `floor_index` must be null or a 32-bit integer")?,
        ),
    };
    let sum = v
        .get("sum")
        .and_then(JsonValue::as_str)
        .ok_or("sketch: missing or non-string `sum`")?
        .parse::<u128>()
        .map_err(|e| format!("sketch: invalid `sum`: {e}"))?;
    let buckets =
        v.get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or("sketch: missing or non-array `buckets`")?
            .iter()
            .map(|pair| {
                let pair = pair
                    .as_array()
                    .filter(|p| p.len() == 2)
                    .ok_or("sketch: every bucket must be an `[index, count]` pair".to_owned())?;
                let index = match pair[0] {
                    JsonValue::Int(i) => i32::try_from(i)
                        .map_err(|_| "sketch: bucket index out of range".to_owned())?,
                    _ => return Err("sketch: bucket index must be an integer".to_owned()),
                };
                let count = pair[1]
                    .as_u64()
                    .ok_or("sketch: bucket count must be a non-negative integer")?;
                Ok((index, count))
            })
            .collect::<Result<Vec<(i32, u64)>, String>>()?;
    let parts = SketchParts {
        relative_error,
        max_buckets: usize::try_from(u64_field(v, "max_buckets")?)
            .map_err(|_| "sketch: `max_buckets` out of range".to_owned())?,
        floor_index,
        zero_count: u64_field(v, "zero_count")?,
        sum,
        min: u64_field(v, "min_ns")?,
        max: u64_field(v, "max_ns")?,
        buckets,
    };
    QuantileSketch::from_parts(&parts).map_err(|e| format!("sketch: {e}"))
}

/// Network fabric stats as an object: the topology and link parameters the
/// fabric ran with, then the traffic census (message count, total / mean /
/// maximum wire delay) and the per-link breakdown (messages, serialization
/// occupancy and store-and-forward queueing per link, indexed by link id —
/// see `apc_network::Topology::link_label` for the id → name mapping).
/// `bandwidth_bytes_per_sec` is `null` for infinite-bandwidth links; links
/// that never carried a message are omitted from `per_link`.
#[must_use]
pub fn network_stats_json(n: &NetworkStats) -> JsonValue {
    let config = &n.config;
    let mut o = JsonValue::object();
    o.push(
        "topology",
        JsonValue::Str(config.topology.name().to_owned()),
    )
    .push(
        "link_latency_ns",
        JsonValue::UInt(config.link_latency.as_nanos()),
    )
    .push(
        "bandwidth_bytes_per_sec",
        config
            .bandwidth_bytes_per_sec
            .map_or(JsonValue::Null, JsonValue::UInt),
    )
    .push("rpc_bytes", JsonValue::UInt(config.rpc_bytes))
    .push("messages", JsonValue::UInt(n.messages))
    .push(
        "total_wire_delay_ns",
        JsonValue::UInt(n.total_wire_delay.as_nanos()),
    )
    .push(
        "mean_wire_delay_ns",
        JsonValue::UInt(n.mean_wire_delay().as_nanos()),
    )
    .push(
        "max_wire_delay_ns",
        JsonValue::UInt(n.max_wire_delay.as_nanos()),
    );
    let per_link: Vec<JsonValue> = n
        .per_link
        .iter()
        .enumerate()
        .filter(|(_, link)| link.messages != 0)
        .map(|(id, link)| {
            let mut l = JsonValue::object();
            l.push("link", JsonValue::UInt(id as u64))
                .push("messages", JsonValue::UInt(link.messages))
                .push("busy_ns", JsonValue::UInt(link.busy_time.as_nanos()))
                .push(
                    "total_queue_delay_ns",
                    JsonValue::UInt(link.total_queue_delay.as_nanos()),
                )
                .push(
                    "max_queue_delay_ns",
                    JsonValue::UInt(link.max_queue_delay.as_nanos()),
                );
            l
        })
        .collect();
    o.push("per_link", JsonValue::Array(per_link));
    o
}

/// A cluster result: policy, routing census, then the per-node fleet.
/// The `network` key appears only when the run crossed a fabric.
#[must_use]
pub fn cluster_result_json(c: &ClusterResult) -> JsonValue {
    let mut o = JsonValue::object();
    o.push("policy", JsonValue::Str(c.policy.to_owned()))
        .push("duration_ns", JsonValue::UInt(c.duration.as_nanos()))
        .push(
            "routed",
            JsonValue::Array(c.routed.iter().map(|&n| JsonValue::UInt(n)).collect()),
        )
        .push("total_routed", JsonValue::UInt(c.total_routed()))
        .push("routing_imbalance", JsonValue::Float(c.routing_imbalance()))
        .push(
            "idle_periods_20_200us",
            JsonValue::Float(c.idle_periods_20_200us()),
        )
        .push("events_dispatched", JsonValue::UInt(c.events_dispatched));
    if let Some(net) = &c.network {
        o.push("network", network_stats_json(net));
    }
    if let Some(profile) = &c.profile {
        o.push("profile", profile_report_json(profile));
    }
    o.push("nodes", fleet_result_json(&c.nodes));
    o
}

/// A chain result: policy and graph shape, the chain-latency percentiles
/// (end-to-end root→last-join plus the leaf-straggler breakdown), the
/// routing census and the per-node fleet. The `network` key appears only
/// when the run crossed a fabric.
#[must_use]
pub fn chain_result_json(c: &ChainResult) -> JsonValue {
    let mut o = JsonValue::object();
    o.push("policy", JsonValue::Str(c.policy.to_owned()))
        .push("graph", JsonValue::Str(c.graph.clone()))
        .push("duration_ns", JsonValue::UInt(c.duration.as_nanos()))
        .push("chains_started", JsonValue::UInt(c.chains_started))
        .push("chains_completed", JsonValue::UInt(c.chains_completed))
        .push("chains_per_sec", JsonValue::Float(c.chains_per_sec()))
        .push("chain_latency", latency_json(&c.chain_latency))
        .push("straggler", latency_json(&c.straggler))
        .push(
            "routed",
            JsonValue::Array(c.routed.iter().map(|&n| JsonValue::UInt(n)).collect()),
        )
        .push("total_routed", JsonValue::UInt(c.total_routed()))
        .push("routing_imbalance", JsonValue::Float(c.routing_imbalance()))
        .push("events_dispatched", JsonValue::UInt(c.events_dispatched));
    if let Some(net) = &c.network {
        o.push("network", network_stats_json(net));
    }
    if let Some(profile) = &c.profile {
        o.push("profile", profile_report_json(profile));
    }
    o.push("nodes", fleet_result_json(&c.nodes));
    o
}

/// A time series as `{interval_ns, samples: [...]}`; samples carry the
/// timestamp, power, queue depth and residency deltas.
#[must_use]
pub fn timeseries_json(ts: &TimeSeries) -> JsonValue {
    let samples = ts
        .samples()
        .iter()
        .map(|s| {
            let mut o = JsonValue::object();
            o.push("at_ns", JsonValue::UInt(s.at.as_nanos()))
                .push("soc_power_w", JsonValue::Float(s.soc_power_w))
                .push("queue_depth", JsonValue::UInt(s.queue_depth as u64))
                .push("busy_cores", JsonValue::UInt(s.busy_cores as u64))
                .push(
                    "package_state",
                    JsonValue::Str(format!("{:?}", s.package_state)),
                )
                .push("pc0_delta_ns", JsonValue::UInt(s.pc0_delta.as_nanos()))
                .push(
                    "pc0_idle_delta_ns",
                    JsonValue::UInt(s.pc0_idle_delta.as_nanos()),
                )
                .push("pc1a_delta_ns", JsonValue::UInt(s.pc1a_delta.as_nanos()))
                .push("pc6_delta_ns", JsonValue::UInt(s.pc6_delta.as_nanos()));
            o
        })
        .collect();
    let mut o = JsonValue::object();
    o.push("interval_ns", JsonValue::UInt(ts.interval().as_nanos()))
        .push("samples", JsonValue::Array(samples));
    o
}

/// Rebuilds a [`TimeSeries`] from the [`timeseries_json`] form — the other
/// half of the sweep-shard checkpoint round-trip (`parse(timeseries_json(
/// ts))` reproduces `ts` exactly: every field is an integer, a
/// shortest-round-trip float or a C-state name).
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn timeseries_from_json(v: &JsonValue) -> Result<TimeSeries, String> {
    fn duration_field(v: &JsonValue, key: &str) -> Result<SimDuration, String> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .map(SimDuration::from_nanos)
            .ok_or_else(|| format!("timeseries: missing or non-integer `{key}`"))
    }
    let interval = duration_field(v, "interval_ns")?;
    if interval.is_zero() {
        return Err("timeseries: `interval_ns` must be non-zero".to_owned());
    }
    let mut ts = TimeSeries::new(interval);
    let samples = v
        .get("samples")
        .and_then(JsonValue::as_array)
        .ok_or("timeseries: missing or non-array `samples`")?;
    let mut previous_at = None;
    for s in samples {
        let at = SimTime::ZERO
            + duration_field(s, "at_ns").map_err(|e| e.replace("timeseries:", "sample:"))?;
        // `TimeSeries::push` only debug-asserts monotonicity; parsing
        // hostile input must not rely on debug assertions.
        if previous_at.is_some_and(|prev| at <= prev) {
            return Err("timeseries: sample timestamps must be strictly increasing".to_owned());
        }
        previous_at = Some(at);
        let package_state = match s.get("package_state").and_then(JsonValue::as_str) {
            Some("PC0") => PackageCState::PC0,
            Some("PC0Idle") => PackageCState::PC0Idle,
            Some("PC2") => PackageCState::PC2,
            Some("PC6") => PackageCState::PC6,
            Some("PC1A") => PackageCState::PC1A,
            Some(other) => return Err(format!("sample: unknown package state `{other}`")),
            None => return Err("sample: missing or non-string `package_state`".to_owned()),
        };
        ts.push(TimeSeriesSample {
            at,
            soc_power_w: s
                .get("soc_power_w")
                .and_then(JsonValue::as_f64)
                .ok_or("sample: missing or non-number `soc_power_w`")?,
            queue_depth: s
                .get("queue_depth")
                .and_then(JsonValue::as_u64)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or("sample: missing or non-integer `queue_depth`")?,
            busy_cores: s
                .get("busy_cores")
                .and_then(JsonValue::as_u64)
                .and_then(|n| usize::try_from(n).ok())
                .ok_or("sample: missing or non-integer `busy_cores`")?,
            package_state,
            pc0_delta: duration_field(s, "pc0_delta_ns")
                .map_err(|e| e.replace("timeseries:", "sample:"))?,
            pc0_idle_delta: duration_field(s, "pc0_idle_delta_ns")
                .map_err(|e| e.replace("timeseries:", "sample:"))?,
            pc1a_delta: duration_field(s, "pc1a_delta_ns")
                .map_err(|e| e.replace("timeseries:", "sample:"))?,
            pc6_delta: duration_field(s, "pc6_delta_ns")
                .map_err(|e| e.replace("timeseries:", "sample:"))?,
        });
    }
    Ok(ts)
}

/// An engine self-profile as an object: the aggregate event-core counters,
/// the per-event-kind breakdown, the per-worker wall-clock profiles
/// (parallel runs only) and the hub replay time.
#[must_use]
pub fn profile_report_json(p: &ProfileReport) -> JsonValue {
    let mut engine = JsonValue::object();
    engine
        .push("scheduled", JsonValue::UInt(p.engine.scheduled))
        .push("dispatched", JsonValue::UInt(p.engine.dispatched))
        .push("cancelled", JsonValue::UInt(p.engine.cancelled))
        .push("level0_batches", JsonValue::UInt(p.engine.level0_batches))
        .push("batched_events", JsonValue::UInt(p.engine.batched_events))
        .push("max_batch", JsonValue::UInt(p.engine.max_batch))
        .push("overflow_hits", JsonValue::UInt(p.engine.overflow_hits));
    let events = p
        .events
        .iter()
        .map(|k| {
            let mut o = JsonValue::object();
            o.push("kind", JsonValue::Str(k.kind.to_owned()))
                .push("scheduled", JsonValue::UInt(k.scheduled))
                .push("dispatched", JsonValue::UInt(k.dispatched))
                .push("cancelled", JsonValue::UInt(k.cancelled));
            o
        })
        .collect();
    let workers = p
        .workers
        .iter()
        .map(|w| {
            let mut o = JsonValue::object();
            o.push("worker", JsonValue::UInt(u64::from(w.worker)))
                .push("epochs", JsonValue::UInt(w.epochs))
                .push("barrier_wait_ns", JsonValue::UInt(w.barrier_wait_ns))
                .push("cross_wires", JsonValue::UInt(w.cross_wires));
            o
        })
        .collect();
    let mut o = JsonValue::object();
    o.push("engine", engine)
        .push("events", JsonValue::Array(events))
        .push("workers", JsonValue::Array(workers))
        .push("hub_replay_ns", JsonValue::UInt(p.hub_replay_ns));
    o
}

/// A span log as Chrome trace-event JSON (the format `chrome://tracing` and
/// [Perfetto](https://ui.perfetto.dev) load directly).
///
/// Every span becomes one complete (`"ph": "X"`) event: `ts`/`dur` are the
/// span's simulated start/length in *microseconds* (the format's unit),
/// `pid` is the node (chain coordinators use the node count as a
/// pseudo-node), `tid` the lane within the node, `cat` the span kind and
/// `args.trace` the trace id. Wake spans are named after the C-state the
/// core left; every other span is named after its kind. The microsecond
/// floats are exact (`ns / 1000.0` in IEEE arithmetic) and formatted
/// shortest-round-trip, so fixed-seed traces export byte-identically.
#[must_use]
pub fn chrome_trace_json(log: &TraceLog) -> JsonValue {
    let events = log
        .spans()
        .iter()
        .map(|s| {
            let name = if s.label.is_empty() {
                s.kind.name()
            } else {
                s.label
            };
            let mut args = JsonValue::object();
            args.push("trace", JsonValue::UInt(s.trace));
            let mut e = JsonValue::object();
            e.push("name", JsonValue::Str(name.to_owned()))
                .push("cat", JsonValue::Str(s.kind.name().to_owned()))
                .push("ph", JsonValue::Str("X".to_owned()))
                .push("ts", JsonValue::Float(s.start.as_nanos() as f64 / 1000.0))
                .push(
                    "dur",
                    JsonValue::Float(s.duration().as_nanos() as f64 / 1000.0),
                )
                .push("pid", JsonValue::UInt(u64::from(s.node)))
                .push("tid", JsonValue::UInt(u64::from(s.lane)))
                .push("args", args);
            e
        })
        .collect();
    let mut o = JsonValue::object();
    o.push("traceEvents", JsonValue::Array(events))
        .push("displayTimeUnit", JsonValue::Str("ns".to_owned()))
        .push("dropped_spans", JsonValue::UInt(log.dropped()));
    o
}

// ---- result -> CSV -----------------------------------------------------

/// The CSV column set shared by every run-level export, in order.
pub const RUN_CSV_HEADER: &str = "config,workload,offered_rate_rps,duration_ns,\
completed_requests,throughput_rps,mean_ns,p50_ns,p95_ns,p99_ns,p999_ns,max_ns,\
avg_soc_power_w,avg_dram_power_w,cpu_utilization,cc0_fraction,cc1_fraction,\
cc6_fraction,all_idle_fraction,pc1a_residency,pc6_residency,pc1a_transitions,\
pc1a_aborted,pc6_transitions,idle_periods,idle_periods_20_200us";

fn push_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    }
    // Non-finite values export as an empty cell.
}

fn run_csv_row(out: &mut String, r: &RunResult) {
    let _ = write!(
        out,
        "{},{},",
        csv_escape(r.config_name),
        csv_escape(r.workload)
    );
    push_f64(out, r.offered_rate);
    let _ = write!(out, ",{},{},", r.duration.as_nanos(), r.completed_requests);
    push_f64(out, r.throughput());
    let l = &r.latency;
    let _ = write!(
        out,
        ",{},{},{},{},{},{},",
        l.mean.as_nanos(),
        l.p50.as_nanos(),
        l.p95.as_nanos(),
        l.p99.as_nanos(),
        l.p999.as_nanos(),
        l.max.as_nanos()
    );
    for (i, v) in [
        r.avg_soc_power.as_f64(),
        r.avg_dram_power.as_f64(),
        r.cpu_utilization,
        r.cc0_fraction,
        r.cc1_fraction,
        r.cc6_fraction,
        r.all_idle_fraction,
        r.pc1a_residency,
        r.pc6_residency,
    ]
    .into_iter()
    .enumerate()
    {
        if i > 0 {
            out.push(',');
        }
        push_f64(out, v);
    }
    let _ = write!(
        out,
        ",{},{},{},{},",
        r.pc1a_transitions, r.pc1a_aborted, r.pc6_transitions, r.idle_periods
    );
    push_f64(out, r.idle_periods_20_200us);
    out.push('\n');
}

/// Quotes a CSV cell when it contains separators or quotes. The built-in
/// names never need it, but custom workload names flow through here too.
#[must_use]
pub fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_owned()
    }
}

/// One labelled run row of [`run_results_csv`], newline-terminated — the
/// unit the streaming CSV writer emits per finished run.
#[must_use]
pub fn run_csv_line(label: &str, r: &RunResult) -> String {
    let mut out = format!("{},", csv_escape(label));
    run_csv_row(&mut out, r);
    out
}

/// Labelled run results as CSV: a `label` column (the caller's row names —
/// member indices, sweep points) followed by [`RUN_CSV_HEADER`].
#[must_use]
pub fn run_results_csv<'a>(rows: impl IntoIterator<Item = (&'a str, &'a RunResult)>) -> String {
    let mut out = format!("label,{RUN_CSV_HEADER}\n");
    for (label, r) in rows {
        out.push_str(&run_csv_line(label, r));
    }
    out
}

/// A fleet result as CSV: one row per member, labelled `server <i>`.
#[must_use]
pub fn fleet_csv(f: &FleetResult) -> String {
    let labels: Vec<String> = (0..f.runs.len()).map(|i| format!("server {i}")).collect();
    run_results_csv(
        labels
            .iter()
            .map(String::as_str)
            .zip(f.runs.iter())
            .collect::<Vec<_>>(),
    )
}

/// The CSV columns carrying the network-fabric census. Emitted only when
/// at least one exported result crossed a fabric, so fabric-less exports
/// keep their historical shape byte for byte.
pub const NETWORK_CSV_COLUMNS: &str =
    "net_topology,net_link_latency_ns,net_messages,net_mean_wire_delay_ns,net_max_wire_delay_ns";

/// Writes the [`NETWORK_CSV_COLUMNS`] cells (no trailing separator); a run
/// without a fabric exports empty cells.
fn push_network_cells(out: &mut String, n: Option<&NetworkStats>) {
    match n {
        Some(n) => {
            let _ = write!(
                out,
                "{},{},{},{},{}",
                csv_escape(n.config.topology.name()),
                n.config.link_latency.as_nanos(),
                n.messages,
                n.mean_wire_delay().as_nanos(),
                n.max_wire_delay.as_nanos()
            );
        }
        None => out.push_str(",,,,"),
    }
}

/// The header line of [`cluster_results_csv`], newline-terminated.
/// `with_network` inserts the [`NETWORK_CSV_COLUMNS`]; pass whether any
/// exported result crossed a fabric (for a streamed spec run that is known
/// up front: every repeat shares the spec's `[network]` table).
#[must_use]
pub fn cluster_csv_header(with_network: bool) -> String {
    if with_network {
        format!("repeat,node,policy,routed,{NETWORK_CSV_COLUMNS},{RUN_CSV_HEADER}\n")
    } else {
        format!("repeat,node,policy,routed,{RUN_CSV_HEADER}\n")
    }
}

/// The rows of one cluster run of [`cluster_results_csv`] (one per node),
/// newline-terminated — the unit the streaming CSV writer emits per
/// finished repeat. `with_network` must match the header's.
#[must_use]
pub fn cluster_csv_rows(repeat: usize, c: &ClusterResult, with_network: bool) -> String {
    let mut out = String::new();
    for (i, r) in c.nodes.runs.iter().enumerate() {
        let _ = write!(
            out,
            "{repeat},{i},{},{},",
            csv_escape(c.policy),
            c.routed.get(i).copied().unwrap_or(0)
        );
        if with_network {
            push_network_cells(&mut out, c.network.as_ref());
            out.push(',');
        }
        run_csv_row(&mut out, r);
    }
    out
}

/// Several cluster runs (e.g. repeats of one spec) as a single CSV with a
/// leading `repeat` column: `repeat,node,policy,routed,` then the run
/// columns. When any run crossed a network fabric, the
/// [`NETWORK_CSV_COLUMNS`] are inserted between `routed` and the run
/// columns.
#[must_use]
pub fn cluster_results_csv(results: &[ClusterResult]) -> String {
    let with_network = results.iter().any(|c| c.network.is_some());
    let mut out = cluster_csv_header(with_network);
    for (repeat, c) in results.iter().enumerate() {
        out.push_str(&cluster_csv_rows(repeat, c, with_network));
    }
    out
}

/// The CSV column set of chain-level exports, in order: identity, chain
/// census, end-to-end latency percentiles (p50/p99/p999 and mean/max), the
/// leaf-straggler breakdown, routing spread and fleet power/residency
/// aggregates. One row summarises one chain run — the percentile columns
/// are the chain-level tail the per-node `RUN_CSV_HEADER` cannot express.
pub const CHAIN_CSV_HEADER: &str = "repeat,policy,graph,duration_ns,\
chains_started,chains_completed,chains_per_sec,e2e_mean_ns,e2e_p50_ns,\
e2e_p99_ns,e2e_p999_ns,e2e_max_ns,straggler_p50_ns,straggler_p99_ns,\
straggler_p999_ns,total_routed,routing_imbalance,fleet_power_w,\
mean_pc1a_residency,worst_rpc_p99_ns";

/// The header line of [`chain_results_csv`], newline-terminated.
/// `with_network` appends the [`NETWORK_CSV_COLUMNS`] (see
/// [`cluster_csv_header`] for the streaming contract).
#[must_use]
pub fn chain_csv_header(with_network: bool) -> String {
    if with_network {
        format!("{CHAIN_CSV_HEADER},{NETWORK_CSV_COLUMNS}\n")
    } else {
        format!("{CHAIN_CSV_HEADER}\n")
    }
}

/// The single row one chain run contributes to [`chain_results_csv`],
/// newline-terminated. `with_network` must match the header's.
#[must_use]
pub fn chain_csv_row(repeat: usize, c: &ChainResult, with_network: bool) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{repeat},{},{},{},{},{},",
        csv_escape(c.policy),
        csv_escape(&c.graph),
        c.duration.as_nanos(),
        c.chains_started,
        c.chains_completed,
    );
    push_f64(&mut out, c.chains_per_sec());
    let _ = write!(
        out,
        ",{},{},{},{},{},{},{},{},{},",
        c.chain_latency.mean.as_nanos(),
        c.chain_latency.p50.as_nanos(),
        c.chain_latency.p99.as_nanos(),
        c.chain_latency.p999.as_nanos(),
        c.chain_latency.max.as_nanos(),
        c.straggler.p50.as_nanos(),
        c.straggler.p99.as_nanos(),
        c.straggler.p999.as_nanos(),
        c.total_routed(),
    );
    push_f64(&mut out, c.routing_imbalance());
    out.push(',');
    push_f64(&mut out, c.nodes.total_power_w());
    out.push(',');
    push_f64(&mut out, c.nodes.mean_pc1a_residency());
    let _ = write!(out, ",{}", c.nodes.worst_p99().as_nanos());
    if with_network {
        out.push(',');
        push_network_cells(&mut out, c.network.as_ref());
    }
    out.push('\n');
    out
}

/// Several chain runs (e.g. repeats of one spec, or one run per platform)
/// as a single CSV, one row per run (see [`CHAIN_CSV_HEADER`]). When any
/// run crossed a network fabric, the [`NETWORK_CSV_COLUMNS`] are appended
/// after the chain columns.
#[must_use]
pub fn chain_results_csv(results: &[ChainResult]) -> String {
    let with_network = results.iter().any(|c| c.network.is_some());
    let mut out = chain_csv_header(with_network);
    for (repeat, c) in results.iter().enumerate() {
        out.push_str(&chain_csv_row(repeat, c, with_network));
    }
    out
}

/// A time series as CSV (`at_ns,soc_power_w,queue_depth,busy_cores,`
/// `package_state,pc0_delta_ns,pc0_idle_delta_ns,pc1a_delta_ns,pc6_delta_ns`),
/// one row per sample — the format the paper's time-domain figures plot.
/// `node` labels the rows so multi-node series can be concatenated.
#[must_use]
pub fn timeseries_csv(node: &str, ts: &TimeSeries) -> String {
    let mut out = String::from(
        "node,at_ns,soc_power_w,queue_depth,busy_cores,package_state,\
pc0_delta_ns,pc0_idle_delta_ns,pc1a_delta_ns,pc6_delta_ns\n",
    );
    for s in ts.samples() {
        let _ = write!(out, "{},{},", csv_escape(node), s.at.as_nanos());
        push_f64(&mut out, s.soc_power_w);
        let _ = writeln!(
            out,
            ",{},{},{:?},{},{},{},{}",
            s.queue_depth,
            s.busy_cores,
            s.package_state,
            s.pc0_delta.as_nanos(),
            s.pc0_idle_delta.as_nanos(),
            s.pc1a_delta.as_nanos(),
            s.pc6_delta.as_nanos()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_writer_is_deterministic_and_ordered() {
        let mut o = JsonValue::object();
        o.push("b", JsonValue::Int(1))
            .push("a", JsonValue::Float(2.5))
            .push("s", JsonValue::Str("x\"y".to_owned()))
            .push(
                "l",
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)]),
            );
        assert_eq!(
            o.to_compact_string(),
            r#"{"b":1,"a":2.5,"s":"x\"y","l":[null,true]}"#
        );
        assert_eq!(o.to_compact_string(), o.clone().to_compact_string());
    }

    #[test]
    fn float_formatting_is_fixed() {
        let mut s = String::new();
        write_f64(&mut s, 50.18249155799904);
        assert_eq!(s, "50.18249155799904");
        s.clear();
        write_f64(&mut s, 4000.0);
        assert_eq!(s, "4000.0", "integral floats keep a fractional part");
        s.clear();
        write_f64(&mut s, f64::NAN);
        assert_eq!(s, "null");
    }

    #[test]
    fn parser_round_trips_writer_output() {
        let mut o = JsonValue::object();
        o.push("n", JsonValue::Int(-3))
            .push("u", JsonValue::UInt(u64::MAX))
            .push("f", JsonValue::Float(0.125))
            .push("s", JsonValue::Str("tab\t\"quote\"".to_owned()))
            .push(
                "arr",
                JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Null]),
            )
            .push("empty", JsonValue::object());
        for text in [o.to_compact_string(), o.to_pretty_string()] {
            let parsed = JsonValue::parse(&text).expect("round-trip parse");
            assert_eq!(parsed.get("n"), Some(&JsonValue::Int(-3)));
            assert_eq!(parsed.get("u"), Some(&JsonValue::UInt(u64::MAX)));
            assert_eq!(parsed.get("f"), Some(&JsonValue::Float(0.125)));
            assert_eq!(
                parsed.get("s").and_then(JsonValue::as_str),
                Some("tab\t\"quote\"")
            );
            assert_eq!(
                parsed
                    .get("arr")
                    .and_then(JsonValue::as_array)
                    .map(<[_]>::len),
                Some(2)
            );
        }
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "1 2",
            "{\"a\" 1}",
            "nul",
            // Strict number grammar: no bare dots, leading zeros, dangling
            // signs/exponents (all rejected by standard JSON parsers).
            "1.",
            ".5",
            "01",
            "-",
            "1e",
            "1e+",
            "-.5",
            // \u escapes are exactly four hex digits, no signs.
            "\"\\u+041\"",
            "\"\\u12\"",
            "\"\\uzzzz\"",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "{bad:?} should not parse");
        }
        for good in ["0", "-0.5", "1e9", "10", "1.25E-3", "\"\\u0041\""] {
            assert!(JsonValue::parse(good).is_ok(), "{good:?} should parse");
        }
        // Nesting beyond the depth bound is a parse error, not a stack
        // overflow abort.
        let deep = "[".repeat(100_000);
        let err = JsonValue::parse(&deep).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
        let ok_depth = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(JsonValue::parse(&ok_depth).is_ok());
        let err = JsonValue::parse("{\"a\": \x01}").unwrap_err();
        assert!(err.offset > 0);
        assert!(err.to_string().contains("byte"));
    }

    #[test]
    fn csv_escaping_quotes_separators() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("q\"q"), "\"q\"\"q\"");
    }
}
