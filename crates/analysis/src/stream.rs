//! Incremental (streaming) writers for the JSON/CSV export formats.
//!
//! The buffered exporters in [`crate::export`] hold every result in memory
//! and render at the end; these writers emit each result the moment it
//! finishes and **produce byte-identical artefacts** — a file written
//! through a streaming writer compares equal, byte for byte, to the same
//! results rendered buffered. That identity is what lets `apc-cli
//! --stream-out` reuse the golden-pinned formats while keeping memory
//! bounded by one result instead of the whole run set (the point of the
//! sketch-backed result path: a sweep's memory ceiling no longer grows
//! with either the request count *or* the completed grid points).
//!
//! Three shapes cover every `apc-cli` artefact:
//!
//! * [`JsonRunsWriter`] — the fleet object (`run`/`sweep` JSON): a `runs`
//!   array streamed element by element, closed by the aggregate block
//!   (computable only once every member finished) and the optional label
//!   list;
//! * [`JsonArrayWriter`] — a top-level result array (`cluster`/`chain`
//!   JSON), one pretty-printed element per push;
//! * [`CsvWriter`] — a header line then newline-terminated row chunks
//!   (every CSV export).
//!
//! Writers flush after every push, so a consumer tailing the file sees
//! complete rows/elements as the simulation progresses. All three are
//! plain [`io::Write`] adapters: the CLI hands them buffered files, the
//! byte-identity tests hand them `Vec<u8>`.

use std::io::{self, Write};

use apc_server::fleet::FleetResult;
use apc_server::result::RunResult;

use crate::export::{fleet_aggregates_json, run_result_json, JsonValue};

/// Streams the fleet-object JSON export (see
/// [`crate::export::fleet_result_json`]): `{ "runs": [` …one element per
/// [`push`](Self::push)… `],` then the aggregates on
/// [`finish`](Self::finish).
#[derive(Debug)]
pub struct JsonRunsWriter<W: Write> {
    out: W,
    runs: usize,
}

impl<W: Write> JsonRunsWriter<W> {
    /// Opens the fleet object and its `runs` array.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn new(mut out: W) -> io::Result<Self> {
        out.write_all(b"{\n  \"runs\": [")?;
        out.flush()?;
        Ok(JsonRunsWriter { out, runs: 0 })
    }

    /// Appends one run to the `runs` array and flushes.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn push(&mut self, r: &RunResult) -> io::Result<()> {
        if self.runs > 0 {
            self.out.write_all(b",")?;
        }
        self.out.write_all(b"\n    ")?;
        self.out
            .write_all(run_result_json(r).to_pretty_fragment(2).as_bytes())?;
        self.out.flush()?;
        self.runs += 1;
        Ok(())
    }

    /// Closes the `runs` array and writes the aggregate block (and the
    /// CLI's trailing `labels` array when given), finishing the document.
    ///
    /// The pushed runs must be exactly `fleet.runs` in order — the
    /// aggregates are computed from `fleet`, and the byte-identity
    /// contract is with `fleet_result_json(fleet)`.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn finish(mut self, fleet: &FleetResult, labels: Option<&[String]>) -> io::Result<W> {
        debug_assert_eq!(self.runs, fleet.runs.len(), "streamed runs != fleet runs");
        let mut tail = fleet_aggregates_json(fleet);
        if let Some(labels) = labels {
            tail.push(
                "labels",
                JsonValue::Array(labels.iter().map(|l| JsonValue::Str(l.clone())).collect()),
            );
        }
        // The tail object pretty-prints as `{\n  "k": v,…\n}`; its interior
        // (everything between the braces, already indented for depth 1) is
        // exactly what follows the closed `runs` array in the buffered form.
        let rendered = tail.to_pretty_fragment(0);
        let interior = &rendered[1..rendered.len() - 2];
        if self.runs > 0 {
            self.out.write_all(b"\n  ]")?;
        } else {
            self.out.write_all(b"]")?;
        }
        self.out.write_all(b",")?;
        self.out.write_all(interior.as_bytes())?;
        self.out.write_all(b"\n}\n")?;
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streams a top-level pretty-printed JSON array (the `cluster`/`chain`
/// export shape), one element per [`push`](Self::push).
#[derive(Debug)]
pub struct JsonArrayWriter<W: Write> {
    out: W,
    items: usize,
}

impl<W: Write> JsonArrayWriter<W> {
    /// Wraps `out`; nothing is written until the first push (an empty
    /// array renders as `[]` only at finish).
    pub fn new(out: W) -> Self {
        JsonArrayWriter { out, items: 0 }
    }

    /// Appends one element and flushes.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn push(&mut self, element: &JsonValue) -> io::Result<()> {
        if self.items == 0 {
            self.out.write_all(b"[")?;
        } else {
            self.out.write_all(b",")?;
        }
        self.out.write_all(b"\n  ")?;
        self.out
            .write_all(element.to_pretty_fragment(1).as_bytes())?;
        self.out.flush()?;
        self.items += 1;
        Ok(())
    }

    /// Closes the array, finishing the document.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn finish(mut self) -> io::Result<W> {
        if self.items == 0 {
            self.out.write_all(b"[]\n")?;
        } else {
            self.out.write_all(b"\n]\n")?;
        }
        self.out.flush()?;
        Ok(self.out)
    }
}

/// Streams a CSV export: the header line up front, then newline-terminated
/// row chunks (one [`crate::export::run_csv_line`], one
/// [`crate::export::cluster_csv_rows`] block, …) as results finish.
#[derive(Debug)]
pub struct CsvWriter<W: Write> {
    out: W,
}

impl<W: Write> CsvWriter<W> {
    /// Writes the newline-terminated `header` and flushes.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn new(mut out: W, header: &str) -> io::Result<Self> {
        out.write_all(header.as_bytes())?;
        out.flush()?;
        Ok(CsvWriter { out })
    }

    /// Appends one newline-terminated row chunk and flushes.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn push(&mut self, rows: &str) -> io::Result<()> {
        self.out.write_all(rows.as_bytes())?;
        self.out.flush()
    }

    /// Finishes the export (CSV needs no trailer; this just flushes and
    /// returns the writer).
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn finish(mut self) -> io::Result<W> {
        self.out.flush()?;
        Ok(self.out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_server::config::ServerConfig;
    use apc_server::fleet::{Fleet, FleetMember};
    use apc_sim::SimDuration;
    use apc_workloads::spec::WorkloadSpec;

    use crate::export::{fleet_result_json, run_csv_line, run_results_csv};

    fn small_fleet() -> FleetResult {
        let mut fleet = Fleet::new();
        for i in 0..3 {
            let config = ServerConfig::c_pc1a()
                .with_duration(SimDuration::from_millis(2))
                .with_seed(Fleet::member_seed(7, i));
            fleet.push(FleetMember::new(
                config,
                WorkloadSpec::memcached_etc(),
                20_000.0,
            ));
        }
        fleet.run()
    }

    #[test]
    fn streamed_fleet_json_matches_buffered_bytes() {
        let result = small_fleet();
        let labels: Vec<String> = (0..3).map(|i| format!("server {i}")).collect();

        let mut buffered = fleet_result_json(&result);
        buffered.push(
            "labels",
            JsonValue::Array(labels.iter().map(|l| JsonValue::Str(l.clone())).collect()),
        );
        let buffered = buffered.to_pretty_string();

        let mut w = JsonRunsWriter::new(Vec::new()).unwrap();
        for r in &result.runs {
            w.push(r).unwrap();
        }
        let streamed = w.finish(&result, Some(&labels)).unwrap();
        assert_eq!(String::from_utf8(streamed).unwrap(), buffered);
    }

    #[test]
    fn streamed_fleet_json_without_labels_matches_exporter() {
        let result = small_fleet();
        let mut w = JsonRunsWriter::new(Vec::new()).unwrap();
        for r in &result.runs {
            w.push(r).unwrap();
        }
        let streamed = w.finish(&result, None).unwrap();
        assert_eq!(
            String::from_utf8(streamed).unwrap(),
            fleet_result_json(&result).to_pretty_string()
        );
    }

    #[test]
    fn empty_fleet_still_closes_the_document() {
        let empty = FleetResult { runs: Vec::new() };
        let streamed = JsonRunsWriter::new(Vec::new())
            .unwrap()
            .finish(&empty, None)
            .unwrap();
        let text = String::from_utf8(streamed).unwrap();
        assert_eq!(text, fleet_result_json(&empty).to_pretty_string());
        assert!(JsonValue::parse(&text).is_ok());
    }

    #[test]
    fn streamed_array_matches_buffered_bytes() {
        let elements = vec![
            {
                let mut o = JsonValue::object();
                o.push("a", JsonValue::Int(1));
                o
            },
            JsonValue::Array(vec![JsonValue::Bool(true)]),
        ];
        let buffered = JsonValue::Array(elements.clone()).to_pretty_string();
        let mut w = JsonArrayWriter::new(Vec::new());
        for e in &elements {
            w.push(e).unwrap();
        }
        assert_eq!(String::from_utf8(w.finish().unwrap()).unwrap(), buffered);

        let empty = JsonArrayWriter::new(Vec::new()).finish().unwrap();
        assert_eq!(
            String::from_utf8(empty).unwrap(),
            JsonValue::Array(Vec::new()).to_pretty_string()
        );
    }

    #[test]
    fn streamed_csv_matches_buffered_bytes() {
        let result = small_fleet();
        let labels: Vec<String> = (0..3).map(|i| format!("server {i}")).collect();
        let buffered = run_results_csv(
            labels
                .iter()
                .map(String::as_str)
                .zip(result.runs.iter())
                .collect::<Vec<_>>(),
        );
        let header = buffered.split_inclusive('\n').next().unwrap();
        let mut w = CsvWriter::new(Vec::new(), header).unwrap();
        for (label, r) in labels.iter().zip(&result.runs) {
            w.push(&run_csv_line(label, r)).unwrap();
        }
        assert_eq!(String::from_utf8(w.finish().unwrap()).unwrap(), buffered);
    }
}
