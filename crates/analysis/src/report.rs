//! Plain-text table formatting for the experiment harnesses.
//!
//! Every bench target prints the rows/series the corresponding paper table or
//! figure reports; this module provides the small fixed-width table writer
//! they share so the output is uniform and diffable.

use std::fmt::Write as _;

/// A simple fixed-width text table.
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    #[must_use]
    pub fn new(title: &str, headers: &[&str]) -> Self {
        TextTable {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header list are padded with
    /// empty cells; longer rows are truncated.
    pub fn add_row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.iter().take(self.headers.len()).cloned().collect();
        while row.len() < self.headers.len() {
            row.push(String::new());
        }
        self.rows.push(row);
    }

    /// Convenience for rows built from string slices.
    pub fn add_row_strs(&mut self, cells: &[&str]) {
        self.add_row(&cells.iter().map(|s| (*s).to_owned()).collect::<Vec<_>>());
    }

    /// Number of data rows.
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Renders the table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} ==", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut parts = Vec::with_capacity(cells.len());
            for (i, c) in cells.iter().enumerate() {
                parts.push(format!("{:<width$}", c, width = widths[i]));
            }
            let _ = writeln!(out, "| {} |", parts.join(" | "));
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }
}

/// Formats a fraction as a percentage with one decimal.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats watts with two decimals.
#[must_use]
pub fn watts(w: apc_power::units::Watts) -> String {
    format!("{:.2} W", w.as_f64())
}

/// Formats a duration in microseconds with one decimal.
#[must_use]
pub fn micros(d: apc_sim::SimDuration) -> String {
    format!("{:.1} us", d.as_micros_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_power::units::Watts;
    use apc_sim::SimDuration;

    #[test]
    fn renders_aligned_table() {
        let mut t = TextTable::new("Table 1", &["state", "power"]);
        t.add_row_strs(&["PC0idle", "49.50 W"]);
        t.add_row(&["PC1A".to_owned(), "29.10 W".to_owned()]);
        assert_eq!(t.row_count(), 2);
        let s = t.render();
        assert!(s.contains("== Table 1 =="));
        assert!(s.contains("| PC0idle | 49.50 W |"));
        assert!(s.contains("| PC1A    | 29.10 W |"));
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = TextTable::new("x", &["a", "b", "c"]);
        t.add_row_strs(&["1"]);
        let s = t.render();
        assert!(s.contains("| 1 |"));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.412), "41.2%");
        assert_eq!(watts(Watts(29.1)), "29.10 W");
        assert_eq!(micros(SimDuration::from_nanos(117_500)), "117.5 us");
    }
}
