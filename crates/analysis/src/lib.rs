//! # `apc-analysis` — the paper's analytical models and report formatting
//!
//! * [`savings`] — the Sec. 2 / Eq. 1 power-savings model, the 41 % idle
//!   saving, and an energy-proportionality score;
//! * [`impact`] — the Sec. 6/7.3 performance-impact model
//!   (#transitions × transition cost vs. baseline latency);
//! * [`report`] — fixed-width table rendering shared by the experiment
//!   harnesses;
//! * [`export`] — deterministic JSON/CSV export of run, fleet, cluster and
//!   time-series results (the `apc-cli` output layer);
//! * [`stream`] — incremental writers over the same formats, byte-identical
//!   to the buffered exporters (the `apc-cli --stream-out` output layer).
//!
//! # Example
//!
//! ```
//! use apc_analysis::savings::idle_savings;
//! use apc_power::budget::PackageStatePower;
//! use apc_soc::cstate::PackageCState;
//!
//! let b = PackageStatePower::skx_reference();
//! let saving = idle_savings(
//!     b.state_power(PackageCState::PC0Idle),
//!     b.state_power(PackageCState::PC1A),
//! );
//! assert!((saving - 0.41).abs() < 0.02);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod export;
pub mod impact;
pub mod report;
pub mod savings;
pub mod stream;

pub use export::JsonValue;
pub use impact::ImpactInputs;
pub use report::TextTable;
pub use savings::SavingsInputs;
