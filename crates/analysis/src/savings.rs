//! The paper's power-savings model (Sec. 2, Eq. 1).
//!
//! ```text
//! P_baseline  = R_PC0 · P_PC0 + R_PC0idle · P_PC0idle
//! %P_savings  = R_PC1A · (P_PC0idle − P_PC1A) / P_baseline
//! ```
//!
//! where the residencies `R` are fractions of time and `R_PC1A` is assumed
//! equal to the fraction of time the baseline spends with all cores idle in
//! CC1 (`R_PC0idle`).

use apc_power::budget::{PackageStatePower, StatePower};
use apc_power::units::Watts;
use apc_server::result::RunResult;
use apc_soc::cstate::PackageCState;

/// Inputs to Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SavingsInputs {
    /// Fraction of time at least one core is active.
    pub r_pc0: f64,
    /// Fraction of time all cores are idle in CC1 (and hence PC1A-eligible).
    pub r_pc0idle: f64,
    /// SoC + DRAM power while at least one core is active.
    pub p_pc0: Watts,
    /// SoC + DRAM power while all cores idle in CC1 without package savings.
    pub p_pc0idle: Watts,
    /// SoC + DRAM power in PC1A.
    pub p_pc1a: Watts,
}

impl SavingsInputs {
    /// Builds the inputs from residencies and the calibrated package-state
    /// budgets. `p_pc0` uses the *loaded* PC0 power scaled between idle and
    /// full load by `active_fraction_power_scale` (1.0 = fully loaded);
    /// the paper's model simply uses the measured average active power, which
    /// experiment harnesses can substitute through [`SavingsInputs::with_active_power`].
    #[must_use]
    pub fn from_budget(budget: &PackageStatePower, r_pc0idle: f64) -> Self {
        let r_pc0idle = r_pc0idle.clamp(0.0, 1.0);
        SavingsInputs {
            r_pc0: 1.0 - r_pc0idle,
            r_pc0idle,
            p_pc0: budget.pc0_power().total(),
            p_pc0idle: budget.state_power(PackageCState::PC0Idle).total(),
            p_pc1a: budget.state_power(PackageCState::PC1A).total(),
        }
    }

    /// Replaces the active-state power with a measured value.
    #[must_use]
    pub fn with_active_power(mut self, p_pc0: Watts) -> Self {
        self.p_pc0 = p_pc0;
        self
    }

    /// The baseline average power (denominator of Eq. 1).
    #[must_use]
    pub fn baseline_power(&self) -> Watts {
        Watts(self.r_pc0 * self.p_pc0.as_f64() + self.r_pc0idle * self.p_pc0idle.as_f64())
    }

    /// The Eq. 1 fractional power saving from adding PC1A
    /// (assuming `R_PC1A = R_PC0idle`).
    #[must_use]
    pub fn savings_fraction(&self) -> f64 {
        let baseline = self.baseline_power().as_f64();
        if baseline <= 0.0 {
            return 0.0;
        }
        self.r_pc0idle * (self.p_pc0idle.as_f64() - self.p_pc1a.as_f64()) / baseline
    }
}

/// Eq. 1 evaluated for an idle server (`R_PC0 = 0`, `R_PC0idle = 1`):
/// `1 − P_PC1A / P_PC0idle` (the paper's ~41 % headline).
#[must_use]
pub fn idle_savings(pc0idle: StatePower, pc1a: StatePower) -> f64 {
    let idle = pc0idle.total().as_f64();
    if idle <= 0.0 {
        return 0.0;
    }
    1.0 - pc1a.total().as_f64() / idle
}

/// Measured power saving between two simulated runs (e.g. `CPC1A` vs
/// `Cshallow` at the same request rate).
#[must_use]
pub fn measured_savings(apc: &RunResult, baseline: &RunResult) -> f64 {
    apc.power_saving_vs(baseline)
}

/// A simple energy-proportionality score: the ratio of the power *actually*
/// saved at a given utilisation to the power an ideally proportional server
/// would save (linear between idle-power = 0 at 0 % and peak power at 100 %).
/// 1.0 means perfectly proportional; 0.0 means no proportionality at all.
#[must_use]
pub fn proportionality_score(power_at_util: Watts, peak_power: Watts, utilization: f64) -> f64 {
    let peak = peak_power.as_f64();
    if peak <= 0.0 {
        return 0.0;
    }
    let u = utilization.clamp(0.0, 1.0);
    let ideal = peak * u;
    let actual = power_at_util.as_f64();
    if actual <= ideal {
        return 1.0;
    }
    // Excess over ideal, normalised by how much excess a completely
    // non-proportional server (always at peak) would have.
    let worst_excess = peak - ideal;
    if worst_excess <= 0.0 {
        return 1.0;
    }
    1.0 - (actual - ideal) / worst_excess
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> PackageStatePower {
        PackageStatePower::skx_reference()
    }

    #[test]
    fn idle_server_saves_about_41_percent() {
        let b = budget();
        let s = idle_savings(
            b.state_power(PackageCState::PC0Idle),
            b.state_power(PackageCState::PC1A),
        );
        assert!((s - 0.41).abs() < 0.02, "idle saving {s}");
    }

    #[test]
    fn sec2_example_savings_at_5_and_10_percent_load() {
        // Paper Sec. 2: with ~57 % / ~39 % all-idle residency at 5 % / 10 %
        // load, PC1A saves about 23 % / 17 %.
        let b = budget();
        let five = SavingsInputs::from_budget(&b, 0.57)
            .with_active_power(Watts(60.0))
            .savings_fraction();
        assert!((five - 0.23).abs() < 0.05, "5% load saving {five}");
        let ten = SavingsInputs::from_budget(&b, 0.39)
            .with_active_power(Watts(62.0))
            .savings_fraction();
        assert!((ten - 0.17).abs() < 0.05, "10% load saving {ten}");
    }

    #[test]
    fn savings_grow_with_idle_residency() {
        let b = budget();
        let lo = SavingsInputs::from_budget(&b, 0.1).savings_fraction();
        let hi = SavingsInputs::from_budget(&b, 0.8).savings_fraction();
        assert!(hi > lo);
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn baseline_power_is_residency_weighted() {
        let b = budget();
        let inputs = SavingsInputs::from_budget(&b, 0.5);
        let expected = 0.5 * inputs.p_pc0.as_f64() + 0.5 * inputs.p_pc0idle.as_f64();
        assert!((inputs.baseline_power().as_f64() - expected).abs() < 1e-9);
    }

    #[test]
    fn proportionality_score_bounds() {
        // Perfectly proportional.
        assert!((proportionality_score(Watts(9.2), Watts(92.0), 0.1) - 1.0).abs() < 1e-12);
        // Completely non-proportional: always at peak.
        assert!(proportionality_score(Watts(92.0), Watts(92.0), 0.1) < 0.01);
        // Somewhere in between.
        let s = proportionality_score(Watts(49.5), Watts(92.0), 0.1);
        assert!(s > 0.4 && s < 0.7, "score {s}");
        assert_eq!(proportionality_score(Watts(10.0), Watts(0.0), 0.5), 0.0);
    }
}
