//! Multi-server fleet runner.
//!
//! A [`Fleet`] executes N independent server simulations — typically the
//! same platform configuration under distinct seeds, but arbitrary
//! per-member configs/workloads/rates are supported — and aggregates their
//! [`RunResult`]s into a [`FleetResult`]. This is the entry point for
//! scenario sweeps that need fleet-level statistics (aggregate throughput,
//! mean power, worst-case tail latency) rather than a single server's view.
//!
//! Determinism: member seeds are derived from the fleet seed with the same
//! label-fork scheme components use ([`apc_sim::rng::SimRng::fork`]), so a
//! fleet is exactly reproducible run-to-run while its members remain
//! pairwise independent.

use apc_sim::rng::SimRng;
use apc_sim::SimDuration;
use apc_workloads::loadgen::LoadGenerator;
use apc_workloads::spec::WorkloadSpec;

use crate::config::ServerConfig;
use crate::result::RunResult;
use crate::sim::ServerSimulation;

/// One server instance within a fleet.
#[derive(Debug)]
pub struct FleetMember {
    /// The server's configuration (carries its own seed).
    pub config: ServerConfig,
    /// The workload it serves.
    pub spec: WorkloadSpec,
    /// Offered request rate (requests per second).
    pub rate_per_sec: f64,
}

/// A set of independent server simulations run back-to-back.
#[derive(Debug, Default)]
pub struct Fleet {
    members: Vec<FleetMember>,
}

impl Fleet {
    /// An empty fleet.
    #[must_use]
    pub fn new() -> Self {
        Fleet::default()
    }

    /// A fleet of `n` servers sharing one configuration and workload but
    /// running under distinct, deterministically derived seeds.
    ///
    /// `spec_fn` builds one [`WorkloadSpec`] per member (specs own boxed
    /// distributions and cannot be cloned).
    #[must_use]
    pub fn homogeneous(
        config: &ServerConfig,
        spec_fn: impl Fn() -> WorkloadSpec,
        rate_per_sec: f64,
        n: usize,
    ) -> Self {
        let root = SimRng::from_seed(config.seed);
        let mut fleet = Fleet::new();
        for i in 0..n {
            let seed = root.fork(&format!("server {i}")).seed();
            fleet.push(FleetMember {
                config: config.clone().with_seed(seed),
                spec: spec_fn(),
                rate_per_sec,
            });
        }
        fleet
    }

    /// Adds one member to the fleet.
    pub fn push(&mut self, member: FleetMember) -> &mut Self {
        self.members.push(member);
        self
    }

    /// Number of servers in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the fleet has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Runs every member to completion and aggregates the results.
    #[must_use]
    pub fn run(self) -> FleetResult {
        let runs: Vec<RunResult> = self
            .members
            .into_iter()
            .map(|m| {
                let seed = m.config.seed;
                let loadgen = LoadGenerator::new(m.spec, m.rate_per_sec, seed);
                ServerSimulation::new(m.config, loadgen).run()
            })
            .collect();
        FleetResult { runs }
    }
}

/// The aggregated outcome of a fleet run.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Per-server results, in member order.
    pub runs: Vec<RunResult>,
}

impl FleetResult {
    /// Number of servers that ran.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.runs.len()
    }

    /// Total client-visible requests completed across the fleet.
    #[must_use]
    pub fn total_completed_requests(&self) -> u64 {
        self.runs.iter().map(|r| r.completed_requests).sum()
    }

    /// Aggregate achieved throughput (requests per second) across the fleet.
    #[must_use]
    pub fn aggregate_throughput(&self) -> f64 {
        self.runs.iter().map(RunResult::throughput).sum()
    }

    /// Mean average SoC power per server, in watts.
    #[must_use]
    pub fn mean_soc_power_w(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .map(|r| r.avg_soc_power.as_f64())
            .sum::<f64>()
            / self.runs.len() as f64
    }

    /// Total average power (SoC + DRAM) summed over the fleet, in watts.
    #[must_use]
    pub fn total_power_w(&self) -> f64 {
        self.runs.iter().map(|r| r.avg_total_power().as_f64()).sum()
    }

    /// Mean PC1A residency fraction across the fleet.
    #[must_use]
    pub fn mean_pc1a_residency(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|r| r.pc1a_residency).sum::<f64>() / self.runs.len() as f64
    }

    /// Total PC1A transitions across the fleet.
    #[must_use]
    pub fn total_pc1a_transitions(&self) -> u64 {
        self.runs.iter().map(|r| r.pc1a_transitions).sum()
    }

    /// The worst p99 latency any server observed.
    #[must_use]
    pub fn worst_p99(&self) -> SimDuration {
        self.runs
            .iter()
            .map(|r| r.latency.p99)
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Mean request latency across the fleet, weighted by completed
    /// requests.
    #[must_use]
    pub fn mean_latency(&self) -> SimDuration {
        let total: u64 = self.total_completed_requests();
        if total == 0 {
            return SimDuration::ZERO;
        }
        let weighted: f64 = self
            .runs
            .iter()
            .map(|r| r.latency.mean.as_secs_f64() * r.completed_requests as f64)
            .sum();
        SimDuration::from_secs_f64(weighted / total as f64)
    }

    /// Fleet-level power saving relative to a baseline fleet (positive when
    /// this fleet uses less total power).
    #[must_use]
    pub fn power_saving_vs(&self, baseline: &FleetResult) -> f64 {
        let base = baseline.total_power_w();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.total_power_w() / base
    }
}
