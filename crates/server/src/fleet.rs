//! Multi-server fleet runner.
//!
//! A [`Fleet`] executes N independent server simulations — typically the
//! same platform configuration under distinct seeds, but arbitrary
//! per-member configs/workloads/rates are supported — and aggregates their
//! [`RunResult`]s into a [`FleetResult`]. This is the entry point for
//! scenario sweeps that need fleet-level statistics (aggregate throughput,
//! mean power, worst-case tail latency) rather than a single server's view.
//!
//! # Parallelism
//!
//! Members are pairwise independent (no simulated cross-server traffic and
//! no shared RNG state), so [`Fleet::run`] fans them out over a pool of OS
//! threads pulling from a shared work queue. Results are written back into
//! member-order slots, which makes a parallel run **bit-identical** to
//! [`Fleet::run_sequential`] for the same members: thread scheduling can
//! change only *when* a member executes, never what it computes or where its
//! result lands. Use [`Fleet::with_parallelism`] to pin the worker count
//! (`1` forces the sequential path).
//!
//! # Determinism
//!
//! Member seeds are derived from the fleet seed with the canonical
//! label-fork scheme (see [`apc_sim::rng::SimRng::fork`]) under labels
//! `"server 0"`, `"server 1"`, …, so a fleet is exactly reproducible
//! run-to-run while its members remain pairwise independent.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

use apc_sim::rng::SimRng;
use apc_sim::SimDuration;
use apc_telemetry::latency::{LatencyRecorder, LatencySummary};
use apc_telemetry::sketch::QuantileSketch;
use apc_workloads::arrival::ArrivalProcess;
use apc_workloads::loadgen::LoadGenerator;
use apc_workloads::spec::WorkloadSpec;

use crate::config::ServerConfig;
use crate::result::RunResult;
use crate::sim::ServerSimulation;

/// Resolves the worker count for a pool over `jobs` jobs: an explicit
/// [`Fleet::with_parallelism`]-style override, else the host's available
/// parallelism, never more workers than jobs (and at least one). Shared by
/// [`Fleet`] and [`crate::cluster::ClusterFleet`] so both runners follow one
/// policy.
pub(crate) fn effective_workers(parallelism: Option<usize>, jobs: usize) -> usize {
    parallelism
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
        .min(jobs.max(1))
}

/// The deterministic worker pool both fleet runners share: `workers` OS
/// threads claim jobs from an atomic cursor and write each result into the
/// job-order slot, so the output is independent of thread scheduling —
/// bit-identical to running `jobs.into_iter().map(run).collect()`.
pub(crate) fn run_pool<T: Send, R: Send>(
    jobs: Vec<T>,
    workers: usize,
    run: impl Fn(T) -> R + Sync,
) -> Vec<R> {
    if workers <= 1 {
        return jobs.into_iter().map(run).collect();
    }
    // Work queue: jobs wait in `Mutex<Option<_>>` slots so any worker can
    // claim ownership of job `i`; results land in slot `i`.
    let job_slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let results: Vec<Mutex<Option<R>>> = job_slots.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = job_slots.get(i) else { break };
                let job = job
                    .lock()
                    .expect("pool job slot poisoned")
                    .take()
                    .expect("pool job claimed twice");
                let result = run(job);
                *results[i].lock().expect("pool result slot poisoned") = Some(result);
            });
        }
    });

    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("pool result slot poisoned")
                .expect("pool worker exited without storing a result")
        })
        .collect()
}

/// [`run_pool`] with an in-order progress callback: `emit(i, &result)` is
/// called exactly once per job, in job order, as soon as job `i` **and every
/// job before it** have finished — while later jobs may still be running.
/// This is what lets the CLI's `--stream-out` flush sweep rows to disk as
/// the grid progresses, with byte-identical output to the buffered path.
///
/// `emit` runs on the calling thread. Its first error stops further
/// emission (workers still drain the queue so the pool joins cleanly) and is
/// returned after the pool finishes; the computed results are dropped in
/// that case.
pub(crate) fn run_pool_streamed<T: Send, R: Send, E>(
    jobs: Vec<T>,
    workers: usize,
    run: impl Fn(T) -> R + Sync,
    mut emit: impl FnMut(usize, &R) -> Result<(), E>,
) -> Result<Vec<R>, E> {
    if workers <= 1 {
        let mut results = Vec::with_capacity(jobs.len());
        let mut failure = None;
        for (i, job) in jobs.into_iter().enumerate() {
            let result = run(job);
            if failure.is_none() {
                failure = emit(i, &result).err();
            }
            results.push(result);
        }
        return match failure {
            Some(e) => Err(e),
            None => Ok(results),
        };
    }

    let job_slots: Vec<Mutex<Option<T>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let total = job_slots.len();
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, R)>();

    let (results, failure) = std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let job_slots = &job_slots;
            let cursor = &cursor;
            let run = &run;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(job) = job_slots.get(i) else { break };
                let job = job
                    .lock()
                    .expect("pool job slot poisoned")
                    .take()
                    .expect("pool job claimed twice");
                if tx.send((i, run(job))).is_err() {
                    break;
                }
            });
        }
        drop(tx);

        // The calling thread plays collector: results arrive in completion
        // order, land in their job-order slot, and are emitted as the
        // in-order frontier advances.
        let mut slots: Vec<Option<R>> = (0..total).map(|_| None).collect();
        let mut next = 0;
        let mut failure = None;
        for (i, result) in rx {
            slots[i] = Some(result);
            while next < total {
                let Some(result) = slots[next].as_ref() else {
                    break;
                };
                if failure.is_none() {
                    failure = emit(next, result).err();
                }
                next += 1;
            }
        }
        (slots, failure)
    });

    if let Some(e) = failure {
        return Err(e);
    }
    Ok(results
        .into_iter()
        .map(|slot| slot.expect("pool worker exited without storing a result"))
        .collect())
}

/// One server instance within a fleet.
#[derive(Debug)]
pub struct FleetMember {
    /// The server's configuration (carries its own seed).
    pub config: ServerConfig,
    /// The workload it serves.
    pub spec: WorkloadSpec,
    /// Nominal offered request rate (requests per second): the rate the
    /// spec's default arrival process runs at, and the `offered_rate`
    /// recorded in the member's [`RunResult`]. When an arrival override is
    /// installed, set this to the pattern's long-run average over the run
    /// (as [`crate::scenario`] does) — the override itself only knows its
    /// schedule, not the run horizon.
    pub rate_per_sec: f64,
    /// Optional arrival-process override. `None` uses the spec's default
    /// stationary process at [`FleetMember::rate_per_sec`]; scenarios install
    /// time-varying processes here (see [`crate::scenario`]).
    pub arrivals: Option<Box<dyn ArrivalProcess>>,
}

impl FleetMember {
    /// A member serving `spec` at a constant offered rate.
    #[must_use]
    pub fn new(config: ServerConfig, spec: WorkloadSpec, rate_per_sec: f64) -> Self {
        FleetMember {
            config,
            spec,
            rate_per_sec,
            arrivals: None,
        }
    }

    /// Replaces the member's arrival process (e.g. with a time-varying one).
    ///
    /// [`FleetMember::rate_per_sec`] is left untouched: it stays the nominal
    /// rate recorded in results, which for a non-repeating schedule (whose
    /// tail rate holds beyond the schedule's end) the process itself cannot
    /// compute.
    #[must_use]
    pub fn with_arrival_process(mut self, arrivals: Box<dyn ArrivalProcess>) -> Self {
        self.arrivals = Some(arrivals);
        self
    }

    /// Runs this member's simulation to completion.
    fn run(self) -> RunResult {
        let seed = self.config.seed;
        let loadgen = match self.arrivals {
            Some(arrivals) => {
                LoadGenerator::with_arrival_process(self.spec, arrivals, self.rate_per_sec, seed)
            }
            None => LoadGenerator::new(self.spec, self.rate_per_sec, seed),
        };
        ServerSimulation::new(self.config, loadgen).run()
    }
}

/// A set of independent server simulations run as one experiment.
#[derive(Debug, Default)]
pub struct Fleet {
    members: Vec<FleetMember>,
    parallelism: Option<usize>,
}

impl Fleet {
    /// An empty fleet.
    #[must_use]
    pub fn new() -> Self {
        Fleet::default()
    }

    /// A fleet of `n` servers sharing one configuration and workload but
    /// running under distinct, deterministically derived seeds (see the
    /// [module docs](self) for the derivation scheme).
    ///
    /// `spec_fn` builds one [`WorkloadSpec`] per member (specs own boxed
    /// distributions and cannot be cloned).
    #[must_use]
    pub fn homogeneous(
        config: &ServerConfig,
        spec_fn: impl Fn() -> WorkloadSpec,
        rate_per_sec: f64,
        n: usize,
    ) -> Self {
        let mut fleet = Fleet::new();
        for i in 0..n {
            fleet.push(FleetMember::new(
                config.clone().with_seed(Fleet::member_seed(config.seed, i)),
                spec_fn(),
                rate_per_sec,
            ));
        }
        fleet
    }

    /// The canonical seed of fleet member `index` under root seed
    /// `root_seed`: the root forked by label `"server {index}"` (see
    /// [`SimRng::fork`] for the full derivation scheme). Both
    /// [`Fleet::homogeneous`] and the scenario builder derive member seeds
    /// through this single function, so fleets built either way agree.
    #[must_use]
    pub fn member_seed(root_seed: u64, index: usize) -> u64 {
        SimRng::from_seed(root_seed)
            .fork(&format!("server {index}"))
            .seed()
    }

    /// Adds one member to the fleet.
    pub fn push(&mut self, member: FleetMember) -> &mut Self {
        self.members.push(member);
        self
    }

    /// Pins the number of worker threads [`Fleet::run`] may use.
    ///
    /// `1` forces the sequential path; values are clamped to at least 1.
    /// Without this, `run` sizes the pool to the host's available
    /// parallelism. The result is bit-identical either way — the knob only
    /// trades wall-clock time against CPU occupancy.
    #[must_use]
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Number of servers in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the fleet has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Runs every member to completion — in parallel when the host and the
    /// [`Fleet::with_parallelism`] knob allow it — and aggregates the
    /// results. Member order in the [`FleetResult`] always matches insertion
    /// order, and the outcome is bit-identical to
    /// [`Fleet::run_sequential`].
    #[must_use]
    pub fn run(self) -> FleetResult {
        let workers = effective_workers(self.parallelism, self.members.len());
        FleetResult {
            runs: run_pool(self.members, workers, FleetMember::run),
        }
    }

    /// Runs every member back-to-back on the calling thread.
    #[must_use]
    pub fn run_sequential(self) -> FleetResult {
        let runs: Vec<RunResult> = self.members.into_iter().map(FleetMember::run).collect();
        FleetResult { runs }
    }

    /// Like [`Fleet::run`], but invokes `emit(i, &result)` once per member,
    /// in member order, as soon as member `i` and all its predecessors have
    /// finished — the hook behind the CLI's incremental `--stream-out`
    /// export. The returned [`FleetResult`] is bit-identical to
    /// [`Fleet::run`]'s.
    ///
    /// # Errors
    ///
    /// Returns `emit`'s first error; the remaining members still run (the
    /// pool joins cleanly) but nothing further is emitted.
    pub fn run_streamed<E>(
        self,
        emit: impl FnMut(usize, &RunResult) -> Result<(), E>,
    ) -> Result<FleetResult, E> {
        let workers = effective_workers(self.parallelism, self.members.len());
        Ok(FleetResult {
            runs: run_pool_streamed(self.members, workers, FleetMember::run, emit)?,
        })
    }
}

/// The aggregated outcome of a fleet run.
///
/// Equality is exact per-member equality (see [`RunResult`]'s `PartialEq`
/// note); a parallel and a sequential run of the same fleet compare equal.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetResult {
    /// Per-server results, in member order.
    pub runs: Vec<RunResult>,
}

impl FleetResult {
    /// Number of servers that ran.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.runs.len()
    }

    /// Total client-visible requests completed across the fleet.
    #[must_use]
    pub fn total_completed_requests(&self) -> u64 {
        self.runs.iter().map(|r| r.completed_requests).sum()
    }

    /// Total events dispatched across the fleet's event loops. Zero for the
    /// node sub-results of a cluster/chain run, whose single shared loop
    /// reports its census on the cluster-level result instead.
    #[must_use]
    pub fn events_dispatched(&self) -> u64 {
        self.runs.iter().map(|r| r.events_dispatched).sum()
    }

    /// Aggregate achieved throughput (requests per second) across the fleet.
    #[must_use]
    pub fn aggregate_throughput(&self) -> f64 {
        self.runs.iter().map(RunResult::throughput).sum()
    }

    /// Mean average SoC power per server, in watts.
    #[must_use]
    pub fn mean_soc_power_w(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs
            .iter()
            .map(|r| r.avg_soc_power.as_f64())
            .sum::<f64>()
            / self.runs.len() as f64
    }

    /// Total average power (SoC + DRAM) summed over the fleet, in watts.
    #[must_use]
    pub fn total_power_w(&self) -> f64 {
        self.runs.iter().map(|r| r.avg_total_power().as_f64()).sum()
    }

    /// Mean PC1A residency fraction across the fleet.
    #[must_use]
    pub fn mean_pc1a_residency(&self) -> f64 {
        if self.runs.is_empty() {
            return 0.0;
        }
        self.runs.iter().map(|r| r.pc1a_residency).sum::<f64>() / self.runs.len() as f64
    }

    /// Total PC1A transitions across the fleet.
    #[must_use]
    pub fn total_pc1a_transitions(&self) -> u64 {
        self.runs.iter().map(|r| r.pc1a_transitions).sum()
    }

    /// The worst p99 latency any server observed.
    #[must_use]
    pub fn worst_p99(&self) -> SimDuration {
        self.runs
            .iter()
            .map(|r| r.latency.p99)
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// The worst p999 latency any server observed (the paper's tail-latency
    /// SLO metric).
    #[must_use]
    pub fn worst_p999(&self) -> SimDuration {
        self.runs
            .iter()
            .map(|r| r.latency.p999)
            .fold(SimDuration::ZERO, SimDuration::max)
    }

    /// Mean request latency across the fleet, weighted by completed
    /// requests.
    #[must_use]
    pub fn mean_latency(&self) -> SimDuration {
        let total: u64 = self.total_completed_requests();
        if total == 0 {
            return SimDuration::ZERO;
        }
        let weighted: f64 = self
            .runs
            .iter()
            .map(|r| r.latency.mean.as_secs_f64() * r.completed_requests as f64)
            .sum();
        SimDuration::from_secs_f64(weighted / total as f64)
    }

    /// The fleet-wide latency distribution: every member's sketch merged
    /// (exact counts/sums/extremes — see [`QuantileSketch::merge`]), in
    /// member order for determinism.
    #[must_use]
    pub fn combined_sketch(&self) -> QuantileSketch {
        let mut merged = QuantileSketch::latency_default();
        for r in &self.runs {
            merged.merge(&r.latency_sketch);
        }
        merged
    }

    /// Summary of the fleet-wide latency distribution (all members' samples
    /// pooled), as opposed to the per-member worst/mean aggregates: the
    /// cross-fleet p99 of a 100-node experiment is this summary's `p99`,
    /// not [`FleetResult::worst_p99`].
    #[must_use]
    pub fn combined_latency(&self) -> LatencySummary {
        LatencyRecorder::from_sketch(self.combined_sketch()).summary()
    }

    /// Fleet-level power saving relative to a baseline fleet (positive when
    /// this fleet uses less total power).
    #[must_use]
    pub fn power_saving_vs(&self, baseline: &FleetResult) -> f64 {
        let base = baseline.total_power_w();
        if base <= 0.0 {
            return 0.0;
        }
        1.0 - self.total_power_w() / base
    }
}

/// One line per server (config, workload, throughput, power, p99/p999),
/// then the fleet totals — the format the scenario tables embed.
impl std::fmt::Display for FleetResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, r) in self.runs.iter().enumerate() {
            writeln!(
                f,
                "server {i:>3}: {:<9} {:<10} {:>10.0} rps {:>7.1} W p99 {} p999 {}",
                r.config_name,
                r.workload,
                r.throughput(),
                r.avg_total_power().as_f64(),
                r.latency.p99,
                r.latency.p999,
            )?;
        }
        write!(
            f,
            "fleet     : {} servers {:>10.0} rps {:>7.1} W worst p99 {} p999 {}",
            self.servers(),
            self.aggregate_throughput(),
            self.total_power_w(),
            self.worst_p99(),
            self.worst_p999(),
        )
    }
}
