//! Cluster load balancer: the cluster-level arrival stream and pluggable
//! request-routing policies.
//!
//! The [`Balancer`] is one more component in a
//! [`crate::cluster::ClusterSimulation`]'s event loop: it owns the cluster's
//! [`LoadGenerator`], draws each arriving request, asks its
//! [`RoutingPolicy`] for a destination node and deposits the request into
//! that node's NIC coalescing buffer — exactly the hand-off a standalone
//! server's NIC performs for itself, so routing is the *only* behavioural
//! difference between a node in a cluster and a standalone server.
//!
//! Routing is what shapes the per-server idle-period distribution the
//! paper's PC1A savings depend on: spreading policies
//! ([`Random`], [`RoundRobin`], [`JoinShortestQueue`]) keep every node
//! lightly loaded with many short idle periods, while the packing
//! [`PowerAware`] policy concentrates load on already-awake nodes so the
//! rest accumulate long, deep package-idle residency.

use apc_sim::component::{EventHandler, SimulationContext};
use apc_sim::rng::SimRng;
use apc_workloads::loadgen::LoadGenerator;

use crate::components::fabric::deliver_routed;
use crate::components::state::{ClusterState, HasNode};
use crate::components::ServerEvent;

/// A request-routing policy: picks the destination node for each arriving
/// request.
///
/// Policies are *pluggable*: implement this trait to study custom routing.
/// The built-ins cover the classic datacenter spectrum ([`Random`],
/// [`RoundRobin`], [`JoinShortestQueue`]) plus the power-aware packing
/// policy ([`PowerAware`]) the paper's idle-period analysis motivates.
pub trait RoutingPolicy: Send {
    /// The policy's name as it appears in results and tables.
    fn name(&self) -> &'static str;

    /// Picks the node for the next request.
    ///
    /// `cluster` exposes every node's queues, core activity and package
    /// state; `rng` is the balancer's private deterministic stream (so
    /// randomised policies never perturb node streams). Must return an index
    /// `< cluster.node_count()`.
    fn route(&mut self, cluster: &ClusterState, rng: &mut SimRng) -> usize;
}

/// Uniform random routing: each request goes to a node drawn uniformly from
/// the balancer's deterministic stream. The classic stateless baseline; it
/// spreads load (and wakes) evenly, fragmenting every node's idle time.
#[derive(Debug, Default, Clone, Copy)]
pub struct Random;

impl RoutingPolicy for Random {
    fn name(&self) -> &'static str {
        "random"
    }

    fn route(&mut self, cluster: &ClusterState, rng: &mut SimRng) -> usize {
        (rng.next_u64() % cluster.node_count() as u64) as usize
    }
}

/// Round-robin routing: node `i`, then `i + 1`, … wrapping around.
/// Deterministic spreading with perfectly even request counts.
#[derive(Debug, Default, Clone, Copy)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, cluster: &ClusterState, _rng: &mut SimRng) -> usize {
        let target = self.next % cluster.node_count();
        self.next = target + 1;
        target
    }
}

/// Join-shortest-queue: each request goes to the node with the fewest
/// outstanding client requests (buffered, queued, reserved or in service;
/// see [`crate::components::state::ServerState::outstanding_requests`]),
/// lowest index winning ties. The latency-optimal greedy policy — and the
/// most aggressive idle-period fragmenter, since it preferentially wakes the
/// most-idle node.
#[derive(Debug, Default, Clone, Copy)]
pub struct JoinShortestQueue;

impl RoutingPolicy for JoinShortestQueue {
    fn name(&self) -> &'static str {
        "join-shortest-queue"
    }

    fn route(&mut self, cluster: &ClusterState, _rng: &mut SimRng) -> usize {
        min_by_key_index(cluster, |node| {
            debug_assert_eq!(node.outstanding, node.outstanding_requests());
            node.outstanding
        })
    }
}

/// Power-aware packing: prefer nodes that are already awake (some core
/// active), taking the least-loaded among them; only when every node is
/// package-idle does the request wake one (the least-loaded, lowest index —
/// in practice node 0). Load concentrates on few warm nodes, so the
/// remaining nodes see long unbroken idle periods and deep PC1A/PC6
/// residency — the routing-layer complement to the paper's fast package
/// C-state.
#[derive(Debug, Default, Clone, Copy)]
pub struct PowerAware;

impl RoutingPolicy for PowerAware {
    fn name(&self) -> &'static str {
        "power-aware"
    }

    fn route(&mut self, cluster: &ClusterState, _rng: &mut SimRng) -> usize {
        let awake = (0..cluster.node_count())
            .filter(|&i| cluster.node(i).any_core_active())
            .min_by_key(|&i| (cluster.node(i).outstanding, i));
        awake.unwrap_or_else(|| min_by_key_index(cluster, |n| n.outstanding))
    }
}

/// Lowest node index minimising `key` (ties broken by index).
fn min_by_key_index<K: Ord>(
    cluster: &ClusterState,
    key: impl Fn(&crate::components::state::ServerState) -> K,
) -> usize {
    (0..cluster.node_count())
        .min_by_key(|&i| (key(cluster.node(i)), i))
        .expect("cluster has at least one node")
}

/// The built-in routing policies as a plain enum, for declarative cluster
/// specs that must be `Send + Clone` (scenario tables, parallel cluster
/// fleets). [`RoutingPolicyKind::build`] materialises the boxed policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicyKind {
    /// [`Random`].
    Random,
    /// [`RoundRobin`].
    RoundRobin,
    /// [`JoinShortestQueue`].
    JoinShortestQueue,
    /// [`PowerAware`].
    PowerAware,
}

impl RoutingPolicyKind {
    /// Every built-in policy, in presentation order.
    #[must_use]
    pub fn all() -> [RoutingPolicyKind; 4] {
        [
            RoutingPolicyKind::Random,
            RoutingPolicyKind::RoundRobin,
            RoutingPolicyKind::JoinShortestQueue,
            RoutingPolicyKind::PowerAware,
        ]
    }

    /// Builds the policy instance.
    #[must_use]
    pub fn build(self) -> Box<dyn RoutingPolicy> {
        match self {
            RoutingPolicyKind::Random => Box::new(Random),
            RoutingPolicyKind::RoundRobin => Box::new(RoundRobin::default()),
            RoutingPolicyKind::JoinShortestQueue => Box::new(JoinShortestQueue),
            RoutingPolicyKind::PowerAware => Box::new(PowerAware),
        }
    }

    /// The policy's display name (same as the built instance's
    /// [`RoutingPolicy::name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RoutingPolicyKind::Random => "random",
            RoutingPolicyKind::RoundRobin => "round-robin",
            RoutingPolicyKind::JoinShortestQueue => "join-shortest-queue",
            RoutingPolicyKind::PowerAware => "power-aware",
        }
    }
}

/// The load-balancer component: generates the cluster arrival stream and
/// routes each request to a node's NIC.
///
/// The hand-off (buffer deposit + coalesced-interrupt arming) reuses the
/// exact code path of a standalone server's NIC, in the same emission order,
/// so a 1-node cluster replays a standalone server's event sequence
/// bit-for-bit whatever the policy (there is only one node to route to).
/// When the cluster carries a network fabric the routed request first
/// crosses the wire (see [`crate::components::fabric`]); an instantaneous
/// fabric — or none — deposits synchronously through that same code path.
pub struct Balancer {
    loadgen: LoadGenerator,
    policy: Box<dyn RoutingPolicy>,
    routed: Vec<u64>,
}

impl Balancer {
    /// Creates the balancer for a cluster of `nodes` nodes, driving
    /// `loadgen` (the cluster-level arrival stream) through `policy`.
    #[must_use]
    pub fn new(loadgen: LoadGenerator, policy: Box<dyn RoutingPolicy>, nodes: usize) -> Self {
        Balancer {
            loadgen,
            policy,
            routed: vec![0; nodes],
        }
    }

    /// The routing policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Requests routed to each node so far.
    #[must_use]
    pub fn routed(&self) -> &[u64] {
        &self.routed
    }
}

impl EventHandler<ServerEvent, ClusterState> for Balancer {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut ClusterState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        debug_assert!(matches!(event, ServerEvent::ClusterArrival));
        let _ = event;
        let mut request = self.loadgen.next_request();
        let next_arrival = self.loadgen.peek_next_arrival();
        // Cluster head-sampling site: the decision is drawn before routing
        // from the cluster's dedicated sampler stream, so a traced request's
        // span tree starts at the balancer whatever node it lands on.
        if let Some(trace) = shared.trace.as_mut() {
            if trace.sampler.sample() {
                request =
                    request.with_trace(apc_trace::TraceCtx::root(request.id.0, request.arrival));
            }
        }
        let target = self.policy.route(shared, ctx.rng());
        debug_assert!(
            target < shared.node_count(),
            "policy {} routed to node {target} of {}",
            self.policy.name(),
            shared.node_count()
        );
        self.routed[target] += 1;
        deliver_routed(shared, ctx, target, request);
        ctx.emit_self_at(next_arrival, ServerEvent::ClusterArrival);
    }
}
