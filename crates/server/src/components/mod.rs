//! The full-system server simulation, decomposed into registered components.
//!
//! Each module implements one focused piece of the modelled server as an
//! [`apc_sim::component::EventHandler`]:
//!
//! * [`nic`] — client arrival process and NIC interrupt coalescing;
//! * [`core_exec`] — one component per core: wake transitions, request
//!   execution, idle entry and OS background noise;
//! * [`scheduler`] — work dispatch onto free cores (gated on uncore
//!   availability);
//! * [`package`] — the package controllers: firmware GPMU (PC6) and, under
//!   `CPC1A`, the APC APMU (PC1A entry/abort/exit flows);
//! * [`power`] — power/energy attribution and the optional power trace;
//! * [`timeseries`] — the optional periodic time-series sampler (power,
//!   residency deltas, queue depth over simulated time).
//!
//! Cross-component state (the SoC structural model, work queues, uncore
//! availability, telemetry) lives in [`state::ServerState`]; everything else
//! is private to its component. Components communicate only by events:
//! zero-delay events model same-instant hardware signals (e.g. the NIC
//! raising `PackageWake` before the scheduler's `Dispatch` runs) and the
//! FIFO tie-break of the event queue keeps those exchanges deterministic.
//!
//! Every component is *node-scoped*: it carries the index of the server node
//! it belongs to and reaches that node's [`state::ServerState`] through the
//! [`state::HasNode`] view of the simulation's shared state. The same
//! component code therefore runs unchanged whether the shared state is one
//! `ServerState` (a standalone [`crate::sim::ServerSimulation`]) or a
//! [`state::ClusterState`] hosting N complete servers plus a load balancer
//! in one event loop ([`crate::cluster::ClusterSimulation`]).

pub mod core_exec;
pub mod fabric;
pub mod nic;
pub mod package;
pub mod power;
pub mod scheduler;
pub mod state;
pub mod timeseries;

use apc_core::apmu::WakeCause;
use apc_sim::component::ComponentId;
use apc_sim::SimDuration;
use apc_workloads::request::Request;

/// Events driving the simulation. Routing is by destination [`ComponentId`];
/// the comments note the component each variant is addressed to.
#[derive(Debug, Clone)]
pub enum ServerEvent {
    /// The next client request arrives at the NIC. (→ `nic`)
    ClientArrival,
    /// The next client request arrives at the cluster's load balancer, which
    /// routes it to a node. Never fires in a single-server simulation.
    /// (→ `balancer`)
    ClusterArrival,
    /// The NIC raises an interrupt delivering the coalesced batch. (→ `nic`)
    NicDeliver,
    /// A routed request finished its wire flight through the network fabric
    /// and reaches the destination node's NIC buffer. Only fires when a
    /// fabric with nonzero wire delay is configured — instantaneous
    /// transmissions deposit synchronously without an event hop. (→ `fabric`)
    WireDeliver {
        /// The destination node.
        node: usize,
        /// The request coming off the wire.
        request: Request,
    },
    /// A core's periodic background (OS) wakeup fires. (→ `core <i>`)
    BackgroundTick,
    /// Bootstrap: put the freshly booted core to sleep. (→ `core <i>`)
    InitIdle,
    /// The scheduler assigned work; begin the wake transition. (→ `core <i>`)
    BeginWake,
    /// The core finished its wake transition and starts executing.
    /// (→ `core <i>`)
    WakeDone {
        /// Transition epoch the event belongs to (stale events are ignored).
        epoch: u64,
    },
    /// The core finished executing its current work item. (→ `core <i>`)
    ServiceDone,
    /// The core finished entering its idle C-state. (→ `core <i>`)
    IdleEntered {
        /// Transition epoch the event belongs to (stale events are ignored).
        epoch: u64,
    },
    /// Try to place queued work onto free cores. (→ `scheduler`)
    Dispatch,
    /// An interrupt or IO traffic wakes the package. (→ `package`)
    PackageWake {
        /// What triggered the wake.
        cause: WakeCause,
    },
    /// A core returned to CC0 (the ACC1 → PC0 edge). (→ `package`)
    CoreActive,
    /// A core finished entering idle; check the PC1A/PC6 opportunity.
    /// (→ `package`)
    AllIdleCheck,
    /// The APMU's IO-standby deadline elapsed (try to enter PC1A).
    /// (→ `package`)
    StandbyDeadline,
    /// The PC1A entry flow completed. (→ `package`)
    ApmuEntryDone,
    /// The PC1A exit flow completed. (→ `package`)
    ApmuExitDone,
    /// The PC6 entry flow completed. (→ `package`)
    GpmuEntryDone,
    /// The PC6 exit flow completed. (→ `package`)
    GpmuExitDone,
    /// Periodic power-trace sample. (→ `power`)
    PowerSample,
    /// Periodic time-series telemetry sample. (→ `timeseries`)
    TimeSeriesSample,
    /// The next root request of a request chain arrives at the chain
    /// coordinator, which fans it out across the cluster. Never fires
    /// outside a chain simulation. (→ `chain-coordinator`)
    ChainArrival,
    /// A core finished serving one chain-tagged RPC; the coordinator joins
    /// it into its chain (emitted by the serving core to the coordinator
    /// named in the request's [`apc_workloads::request::ChainTag`]).
    /// (→ `chain-coordinator`)
    ChainLeafDone {
        /// The coordinator-local chain the completed RPC belongs to.
        chain: u64,
    },
}

impl ServerEvent {
    /// Number of distinct event kinds (the bound for
    /// [`ServerEvent::kind`] indices and the length of
    /// [`ServerEvent::KIND_NAMES`]).
    pub const KIND_COUNT: usize = 23;

    /// Stable names of every event kind, indexed by [`ServerEvent::kind`].
    pub const KIND_NAMES: [&'static str; Self::KIND_COUNT] = [
        "ClientArrival",
        "ClusterArrival",
        "NicDeliver",
        "WireDeliver",
        "BackgroundTick",
        "InitIdle",
        "BeginWake",
        "WakeDone",
        "ServiceDone",
        "IdleEntered",
        "Dispatch",
        "PackageWake",
        "CoreActive",
        "AllIdleCheck",
        "StandbyDeadline",
        "ApmuEntryDone",
        "ApmuExitDone",
        "GpmuEntryDone",
        "GpmuExitDone",
        "PowerSample",
        "TimeSeriesSample",
        "ChainArrival",
        "ChainLeafDone",
    ];

    /// Kind index of this event for the engine self-profiler.
    #[must_use]
    pub fn kind(&self) -> usize {
        match self {
            ServerEvent::ClientArrival => 0,
            ServerEvent::ClusterArrival => 1,
            ServerEvent::NicDeliver => 2,
            ServerEvent::WireDeliver { .. } => 3,
            ServerEvent::BackgroundTick => 4,
            ServerEvent::InitIdle => 5,
            ServerEvent::BeginWake => 6,
            ServerEvent::WakeDone { .. } => 7,
            ServerEvent::ServiceDone => 8,
            ServerEvent::IdleEntered { .. } => 9,
            ServerEvent::Dispatch => 10,
            ServerEvent::PackageWake { .. } => 11,
            ServerEvent::CoreActive => 12,
            ServerEvent::AllIdleCheck => 13,
            ServerEvent::StandbyDeadline => 14,
            ServerEvent::ApmuEntryDone => 15,
            ServerEvent::ApmuExitDone => 16,
            ServerEvent::GpmuEntryDone => 17,
            ServerEvent::GpmuExitDone => 18,
            ServerEvent::PowerSample => 19,
            ServerEvent::TimeSeriesSample => 20,
            ServerEvent::ChainArrival => 21,
            ServerEvent::ChainLeafDone { .. } => 22,
        }
    }
}

/// Builds the engine self-profile surfaced in run results from one event
/// queue's counters (`kinds` is the per-event-kind breakdown, present when
/// the kind classifier was enabled). Event kinds that never appeared are
/// dropped from the report.
#[must_use]
pub fn profile_report(
    counters: apc_sim::engine::QueueCounters,
    kinds: Option<&[apc_sim::engine::KindCounters]>,
) -> apc_trace::ProfileReport {
    let events = kinds
        .map(|kinds| {
            ServerEvent::KIND_NAMES
                .iter()
                .zip(kinds)
                .map(|(name, k)| apc_trace::EventKindCount {
                    kind: name,
                    scheduled: k.scheduled,
                    dispatched: k.dispatched,
                    cancelled: k.cancelled,
                })
                .collect()
        })
        .unwrap_or_default();
    let mut report = apc_trace::ProfileReport {
        engine: apc_trace::EngineProfile::from_counters(counters),
        events,
        workers: Vec::new(),
        hub_replay_ns: 0,
    };
    report.retain_active_kinds();
    report
}

/// A unit of work a core can execute.
#[derive(Debug, Clone)]
pub enum WorkItem {
    /// A client request (latency-accounted).
    Client(Request),
    /// OS background work (not latency-accounted).
    Background {
        /// CPU time the background task consumes.
        work: SimDuration,
    },
}

/// Component ids every component needs to address its peers. Lives in the
/// shared [`state::ServerState`] and is filled by the driver with the real
/// ids returned from registration, before any event is scheduled.
#[derive(Debug, Clone)]
pub struct Addresses {
    /// The NIC / arrival component.
    pub nic: ComponentId,
    /// The dispatch scheduler.
    pub scheduler: ComponentId,
    /// The package controller.
    pub package: ComponentId,
    /// Per-core execution components, indexed by core number.
    pub cores: Vec<ComponentId>,
}

impl Default for Addresses {
    /// Placeholder ids that no simulation ever issues: an event emitted
    /// through an unfilled `Addresses` panics loudly at dispatch instead of
    /// silently reaching component 0.
    fn default() -> Self {
        let unset = ComponentId::from_raw(usize::MAX);
        Addresses {
            nic: unset,
            scheduler: unset,
            package: unset,
            cores: Vec::new(),
        }
    }
}
