//! State shared by every simulation component.
//!
//! The rule of thumb: state mutated by one component but *observed* by
//! another (the SoC models, work queues, uncore availability, telemetry)
//! lives here; state with a single owner (the APMU FSM, a core's transition
//! epoch, the NIC's coalescing buffer) lives inside its component.

use std::collections::VecDeque;

use apc_power::energy::EnergyMeter;
use apc_power::units::Watts;
use apc_sim::{SimDuration, SimTime};
use apc_soc::core::CoreActivity;
use apc_soc::cstate::PackageCState;
use apc_soc::topology::SkxSoc;
use apc_telemetry::idle::IdlePeriodTracker;
use apc_telemetry::latency::LatencyRecorder;
use apc_telemetry::residency::{CoreResidencySet, PackageResidency};
use apc_telemetry::timeseries::TimeSeries;
use apc_trace::TraceState;
use apc_workloads::request::Request;

use super::{Addresses, WorkItem};
use crate::config::ServerConfig;

/// A bitset over core indices tracking which cores can currently accept
/// work, maintained so the dispatch scheduler finds the lowest free core in
/// O(1) (one `trailing_zeros` per 64 cores) instead of scanning every core
/// per queued request.
///
/// The set is kept in lock-step with [`SchedState::core_is_free`]: a core's
/// bit is set exactly when it has no running work, no pending assignment and
/// is not busy executing. Only two places change that predicate — the
/// scheduler reserving a core ([`SchedState::mark_occupied`]) and the core
/// starting its idle entry ([`SchedState::mark_free`]) — so the mirror stays
/// exact (and is `debug_assert`ed at every dispatch).
#[derive(Debug, Clone)]
pub struct FreeCoreSet {
    words: Vec<u64>,
    len: usize,
}

impl FreeCoreSet {
    /// A set of `cores` cores, all occupied (cores boot busy until their
    /// initial idle entry).
    #[must_use]
    pub fn new_all_occupied(cores: usize) -> Self {
        FreeCoreSet {
            words: vec![0; cores.div_ceil(64)],
            len: cores,
        }
    }

    /// A set of `cores` cores with no bits set. Alias of
    /// [`FreeCoreSet::new_all_occupied`] for uses where the set tracks
    /// something other than freeness (e.g. pending background work).
    #[must_use]
    pub fn empty(cores: usize) -> Self {
        FreeCoreSet::new_all_occupied(cores)
    }

    /// Marks `core` free.
    pub fn insert(&mut self, core: usize) {
        debug_assert!(core < self.len);
        self.words[core / 64] |= 1u64 << (core % 64);
    }

    /// Marks `core` occupied.
    pub fn remove(&mut self, core: usize) {
        debug_assert!(core < self.len);
        self.words[core / 64] &= !(1u64 << (core % 64));
    }

    /// `true` when `core` is marked free.
    #[must_use]
    pub fn contains(&self, core: usize) -> bool {
        debug_assert!(core < self.len);
        self.words[core / 64] & (1u64 << (core % 64)) != 0
    }

    /// The lowest free core index, if any.
    #[must_use]
    pub fn lowest(&self) -> Option<usize> {
        self.lowest_at_or_after(0)
    }

    /// The lowest free core index `>= from`, if any. Used to iterate free
    /// cores in index order while marking them occupied along the way.
    #[must_use]
    pub fn lowest_at_or_after(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut word_idx = from / 64;
        let mut word = self.words[word_idx] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let core = word_idx * 64 + word.trailing_zeros() as usize;
                return (core < self.len).then_some(core);
            }
            word_idx += 1;
            if word_idx >= self.words.len() {
                return None;
            }
            word = self.words[word_idx];
        }
    }

    /// The lowest index `>= from` present in both `self` and `other`, if
    /// any. Same traversal as [`FreeCoreSet::lowest_at_or_after`] over the
    /// intersection of the two sets (both must cover the same core count).
    #[must_use]
    pub fn lowest_common_at_or_after(&self, other: &FreeCoreSet, from: usize) -> Option<usize> {
        debug_assert_eq!(self.len, other.len);
        if from >= self.len {
            return None;
        }
        let mut word_idx = from / 64;
        let mut word = self.words[word_idx] & other.words[word_idx] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let core = word_idx * 64 + word.trailing_zeros() as usize;
                return (core < self.len).then_some(core);
            }
            word_idx += 1;
            if word_idx >= self.words.len() {
                return None;
            }
            word = self.words[word_idx] & other.words[word_idx];
        }
    }

    /// Number of free cores.
    #[must_use]
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// NIC-side arrival buffering: requests waiting for the coalesced interrupt
/// delivery. Shared (rather than private to the NIC component) because in a
/// cluster the load balancer deposits routed requests into a node's buffer,
/// while the node's own NIC component drains it on `NicDeliver`.
#[derive(Debug)]
pub struct NicState {
    /// Requests buffered during the current coalescing window.
    pub buffer: VecDeque<Request>,
    /// `true` while a `NicDeliver` interrupt is armed for the buffer.
    pub deliver_pending: bool,
    /// When the armed `NicDeliver` interrupt fires ([`SimTime::MAX`] when
    /// none is armed). Written by the single shared deposit helper (both the
    /// standalone NIC and the cluster balancer/coordinator arrival paths go
    /// through it), read by the idle governor's predicted-idle bound — a
    /// core going idle with a delivery already armed knows work is imminent
    /// and must not pick a deep C-state it cannot amortise (see
    /// [`ServerState::predicted_idle_bound`]).
    pub next_deliver_at: SimTime,
}

impl Default for NicState {
    fn default() -> Self {
        NicState {
            buffer: VecDeque::new(),
            deliver_pending: false,
            next_deliver_at: SimTime::MAX,
        }
    }
}

/// Work-queue and per-core occupancy state, read by the scheduler and
/// mutated by the NIC, the cores and the scheduler.
#[derive(Debug)]
pub struct SchedState {
    /// Client requests delivered by the NIC, waiting for a free core.
    pub client_queue: VecDeque<Request>,
    /// Per-core queues of pinned OS background work.
    pub background: Vec<VecDeque<SimDuration>>,
    /// Work currently executing on each core.
    pub running: Vec<Option<WorkItem>>,
    /// Work assigned to a core that is still completing its wake transition.
    pub pending_start: Vec<Option<WorkItem>>,
    /// When each core's next background timer fires (the OS knows its own
    /// timers, so the idle governor uses this as the predicted idle bound).
    pub next_background_at: Vec<SimTime>,
    /// Cores currently able to accept work; the scheduler's O(1) dispatch
    /// index (see [`FreeCoreSet`]).
    pub free_cores: FreeCoreSet,
    /// Cores whose background queue is non-empty — always equal to
    /// `!background[core].is_empty()` bit for bit. The dispatch round
    /// intersects it with `free_cores` so placing pinned background work
    /// skips free cores with nothing queued instead of probing each queue.
    pub background_pending: FreeCoreSet,
}

impl SchedState {
    /// Empty scheduling state for `cores` cores.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        SchedState {
            client_queue: VecDeque::new(),
            background: vec![VecDeque::new(); cores],
            running: vec![None; cores],
            pending_start: vec![None; cores],
            next_background_at: vec![SimTime::MAX; cores],
            free_cores: FreeCoreSet::new_all_occupied(cores),
            background_pending: FreeCoreSet::empty(cores),
        }
    }

    /// Records that `core` began its idle entry and can accept work again.
    pub fn mark_free(&mut self, core: usize) {
        self.free_cores.insert(core);
    }

    /// Records that `core` was reserved for an assignment.
    pub fn mark_occupied(&mut self, core: usize) {
        self.free_cores.remove(core);
    }

    /// `true` when `core` can accept new work.
    #[must_use]
    pub fn core_is_free(&self, soc: &SkxSoc, core: usize) -> bool {
        self.running[core].is_none()
            && self.pending_start[core].is_none()
            && soc.cores().core(apc_soc::core::CoreId(core)).activity() != CoreActivity::Busy
    }

    /// Number of cores currently executing work.
    #[must_use]
    pub fn busy_cores(&self) -> usize {
        self.running.iter().filter(|w| w.is_some()).count()
    }

    /// `true` when any core is running or about to run work.
    #[must_use]
    pub fn any_work_in_flight(&self) -> bool {
        self.running.iter().any(Option::is_some) || self.pending_start.iter().any(Option::is_some)
    }
}

/// Availability of the shared uncore (LLC, memory path), maintained by the
/// package controller and read by the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct UncoreStatus {
    /// `true` when requests can execute (no package C-state in the way).
    /// While `false`, queued work stays put; the package controller emits a
    /// `Dispatch` the moment its exit flow completes.
    pub available: bool,
}

impl Default for UncoreStatus {
    fn default() -> Self {
        UncoreStatus { available: true }
    }
}

/// Package-FSM facts mirrored into the shared state by the package
/// controller (alongside [`UncoreStatus`]) after every event it handles, so
/// the components that *emit* package events — cores finishing a wake, the
/// NIC delivering a batch — can skip emissions the controller would handle
/// as pure no-ops. Skipping is bit-identical: every gated event is emitted
/// with `emit_now` (zero-length interval, so the energy meter's accounting
/// point is a no-op) and its handler would leave all package-state inputs
/// untouched (so the residency observation it triggers repeats the previous
/// one and is dropped by the same-state early return).
///
/// Both flags start `false`, matching the FSM starting points (APMU in PC0,
/// GPMU `Active`), and only package-controller handlers ever change the
/// facts they mirror — so a mirror read between package events is always
/// current.
#[derive(Debug, Clone, Copy, Default)]
pub struct PackageMirror {
    /// The APMU sits in ACC1: the first core to run again must send
    /// `CoreActive` so the controller clears AllowL0s (PC1A policy only).
    pub acc1_armed: bool,
    /// A `PackageWake` would do work: the package is in, or entering, a
    /// package C-state (PC1A: `Acc1`/`Entering`/`InPc1a`; PC6:
    /// `Entering`/`InPc6`). `false` under `PackagePolicy::None`.
    pub wakeable: bool,
}

/// All measurement state: power/energy, latency, residencies, idle periods
/// and run counters.
#[derive(Debug)]
pub struct TelemetryState {
    /// Energy accumulation (power attribution over elapsed intervals).
    pub energy: EnergyMeter,
    /// Client-visible request latency.
    pub latency: LatencyRecorder,
    /// Per-core C-state residency.
    pub core_residency: CoreResidencySet,
    /// Package C-state residency.
    pub package_residency: PackageResidency,
    /// Fully-idle period statistics (SoCWatch floor applied).
    pub idle_tracker: IdlePeriodTracker,
    /// Client-visible requests completed.
    pub completed_requests: u64,
    /// Total busy core-time accumulated.
    pub busy_core_time: SimDuration,
    /// Optional instantaneous power trace `(time, soc_power)`, filled by the
    /// power component when sampling is enabled.
    pub power_trace: Vec<(SimTime, Watts)>,
    /// Optional time-series telemetry, filled by the time-series sampler
    /// component when [`crate::config::ServerConfig::timeseries_interval`]
    /// is set.
    pub timeseries: Option<TimeSeries>,
    /// Request span tracing: head-sampler plus the bounded span log. Set by
    /// the standalone driver when [`crate::config::ServerConfig::trace`] is
    /// configured; in a cluster the log lives on the shared
    /// [`ClusterState`] instead (requests cross nodes) and this stays
    /// `None`. Purely observational — no simulation decision reads it.
    pub trace: Option<TraceState>,
}

impl TelemetryState {
    /// Fresh telemetry for `cores` cores starting at t = 0.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        TelemetryState {
            energy: EnergyMeter::new(SimTime::ZERO),
            latency: LatencyRecorder::new(),
            core_residency: CoreResidencySet::new(cores, SimTime::ZERO),
            package_residency: PackageResidency::new(PackageCState::PC0, SimTime::ZERO),
            idle_tracker: IdlePeriodTracker::with_socwatch_floor(cores, SimTime::ZERO),
            completed_requests: 0,
            busy_core_time: SimDuration::ZERO,
            power_trace: Vec::new(),
            timeseries: None,
            trace: None,
        }
    }
}

/// The state of one complete simulated server: every component of the node
/// reads and writes this, addressed through a [`HasNode`] view of the host
/// simulation's shared state. A standalone single-server simulation shares
/// exactly one `ServerState`; a cluster shares a [`ClusterState`] holding
/// one per node.
#[derive(Debug)]
pub struct ServerState {
    /// The run configuration (platform, power model, NIC, noise).
    pub config: ServerConfig,
    /// Peer component ids, filled by the driver after registration.
    pub addrs: Addresses,
    /// Inclusive range of raw component ids registered for this node
    /// (components are registered contiguously per node), filled by the
    /// driver after registration. The node's observers use it to recognise
    /// events that cannot have mutated this node's state: anything
    /// dispatched outside the range only *deposits* into the NIC buffer
    /// (balancer / chain-coordinator arrivals), which no power or
    /// package-state derivation reads. The default covers every component,
    /// which is always safe (no skipping).
    pub component_range: (usize, usize),
    /// The SoC structural model.
    pub soc: SkxSoc,
    /// NIC arrival buffering (coalescing window).
    pub nic: NicState,
    /// Work queues and per-core occupancy.
    pub sched: SchedState,
    /// Uncore availability, maintained by the package controller.
    pub uncore: UncoreStatus,
    /// Package-FSM facts mirrored by the package controller so event
    /// *emitters* can skip package events the controller would handle as
    /// no-ops (see [`PackageMirror`]).
    pub pkg: PackageMirror,
    /// Maintained count of outstanding client requests — always equal to
    /// what [`ServerState::outstanding_requests`] derives by scanning.
    /// Only two stage boundaries change the total, so only they touch it:
    /// the NIC-buffer deposit (+1, every arrival path goes through the
    /// shared `buffer_request` helper) and client service completion (−1);
    /// moves between buffer → queue → reserved → running are neutral. The
    /// JSQ and power-aware balancers read a load signal per node per
    /// arrival, so it must be O(1).
    pub outstanding: usize,
    /// Measurements.
    pub telemetry: TelemetryState,
    /// Workload name (for the run result).
    pub workload_name: &'static str,
    /// Offered request rate (for the run result).
    pub offered_rate: f64,
    /// Client network round-trip added to server-side latency.
    pub network_rtt: SimDuration,
}

impl ServerState {
    /// Builds the shared state for `config`; the SoC is constructed from the
    /// configured topology.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        let soc = config.soc.build();
        let cores = soc.cores().len();
        let mut telemetry = TelemetryState::new(cores);
        telemetry.timeseries = config
            .timeseries_interval
            .filter(|d| !d.is_zero())
            .map(TimeSeries::new);
        ServerState {
            soc,
            addrs: Addresses::default(),
            component_range: (0, usize::MAX),
            nic: NicState::default(),
            sched: SchedState::new(cores),
            uncore: UncoreStatus::default(),
            pkg: PackageMirror::default(),
            outstanding: 0,
            telemetry,
            workload_name: "",
            offered_rate: 0.0,
            network_rtt: SimDuration::ZERO,
            config,
        }
    }

    /// `true` when any core is active or has work in flight (the package
    /// cannot be considered idle).
    #[must_use]
    pub fn any_core_active(&self) -> bool {
        if self.soc.cores().any_active() {
            return true;
        }
        // No core is busy: work is in flight exactly when some core is
        // reserved/occupied, i.e. missing from the free set. (During boot
        // all cores are occupied *and* busy until their initial idle entry,
        // so the short-circuit above covers the window where the free set
        // alone would over-report; see `FreeCoreSet::new_all_occupied`.)
        let occupied = self.sched.free_cores.count() < self.sched.running.len();
        debug_assert_eq!(occupied, self.sched.any_work_in_flight());
        occupied
    }

    /// The instantaneous power breakdown implied by the current SoC state
    /// and memory utilisation — the single derivation shared by energy
    /// accounting, the power trace and the time-series sampler, so every
    /// reported power figure agrees on one definition.
    #[must_use]
    pub fn power_snapshot(&self) -> apc_power::model::PowerBreakdown {
        let busy = self.sched.busy_cores() as f64;
        let mem_util = busy / self.soc.cores().len().max(1) as f64;
        self.config.power.snapshot(&self.soc, mem_util)
    }

    /// Attributes the interval since the last accounting point to the power
    /// state currently held, advancing the energy meter to `to`.
    pub fn account_power(&mut self, to: SimTime) {
        let breakdown = self.power_snapshot();
        self.telemetry.energy.advance(to, &breakdown);
    }

    /// Closes every telemetry stream at the end of the measurement window.
    pub fn finish_telemetry(&mut self, end: SimTime) {
        self.account_power(end);
        self.telemetry.core_residency.finish(end);
        self.telemetry.package_residency.finish(end);
        self.telemetry.idle_tracker.finish(end);
    }

    /// The OS's bound on how long `core` will stay idle from `now`: the
    /// sooner of the core's next background timer and the NIC's armed
    /// coalesced-interrupt delivery. Both are events the kernel genuinely
    /// knows about (its own timer wheel, the interrupt it armed); open-loop
    /// client arrivals stay unpredictable. The idle governor uses this one
    /// bound on every idle entry, whichever path deposited the pending work
    /// — the standalone NIC and the cluster balancer/chain-coordinator all
    /// arm delivery through the same helper.
    #[must_use]
    pub fn predicted_idle_bound(&self, core: usize, now: SimTime) -> SimDuration {
        self.sched.next_background_at[core]
            .min(self.nic.next_deliver_at)
            .saturating_since(now)
    }

    /// Number of client requests currently outstanding at this node: buffered
    /// in the NIC, queued for dispatch, reserved on a waking core or in
    /// service. The join-shortest-queue routing policy's load signal.
    #[must_use]
    pub fn outstanding_requests(&self) -> usize {
        let client = |w: &Option<WorkItem>| matches!(w, Some(WorkItem::Client(_)));
        self.nic.buffer.len()
            + self.sched.client_queue.len()
            + self.sched.running.iter().filter(|w| client(w)).count()
            + self
                .sched
                .pending_start
                .iter()
                .filter(|w| client(w))
                .count()
    }
}

/// Node-scoped access to the shared state of a simulation hosting one or
/// more complete servers.
///
/// Every server component carries the index of the node it belongs to and
/// reaches its node's [`ServerState`] through this trait, so the same
/// component code runs unchanged inside a standalone
/// [`crate::sim::ServerSimulation`] (where the shared type *is* the one
/// `ServerState`) and inside a [`crate::cluster::ClusterSimulation`] (where
/// the shared type is a [`ClusterState`] holding N of them).
pub trait HasNode {
    /// The state of node `index`.
    fn node(&self, index: usize) -> &ServerState;
    /// Mutable state of node `index`.
    fn node_mut(&mut self, index: usize) -> &mut ServerState;
    /// Number of nodes hosted by the simulation.
    fn node_count(&self) -> usize;
    /// The cluster's network fabric, when one is configured. Defaults to
    /// `None` — a standalone server has no fabric and a cluster without a
    /// `[network]` configuration behaves identically to one — so every
    /// transmission helper (see [`super::fabric`]) degrades to the
    /// instantaneous pre-fabric path.
    fn fabric_mut(&mut self) -> Option<&mut super::fabric::FabricState> {
        None
    }
    /// Intercepts a chain leaf's completion report instead of letting the
    /// executing core emit [`ChainLeafDone`](super::ServerEvent::ChainLeafDone)
    /// locally. The default — a sequential simulation, where the coordinator
    /// shares the event loop — declines, keeping the emission path
    /// op-identical to the pre-partition code. A parallel partition returns
    /// `true` and logs `(now, chain)` so the driver can replay the report
    /// against the hub-owned coordinator (and the hub-owned network fabric,
    /// whose link occupancy all report transmissions share) at the epoch
    /// barrier, in global time order.
    fn capture_leaf_report(&mut self, _node: usize, _now: SimTime, _chain: u64) -> bool {
        false
    }
    /// The simulation's request-tracing state, when tracing is enabled.
    /// Defaults to `None` (tracing off). A standalone server resolves it to
    /// the node's [`TelemetryState::trace`]; a cluster resolves it to the
    /// shared [`ClusterState::trace`] so one sampler and one span log cover
    /// requests that cross nodes.
    fn trace_mut(&mut self) -> Option<&mut TraceState> {
        None
    }
}

/// The single-server case: the state is its own (only) node.
impl HasNode for ServerState {
    fn node(&self, index: usize) -> &ServerState {
        debug_assert_eq!(index, 0, "single-server state has only node 0");
        self
    }

    fn node_mut(&mut self, index: usize) -> &mut ServerState {
        debug_assert_eq!(index, 0, "single-server state has only node 0");
        self
    }

    fn node_count(&self) -> usize {
        1
    }

    fn trace_mut(&mut self) -> Option<&mut TraceState> {
        self.telemetry.trace.as_mut()
    }
}

/// The state shared by every component of a cluster simulation: one complete
/// [`ServerState`] per node, hosted in a single event loop.
#[derive(Debug)]
pub struct ClusterState {
    /// Per-node server state, indexed by node number.
    pub nodes: Vec<ServerState>,
    /// The network fabric every routed RPC and leaf report crosses; `None`
    /// keeps the instantaneous-deposit behaviour.
    pub fabric: Option<super::fabric::FabricState>,
    /// Cluster-wide request tracing: one sampler and one span log shared by
    /// every node, because a routed request's span tree crosses nodes.
    /// `None` when tracing is off.
    pub trace: Option<TraceState>,
}

impl ClusterState {
    /// Builds the cluster state for one [`ServerConfig`] per node, without a
    /// network fabric (instantaneous deposits).
    #[must_use]
    pub fn new(configs: Vec<ServerConfig>) -> Self {
        ClusterState {
            nodes: configs.into_iter().map(ServerState::new).collect(),
            fabric: None,
            trace: None,
        }
    }
}

impl HasNode for ClusterState {
    fn node(&self, index: usize) -> &ServerState {
        &self.nodes[index]
    }

    fn node_mut(&mut self, index: usize) -> &mut ServerState {
        &mut self.nodes[index]
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn fabric_mut(&mut self) -> Option<&mut super::fabric::FabricState> {
        self.fabric.as_mut()
    }

    fn trace_mut(&mut self) -> Option<&mut TraceState> {
        self.trace.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ServerConfig;

    #[test]
    fn free_core_set_basic_operations() {
        let mut set = FreeCoreSet::new_all_occupied(10);
        assert_eq!(set.lowest(), None);
        assert_eq!(set.count(), 0);
        set.insert(7);
        set.insert(3);
        assert!(set.contains(3) && set.contains(7) && !set.contains(4));
        assert_eq!(set.lowest(), Some(3));
        assert_eq!(set.lowest_at_or_after(4), Some(7));
        assert_eq!(set.lowest_at_or_after(8), None);
        set.remove(3);
        assert_eq!(set.lowest(), Some(7));
        assert_eq!(set.count(), 1);
    }

    #[test]
    fn free_core_set_crosses_word_boundaries() {
        let mut set = FreeCoreSet::new_all_occupied(130);
        set.insert(129);
        set.insert(64);
        assert_eq!(set.lowest(), Some(64));
        assert_eq!(set.lowest_at_or_after(65), Some(129));
        assert_eq!(set.lowest_at_or_after(130), None);
        set.remove(64);
        assert_eq!(set.lowest(), Some(129));
        assert_eq!(set.count(), 1);
    }

    #[test]
    fn free_core_set_mirrors_core_is_free() {
        // Freeing/occupying through the SchedState helpers keeps the bitset
        // in lock-step with the slow predicate it replaces.
        let config = ServerConfig::c_pc1a();
        let mut state = ServerState::new(config);
        let cores = state.soc.cores().len();
        assert!(cores >= 10, "reference topology has 10+ cores");
        // Boot state: every core busy, nothing free either way.
        for c in 0..cores {
            assert!(!state.sched.core_is_free(&state.soc, c));
            assert!(!state.sched.free_cores.contains(c));
        }
        // Idle the even cores the way the core component does.
        let now = apc_sim::SimTime::from_micros(1);
        for c in (0..cores).step_by(2) {
            state
                .soc
                .cores_mut()
                .core_mut(apc_soc::core::CoreId(c))
                .begin_idle(now, apc_soc::cstate::CoreCState::CC1);
            state.sched.mark_free(c);
        }
        for c in 0..cores {
            assert_eq!(
                state.sched.core_is_free(&state.soc, c),
                state.sched.free_cores.contains(c),
                "bitset out of sync for core {c}"
            );
        }
        assert_eq!(state.sched.free_cores.lowest(), Some(0));
        // Reserving a core (scheduler assign path) re-occupies it.
        state.sched.pending_start[0] = Some(WorkItem::Background {
            work: SimDuration::from_micros(5),
        });
        state.sched.mark_occupied(0);
        assert!(!state.sched.core_is_free(&state.soc, 0));
        assert_eq!(state.sched.free_cores.lowest(), Some(2));
    }

    #[test]
    fn outstanding_requests_counts_every_stage() {
        let mut state = ServerState::new(ServerConfig::c_pc1a());
        assert_eq!(state.outstanding_requests(), 0);
        let request = || {
            apc_workloads::request::Request::new(
                apc_workloads::request::RequestId(0),
                apc_workloads::request::RequestClass::KvGet,
                apc_sim::SimTime::ZERO,
                SimDuration::from_micros(10),
            )
        };
        state.nic.buffer.push_back(request());
        state.sched.client_queue.push_back(request());
        state.sched.running[0] = Some(WorkItem::Client(request()));
        state.sched.pending_start[1] = Some(WorkItem::Client(request()));
        // Background work never counts.
        state.sched.running[2] = Some(WorkItem::Background {
            work: SimDuration::from_micros(5),
        });
        assert_eq!(state.outstanding_requests(), 4);
    }
}
