//! State shared by every simulation component.
//!
//! The rule of thumb: state mutated by one component but *observed* by
//! another (the SoC models, work queues, uncore availability, telemetry)
//! lives here; state with a single owner (the APMU FSM, a core's transition
//! epoch, the NIC's coalescing buffer) lives inside its component.

use std::collections::VecDeque;

use apc_power::energy::EnergyMeter;
use apc_power::units::Watts;
use apc_sim::{SimDuration, SimTime};
use apc_soc::core::CoreActivity;
use apc_soc::cstate::PackageCState;
use apc_soc::topology::SkxSoc;
use apc_telemetry::idle::IdlePeriodTracker;
use apc_telemetry::latency::LatencyRecorder;
use apc_telemetry::residency::{CoreResidencySet, PackageResidency};
use apc_workloads::request::Request;

use super::{Addresses, WorkItem};
use crate::config::ServerConfig;

/// Work-queue and per-core occupancy state, read by the scheduler and
/// mutated by the NIC, the cores and the scheduler.
#[derive(Debug)]
pub struct SchedState {
    /// Client requests delivered by the NIC, waiting for a free core.
    pub client_queue: VecDeque<Request>,
    /// Per-core queues of pinned OS background work.
    pub background: Vec<VecDeque<SimDuration>>,
    /// Work currently executing on each core.
    pub running: Vec<Option<WorkItem>>,
    /// Work assigned to a core that is still completing its wake transition.
    pub pending_start: Vec<Option<WorkItem>>,
    /// When each core's next background timer fires (the OS knows its own
    /// timers, so the idle governor uses this as the predicted idle bound).
    pub next_background_at: Vec<SimTime>,
}

impl SchedState {
    /// Empty scheduling state for `cores` cores.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        SchedState {
            client_queue: VecDeque::new(),
            background: vec![VecDeque::new(); cores],
            running: vec![None; cores],
            pending_start: vec![None; cores],
            next_background_at: vec![SimTime::MAX; cores],
        }
    }

    /// `true` when `core` can accept new work.
    #[must_use]
    pub fn core_is_free(&self, soc: &SkxSoc, core: usize) -> bool {
        self.running[core].is_none()
            && self.pending_start[core].is_none()
            && soc.cores().core(apc_soc::core::CoreId(core)).activity() != CoreActivity::Busy
    }

    /// Number of cores currently executing work.
    #[must_use]
    pub fn busy_cores(&self) -> usize {
        self.running.iter().filter(|w| w.is_some()).count()
    }

    /// `true` when any core is running or about to run work.
    #[must_use]
    pub fn any_work_in_flight(&self) -> bool {
        self.running.iter().any(Option::is_some) || self.pending_start.iter().any(Option::is_some)
    }
}

/// Availability of the shared uncore (LLC, memory path), maintained by the
/// package controller and read by the scheduler.
#[derive(Debug, Clone, Copy)]
pub struct UncoreStatus {
    /// `true` when requests can execute (no package C-state in the way).
    /// While `false`, queued work stays put; the package controller emits a
    /// `Dispatch` the moment its exit flow completes.
    pub available: bool,
}

impl Default for UncoreStatus {
    fn default() -> Self {
        UncoreStatus { available: true }
    }
}

/// All measurement state: power/energy, latency, residencies, idle periods
/// and run counters.
#[derive(Debug)]
pub struct TelemetryState {
    /// Energy accumulation (power attribution over elapsed intervals).
    pub energy: EnergyMeter,
    /// Client-visible request latency.
    pub latency: LatencyRecorder,
    /// Per-core C-state residency.
    pub core_residency: CoreResidencySet,
    /// Package C-state residency.
    pub package_residency: PackageResidency,
    /// Fully-idle period statistics (SoCWatch floor applied).
    pub idle_tracker: IdlePeriodTracker,
    /// Client-visible requests completed.
    pub completed_requests: u64,
    /// Total busy core-time accumulated.
    pub busy_core_time: SimDuration,
    /// Optional instantaneous power trace `(time, soc_power)`, filled by the
    /// power component when sampling is enabled.
    pub power_trace: Vec<(SimTime, Watts)>,
}

impl TelemetryState {
    /// Fresh telemetry for `cores` cores starting at t = 0.
    #[must_use]
    pub fn new(cores: usize) -> Self {
        TelemetryState {
            energy: EnergyMeter::new(SimTime::ZERO),
            latency: LatencyRecorder::new(),
            core_residency: CoreResidencySet::new(cores, SimTime::ZERO),
            package_residency: PackageResidency::new(PackageCState::PC0, SimTime::ZERO),
            idle_tracker: IdlePeriodTracker::with_socwatch_floor(cores, SimTime::ZERO),
            completed_requests: 0,
            busy_core_time: SimDuration::ZERO,
            power_trace: Vec::new(),
        }
    }
}

/// The state shared by every component of one server simulation.
#[derive(Debug)]
pub struct ServerState {
    /// The run configuration (platform, power model, NIC, noise).
    pub config: ServerConfig,
    /// Peer component ids, filled by the driver after registration.
    pub addrs: Addresses,
    /// The SoC structural model.
    pub soc: SkxSoc,
    /// Work queues and per-core occupancy.
    pub sched: SchedState,
    /// Uncore availability, maintained by the package controller.
    pub uncore: UncoreStatus,
    /// Measurements.
    pub telemetry: TelemetryState,
    /// Workload name (for the run result).
    pub workload_name: &'static str,
    /// Offered request rate (for the run result).
    pub offered_rate: f64,
    /// Client network round-trip added to server-side latency.
    pub network_rtt: SimDuration,
}

impl ServerState {
    /// Builds the shared state for `config`; the SoC is constructed from the
    /// configured topology.
    #[must_use]
    pub fn new(config: ServerConfig) -> Self {
        let soc = config.soc.build();
        let cores = soc.cores().len();
        ServerState {
            soc,
            addrs: Addresses::default(),
            sched: SchedState::new(cores),
            uncore: UncoreStatus::default(),
            telemetry: TelemetryState::new(cores),
            workload_name: "",
            offered_rate: 0.0,
            network_rtt: SimDuration::ZERO,
            config,
        }
    }

    /// `true` when any core is active or has work in flight (the package
    /// cannot be considered idle).
    #[must_use]
    pub fn any_core_active(&self) -> bool {
        self.soc.cores().active_count() > 0 || self.sched.any_work_in_flight()
    }

    /// Attributes the interval since the last accounting point to the power
    /// state currently held, advancing the energy meter to `to`.
    pub fn account_power(&mut self, to: SimTime) {
        let busy = self.sched.busy_cores() as f64;
        let mem_util = busy / self.soc.cores().len().max(1) as f64;
        let breakdown = self.config.power.snapshot(&self.soc, mem_util);
        self.telemetry.energy.advance(to, &breakdown);
    }

    /// Closes every telemetry stream at the end of the measurement window.
    pub fn finish_telemetry(&mut self, end: SimTime) {
        self.account_power(end);
        self.telemetry.core_residency.finish(end);
        self.telemetry.package_residency.finish(end);
        self.telemetry.idle_tracker.finish(end);
    }
}
