//! Network fabric component: routed RPCs and leaf-completion reports cross
//! the modelled datacenter network instead of teleporting.
//!
//! The wire-delay model itself lives in [`apc_network`]; this module is the
//! glue binding it into the cluster event loop:
//!
//! * [`FabricState`] — the [`apc_network::NetworkState`] plus the fabric
//!   component's id, stored in the shared cluster state and reached through
//!   [`HasNode::fabric_mut`];
//! * [`Fabric`] — the registered component receiving
//!   [`ServerEvent::WireDeliver`] events and depositing the request into the
//!   destination node's NIC buffer through the same
//!   `buffer_request` helper the balancer uses;
//! * `deliver_routed` / `report_delay` — the two transmission
//!   directions: balancer/coordinator → node (a routed RPC) and node →
//!   coordinator (a chain leaf's completion report).
//!
//! # The bit-identity contract
//!
//! When the fabric is absent — or configured but
//! [instantaneous](apc_network::NetworkConfig::is_instantaneous) — routed
//! requests are deposited *synchronously*, with no event hop: the code path
//! reduces to exactly the pre-fabric one, so the zero-latency fabric is
//! bit-identical to no fabric at all (same event sequence, same FIFO order,
//! same RNG draws, same `predicted_idle_bound`). Only a transmission with
//! nonzero wire delay schedules a [`ServerEvent::WireDeliver`] through the
//! timer wheel. `crates/server/tests/network_differential.rs` enforces this
//! op-for-op.

use apc_sim::component::{ComponentId, EventHandler, SimulationContext};
use apc_sim::{SimDuration, SimTime};
use apc_workloads::request::Request;

use apc_network::{NetworkConfig, NetworkState};

use super::nic::buffer_request;
use super::state::HasNode;
use super::ServerEvent;

/// The shared-state half of the network fabric: the wire-delay model plus
/// the address of the [`Fabric`] component that completes deferred
/// deliveries.
#[derive(Debug, Clone)]
pub struct FabricState {
    /// The wire-delay model: resolved topology, per-link occupancy, stats.
    pub net: NetworkState,
    /// The registered [`Fabric`] component's id — the destination of
    /// [`ServerEvent::WireDeliver`] events.
    pub component: ComponentId,
}

impl FabricState {
    /// Builds the fabric for a cluster of `servers` nodes. `component` is
    /// the id returned from registering the [`Fabric`] component.
    #[must_use]
    pub fn new(config: NetworkConfig, servers: usize, component: ComponentId) -> Self {
        FabricState {
            net: NetworkState::new(config, servers),
            component,
        }
    }
}

/// The fabric component: the delivery end of every in-flight wire
/// transmission. Receives [`ServerEvent::WireDeliver`] when a routed RPC's
/// wire delay elapses and hands the request to the destination node's NIC
/// exactly as the balancer would have.
pub struct Fabric;

impl<S: HasNode> EventHandler<ServerEvent, S> for Fabric {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut S,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        match event {
            ServerEvent::WireDeliver { node, request } => {
                buffer_request(shared.node_mut(node), ctx, request);
            }
            other => unreachable!("fabric received unexpected event {other:?}"),
        }
    }
}

/// Deposits a routed request into node `target`'s NIC through the network
/// fabric (balancer / chain-coordinator → node direction).
///
/// Without a fabric, or when the transmission takes zero wire time, the
/// deposit happens synchronously through [`buffer_request`] — the exact
/// pre-fabric code path. A nonzero wire delay instead schedules
/// [`ServerEvent::WireDeliver`] on the [`Fabric`] component.
pub(crate) fn deliver_routed<S: HasNode>(
    shared: &mut S,
    ctx: &mut SimulationContext<'_, ServerEvent>,
    target: usize,
    request: Request,
) {
    let (delay, component) = match shared.fabric_mut() {
        None => (SimDuration::ZERO, None),
        Some(fabric) => {
            let client = fabric.net.client();
            (
                fabric.net.transmit(client, target, ctx.now()),
                Some(fabric.component),
            )
        }
    };
    if delay.is_zero() {
        buffer_request(shared.node_mut(target), ctx, request);
    } else {
        let component = component.expect("nonzero wire delay requires a fabric");
        ctx.emit(
            component,
            delay,
            ServerEvent::WireDeliver {
                node: target,
                request,
            },
        );
    }
}

/// The wire delay of a chain leaf's completion report from node `node` back
/// to the coordinator endpoint (node → coordinator direction). Zero without
/// a fabric; the caller emits [`ServerEvent::ChainLeafDone`] after this
/// delay, which with a zero delay is the exact pre-fabric `emit_now`.
pub(crate) fn report_delay<S: HasNode>(shared: &mut S, node: usize, now: SimTime) -> SimDuration {
    match shared.fabric_mut() {
        None => SimDuration::ZERO,
        Some(fabric) => {
            let client = fabric.net.client();
            fabric.net.transmit(node, client, now)
        }
    }
}
