//! Power and energy accounting component.

use apc_power::model::PowerBreakdown;
use apc_sim::component::{ComponentId, EventHandler, SimulationContext};
use apc_sim::{SimDuration, SimTime};

use super::state::HasNode;
use super::ServerEvent;

/// Attributes elapsed simulated time to the power state that held during it.
///
/// The pre-dispatch hook runs before *every* event's state changes are
/// applied, so each interval between events is charged at the power level
/// that actually held across it — the same invariant the monolithic loop
/// maintained by calling `account_power` at the top of its event loop.
///
/// The power breakdown is a pure function of three inputs: the uncore
/// component states, the per-core C-state vector and the busy-core count
/// (which fixes memory utilisation). The component caches the breakdown
/// keyed on all three — the SoC's
/// [`uncore_change_epoch`](apc_soc::topology::SkxSoc::uncore_change_epoch),
/// the injective
/// [`cstate_fingerprint`](apc_soc::core::CoreSet::cstate_fingerprint) and
/// `busy_cores()` — and recomputes only when a key moved; zero-length
/// intervals skip the breakdown entirely. Equal keys guarantee a recompute
/// would reproduce the cached value bit for bit (same inputs through the
/// same float operations), so both shortcuts preserve the
/// recompute-every-event accounting exactly — same intervals, same
/// piecewise-constant power values. (A `None` fingerprint — more cores
/// than the encoding can hold — disables the cache rather than risking a
/// stale hit.)
///
/// When a sampling interval is configured the component also records an
/// instantaneous SoC power trace, useful for debugging entry/exit flows.
pub struct PowerTelemetry {
    node: usize,
    sample_every: Option<SimDuration>,
    /// `(uncore change-epoch, core C-state fingerprint, busy-core count,
    /// breakdown)` as of the last recomputation; stale once any key differs
    /// from the node's current value.
    cached: Option<(u64, u64, usize, PowerBreakdown)>,
}

impl PowerTelemetry {
    /// Creates the accounting component for node `node`; `sample_every`
    /// enables the optional instantaneous power trace. A zero interval is
    /// treated as disabled — re-arming a sample at the current timestamp
    /// would stall the event loop at one instant forever.
    #[must_use]
    pub fn new(node: usize, sample_every: Option<SimDuration>) -> Self {
        PowerTelemetry {
            node,
            sample_every: sample_every.filter(|d| !d.is_zero()),
            cached: None,
        }
    }
}

impl<S: HasNode> EventHandler<ServerEvent, S> for PowerTelemetry {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut S,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        debug_assert!(matches!(event, ServerEvent::PowerSample));
        let _ = event;
        let shared = shared.node_mut(self.node);
        let Some(every) = self.sample_every else {
            return;
        };
        let snapshot = shared.power_snapshot();
        shared
            .telemetry
            .power_trace
            .push((ctx.now(), snapshot.soc_total()));
        ctx.emit_self(every, ServerEvent::PowerSample);
    }

    fn observes_dispatch(&self) -> bool {
        true
    }

    fn observes_post_dispatch(&self) -> bool {
        false
    }

    fn on_pre_dispatch(&mut self, now: SimTime, _dst: ComponentId, shared: &mut S) {
        let node = shared.node_mut(self.node);
        if now <= node.telemetry.energy.last() {
            // Zero-length interval: `advance` would be a no-op, so the
            // breakdown is not needed at all.
            return;
        }
        let epoch = node.soc.uncore_change_epoch();
        let busy = node.sched.busy_cores();
        let breakdown = match (node.soc.cores().cstate_fingerprint(), &self.cached) {
            (Some(fp), Some((e, f, b, cached))) if *e == epoch && *f == fp && *b == busy => cached,
            (Some(fp), _) => {
                self.cached = Some((epoch, fp, busy, node.power_snapshot()));
                &self.cached.as_ref().expect("cache filled above").3
            }
            // Too many cores for the fingerprint: no caching, recompute.
            (None, _) => {
                self.cached = Some((epoch, 0, usize::MAX, node.power_snapshot()));
                &self.cached.as_ref().expect("cache filled above").3
            }
        };
        node.telemetry.energy.advance(now, breakdown);
    }
}
