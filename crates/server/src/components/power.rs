//! Power and energy accounting component.

use apc_sim::component::{EventHandler, SimulationContext};
use apc_sim::{SimDuration, SimTime};

use super::state::HasNode;
use super::ServerEvent;

/// Attributes elapsed simulated time to the power state that held during it.
///
/// The pre-dispatch hook runs before *every* event's state changes are
/// applied, so each interval between events is charged at the power level
/// that actually held across it — the same invariant the monolithic loop
/// maintained by calling `account_power` at the top of its event loop.
///
/// When a sampling interval is configured the component also records an
/// instantaneous SoC power trace, useful for debugging entry/exit flows.
pub struct PowerTelemetry {
    node: usize,
    sample_every: Option<SimDuration>,
}

impl PowerTelemetry {
    /// Creates the accounting component for node `node`; `sample_every`
    /// enables the optional instantaneous power trace. A zero interval is
    /// treated as disabled — re-arming a sample at the current timestamp
    /// would stall the event loop at one instant forever.
    #[must_use]
    pub fn new(node: usize, sample_every: Option<SimDuration>) -> Self {
        PowerTelemetry {
            node,
            sample_every: sample_every.filter(|d| !d.is_zero()),
        }
    }
}

impl<S: HasNode> EventHandler<ServerEvent, S> for PowerTelemetry {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut S,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        debug_assert!(matches!(event, ServerEvent::PowerSample));
        let _ = event;
        let shared = shared.node_mut(self.node);
        let Some(every) = self.sample_every else {
            return;
        };
        let snapshot = shared.power_snapshot();
        shared
            .telemetry
            .power_trace
            .push((ctx.now(), snapshot.soc_total()));
        ctx.emit_self(every, ServerEvent::PowerSample);
    }

    fn observes_dispatch(&self) -> bool {
        true
    }

    fn on_pre_dispatch(&mut self, now: SimTime, shared: &mut S) {
        shared.node_mut(self.node).account_power(now);
    }
}
