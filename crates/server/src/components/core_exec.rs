//! Per-core execution component: wake transitions, request service, idle
//! entry and OS background noise.

use apc_core::apmu::WakeCause;
use apc_pmu::config::PackagePolicy;
use apc_pmu::governor::IdleGovernor;
use apc_sim::component::{EventHandler, SimulationContext};
use apc_sim::SimTime;
use apc_soc::core::CoreId;
use apc_soc::cstate::CoreCState;
use apc_trace::{Span, SpanKind, TraceCtx, TraceState};
use apc_workloads::spec::BackgroundNoise;

use super::fabric;
use super::state::{HasNode, ServerState};
use super::{ServerEvent, WorkItem};

/// Static name of a core C-state, for [`Span`] labels (spans hold
/// `&'static str`, so the `Display` impl cannot be used).
fn cstate_name(state: CoreCState) -> &'static str {
    match state {
        CoreCState::CC0 => "CC0",
        CoreCState::CC1 => "CC1",
        CoreCState::CC1E => "CC1E",
        CoreCState::CC6 => "CC6",
    }
}

/// One simulated core: executes assigned work, runs the OS idle governor
/// when the run queue drains, and fires the periodic background (OS) timer.
///
/// Each instance is registered as its own component (`core 0` … `core N-1`,
/// name-prefixed per node in a cluster) with a private RNG stream for noise
/// sampling and a private transition epoch: the epoch is bumped whenever a
/// new C-state transition starts, so completion events from superseded
/// transitions are recognised as stale and dropped.
pub struct CoreExec {
    node: usize,
    index: usize,
    governor: IdleGovernor,
    noise: Option<BackgroundNoise>,
    epoch: u64,
}

impl CoreExec {
    /// Creates the execution component for core `index` of node `node`.
    #[must_use]
    pub fn new(
        node: usize,
        index: usize,
        governor: IdleGovernor,
        noise: Option<BackgroundNoise>,
    ) -> Self {
        CoreExec {
            node,
            index,
            governor,
            noise,
            epoch: 0,
        }
    }

    fn core_id(&self) -> CoreId {
        CoreId(self.index)
    }

    fn on_background_tick(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let Some(noise) = self.noise.clone() else {
            return;
        };
        let work = noise.sample_work(ctx.rng());
        shared.sched.background[self.index].push_back(work);
        shared.sched.background_pending.insert(self.index);
        // Background work is initiated by a timer interrupt: it wakes the
        // package if necessary, then the scheduler places it. Unless the
        // package is in (or entering) a package C-state the wake would be a
        // no-op — skip the event (see `PackageMirror::wakeable`).
        if shared.pkg.wakeable {
            ctx.emit_now(
                shared.addrs.package,
                ServerEvent::PackageWake {
                    cause: WakeCause::CoreInterrupt,
                },
            );
        }
        ctx.emit_now(shared.addrs.scheduler, ServerEvent::Dispatch);
        // Arm the next tick.
        let next = ctx.now() + noise.sample_interval(ctx.rng());
        shared.sched.next_background_at[self.index] = next;
        ctx.emit_self_at(next, ServerEvent::BackgroundTick);
    }

    fn on_begin_wake(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let now = ctx.now();
        // Read the C-state being exited before `begin_wakeup` replaces it, so
        // a traced request's wake span names the state whose exit latency it
        // actually paid.
        let leaving = shared.soc.cores().core(self.core_id()).cstate();
        let exit = shared
            .soc
            .cores_mut()
            .core_mut(self.core_id())
            .begin_wakeup(now);
        if let Some(WorkItem::Client(request)) = shared.sched.pending_start[self.index].as_mut() {
            if let Some(trace) = request.trace.as_mut() {
                trace.wake_start = Some(now);
                trace.wake_cstate = Some(cstate_name(leaving));
            }
        }
        shared.telemetry.idle_tracker.core_active(now);
        self.epoch += 1;
        ctx.emit_self(exit, ServerEvent::WakeDone { epoch: self.epoch });
    }

    fn on_wake_done(
        &mut self,
        epoch: u64,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        if self.epoch != epoch {
            return;
        }
        let now = ctx.now();
        shared
            .soc
            .cores_mut()
            .core_mut(self.core_id())
            .complete_transition(now);
        shared
            .telemetry
            .core_residency
            .transition(self.core_id(), now, CoreCState::CC0);
        // Leaving ACC1: the first core to run again clears AllowL0s (the
        // package controller owns that edge; the edge only exists under the
        // PC1A policy, and only while the APMU actually sits in ACC1 — any
        // other state handles `CoreActive` as a no-op, so skip the event).
        if shared.pkg.acc1_armed {
            ctx.emit_now(shared.addrs.package, ServerEvent::CoreActive);
        }
        let item = shared.sched.pending_start[self.index]
            .take()
            .expect("a waking core must have pending work");
        self.start_service(item, shared, ctx);
    }

    fn start_service(
        &mut self,
        mut item: WorkItem,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        if let WorkItem::Client(request) = &mut item {
            if let Some(trace) = request.trace.as_mut() {
                trace.service_start = Some(ctx.now());
            }
        }
        let service = match &item {
            WorkItem::Client(r) => r.service + shared.config.softirq_overhead,
            WorkItem::Background { work } => *work,
        };
        shared.sched.running[self.index] = Some(item);
        ctx.emit_self(service, ServerEvent::ServiceDone);
    }

    fn on_service_done<S: HasNode>(
        &mut self,
        shared: &mut S,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let now = ctx.now();
        let node = shared.node_mut(self.node);
        let item = node.sched.running[self.index]
            .take()
            .expect("core had no running work");
        let mut leaf_report = None;
        let mut finished_trace = None;
        match item {
            WorkItem::Client(request) => {
                node.outstanding -= 1;
                let server_side = now.saturating_since(request.arrival);
                let total = server_side + node.network_rtt;
                if request.class.is_client_visible() {
                    node.telemetry.latency.record(total);
                    node.telemetry.completed_requests += 1;
                }
                node.telemetry.busy_core_time += request.service + node.config.softirq_overhead;
                // A chain-tagged RPC reports its completion to the chain
                // coordinator, which joins it into the fan-out and issues
                // the next tier (or records the chain's end-to-end latency).
                leaf_report = request.chain;
                finished_trace = request.trace;
            }
            WorkItem::Background { work } => {
                node.telemetry.busy_core_time += work;
            }
        }
        let mut wire_back = None;
        if let Some(tag) = leaf_report {
            // The report crosses the network fabric back to the coordinator
            // endpoint; without a fabric (or with an instantaneous one) the
            // zero delay makes this the exact pre-fabric `emit_now`. In a
            // partitioned run the coordinator lives outside this partition:
            // the shared state captures the report instead and the parallel
            // driver replays it against the hub at the epoch barrier.
            if !shared.capture_leaf_report(self.node, now, tag.chain) {
                let delay = fabric::report_delay(shared, self.node, now);
                ctx.emit(
                    tag.coordinator,
                    delay,
                    ServerEvent::ChainLeafDone { chain: tag.chain },
                );
                wire_back = Some(delay);
            }
        }
        if let Some(trace_ctx) = finished_trace {
            if let Some(trace) = shared.trace_mut() {
                self.push_request_spans(trace, &trace_ctx, now, leaf_report.is_some(), wire_back);
            }
        }
        let shared = shared.node_mut(self.node);
        // Pick up more work without sleeping if any is available.
        if let Some(mut next) = shared.sched.client_queue.pop_front() {
            // Queue exit without a scheduler round: the already-awake core
            // pops the next request directly, so stamp its queue exit here.
            if let Some(trace) = next.trace.as_mut() {
                trace.assigned = Some(now);
            }
            self.start_service(WorkItem::Client(next), shared, ctx);
            return;
        }
        if let Some(work) = shared.sched.background[self.index].pop_front() {
            if shared.sched.background[self.index].is_empty() {
                shared.sched.background_pending.remove(self.index);
            }
            self.start_service(WorkItem::Background { work }, shared, ctx);
            return;
        }
        self.begin_idle(now, shared, ctx);
    }

    /// Turns a completed request's stamps into the causal span chain
    /// {wire-out, coalesce, queue, wake, service} on this node, plus the
    /// root span (plain requests) or the wire-back span (chain RPCs, whose
    /// root/tier/join spans the coordinator owns).
    ///
    /// Missing stamps inherit the previous boundary, degrading skipped
    /// stages to zero-length spans, so the chain is always contiguous:
    /// the five pipeline spans sum exactly to `now - arrival`.
    fn push_request_spans(
        &self,
        trace: &mut TraceState,
        trace_ctx: &TraceCtx,
        now: SimTime,
        is_chain_rpc: bool,
        wire_back: Option<apc_sim::SimDuration>,
    ) {
        let node = self.node as u32;
        let lane = 1 + self.index as u32;
        let arrival = trace_ctx.arrival;
        let deposited = trace_ctx.deposited.unwrap_or(arrival);
        let delivered = trace_ctx.delivered.unwrap_or(deposited);
        let assigned = trace_ctx.assigned.unwrap_or(delivered);
        let wake_start = trace_ctx.wake_start.unwrap_or(assigned);
        let service_start = trace_ctx.service_start.unwrap_or(wake_start);
        let span = |kind, label, lane, start, end| Span {
            trace: trace_ctx.trace,
            kind,
            label,
            node,
            lane,
            start,
            end,
        };
        trace
            .log
            .push(span(SpanKind::WireOut, "", 0, arrival, deposited));
        trace
            .log
            .push(span(SpanKind::Coalesce, "", 0, deposited, delivered));
        trace
            .log
            .push(span(SpanKind::Queue, "", 0, delivered, assigned));
        let cstate = trace_ctx.wake_cstate.unwrap_or("CC0");
        trace.log.push(span(
            SpanKind::Wake,
            cstate,
            lane,
            wake_start,
            service_start,
        ));
        trace
            .log
            .push(span(SpanKind::Service, "", lane, service_start, now));
        if is_chain_rpc {
            if let Some(delay) = wire_back {
                trace
                    .log
                    .push(span(SpanKind::WireBack, "", 0, now, now + delay));
            }
        } else {
            trace.log.push(span(SpanKind::Root, "", 0, arrival, now));
        }
    }

    fn begin_idle(
        &mut self,
        now: SimTime,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        // Predicted idle: the time until the next event the OS knows about —
        // this core's background timer or the NIC's armed coalesced
        // delivery (open-loop client arrivals stay unpredictable). The bound
        // is shared by every arrival path, so a core idling while a fan-out
        // sibling's request sits in the coalescing buffer will not pick CC6
        // against a known-imminent interrupt.
        let predicted = shared.predicted_idle_bound(self.index, now);
        let target = self.governor.select(predicted);
        let entry = shared
            .soc
            .cores_mut()
            .core_mut(self.core_id())
            .begin_idle(now, target);
        shared.telemetry.idle_tracker.core_idle(now);
        // The core can accept new work from this point on (an assignment
        // would abort the idle entry): tell the scheduler's free-core index.
        shared.sched.mark_free(self.index);
        self.epoch += 1;
        ctx.emit_self(entry, ServerEvent::IdleEntered { epoch: self.epoch });
    }

    fn on_idle_entered(
        &mut self,
        epoch: u64,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        if self.epoch != epoch {
            return;
        }
        let now = ctx.now();
        shared
            .soc
            .cores_mut()
            .core_mut(self.core_id())
            .complete_transition(now);
        let state = shared.soc.cores().core(self.core_id()).cstate();
        shared
            .telemetry
            .core_residency
            .transition(self.core_id(), now, state);
        // Package-level opportunity check (PC1A / PC6) is the package
        // controller's call to make. Skip the event when it cannot matter:
        // no package policy, or (PC1A) some core is still awake — the
        // controller would re-check and bail anyway.
        let emit_check = match shared.config.platform.package_policy {
            PackagePolicy::None => false,
            PackagePolicy::Pc1a => shared.soc.cores().all_in_cc1_or_deeper(),
            PackagePolicy::Pc6 => true,
        };
        if emit_check {
            ctx.emit_now(shared.addrs.package, ServerEvent::AllIdleCheck);
        }
    }
}

impl<S: HasNode> EventHandler<ServerEvent, S> for CoreExec {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut S,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        // ServiceDone keeps the whole shared state in reach: a finished
        // chain RPC's completion report crosses the cluster's network
        // fabric, which lives outside any single node.
        if matches!(event, ServerEvent::ServiceDone) {
            return self.on_service_done(shared, ctx);
        }
        let node = shared.node_mut(self.node);
        match event {
            ServerEvent::BackgroundTick => self.on_background_tick(node, ctx),
            ServerEvent::InitIdle => self.begin_idle(ctx.now(), node, ctx),
            ServerEvent::BeginWake => self.on_begin_wake(node, ctx),
            ServerEvent::WakeDone { epoch } => self.on_wake_done(epoch, node, ctx),
            ServerEvent::IdleEntered { epoch } => self.on_idle_entered(epoch, node, ctx),
            other => unreachable!("core {} received unexpected event {other:?}", self.index),
        }
    }
}
