//! Dispatch scheduler: places queued work onto free cores.

use apc_sim::component::{EventHandler, SimulationContext};

use super::state::ServerState;
use super::{ServerEvent, WorkItem};

/// Places queued work onto free cores whenever a `Dispatch` event fires.
///
/// Dispatch is gated on uncore availability: while a package C-state exit
/// flow is in flight, work stays queued and the package controller emits a
/// fresh `Dispatch` the moment the uncore is back. Background work is pinned
/// to its core; client requests go to any free core.
pub struct Scheduler;

impl EventHandler<ServerEvent, ServerState> for Scheduler {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        debug_assert!(matches!(event, ServerEvent::Dispatch));
        let _ = event;
        if !shared.uncore.available {
            // Every path that makes the uncore available again (ApmuExitDone,
            // GpmuExitDone) emits a Dispatch, so there is nothing to re-arm.
            return;
        }
        let cores = shared.sched.running.len();
        // Background work is pinned to its core.
        for core in 0..cores {
            if shared.sched.core_is_free(&shared.soc, core)
                && !shared.sched.background[core].is_empty()
            {
                let work = shared.sched.background[core].pop_front().expect("checked");
                self.assign(shared, ctx, core, WorkItem::Background { work });
            }
        }
        // Client requests go to any free core.
        while !shared.sched.client_queue.is_empty() {
            let Some(core) = (0..cores).find(|&c| shared.sched.core_is_free(&shared.soc, c)) else {
                break;
            };
            let request = shared.sched.client_queue.pop_front().expect("checked");
            self.assign(shared, ctx, core, WorkItem::Client(request));
        }
    }
}

impl Scheduler {
    /// Reserves `core` for `item` and tells the core to begin its wake
    /// transition. The reservation (`pending_start`) makes the core non-free
    /// immediately, so one dispatch round never double-assigns.
    fn assign(
        &self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
        core: usize,
        item: WorkItem,
    ) {
        let dst = shared.addrs.cores[core];
        shared.sched.pending_start[core] = Some(item);
        ctx.emit_now(dst, ServerEvent::BeginWake);
    }
}
