//! Dispatch scheduler: places queued work onto free cores.

use apc_sim::component::{EventHandler, SimulationContext};

use super::state::{HasNode, ServerState};
use super::{ServerEvent, WorkItem};

/// Places queued work onto free cores whenever a `Dispatch` event fires.
///
/// Dispatch is gated on uncore availability: while a package C-state exit
/// flow is in flight, work stays queued and the package controller emits a
/// fresh `Dispatch` the moment the uncore is back. Background work is pinned
/// to its core; client requests go to any free core.
///
/// Free cores are found through [`super::state::FreeCoreSet`], so each
/// assignment costs O(1) instead of an O(cores) scan per queued request;
/// assignment order (lowest free core index first) is identical to the scan
/// it replaced, keeping results bit-identical.
pub struct Scheduler {
    node: usize,
}

impl Scheduler {
    /// Creates the dispatch scheduler for node `node`.
    #[must_use]
    pub fn new(node: usize) -> Self {
        Scheduler { node }
    }
}

impl<S: HasNode> EventHandler<ServerEvent, S> for Scheduler {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut S,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        debug_assert!(matches!(event, ServerEvent::Dispatch));
        let _ = event;
        let shared = shared.node_mut(self.node);
        if !shared.uncore.available {
            // Every path that makes the uncore available again (ApmuExitDone,
            // GpmuExitDone) emits a Dispatch, so there is nothing to re-arm.
            return;
        }
        // Background work is pinned to its core: walk the cores that are
        // free AND have pinned work queued (one bitset intersection per 64
        // cores), in index order — the same cores, in the same order, the
        // old walk over all free cores found by probing each queue.
        let mut from = 0;
        while let Some(core) = shared
            .sched
            .free_cores
            .lowest_common_at_or_after(&shared.sched.background_pending, from)
        {
            let work = shared.sched.background[core].pop_front().expect("checked");
            if shared.sched.background[core].is_empty() {
                shared.sched.background_pending.remove(core);
            }
            self.assign(shared, ctx, core, WorkItem::Background { work });
            from = core + 1;
        }
        // Client requests go to any free core (lowest index first).
        while !shared.sched.client_queue.is_empty() {
            let Some(core) = shared.sched.free_cores.lowest() else {
                break;
            };
            let request = shared.sched.client_queue.pop_front().expect("checked");
            self.assign(shared, ctx, core, WorkItem::Client(request));
        }
    }
}

impl Scheduler {
    /// Reserves `core` for `item` and tells the core to begin its wake
    /// transition. The reservation (`pending_start`) makes the core non-free
    /// immediately, so one dispatch round never double-assigns.
    fn assign(
        &self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
        core: usize,
        item: WorkItem,
    ) {
        debug_assert!(
            shared.sched.core_is_free(&shared.soc, core),
            "free-core set out of sync: core {core} is not free"
        );
        let dst = shared.addrs.cores[core];
        let mut item = item;
        if let WorkItem::Client(request) = &mut item {
            if let Some(trace) = request.trace.as_mut() {
                trace.assigned = Some(ctx.now());
            }
        }
        shared.sched.pending_start[core] = Some(item);
        shared.sched.mark_occupied(core);
        ctx.emit_now(dst, ServerEvent::BeginWake);
    }
}
