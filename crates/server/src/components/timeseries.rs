//! Periodic time-series sampler component.
//!
//! When [`crate::config::ServerConfig::timeseries_interval`] is set, the
//! node builder registers one `TimeSeriesSampler` per node. The sampler
//! re-arms itself every interval and appends one
//! [`apc_telemetry::timeseries::TimeSeriesSample`] to the node's
//! [`TelemetryState::timeseries`](super::state::TelemetryState::timeseries):
//! instantaneous SoC power, queue depth, busy cores, the current package
//! C-state and the per-state package residency *deltas* since the previous
//! sample.
//!
//! The sampler is read-only with respect to simulation behaviour: it draws
//! no randomness and emits only its own re-arm event, so enabling it never
//! changes request-level outcomes (completions, latencies, transitions) of
//! an otherwise identical run.

use apc_sim::component::{EventHandler, SimulationContext};
use apc_sim::SimDuration;
use apc_soc::cstate::PackageCState;
use apc_telemetry::timeseries::TimeSeriesSample;

use super::state::HasNode;
use super::ServerEvent;

/// The four package states the time series tracks, in export order.
const TRACKED_STATES: [PackageCState; 4] = [
    PackageCState::PC0,
    PackageCState::PC0Idle,
    PackageCState::PC1A,
    PackageCState::PC6,
];

/// Samples one node's observable state at a fixed interval.
pub struct TimeSeriesSampler {
    node: usize,
    every: SimDuration,
    /// Cumulative per-state residency at the previous sample, in
    /// [`TRACKED_STATES`] order (deltas are differences of cumulatives).
    prev_residency: [SimDuration; 4],
}

impl TimeSeriesSampler {
    /// Creates the sampler for node `node`, sampling every `every`.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero — a zero-interval sampler would re-arm at
    /// the current instant forever (the config builder filters this out).
    #[must_use]
    pub fn new(node: usize, every: SimDuration) -> Self {
        assert!(!every.is_zero(), "time-series interval must be positive");
        TimeSeriesSampler {
            node,
            every,
            prev_residency: [SimDuration::ZERO; 4],
        }
    }
}

impl<S: HasNode> EventHandler<ServerEvent, S> for TimeSeriesSampler {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut S,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        debug_assert!(matches!(event, ServerEvent::TimeSeriesSample));
        let _ = event;
        let now = ctx.now();
        let node = shared.node_mut(self.node);

        let busy_cores = node.sched.busy_cores();
        let snapshot = node.power_snapshot();

        let residency = &node.telemetry.package_residency;
        let mut cumulative = [SimDuration::ZERO; 4];
        let mut deltas = [SimDuration::ZERO; 4];
        for (i, state) in TRACKED_STATES.into_iter().enumerate() {
            cumulative[i] = residency.time_in_at(state, now);
            deltas[i] = cumulative[i].saturating_sub(self.prev_residency[i]);
        }
        let sample = TimeSeriesSample {
            at: now,
            soc_power_w: snapshot.soc_total().as_f64(),
            queue_depth: node.outstanding_requests(),
            busy_cores,
            package_state: residency.current(),
            pc0_delta: deltas[0],
            pc0_idle_delta: deltas[1],
            pc1a_delta: deltas[2],
            pc6_delta: deltas[3],
        };
        self.prev_residency = cumulative;
        node.telemetry
            .timeseries
            .as_mut()
            .expect("sampler registered without a time series in telemetry")
            .push(sample);
        ctx.emit_self(self.every, ServerEvent::TimeSeriesSample);
    }
}
