//! NIC / arrival component: client request generation and interrupt
//! coalescing.

use apc_core::apmu::WakeCause;
use apc_sim::component::{EventHandler, SimulationContext};
use apc_soc::io::IoId;
use apc_trace::TraceCtx;
use apc_workloads::loadgen::LoadGenerator;
use apc_workloads::request::Request;

use super::state::{HasNode, ServerState};
use super::ServerEvent;

/// Buffers `request` in `node`'s NIC and, if no interrupt is armed yet,
/// schedules the coalesced `NicDeliver` at the end of the coalescing window.
///
/// This is the single entry point for requests reaching a server, shared by
/// the two arrival paths: the standalone NIC's own arrival handler and the
/// cluster balancer depositing a routed request. Keeping the emission order
/// identical on both paths (buffer push, then `NicDeliver` arming) is what
/// makes a 1-node cluster bit-identical to a standalone server.
pub(crate) fn buffer_request(
    node: &mut ServerState,
    ctx: &mut SimulationContext<'_, ServerEvent>,
    mut request: Request,
) {
    if let Some(trace) = request.trace.as_mut() {
        trace.deposited = Some(ctx.now());
    }
    node.nic.buffer.push_back(request);
    node.outstanding += 1;
    if !node.nic.deliver_pending {
        node.nic.deliver_pending = true;
        // Record the delivery instant so the idle governor's predicted-idle
        // bound (see `ServerState::predicted_idle_bound`) knows work is
        // imminent: a core going idle inside the coalescing window must not
        // pick a C-state it cannot amortise before the interrupt fires.
        node.nic.next_deliver_at = ctx.now() + node.config.nic_coalescing;
        ctx.emit(
            node.addrs.nic,
            node.config.nic_coalescing,
            ServerEvent::NicDeliver,
        );
    }
}

/// Models the NIC's interrupt coalescing window: requests arriving within
/// the window of the first buffered request are delivered together by one
/// interrupt, which both batches work and lengthens package idle periods.
///
/// In a standalone server the NIC also *generates* the client arrival
/// process from its own [`LoadGenerator`]. In a cluster the arrival process
/// lives in the balancer (one stream for the whole cluster) and the NIC only
/// drains the buffer the balancer deposits into — build it with
/// [`NicArrival::cluster_fed`] and no generator.
pub struct NicArrival {
    node: usize,
    loadgen: Option<LoadGenerator>,
}

impl NicArrival {
    /// Creates the NIC component for node `node`, driving its own `loadgen`
    /// (the standalone single-server arrival path).
    #[must_use]
    pub fn new(node: usize, loadgen: LoadGenerator) -> Self {
        NicArrival {
            node,
            loadgen: Some(loadgen),
        }
    }

    /// Creates the NIC component for node `node` of a cluster: requests are
    /// deposited by the load balancer, the NIC only handles delivery.
    #[must_use]
    pub fn cluster_fed(node: usize) -> Self {
        NicArrival {
            node,
            loadgen: None,
        }
    }

    fn on_client_arrival(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let loadgen = self
            .loadgen
            .as_mut()
            .expect("a cluster-fed NIC never receives ClientArrival");
        let mut request = loadgen.next_request();
        let next_arrival = loadgen.peek_next_arrival();
        // Standalone head-sampling site: the cluster paths sample at the
        // balancer / chain coordinator instead (a cluster-fed NIC never
        // receives `ClientArrival`, so node-local trace state is in scope).
        if let Some(trace) = shared.telemetry.trace.as_mut() {
            if trace.sampler.sample() {
                request = request.with_trace(TraceCtx::root(request.id.0, request.arrival));
            }
        }
        buffer_request(shared, ctx, request);
        ctx.emit_self_at(next_arrival, ServerEvent::ClientArrival);
    }

    fn on_nic_deliver(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        shared.nic.deliver_pending = false;
        shared.nic.next_deliver_at = apc_sim::SimTime::MAX;
        if shared.nic.buffer.is_empty() {
            return;
        }
        // The NIC's PCIe link sees traffic: it leaves L0s and the package, if
        // resident in PC1A or PC6, starts its exit flow before the batch can
        // be dispatched.
        let nic = IoId(0);
        let now = ctx.now();
        shared.soc.ios_mut().controller_mut(nic).begin_traffic(now);
        shared.soc.ios_mut().controller_mut(nic).end_traffic(now);
        // Wake the package only when there is something to wake: unless the
        // package is in (or entering) a package C-state the controller would
        // treat the event as a no-op — see `PackageMirror::wakeable`.
        if shared.pkg.wakeable {
            ctx.emit_now(
                shared.addrs.package,
                ServerEvent::PackageWake {
                    cause: WakeCause::IoTraffic,
                },
            );
        }
        while let Some(mut r) = shared.nic.buffer.pop_front() {
            if let Some(trace) = r.trace.as_mut() {
                trace.delivered = Some(now);
            }
            shared.sched.client_queue.push_back(r);
        }
        ctx.emit_now(shared.addrs.scheduler, ServerEvent::Dispatch);
    }
}

impl<S: HasNode> EventHandler<ServerEvent, S> for NicArrival {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut S,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let node = shared.node_mut(self.node);
        match event {
            ServerEvent::ClientArrival => self.on_client_arrival(node, ctx),
            ServerEvent::NicDeliver => self.on_nic_deliver(node, ctx),
            other => unreachable!("NIC received unexpected event {other:?}"),
        }
    }
}
