//! NIC / arrival component: client request generation and interrupt
//! coalescing.

use std::collections::VecDeque;

use apc_core::apmu::WakeCause;
use apc_pmu::config::PackagePolicy;
use apc_sim::component::{EventHandler, SimulationContext};
use apc_soc::io::IoId;
use apc_workloads::loadgen::LoadGenerator;
use apc_workloads::request::Request;

use super::state::ServerState;
use super::ServerEvent;

/// Generates the client arrival process and models the NIC's interrupt
/// coalescing window: requests arriving within the window of the first
/// buffered request are delivered together by one interrupt, which both
/// batches work and lengthens package idle periods.
pub struct NicArrival {
    loadgen: LoadGenerator,
    buffer: VecDeque<Request>,
    deliver_pending: bool,
}

impl NicArrival {
    /// Creates the NIC component driving `loadgen`.
    #[must_use]
    pub fn new(loadgen: LoadGenerator) -> Self {
        NicArrival {
            loadgen,
            buffer: VecDeque::new(),
            deliver_pending: false,
        }
    }

    fn on_client_arrival(
        &mut self,
        shared: &ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let request = self.loadgen.next_request();
        self.buffer.push_back(request);
        if !self.deliver_pending {
            self.deliver_pending = true;
            ctx.emit_self(shared.config.nic_coalescing, ServerEvent::NicDeliver);
        }
        ctx.emit_self_at(self.loadgen.peek_next_arrival(), ServerEvent::ClientArrival);
    }

    fn on_nic_deliver(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        self.deliver_pending = false;
        if self.buffer.is_empty() {
            return;
        }
        // The NIC's PCIe link sees traffic: it leaves L0s and the package, if
        // resident in PC1A or PC6, starts its exit flow before the batch can
        // be dispatched.
        let nic = IoId(0);
        let now = ctx.now();
        shared.soc.ios_mut().controller_mut(nic).begin_traffic(now);
        shared.soc.ios_mut().controller_mut(nic).end_traffic(now);
        // Under `PackagePolicy::None` a package wake is always a no-op.
        if shared.config.platform.package_policy != PackagePolicy::None {
            ctx.emit_now(
                shared.addrs.package,
                ServerEvent::PackageWake {
                    cause: WakeCause::IoTraffic,
                },
            );
        }
        while let Some(r) = self.buffer.pop_front() {
            shared.sched.client_queue.push_back(r);
        }
        ctx.emit_now(shared.addrs.scheduler, ServerEvent::Dispatch);
    }
}

impl EventHandler<ServerEvent, ServerState> for NicArrival {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        match event {
            ServerEvent::ClientArrival => self.on_client_arrival(shared, ctx),
            ServerEvent::NicDeliver => self.on_nic_deliver(shared, ctx),
            other => unreachable!("NIC received unexpected event {other:?}"),
        }
    }
}
