//! Package controller component: the firmware GPMU (PC6) and, under
//! `CPC1A`, the APC APMU (PC1A flows).

use apc_core::apmu::{Apmu, ApmuState, WakeCause, WakeOutcome};
use apc_pmu::config::PackagePolicy;
use apc_pmu::gpmu::{Gpmu, GpmuPhase};
use apc_sim::component::{ComponentId, EventHandler, SimulationContext};
use apc_sim::SimTime;
use apc_soc::cstate::PackageCState;

use super::state::{HasNode, ServerState};
use super::ServerEvent;

/// Drives the package C-state machinery for the configured policy:
///
/// * `PackagePolicy::Pc1a` — the APMU FSM: ACC1 on all-cores-idle, IO
///   standby deadline, nanosecond-scale PC1A entry/abort/exit;
/// * `PackagePolicy::Pc6` — the firmware GPMU's millisecond-scale PC6
///   entry/exit flows;
/// * `PackagePolicy::None` — no package states (the `Cshallow` baseline).
///
/// The controller owns both FSMs and mirrors uncore availability into
/// [`ServerState::uncore`] after every transition so the scheduler can gate
/// dispatch without reaching into controller internals. Its post-dispatch
/// hook tracks package C-state residency after *every* simulation event,
/// mirroring how the monolithic loop sampled the state after each handler.
pub struct PackageController {
    node: usize,
    policy: PackagePolicy,
    apmu: Apmu,
    gpmu: Gpmu,
    /// A wake arrived while the GPMU entry flow was still running; exit as
    /// soon as the entry completes.
    gpmu_pending_wake: bool,
    /// `(soc change-epoch, core-occupancy bit)` as of the last post-dispatch
    /// residency update. The package state is a pure function of the SoC
    /// state (core activity), scheduler occupancy (the work-in-flight half
    /// of [`ServerState::any_core_active`]) and this controller's own FSMs;
    /// while the first two are unchanged *and* no event has run through this
    /// controller (which clears the cache), the state cannot have moved and
    /// the residency update — a same-state no-op — can be skipped outright.
    residency_cache: Option<(u64, bool)>,
}

impl PackageController {
    /// Creates the controller for node `node` under the platform policy in
    /// its config.
    #[must_use]
    pub fn new(node: usize, policy: PackagePolicy, package_limit: PackageCState) -> Self {
        let apmu = if policy == PackagePolicy::Pc1a {
            Apmu::new()
        } else {
            Apmu::disabled()
        };
        PackageController {
            node,
            policy,
            apmu,
            gpmu: Gpmu::new(package_limit),
            gpmu_pending_wake: false,
            residency_cache: None,
        }
    }

    /// The APMU (for stats extraction and tests).
    #[must_use]
    pub fn apmu(&self) -> &Apmu {
        &self.apmu
    }

    /// The GPMU (for stats extraction and tests).
    #[must_use]
    pub fn gpmu(&self) -> &Gpmu {
        &self.gpmu
    }

    /// `true` when the shared uncore (LLC, memory path) is available for
    /// request execution.
    #[must_use]
    pub fn uncore_available(&self) -> bool {
        match self.policy {
            PackagePolicy::Pc1a => matches!(self.apmu.state(), ApmuState::Pc0 | ApmuState::Acc1),
            PackagePolicy::Pc6 => self.gpmu.phase() == GpmuPhase::Active,
            PackagePolicy::None => true,
        }
    }

    /// Mirrors uncore availability and the package-event gating facts into
    /// the shared state (see
    /// [`super::state::PackageMirror`]).
    fn sync_uncore(&self, shared: &mut ServerState) {
        shared.uncore.available = self.uncore_available();
        shared.pkg.acc1_armed = self.apmu.state() == ApmuState::Acc1;
        shared.pkg.wakeable = match self.policy {
            PackagePolicy::Pc1a => matches!(
                self.apmu.state(),
                ApmuState::Acc1 | ApmuState::Entering { .. } | ApmuState::InPc1a { .. }
            ),
            PackagePolicy::Pc6 => {
                matches!(self.gpmu.phase(), GpmuPhase::Entering | GpmuPhase::InPc6)
            }
            PackagePolicy::None => false,
        };
    }

    fn on_package_wake(
        &mut self,
        cause: WakeCause,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let now = ctx.now();
        match self.policy {
            PackagePolicy::Pc1a => match self.apmu.state() {
                ApmuState::InPc1a { .. } | ApmuState::Entering { .. } => {
                    if let WakeOutcome::Exiting { done_at, .. } =
                        self.apmu.wakeup(&mut shared.soc, now, cause)
                    {
                        ctx.emit_self_at(done_at, ServerEvent::ApmuExitDone);
                    }
                }
                ApmuState::Acc1 => {
                    let _ = self.apmu.wakeup(&mut shared.soc, now, cause);
                }
                ApmuState::Pc0 | ApmuState::Exiting { .. } => {}
            },
            PackagePolicy::Pc6 => match self.gpmu.phase() {
                GpmuPhase::InPc6 => {
                    let exit = self.gpmu.begin_exit(&mut shared.soc, now);
                    ctx.emit_self(exit, ServerEvent::GpmuExitDone);
                }
                GpmuPhase::Entering => {
                    // Ready time unknown until the entry completes; the exit
                    // is started from on_gpmu_entry_done.
                    self.gpmu_pending_wake = true;
                }
                GpmuPhase::Active | GpmuPhase::Exiting => {}
            },
            PackagePolicy::None => {}
        }
    }

    fn on_core_active(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        // The ACC1 → PC0 edge: the first core to run again clears AllowL0s.
        // Any other state means the edge was already taken (or never armed).
        if self.apmu.state() == ApmuState::Acc1 {
            self.apmu.on_core_active(&mut shared.soc, ctx.now());
        }
    }

    fn on_all_idle_check(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let now = ctx.now();
        match self.policy {
            PackagePolicy::Pc1a => {
                if shared.soc.cores().all_in_cc1_or_deeper() {
                    if let Some(deadline) = self.apmu.on_all_cores_idle(&mut shared.soc, now) {
                        ctx.emit_self_at(deadline, ServerEvent::StandbyDeadline);
                    }
                }
            }
            PackagePolicy::Pc6 => {
                if self.gpmu.can_enter_pc6(&shared.soc) {
                    let entry = self.gpmu.begin_entry(&mut shared.soc, now);
                    ctx.emit_self(entry, ServerEvent::GpmuEntryDone);
                }
            }
            PackagePolicy::None => {}
        }
    }

    fn on_standby_deadline(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let now = ctx.now();
        if let Some(done_at) = self.apmu.on_standby_deadline(&mut shared.soc, now) {
            ctx.emit_self_at(done_at, ServerEvent::ApmuEntryDone);
        }
    }

    fn on_apmu_entry_done(&mut self, ctx: &mut SimulationContext<'_, ServerEvent>) {
        // A wakeup may have aborted the entry in the meantime; only a flow
        // still in flight completes.
        if matches!(self.apmu.state(), ApmuState::Entering { .. }) {
            self.apmu.on_entry_complete(ctx.now());
        }
    }

    fn on_apmu_exit_done(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        if matches!(self.apmu.state(), ApmuState::Exiting { .. }) {
            self.apmu.on_exit_complete(&mut shared.soc, ctx.now());
        }
        ctx.emit_now(shared.addrs.scheduler, ServerEvent::Dispatch);
    }

    fn on_gpmu_entry_done(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let now = ctx.now();
        if self.gpmu.phase() == GpmuPhase::Entering {
            self.gpmu.complete_entry(&mut shared.soc, now);
        }
        if self.gpmu_pending_wake {
            self.gpmu_pending_wake = false;
            let exit = self.gpmu.begin_exit(&mut shared.soc, now);
            ctx.emit_self(exit, ServerEvent::GpmuExitDone);
        }
    }

    fn on_gpmu_exit_done(
        &mut self,
        shared: &mut ServerState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        if self.gpmu.phase() == GpmuPhase::Exiting {
            self.gpmu.complete_exit(&mut shared.soc, ctx.now());
        }
        ctx.emit_now(shared.addrs.scheduler, ServerEvent::Dispatch);
    }
}

impl<S: HasNode> EventHandler<ServerEvent, S> for PackageController {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut S,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let shared = shared.node_mut(self.node);
        match event {
            ServerEvent::PackageWake { cause } => self.on_package_wake(cause, shared, ctx),
            ServerEvent::CoreActive => self.on_core_active(shared, ctx),
            ServerEvent::AllIdleCheck => self.on_all_idle_check(shared, ctx),
            ServerEvent::StandbyDeadline => self.on_standby_deadline(shared, ctx),
            ServerEvent::ApmuEntryDone => self.on_apmu_entry_done(ctx),
            ServerEvent::ApmuExitDone => self.on_apmu_exit_done(shared, ctx),
            ServerEvent::GpmuEntryDone => self.on_gpmu_entry_done(shared, ctx),
            ServerEvent::GpmuExitDone => self.on_gpmu_exit_done(shared, ctx),
            other => unreachable!("package controller received unexpected event {other:?}"),
        }
        self.sync_uncore(shared);
        // The handler may have moved the FSMs; the cached residency state is
        // no longer trustworthy (the SoC epoch alone cannot see FSM moves).
        self.residency_cache = None;
    }

    fn observes_dispatch(&self) -> bool {
        true
    }

    fn observes_pre_dispatch(&self) -> bool {
        false
    }

    fn on_post_dispatch(&mut self, now: SimTime, dst: ComponentId, shared: &mut S) {
        // Track the package C-state after every event addressed to this
        // node, whatever component handled it: state may change through
        // core activity alone. Events outside the node's component range
        // only deposit into the NIC buffer, which none of the package-state
        // inputs (core activity, running/pending work, PMU FSMs) read, so
        // the transition below would always be a same-state no-op for them.
        let shared = shared.node_mut(self.node);
        let d = dst.as_usize();
        if d < shared.component_range.0 || d > shared.component_range.1 {
            return;
        }
        // Same SoC epoch + same occupancy + no intervening event through
        // this controller (which clears the cache) ⇒ the derivation below
        // would yield the same state again and `transition` would
        // early-return: skip both.
        let epoch = shared.soc.change_epoch();
        let occupied = shared.sched.free_cores.count() < shared.sched.running.len();
        if self.residency_cache == Some((epoch, occupied)) {
            return;
        }
        let any_active = shared.any_core_active();
        let state = match self.policy {
            PackagePolicy::Pc1a => self.apmu.package_state(any_active),
            PackagePolicy::Pc6 => self.gpmu.package_state(!any_active),
            PackagePolicy::None => {
                if any_active {
                    PackageCState::PC0
                } else {
                    PackageCState::PC0Idle
                }
            }
        };
        shared.telemetry.package_residency.transition(now, state);
        self.residency_cache = Some((epoch, occupied));
    }
}
