//! Multi-tier RPC request chains across the cluster: scatter-gather fan-out
//! with wait-for-all joins, and the end-to-end latency they produce.
//!
//! The paper's motivation is microservice traffic where one client request
//! becomes a *chain* of internal RPCs — a frontend parses it, fans out to N
//! storage leaves (the memcached scatter-gather pattern) and joins the
//! responses. End-to-end latency is then decided by the **slowest leaf**, so
//! every microsecond of wake latency compounds at the join and tail latency
//! is shaped by *coordinated* idleness across the cluster. This module makes
//! that traffic class simulable:
//!
//! * [`RequestGraph`] — the shape of a chain: sequential tiers, each a
//!   [`Tier`] of `width` parallel RPCs (width 1 = a linear hop, width N = a
//!   fan-out joined by wait-for-all) with a per-tier service-time spec
//!   ([`apc_workloads::chain::TierService`]);
//! * [`ChainCoordinator`] — one more component in the cluster's event loop:
//!   it owns the root-arrival process, routes every RPC through a pluggable
//!   [`RoutingPolicy`] into node NIC buffers (the same deposit the balancer
//!   performs), joins per-leaf completions reported by the serving cores and
//!   records end-to-end latency (root arrival → last leaf join) plus the
//!   leaf-straggler gap (first → last leaf of a fan-out tier);
//! * [`ChainSimulation`] / [`ChainMember`] / [`ChainFleet`] — the drivers,
//!   mirroring [`crate::cluster`]: N complete server nodes plus the
//!   coordinator in one event loop, runnable declaratively and in parallel
//!   with bit-identical results.
//!
//! # Determinism
//!
//! A chain run is exactly reproducible: node components draw from streams
//! forked off each node's own seed (see [`crate::node::ServerNode`]), the
//! coordinator's routing policy from the cluster seed's
//! `"chain-coordinator"` stream, and root arrivals plus per-tier service
//! times from the cluster seed's `"chain-loadgen"` stream. [`ChainResult`]'s
//! `PartialEq` is exact, and a parallel [`ChainFleet`] run equals its
//! sequential path bit-for-bit (`crates/server/tests/chain.rs`).
//!
//! # Example
//!
//! ```
//! use apc_server::balancer::RoutingPolicyKind;
//! use apc_server::chain::{run_chain_experiment, RequestGraph};
//! use apc_server::config::ServerConfig;
//! use apc_sim::SimDuration;
//!
//! let base = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(20));
//! let result = run_chain_experiment(
//!     &base,
//!     4,                                  // nodes
//!     RoutingPolicyKind::JoinShortestQueue,
//!     RequestGraph::memcached_fanout(4),  // frontend -> 4 leaves
//!     5_000.0,                            // root chains per second
//! );
//! assert_eq!(result.nodes.servers(), 4);
//! assert!(result.chains_completed > 0);
//! // The join waits for the slowest leaf: the end-to-end tail dominates
//! // the straggler gap by construction.
//! assert!(result.chain_latency.p99 >= result.straggler.p99);
//! ```

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::rc::Rc;

use apc_sim::component::Simulation;
use apc_sim::rng::SimRng;
use apc_sim::{SimDuration, SimTime};
use apc_telemetry::latency::{LatencyRecorder, LatencySummary};
use apc_trace::{ProfileReport, Span, SpanKind, TraceCtx, TraceLog, TraceState};
use apc_workloads::arrival::{ArrivalProcess, PoissonArrivals};
use apc_workloads::chain::TierService;
use apc_workloads::request::{ChainTag, Request, RequestId};

use apc_sim::component::{EventHandler, SimulationContext};

use apc_network::{NetworkConfig, NetworkStats};

use crate::balancer::{RoutingPolicy, RoutingPolicyKind};
use crate::components::fabric::{deliver_routed, Fabric, FabricState};
use crate::components::state::{ClusterState, HasNode};
use crate::components::ServerEvent;
use crate::config::ServerConfig;
use crate::fleet::{effective_workers, run_pool, run_pool_streamed, Fleet, FleetResult};
use crate::node::{NodeHandles, ServerNode};

/// One tier of a request chain: `width` parallel RPCs drawn from one
/// service-time spec, joined by wait-for-all before the next tier starts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tier {
    /// Number of sibling RPCs issued in parallel (1 = a linear hop).
    pub width: usize,
    /// The CPU work of each RPC in this tier.
    pub service: TierService,
}

impl Tier {
    /// A tier of `width` parallel RPCs served per `service`.
    #[must_use]
    pub fn new(width: usize, service: TierService) -> Self {
        Tier { width, service }
    }
}

/// The shape of a multi-tier request chain: sequential tiers, each fanned
/// out `width` ways and joined (wait-for-all) before the next tier issues.
///
/// Linear chains and frontend → N-leaf scatter-gather are the two common
/// instances; arbitrary tier stacks compose the same way.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestGraph {
    tiers: Vec<Tier>,
}

impl RequestGraph {
    /// A graph from explicit tiers.
    ///
    /// # Panics
    ///
    /// Panics when `tiers` is empty or any tier has width 0 — an empty chain
    /// or tier would complete instantly and silently record zero latency.
    #[must_use]
    pub fn new(tiers: Vec<Tier>) -> Self {
        assert!(!tiers.is_empty(), "a request graph needs at least one tier");
        assert!(
            tiers.iter().all(|t| t.width >= 1),
            "every tier needs at least one RPC"
        );
        RequestGraph { tiers }
    }

    /// A linear chain: one RPC per service, strictly sequential.
    #[must_use]
    pub fn linear(services: Vec<TierService>) -> Self {
        RequestGraph::new(services.into_iter().map(|s| Tier::new(1, s)).collect())
    }

    /// A frontend → N-leaf scatter-gather: one `frontend` RPC, then `width`
    /// parallel `leaf` RPCs joined by wait-for-all.
    #[must_use]
    pub fn fanout(frontend: TierService, leaf: TierService, width: usize) -> Self {
        RequestGraph::new(vec![Tier::new(1, frontend), Tier::new(width, leaf)])
    }

    /// The canonical memcached scatter-gather: a [`TierService::frontend`]
    /// root fanning out to `width` [`TierService::memcached_leaf`] lookups.
    #[must_use]
    pub fn memcached_fanout(width: usize) -> Self {
        RequestGraph::fanout(
            TierService::frontend(),
            TierService::memcached_leaf(),
            width,
        )
    }

    /// The tiers, root first.
    #[must_use]
    pub fn tiers(&self) -> &[Tier] {
        &self.tiers
    }

    /// Total RPCs issued per chain (the sum of tier widths).
    #[must_use]
    pub fn rpcs_per_chain(&self) -> u64 {
        self.tiers.iter().map(|t| t.width as u64).sum()
    }

    /// The widest tier's fan-out.
    #[must_use]
    pub fn max_fanout(&self) -> usize {
        self.tiers.iter().map(|t| t.width).max().unwrap_or(0)
    }

    /// `true` when some tier fans out (width > 1), i.e. the chain has a
    /// wait-for-all join whose straggler gap is meaningful.
    #[must_use]
    pub fn has_fanout(&self) -> bool {
        self.max_fanout() > 1
    }

    /// A compact human-readable shape, e.g. `1x frontend -> 4x kv-get`.
    #[must_use]
    pub fn describe(&self) -> String {
        self.tiers
            .iter()
            .map(|t| format!("{}x {}", t.width, t.service.class))
            .collect::<Vec<_>>()
            .join(" -> ")
    }
}

impl fmt::Display for RequestGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

/// Progress of one in-flight chain inside the coordinator.
#[derive(Debug)]
struct ChainProgress {
    /// When the root request arrived at the coordinator.
    root_arrival: SimTime,
    /// Index of the tier currently in flight.
    tier: usize,
    /// RPCs of the current tier not yet completed.
    outstanding: usize,
    /// First completion instant within the current tier (straggler gap =
    /// last − first on the join of a fan-out tier).
    first_done: Option<SimTime>,
    /// Join bookkeeping for a head-sampled chain (`None` when the chain is
    /// untraced): when the current tier was issued and when each sibling's
    /// completion report arrived, turned into join/tier spans when the tier
    /// joins.
    trace: Option<TierTrace>,
}

/// Per-tier span bookkeeping of a traced chain (see [`ChainProgress::trace`]).
#[derive(Debug)]
struct TierTrace {
    /// When the tier's RPCs were issued.
    tier_start: SimTime,
    /// Arrival instant of each sibling's completion report, in join order.
    reports: Vec<SimTime>,
}

/// The chain-coordinator component: generates root-chain arrivals, fans each
/// tier out across the cluster through a [`RoutingPolicy`], joins per-leaf
/// completions and records chain-level latency telemetry.
///
/// RPC deposits reuse the balancer's exact hand-off into a node's NIC
/// coalescing buffer (the shared `buffer_request` deposit helper in the NIC
/// component), so a node serves chain RPCs
/// indistinguishably from balanced open-loop requests; the serving core
/// reports each completion back via [`ServerEvent::ChainLeafDone`] (routed
/// by the [`ChainTag`] the request carries).
pub struct ChainCoordinator {
    graph: RequestGraph,
    arrivals: Box<dyn ArrivalProcess>,
    /// Private stream for arrival gaps and service-time draws (forked from
    /// the cluster seed by `"chain-loadgen"`, mirroring [`LoadGenerator`]'s
    /// seeding so the policy's component stream stays untouched).
    ///
    /// [`LoadGenerator`]: apc_workloads::loadgen::LoadGenerator
    workload_rng: SimRng,
    policy: Box<dyn RoutingPolicy>,
    routed: Vec<u64>,
    next_arrival: SimTime,
    inflight: BTreeMap<u64, ChainProgress>,
    next_chain_id: u64,
    next_request_id: u64,
    chains_started: u64,
    chains_completed: u64,
    e2e: LatencyRecorder,
    straggler: LatencyRecorder,
}

impl ChainCoordinator {
    /// Creates the coordinator for a cluster of `nodes` nodes executing
    /// `graph` at `chains_per_sec` root arrivals (Poisson), routing each RPC
    /// through `policy`. `seed` is the cluster seed; the coordinator forks
    /// its workload stream from it by the `"chain-loadgen"` label.
    #[must_use]
    pub fn new(
        graph: RequestGraph,
        chains_per_sec: f64,
        policy: Box<dyn RoutingPolicy>,
        nodes: usize,
        seed: u64,
    ) -> Self {
        let mut arrivals: Box<dyn ArrivalProcess> = Box::new(PoissonArrivals::new(chains_per_sec));
        let mut workload_rng = SimRng::from_seed(seed).fork("chain-loadgen");
        // Draw the first gap at construction so roots do not all start at
        // t = 0 (the same convention the open-loop load generator uses).
        let first_gap = arrivals.next_gap(&mut workload_rng);
        ChainCoordinator {
            graph,
            arrivals,
            workload_rng,
            policy,
            routed: vec![0; nodes],
            next_arrival: SimTime::ZERO + first_gap,
            inflight: BTreeMap::new(),
            next_chain_id: 0,
            next_request_id: 0,
            chains_started: 0,
            chains_completed: 0,
            e2e: LatencyRecorder::new(),
            straggler: LatencyRecorder::new(),
        }
    }

    /// The arrival time of the first root chain (for the driver bootstrap).
    #[must_use]
    pub fn first_arrival(&self) -> SimTime {
        self.next_arrival
    }

    /// The routing policy's name.
    #[must_use]
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// RPCs routed to each node so far.
    #[must_use]
    pub fn routed(&self) -> &[u64] {
        &self.routed
    }

    /// Chains whose root has arrived.
    #[must_use]
    pub fn chains_started(&self) -> u64 {
        self.chains_started
    }

    /// Chains whose last tier fully joined.
    #[must_use]
    pub fn chains_completed(&self) -> u64 {
        self.chains_completed
    }

    /// Issues every RPC of the chain's current tier, routing each through
    /// the policy into a node's NIC buffer.
    fn issue_tier(
        &mut self,
        chain_id: u64,
        shared: &mut ClusterState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let progress = self
            .inflight
            .get_mut(&chain_id)
            .expect("issuing a tier of an unknown chain");
        let tier = self.graph.tiers()[progress.tier];
        progress.outstanding = tier.width;
        progress.first_done = None;
        let now = ctx.now();
        let traced = if let Some(tier_trace) = progress.trace.as_mut() {
            tier_trace.tier_start = now;
            tier_trace.reports.clear();
            true
        } else {
            false
        };
        let tag = ChainTag {
            coordinator: ctx.id(),
            chain: chain_id,
        };
        for _ in 0..tier.width {
            let service = tier.service.sample_service(&mut self.workload_rng);
            let mut request = Request::new(
                RequestId(self.next_request_id),
                tier.service.class,
                now,
                service,
            )
            .with_chain(tag);
            if traced {
                // Chain RPCs trace under the chain id (not the request id),
                // so every tier's spans join one causal tree.
                request = request.with_trace(TraceCtx::root(chain_id, now));
            }
            self.next_request_id += 1;
            let target = self.policy.route(shared, ctx.rng());
            debug_assert!(
                target < shared.node_count(),
                "policy {} routed to node {target} of {}",
                self.policy.name(),
                shared.node_count()
            );
            self.routed[target] += 1;
            deliver_routed(shared, ctx, target, request);
        }
    }

    fn on_chain_arrival(
        &mut self,
        shared: &mut ClusterState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let chain_id = self.next_chain_id;
        self.next_chain_id += 1;
        self.chains_started += 1;
        // Chain head-sampling site: one decision per root chain, drawn from
        // the cluster's dedicated sampler stream.
        let traced = shared
            .trace
            .as_mut()
            .is_some_and(|trace| trace.sampler.sample());
        self.inflight.insert(
            chain_id,
            ChainProgress {
                root_arrival: ctx.now(),
                tier: 0,
                outstanding: 0,
                first_done: None,
                trace: traced.then(|| TierTrace {
                    tier_start: ctx.now(),
                    reports: Vec::new(),
                }),
            },
        );
        self.issue_tier(chain_id, shared, ctx);
        let gap = self.arrivals.next_gap(&mut self.workload_rng);
        self.next_arrival = ctx.now() + gap;
        ctx.emit_self_at(self.next_arrival, ServerEvent::ChainArrival);
    }

    fn on_leaf_done(
        &mut self,
        chain_id: u64,
        shared: &mut ClusterState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        let now = ctx.now();
        let progress = self
            .inflight
            .get_mut(&chain_id)
            .expect("leaf completion for an unknown chain");
        debug_assert!(progress.outstanding > 0, "tier joined more than its width");
        if progress.first_done.is_none() {
            progress.first_done = Some(now);
        }
        if let Some(tier_trace) = progress.trace.as_mut() {
            tier_trace.reports.push(now);
        }
        progress.outstanding -= 1;
        if progress.outstanding > 0 {
            return;
        }
        // The tier joined. Record the straggler gap of fan-out tiers: how
        // long the join waited on the slowest sibling after the fastest.
        let tier = self.graph.tiers()[progress.tier];
        if tier.width > 1 {
            let first = progress.first_done.expect("joined tier saw a completion");
            self.straggler.record(now.saturating_since(first));
        }
        // A traced chain emits its join/tier spans on the coordinator's
        // pseudo-node (index = node count): one join span per sibling report
        // (report arrival → tier join; the straggler's is zero-length) and
        // one tier span covering issue → join.
        let coordinator_node = self.routed.len() as u32;
        if let (Some(tier_trace), Some(trace)) = (progress.trace.as_ref(), shared.trace.as_mut()) {
            for (sibling, &report) in tier_trace.reports.iter().enumerate() {
                trace.log.push(Span {
                    trace: chain_id,
                    kind: SpanKind::Join,
                    label: "",
                    node: coordinator_node,
                    lane: sibling as u32,
                    start: report,
                    end: now,
                });
            }
            trace.log.push(Span {
                trace: chain_id,
                kind: SpanKind::Tier,
                label: "",
                node: coordinator_node,
                lane: 0,
                start: tier_trace.tier_start,
                end: now,
            });
        }
        if progress.tier + 1 < self.graph.tiers().len() {
            progress.tier += 1;
            self.issue_tier(chain_id, shared, ctx);
            return;
        }
        // Last tier joined: the chain is complete end-to-end.
        let root_arrival = progress.root_arrival;
        let traced = self.inflight.remove(&chain_id).expect("present").trace;
        self.chains_completed += 1;
        self.e2e.record(now.saturating_since(root_arrival));
        if traced.is_some() {
            if let Some(trace) = shared.trace.as_mut() {
                trace.log.push(Span {
                    trace: chain_id,
                    kind: SpanKind::Root,
                    label: "",
                    node: coordinator_node,
                    lane: 0,
                    start: root_arrival,
                    end: now,
                });
            }
        }
    }

    /// Reduces the coordinator's telemetry (consumes the recorders'
    /// summaries; call once at the end of a run).
    fn stats(&mut self) -> ChainStats {
        ChainStats {
            policy: self.policy.name(),
            graph: self.graph.describe(),
            routed: self.routed.clone(),
            chains_started: self.chains_started,
            chains_completed: self.chains_completed,
            chain_latency: self.e2e.summary(),
            straggler: self.straggler.summary(),
        }
    }
}

/// Coordinator-side telemetry of one run (private reduction helper).
struct ChainStats {
    policy: &'static str,
    graph: String,
    routed: Vec<u64>,
    chains_started: u64,
    chains_completed: u64,
    chain_latency: LatencySummary,
    straggler: LatencySummary,
}

impl EventHandler<ServerEvent, ClusterState> for ChainCoordinator {
    fn on_event(
        &mut self,
        event: ServerEvent,
        shared: &mut ClusterState,
        ctx: &mut SimulationContext<'_, ServerEvent>,
    ) {
        match event {
            ServerEvent::ChainArrival => self.on_chain_arrival(shared, ctx),
            ServerEvent::ChainLeafDone { chain } => self.on_leaf_done(chain, shared, ctx),
            other => unreachable!("chain coordinator received unexpected event {other:?}"),
        }
    }
}

/// N complete servers and a chain coordinator sharing one event loop.
pub struct ChainSimulation {
    sim: Simulation<ServerEvent, ClusterState>,
    nodes: Vec<NodeHandles>,
    coordinator: Rc<RefCell<ChainCoordinator>>,
    end_at: SimTime,
    profile: bool,
}

impl ChainSimulation {
    /// Builds a chain cluster of one node per config, executing `graph` at
    /// `chains_per_sec` root arrivals routed through `policy`.
    ///
    /// `seed` is the cluster-level seed: the coordinator's policy stream
    /// forks from it by the `"chain-coordinator"` component name and the
    /// root-arrival/service stream by `"chain-loadgen"`. Node components
    /// draw from their own config's seed exactly as everywhere else.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or the configs disagree on duration.
    #[must_use]
    pub fn new(
        seed: u64,
        configs: Vec<ServerConfig>,
        policy: Box<dyn RoutingPolicy>,
        graph: RequestGraph,
        chains_per_sec: f64,
    ) -> Self {
        Self::with_network(seed, configs, policy, graph, chains_per_sec, None)
    }

    /// Like [`ChainSimulation::new`], additionally routing every fan-out RPC
    /// *and* every leaf-completion report through a network fabric (see
    /// [`crate::components::fabric`]), so wire delay compounds at every tier
    /// boundary exactly where C-state wake latency does.
    ///
    /// `None` — or an [instantaneous](NetworkConfig::is_instantaneous)
    /// configuration — is bit-identical to the fabric-less path.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or the configs disagree on duration.
    #[must_use]
    pub fn with_network(
        seed: u64,
        configs: Vec<ServerConfig>,
        policy: Box<dyn RoutingPolicy>,
        graph: RequestGraph,
        chains_per_sec: f64,
        network: Option<NetworkConfig>,
    ) -> Self {
        assert!(
            !configs.is_empty(),
            "a chain cluster needs at least one node"
        );
        let duration = configs[0].duration;
        assert!(
            configs.iter().all(|c| c.duration == duration),
            "every chain-cluster node must share one measurement duration"
        );
        let node_count = configs.len();
        let end_at = SimTime::ZERO + duration;
        // Observability is a cluster-level concern (one sampler, one span
        // log, one event loop to profile): the first node's config decides.
        let trace_config = configs[0].trace;
        let profile = configs[0].profile;

        let mut state = ClusterState::new(configs);
        // Each node's nominal offered rate is its share of the cluster-wide
        // RPC rate (chains/sec × RPCs per chain ÷ N); the routed census is
        // the actual per-node count. Chain RPCs travel the internal fabric,
        // so no client network RTT is added to per-RPC node latency.
        let rpc_rate = chains_per_sec * graph.rpcs_per_chain() as f64;
        for node in &mut state.nodes {
            node.workload_name = "chain";
            node.offered_rate = rpc_rate / node_count as f64;
            node.network_rtt = SimDuration::ZERO;
        }

        let mut sim = Simulation::new(seed, state);
        let builders: Vec<ServerNode> = (0..node_count).map(ServerNode::new).collect();
        let nodes: Vec<NodeHandles> = builders
            .iter()
            .map(|b| b.register(&mut sim, None))
            .collect();
        let coordinator = Rc::new(RefCell::new(ChainCoordinator::new(
            graph,
            chains_per_sec,
            policy,
            node_count,
            seed,
        )));
        let coordinator_id = sim.add_component("chain-coordinator", Rc::clone(&coordinator));
        // The coordinator deposits RPCs into node NIC buffers (on arrivals
        // *and* on joins that issue the next tier), so every node's power
        // observer must also watch it — the same dispatch-observer routing
        // the cluster balancer uses (see `crate::cluster::ClusterSimulation`,
        // including why the package observers stay unsubscribed).
        // As in the cluster simulation, the fabric registers even when no
        // network is configured (name-forked RNG stream, zero events — the
        // no-network event sequence is untouched) and the power observers
        // watch its NIC-buffer deposits.
        let fabric_id = sim.add_component("fabric", Fabric);
        for handles in &nodes {
            sim.add_observer_target(handles.power, coordinator_id);
            sim.add_observer_target(handles.power, fabric_id);
        }
        sim.shared_mut().fabric =
            network.map(|config| FabricState::new(config, node_count, fabric_id));
        sim.shared_mut().trace = trace_config
            .map(|config| TraceState::new(config, SimRng::from_seed(seed).fork("trace-sampler")));
        if profile {
            sim.enable_event_profile(ServerEvent::KIND_COUNT, ServerEvent::kind);
        }
        // Bootstrap in the cluster order: the first root arrival, then every
        // node's background timers / initial idle entries / power sampling.
        let first_arrival = coordinator.borrow().first_arrival();
        sim.schedule(coordinator_id, first_arrival, ServerEvent::ChainArrival);
        for (builder, handles) in builders.iter().zip(&nodes) {
            builder.bootstrap(&mut sim, handles);
        }

        ChainSimulation {
            sim,
            nodes,
            coordinator,
            end_at,
            profile,
        }
    }

    /// Number of server nodes in the cluster.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to the shared cluster state (for tests and tracing).
    #[must_use]
    pub fn state(&self) -> &ClusterState {
        self.sim.shared()
    }

    /// Runs the cluster to the horizon and reduces chain telemetry plus
    /// per-node power/residency into a [`ChainResult`].
    #[must_use]
    pub fn run(mut self) -> ChainResult {
        let events_dispatched = self.sim.run_until(self.end_at);
        let end = self.end_at;
        let network = self
            .sim
            .shared()
            .fabric
            .as_ref()
            .map(|f| f.net.stats().clone());
        let profile = self.profile.then(|| {
            crate::components::profile_report(self.sim.queue_counters(), self.sim.event_profile())
        });
        let runs = self
            .nodes
            .iter()
            .map(|handles| handles.collect_result(self.sim.shared_mut(), end))
            .collect();
        let trace = self.sim.shared_mut().trace.take().map(TraceState::into_log);
        let stats = self.coordinator.borrow_mut().stats();
        ChainResult {
            policy: stats.policy,
            graph: stats.graph,
            duration: self.end_at.saturating_since(SimTime::ZERO),
            chains_started: stats.chains_started,
            chains_completed: stats.chains_completed,
            chain_latency: stats.chain_latency,
            straggler: stats.straggler,
            routed: stats.routed,
            network,
            events_dispatched,
            trace,
            profile,
            nodes: FleetResult { runs },
        }
    }
}

/// The outcome of one chain run: chain-level latency telemetry plus per-node
/// results (with the fleet aggregation helpers) and the routing census.
///
/// Equality is exact per-metric equality, so two results compare equal only
/// when the underlying simulations were bit-identical — what the chain
/// determinism tests assert.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainResult {
    /// The routing policy that ran.
    pub policy: &'static str,
    /// The chain shape (see [`RequestGraph::describe`]).
    pub graph: String,
    /// The simulated duration.
    pub duration: SimDuration,
    /// Chains whose root arrived during the run.
    pub chains_started: u64,
    /// Chains that fully joined (roots still in flight at the horizon were
    /// started but never completed).
    pub chains_completed: u64,
    /// End-to-end chain latency: root arrival → last leaf join of the final
    /// tier.
    pub chain_latency: LatencySummary,
    /// The leaf-straggler gap: on every fan-out (width > 1) tier join, the
    /// time the join waited on the slowest sibling after the fastest one
    /// finished. Empty for purely linear graphs.
    pub straggler: LatencySummary,
    /// RPCs routed to each node, in node order.
    pub routed: Vec<u64>,
    /// Wire-delay statistics of the network fabric, when one was configured
    /// (`None` for the instantaneous-deposit path).
    pub network: Option<NetworkStats>,
    /// Events the cluster's event loop dispatched to reach the horizon
    /// (identical for sequential and parallel executions of the same run).
    pub events_dispatched: u64,
    /// Span log of head-sampled chains, when tracing was configured (see
    /// [`crate::config::ServerConfig::trace`]; the first node's config
    /// decides for the cluster).
    pub trace: Option<TraceLog>,
    /// Engine self-profile, when profiling was configured (see
    /// [`crate::config::ServerConfig::profile`]).
    pub profile: Option<ProfileReport>,
    /// Per-node results in node order, with fleet-style aggregates.
    pub nodes: FleetResult,
}

impl ChainResult {
    /// Total RPCs the coordinator routed.
    #[must_use]
    pub fn total_routed(&self) -> u64 {
        self.routed.iter().sum()
    }

    /// Achieved chain throughput (completed chains per second).
    #[must_use]
    pub fn chains_per_sec(&self) -> f64 {
        let secs = self.duration.as_secs_f64();
        if secs <= 0.0 {
            0.0
        } else {
            self.chains_completed as f64 / secs
        }
    }

    /// How unevenly the policy spread RPCs: max/mean routed per node
    /// (1.0 = perfectly even).
    #[must_use]
    pub fn routing_imbalance(&self) -> f64 {
        let total = self.total_routed();
        if total == 0 || self.routed.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.routed.len() as f64;
        let max = self.routed.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }
}

/// One line per node (routed share, power, PC1A residency), then the chain
/// totals: end-to-end p50/p99/p999 and the straggler breakdown.
impl fmt::Display for ChainResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.nodes.runs.iter().enumerate() {
            writeln!(
                f,
                "node {i:>3}: routed {:>8} {:>7.1} W PC1A {:>5.1}% rpc p99 {}",
                self.routed.get(i).copied().unwrap_or(0),
                r.avg_total_power().as_f64(),
                r.pc1a_residency * 100.0,
                r.latency.p99,
            )?;
        }
        write!(
            f,
            "chain ({}, {}): {:>7.0} chains/s {:>7.1} W e2e p50 {} p99 {} p999 {} straggler p99 {}",
            self.policy,
            self.graph,
            self.chains_per_sec(),
            self.nodes.total_power_w(),
            self.chain_latency.p50,
            self.chain_latency.p99,
            self.chain_latency.p999,
            self.straggler.p99,
        )
    }
}

/// A declarative, `Send` description of one chain run — the chain
/// counterpart of [`crate::cluster::ClusterMember`], usable as a member of a
/// [`ChainFleet`].
#[derive(Debug, Clone)]
pub struct ChainMember {
    /// Per-node configurations (each carries its own seed).
    pub nodes: Vec<ServerConfig>,
    /// The routing policy to run.
    pub policy: RoutingPolicyKind,
    /// The chain shape.
    pub graph: RequestGraph,
    /// Root-chain arrival rate (chains per second, Poisson).
    pub chains_per_sec: f64,
    /// Cluster seed: coordinator streams fork from it.
    pub seed: u64,
    /// The network fabric every RPC and leaf report crosses (`None` keeps
    /// the instantaneous-deposit path).
    pub network: Option<NetworkConfig>,
}

impl ChainMember {
    /// A chain cluster of `n` nodes sharing `base`'s platform, with node
    /// seeds derived by the canonical [`Fleet::member_seed`] scheme from
    /// `base`'s seed, executing `graph` at `chains_per_sec` under `policy`.
    #[must_use]
    pub fn homogeneous(
        base: &ServerConfig,
        n: usize,
        policy: RoutingPolicyKind,
        graph: RequestGraph,
        chains_per_sec: f64,
    ) -> Self {
        ChainMember {
            nodes: (0..n)
                .map(|i| base.clone().with_seed(Fleet::member_seed(base.seed, i)))
                .collect(),
            policy,
            graph,
            chains_per_sec,
            seed: base.seed,
            network: None,
        }
    }

    /// Routes every RPC and leaf report of this chain cluster through
    /// `network` (see [`ChainSimulation::with_network`]).
    #[must_use]
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = Some(network);
        self
    }

    /// Builds and runs the chain cluster to completion.
    #[must_use]
    pub fn run(self) -> ChainResult {
        ChainSimulation::with_network(
            self.seed,
            self.nodes,
            self.policy.build(),
            self.graph,
            self.chains_per_sec,
            self.network,
        )
        .run()
    }
}

/// A set of independent chain simulations run as one experiment — e.g. the
/// same chain cluster under every platform, or a platform under every
/// routing policy. Members execute on the same deterministic worker pool as
/// [`Fleet::run`], so a parallel run is bit-identical to
/// [`ChainFleet::run_sequential`].
#[derive(Debug, Default)]
pub struct ChainFleet {
    members: Vec<ChainMember>,
    parallelism: Option<usize>,
}

impl ChainFleet {
    /// An empty chain fleet.
    #[must_use]
    pub fn new() -> Self {
        ChainFleet::default()
    }

    /// Adds one chain cluster to the fleet.
    pub fn push(&mut self, member: ChainMember) -> &mut Self {
        self.members.push(member);
        self
    }

    /// Number of chain clusters in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the fleet has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Pins the number of worker threads [`ChainFleet::run`] may use
    /// (`1` forces the sequential path); see [`Fleet::with_parallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Runs every chain cluster to completion — in parallel when the host
    /// allows — returning results in member order, bit-identical to
    /// [`ChainFleet::run_sequential`].
    ///
    /// A single-member fleet routes its worker budget *inside* the run: the
    /// one chain cluster is partitioned per node under the
    /// conservative-lookahead scheduler (see [`crate::parallel`]) whenever
    /// its topology admits it — still bit-identical either way.
    #[must_use]
    pub fn run(mut self) -> Vec<ChainResult> {
        if self.members.len() == 1 {
            let member = self.members.pop().expect("one member");
            return vec![member.run_with_parallelism(self.parallelism)];
        }
        let workers = effective_workers(self.parallelism, self.members.len());
        run_pool(self.members, workers, ChainMember::run)
    }

    /// Runs every chain cluster back-to-back on the calling thread.
    #[must_use]
    pub fn run_sequential(self) -> Vec<ChainResult> {
        self.members.into_iter().map(ChainMember::run).collect()
    }

    /// Like [`ChainFleet::run`], but invokes `emit(i, &result)` once per
    /// repeat, in member order, as soon as repeat `i` and all its
    /// predecessors have finished (the CLI's `--stream-out` hook). Results
    /// are bit-identical to [`ChainFleet::run`]'s.
    ///
    /// # Errors
    ///
    /// Returns `emit`'s first error; remaining repeats still run but
    /// nothing further is emitted.
    pub fn run_streamed<E>(
        mut self,
        mut emit: impl FnMut(usize, &ChainResult) -> Result<(), E>,
    ) -> Result<Vec<ChainResult>, E> {
        if self.members.len() == 1 {
            let member = self.members.pop().expect("one member");
            let result = member.run_with_parallelism(self.parallelism);
            emit(0, &result)?;
            return Ok(vec![result]);
        }
        let workers = effective_workers(self.parallelism, self.members.len());
        run_pool_streamed(self.members, workers, ChainMember::run, emit)
    }
}

/// Convenience: run one homogeneous chain experiment (see
/// [`ChainMember::homogeneous`] for the seed-derivation scheme).
#[must_use]
pub fn run_chain_experiment(
    base: &ServerConfig,
    n: usize,
    policy: RoutingPolicyKind,
    graph: RequestGraph,
    chains_per_sec: f64,
) -> ChainResult {
    ChainMember::homogeneous(base, n, policy, graph, chains_per_sec).run()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn graph_shapes() {
        let linear =
            RequestGraph::linear(vec![TierService::frontend(), TierService::memcached_leaf()]);
        assert_eq!(linear.rpcs_per_chain(), 2);
        assert_eq!(linear.max_fanout(), 1);
        assert!(!linear.has_fanout());

        let fan = RequestGraph::memcached_fanout(4);
        assert_eq!(fan.rpcs_per_chain(), 5);
        assert_eq!(fan.max_fanout(), 4);
        assert!(fan.has_fanout());
        assert_eq!(fan.describe(), "1x frontend -> 4x kv-get");
        assert_eq!(fan.to_string(), fan.describe());
    }

    #[test]
    #[should_panic(expected = "at least one tier")]
    fn empty_graph_is_rejected() {
        let _ = RequestGraph::new(Vec::new());
    }

    #[test]
    #[should_panic(expected = "at least one RPC")]
    fn zero_width_tier_is_rejected() {
        let _ = RequestGraph::new(vec![Tier::new(0, TierService::frontend())]);
    }
}
