//! # `apc-server` — full-system datacenter server simulation
//!
//! The testbed substitute: an event-driven simulation of a latency-critical
//! service running on the modelled Skylake-SP server under one of the
//! paper's platform configurations, producing the power, residency and
//! latency measurements every figure of the evaluation is built from.
//!
//! * [`config`] — [`config::ServerConfig`] (topology, platform, power model,
//!   NIC coalescing, background noise);
//! * [`components`] — the simulation decomposed into registered
//!   [`apc_sim::component::EventHandler`] components (NIC/arrival, dispatch
//!   scheduler, per-core execution, package controller, power/telemetry)
//!   over a shared [`components::state::ServerState`];
//! * [`sim`] — the thin [`sim::ServerSimulation`] driver wiring the
//!   components together, and the [`sim::run_experiment`] entry point;
//! * [`fleet`] — the [`fleet::Fleet`] runner executing many independent
//!   server instances in parallel and aggregating their results;
//! * [`scenario`] — declarative [`scenario::Scenario`] specs plus a library
//!   of named fleet experiments (diurnal, flash crowd, heterogeneous,
//!   low-load sweep);
//! * [`result`] — [`result::RunResult`] with derived metrics.
//!
//! # Example
//!
//! ```
//! use apc_server::config::ServerConfig;
//! use apc_server::sim::run_experiment;
//! use apc_sim::SimDuration;
//! use apc_workloads::spec::WorkloadSpec;
//!
//! let cfg = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(20));
//! let result = run_experiment(cfg, WorkloadSpec::memcached_etc(), 10_000.0);
//! assert!(result.avg_soc_power.as_f64() > 0.0);
//! ```

#![warn(missing_docs)]

pub mod components;
pub mod config;
pub mod fleet;
pub mod result;
pub mod scenario;
pub mod sim;

pub use config::ServerConfig;
pub use fleet::{Fleet, FleetMember, FleetResult};
pub use result::RunResult;
pub use scenario::{MemberGroup, Scenario, ScenarioResult, TrafficPattern, WorkloadKind};
pub use sim::{run_experiment, ServerSimulation};
