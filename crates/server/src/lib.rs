//! # `apc-server` — full-system datacenter server simulation
//!
//! The testbed substitute: an event-driven simulation of a latency-critical
//! service running on the modelled Skylake-SP server under one of the
//! paper's platform configurations, producing the power, residency and
//! latency measurements every figure of the evaluation is built from.
//!
//! * [`config`] — [`config::ServerConfig`] (topology, platform, power model,
//!   NIC coalescing, background noise);
//! * [`sim`] — the [`sim::ServerSimulation`] event loop and
//!   [`sim::run_experiment`] convenience entry point;
//! * [`result`] — [`result::RunResult`] with derived metrics.
//!
//! # Example
//!
//! ```
//! use apc_server::config::ServerConfig;
//! use apc_server::sim::run_experiment;
//! use apc_sim::SimDuration;
//! use apc_workloads::spec::WorkloadSpec;
//!
//! let cfg = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(20));
//! let result = run_experiment(cfg, WorkloadSpec::memcached_etc(), 10_000.0);
//! assert!(result.avg_soc_power.as_f64() > 0.0);
//! ```

pub mod config;
pub mod result;
pub mod sim;

pub use config::ServerConfig;
pub use result::RunResult;
pub use sim::{run_experiment, ServerSimulation};
