//! # `apc-server` — full-system datacenter server simulation
//!
//! The testbed substitute: an event-driven simulation of a latency-critical
//! service running on the modelled Skylake-SP server under one of the
//! paper's platform configurations, producing the power, residency and
//! latency measurements every figure of the evaluation is built from.
//!
//! * [`config`] — [`config::ServerConfig`] (topology, platform, power model,
//!   NIC coalescing, background noise);
//! * [`components`] — the simulation decomposed into registered
//!   [`apc_sim::component::EventHandler`] components (NIC/arrival, dispatch
//!   scheduler, per-core execution, package controller, power/telemetry),
//!   each node-scoped through the [`components::state::HasNode`] view of
//!   the shared state ([`components::state::ServerState`] for one server,
//!   [`components::state::ClusterState`] for many);
//! * [`node`] — the embeddable [`node::ServerNode`] builder registering one
//!   complete server into an externally owned simulation;
//! * [`sim`] — the thin 1-node [`sim::ServerSimulation`] driver, and the
//!   [`sim::run_experiment`] entry point;
//! * [`cluster`] — [`cluster::ClusterSimulation`]: N nodes plus a load
//!   balancer in one event loop, with per-node and cluster-aggregate
//!   results;
//! * [`balancer`] — the cluster-level arrival stream and the pluggable
//!   [`balancer::RoutingPolicy`] (random, round-robin, join-shortest-queue,
//!   power-aware packing);
//! * [`chain`] — multi-tier RPC request chains ([`chain::RequestGraph`]:
//!   linear chains and frontend → N-leaf scatter-gather with wait-for-all
//!   joins), executed across the cluster by a [`chain::ChainCoordinator`]
//!   that records end-to-end latency and the leaf-straggler gap;
//! * [`fleet`] — the [`fleet::Fleet`] runner executing many independent
//!   server instances in parallel and aggregating their results;
//! * [`parallel`] — the conservative-lookahead parallel event core:
//!   [`parallel::execution_plan`] decides whether a cluster/chain run can
//!   partition per node (nonzero minimum link latency = the lookahead),
//!   and the partitioned run is bit-identical to the sequential loop;
//! * [`scenario`] — declarative [`scenario::Scenario`] specs plus a library
//!   of named fleet experiments (diurnal, flash crowd, heterogeneous,
//!   low-load sweep), cluster-routing scenarios
//!   ([`scenario::ClusterScenario`]) and fan-out chain scenarios
//!   ([`scenario::ChainScenario`]: `mesh-8-fanout4`, `mesh-16-memcached`);
//! * [`result`] — [`result::RunResult`] with derived metrics.
//!
//! # Example
//!
//! ```
//! use apc_server::config::ServerConfig;
//! use apc_server::sim::run_experiment;
//! use apc_sim::SimDuration;
//! use apc_workloads::spec::WorkloadSpec;
//!
//! let cfg = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(20));
//! let result = run_experiment(cfg, WorkloadSpec::memcached_etc(), 10_000.0);
//! assert!(result.avg_soc_power.as_f64() > 0.0);
//! ```

#![warn(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod balancer;
pub mod chain;
pub mod cluster;
pub mod components;
pub mod config;
pub mod fleet;
pub mod node;
pub mod parallel;
pub mod result;
pub mod scenario;
pub mod sim;

pub use balancer::{RoutingPolicy, RoutingPolicyKind};
pub use chain::{
    run_chain_experiment, ChainFleet, ChainMember, ChainResult, ChainSimulation, RequestGraph, Tier,
};
pub use cluster::{
    run_cluster_experiment, ClusterFleet, ClusterMember, ClusterResult, ClusterSimulation,
};
pub use config::ServerConfig;
pub use fleet::{Fleet, FleetMember, FleetResult};
pub use node::ServerNode;
pub use parallel::{execution_plan, ExecutionPlan, SequentialReason};
pub use result::RunResult;
pub use scenario::{
    ChainScenario, ClusterScenario, MemberGroup, Scenario, ScenarioResult, TrafficPattern,
    WorkloadKind,
};
pub use sim::{run_experiment, ServerSimulation};
