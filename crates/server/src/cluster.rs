//! Single-event-loop cluster simulation: N complete server nodes plus a
//! load balancer.
//!
//! Where [`crate::fleet::Fleet`] runs *independent* server simulations (one
//! event loop each, no cross-server interaction), a [`ClusterSimulation`]
//! hosts every node inside **one** [`Simulation`]: one cluster-level arrival
//! stream feeds a [`Balancer`] component that routes each request to a
//! node's NIC according to a pluggable [`RoutingPolicy`]. This is the layer
//! where routing policy — the thing that *creates* each server's idle-period
//! distribution — becomes studyable: the same offered load produces entirely
//! different per-node idle-period distributions (and therefore PC1A savings)
//! under spreading vs. packing policies.
//!
//! # Determinism
//!
//! A cluster run is exactly reproducible: node components draw from streams
//! forked off each node's own seed (see [`crate::node::ServerNode`]), the
//! balancer from the cluster seed's `"balancer"` stream, and the arrival
//! stream from the cluster loadgen's seed. A **1-node cluster replays a
//! standalone [`crate::sim::ServerSimulation`] bit-for-bit** when node
//! config and loadgen seed match — the regression test
//! `crates/server/tests/cluster.rs` pins this.
//!
//! # Example
//!
//! ```
//! use apc_server::balancer::RoutingPolicyKind;
//! use apc_server::cluster::run_cluster_experiment;
//! use apc_server::config::ServerConfig;
//! use apc_sim::SimDuration;
//! use apc_workloads::spec::WorkloadSpec;
//!
//! let base = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(20));
//! let result = run_cluster_experiment(
//!     &base,
//!     4,
//!     RoutingPolicyKind::JoinShortestQueue,
//!     WorkloadSpec::memcached_etc(),
//!     40_000.0, // cluster-aggregate rate
//! );
//! assert_eq!(result.nodes.servers(), 4);
//! assert_eq!(result.total_routed(), result.routed.iter().sum::<u64>());
//! ```

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use apc_network::{NetworkConfig, NetworkStats};
use apc_sim::component::Simulation;
use apc_sim::rng::SimRng;
use apc_sim::{SimDuration, SimTime};
use apc_trace::{ProfileReport, TraceLog, TraceState};
use apc_workloads::loadgen::LoadGenerator;
use apc_workloads::spec::WorkloadSpec;

use crate::balancer::{Balancer, RoutingPolicy, RoutingPolicyKind};
use crate::components::fabric::{Fabric, FabricState};
use crate::components::state::ClusterState;
use crate::components::ServerEvent;
use crate::config::ServerConfig;
use crate::fleet::{effective_workers, run_pool, run_pool_streamed, Fleet, FleetResult};
use crate::node::{NodeHandles, ServerNode};

/// N complete servers and a load balancer sharing one event loop.
pub struct ClusterSimulation {
    sim: Simulation<ServerEvent, ClusterState>,
    nodes: Vec<NodeHandles>,
    balancer: Rc<RefCell<Balancer>>,
    end_at: SimTime,
    profile: bool,
}

impl ClusterSimulation {
    /// Builds a cluster of one node per config, balancing `loadgen`'s
    /// arrival stream across them through `policy`.
    ///
    /// `seed` is the cluster-level seed: it feeds the balancer's private
    /// stream (randomised policies draw from it). Node components draw from
    /// their own config's seed and the arrival stream from the loadgen's, so
    /// a 1-node cluster whose node config and loadgen seed match a
    /// standalone server reproduces it exactly.
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or the configs disagree on duration
    /// (every node must share the measurement horizon).
    #[must_use]
    pub fn new(
        seed: u64,
        configs: Vec<ServerConfig>,
        policy: Box<dyn RoutingPolicy>,
        loadgen: LoadGenerator,
    ) -> Self {
        Self::with_network(seed, configs, policy, loadgen, None)
    }

    /// Like [`ClusterSimulation::new`], additionally routing every balancer
    /// deposit through a network fabric (see [`crate::components::fabric`]).
    ///
    /// `None` — or an [instantaneous](NetworkConfig::is_instantaneous)
    /// configuration such as [`NetworkConfig::ideal`] — is **bit-identical**
    /// to the fabric-less path: requests deposit synchronously in the exact
    /// pre-fabric order (`crates/server/tests/network_differential.rs` pins
    /// this op-for-op).
    ///
    /// # Panics
    ///
    /// Panics if `configs` is empty or the configs disagree on duration.
    #[must_use]
    pub fn with_network(
        seed: u64,
        configs: Vec<ServerConfig>,
        policy: Box<dyn RoutingPolicy>,
        loadgen: LoadGenerator,
        network: Option<NetworkConfig>,
    ) -> Self {
        assert!(!configs.is_empty(), "a cluster needs at least one node");
        let duration = configs[0].duration;
        assert!(
            configs.iter().all(|c| c.duration == duration),
            "every cluster node must share one measurement duration"
        );
        let node_count = configs.len();
        let end_at = SimTime::ZERO + duration;
        // Observability is a cluster-level concern (one sampler, one span
        // log, one event loop to profile): the first node's config decides.
        let trace_config = configs[0].trace;
        let profile = configs[0].profile;

        let mut state = ClusterState::new(configs);
        // Each node's recorded `offered_rate` is the *nominal* per-node share
        // of the cluster rate (total / N), mirroring how a standalone server
        // records its loadgen's nominal rate. Non-uniform policies route more
        // or less than this to individual nodes — the actual census is
        // [`ClusterResult::routed`] (divide by the duration for the achieved
        // per-node offered rate).
        let per_node_rate = loadgen.rate_per_sec() / node_count as f64;
        for node in &mut state.nodes {
            node.workload_name = loadgen.spec().name;
            node.offered_rate = per_node_rate;
            node.network_rtt = loadgen.spec().network_rtt;
        }
        let first_arrival = loadgen.peek_next_arrival();

        let mut sim = Simulation::new(seed, state);
        let builders: Vec<ServerNode> = (0..node_count).map(ServerNode::new).collect();
        let nodes: Vec<NodeHandles> = builders
            .iter()
            .map(|b| b.register(&mut sim, None))
            .collect();
        let balancer = Rc::new(RefCell::new(Balancer::new(loadgen, policy, node_count)));
        let balancer_id = sim.add_component("balancer", Rc::clone(&balancer));
        // Each node's observers are scoped to the node's own components (see
        // `ServerNode::register`); subscribe the power observers to the
        // balancer too, since an arrival deposits into a node's NIC buffer —
        // the instant a standalone server would account through its own
        // `ClientArrival`. The package observers stay unsubscribed: a
        // balancer event only touches a NIC buffer, which none of the
        // package-state inputs read, so their hooks would record a
        // same-state no-op transition (the range check in
        // `PackageController::on_post_dispatch` guards the same invariant).
        // The fabric component registers even without a `[network]`
        // configuration: registration forks its RNG stream by name (a pure
        // function that perturbs no other stream) and an absent fabric never
        // receives an event, so the no-network event sequence is untouched.
        // A deferred `WireDeliver` deposits into a node's NIC buffer just
        // like a balancer arrival, so the power observers watch it too.
        let fabric_id = sim.add_component("fabric", Fabric);
        for handles in &nodes {
            sim.add_observer_target(handles.power, balancer_id);
            sim.add_observer_target(handles.power, fabric_id);
        }
        sim.shared_mut().fabric =
            network.map(|config| FabricState::new(config, node_count, fabric_id));
        sim.shared_mut().trace = trace_config
            .map(|config| TraceState::new(config, SimRng::from_seed(seed).fork("trace-sampler")));
        if profile {
            sim.enable_event_profile(ServerEvent::KIND_COUNT, ServerEvent::kind);
        }
        // Bootstrap in the standalone order: the first arrival, then every
        // node's background timers / initial idle entries / power sampling.
        sim.schedule(balancer_id, first_arrival, ServerEvent::ClusterArrival);
        for (builder, handles) in builders.iter().zip(&nodes) {
            builder.bootstrap(&mut sim, handles);
        }

        ClusterSimulation {
            sim,
            nodes,
            balancer,
            end_at,
            profile,
        }
    }

    /// Number of server nodes in the cluster.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to the shared cluster state (for tests and tracing).
    #[must_use]
    pub fn state(&self) -> &ClusterState {
        self.sim.shared()
    }

    /// The underlying component simulation (for tests and tracing).
    #[must_use]
    pub fn simulation(&self) -> &Simulation<ServerEvent, ClusterState> {
        &self.sim
    }

    /// Runs the cluster to the horizon and reduces per-node telemetry into a
    /// [`ClusterResult`].
    #[must_use]
    pub fn run(mut self) -> ClusterResult {
        let events_dispatched = self.sim.run_until(self.end_at);
        let end = self.end_at;
        let network = self
            .sim
            .shared()
            .fabric
            .as_ref()
            .map(|f| f.net.stats().clone());
        let profile = self.profile.then(|| {
            crate::components::profile_report(self.sim.queue_counters(), self.sim.event_profile())
        });
        let runs = self
            .nodes
            .iter()
            .map(|handles| handles.collect_result(self.sim.shared_mut(), end))
            .collect();
        let trace = self.sim.shared_mut().trace.take().map(TraceState::into_log);
        let balancer = self.balancer.borrow();
        ClusterResult {
            policy: balancer.policy_name(),
            routed: balancer.routed().to_vec(),
            duration: self.end_at.saturating_since(SimTime::ZERO),
            events_dispatched,
            network,
            trace,
            profile,
            nodes: FleetResult { runs },
        }
    }
}

/// The outcome of one cluster run: per-node results (with the fleet
/// aggregation helpers) plus the balancer's routing census.
///
/// Equality is exact per-metric equality, so two results compare equal only
/// when the underlying simulations were bit-identical — what the cluster
/// determinism tests assert.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterResult {
    /// The routing policy that ran.
    pub policy: &'static str,
    /// Requests routed to each node, in node order.
    pub routed: Vec<u64>,
    /// The simulated duration.
    pub duration: SimDuration,
    /// Total simulation events dispatched by the run's single event loop
    /// (every node plus the balancer). The event core's workload size: wall
    /// time divided by this is the per-event cost of the whole stack (queue,
    /// dispatch hooks, handlers).
    pub events_dispatched: u64,
    /// Wire-delay statistics of the network fabric, when one was configured
    /// (`None` for the instantaneous-deposit path).
    pub network: Option<NetworkStats>,
    /// Span log of head-sampled requests, when tracing was configured (see
    /// [`crate::config::ServerConfig::trace`]; the first node's config
    /// decides for the cluster).
    pub trace: Option<TraceLog>,
    /// Engine self-profile, when profiling was configured (see
    /// [`crate::config::ServerConfig::profile`]).
    pub profile: Option<ProfileReport>,
    /// Per-node results in node order, with fleet-style aggregates.
    pub nodes: FleetResult,
}

impl ClusterResult {
    /// Total requests the balancer routed (≥ completed: requests still in
    /// flight at the horizon were routed but never finished).
    #[must_use]
    pub fn total_routed(&self) -> u64 {
        self.routed.iter().sum()
    }

    /// Total fully-idle periods observed across the nodes.
    #[must_use]
    pub fn total_idle_periods(&self) -> u64 {
        self.nodes.runs.iter().map(|r| r.idle_periods).sum()
    }

    /// Fraction of the cluster's fully-idle periods between 20 µs and 200 µs
    /// (the paper's Fig. 6(c) band), weighted by each node's period count.
    #[must_use]
    pub fn idle_periods_20_200us(&self) -> f64 {
        let total = self.total_idle_periods();
        if total == 0 {
            return 0.0;
        }
        self.nodes
            .runs
            .iter()
            .map(|r| r.idle_periods_20_200us * r.idle_periods as f64)
            .sum::<f64>()
            / total as f64
    }

    /// How unevenly the policy spread requests: max/mean routed per node
    /// (1.0 = perfectly even, N = everything on one of N nodes).
    #[must_use]
    pub fn routing_imbalance(&self) -> f64 {
        let total = self.total_routed();
        if total == 0 || self.routed.is_empty() {
            return 1.0;
        }
        let mean = total as f64 / self.routed.len() as f64;
        let max = self.routed.iter().copied().max().unwrap_or(0) as f64;
        max / mean
    }
}

/// One line per node (routed share, throughput, power, PC1A residency), then
/// the cluster totals.
impl fmt::Display for ClusterResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, r) in self.nodes.runs.iter().enumerate() {
            writeln!(
                f,
                "node {i:>3}: routed {:>8} {:>10.0} rps {:>7.1} W PC1A {:>5.1}% p99 {} p999 {}",
                self.routed.get(i).copied().unwrap_or(0),
                r.throughput(),
                r.avg_total_power().as_f64(),
                r.pc1a_residency * 100.0,
                r.latency.p99,
                r.latency.p999,
            )?;
        }
        write!(
            f,
            "cluster ({}): {} nodes {:>10.0} rps {:>7.1} W mean PC1A {:>5.1}% worst p99 {} p999 {}",
            self.policy,
            self.nodes.servers(),
            self.nodes.aggregate_throughput(),
            self.nodes.total_power_w(),
            self.nodes.mean_pc1a_residency() * 100.0,
            self.nodes.worst_p99(),
            self.nodes.worst_p999(),
        )
    }
}

/// A declarative, `Send` description of one cluster run — the cluster
/// counterpart of [`crate::fleet::FleetMember`], usable as a member of a
/// [`ClusterFleet`].
#[derive(Debug)]
pub struct ClusterMember {
    /// Per-node configurations (each carries its own seed).
    pub nodes: Vec<ServerConfig>,
    /// The routing policy to run.
    pub policy: RoutingPolicyKind,
    /// The workload of the cluster arrival stream.
    pub spec: WorkloadSpec,
    /// Cluster-aggregate offered rate (requests per second).
    pub total_rate_per_sec: f64,
    /// Cluster seed: balancer stream and arrival-stream seed.
    pub seed: u64,
    /// The network fabric every routed RPC crosses (`None` keeps the
    /// instantaneous-deposit path).
    pub network: Option<NetworkConfig>,
}

impl ClusterMember {
    /// A cluster of `n` nodes sharing `base`'s platform, with node seeds
    /// derived by the canonical [`Fleet::member_seed`] scheme from `base`'s
    /// seed, serving `spec` at cluster-aggregate `total_rate_per_sec` under
    /// `policy`.
    #[must_use]
    pub fn homogeneous(
        base: &ServerConfig,
        n: usize,
        policy: RoutingPolicyKind,
        spec: WorkloadSpec,
        total_rate_per_sec: f64,
    ) -> Self {
        ClusterMember {
            nodes: (0..n)
                .map(|i| base.clone().with_seed(Fleet::member_seed(base.seed, i)))
                .collect(),
            policy,
            spec,
            total_rate_per_sec,
            seed: base.seed,
            network: None,
        }
    }

    /// Routes every RPC of this cluster through `network` (see
    /// [`ClusterSimulation::with_network`]).
    #[must_use]
    pub fn with_network(mut self, network: NetworkConfig) -> Self {
        self.network = Some(network);
        self
    }

    /// Builds and runs the cluster to completion.
    #[must_use]
    pub fn run(self) -> ClusterResult {
        let loadgen = LoadGenerator::new(self.spec, self.total_rate_per_sec, self.seed);
        ClusterSimulation::with_network(
            self.seed,
            self.nodes,
            self.policy.build(),
            loadgen,
            self.network,
        )
        .run()
    }
}

/// A set of independent cluster simulations run as one experiment — e.g. the
/// same cluster under every routing policy, or a policy under every platform
/// configuration. Members execute on the same deterministic worker pool as
/// [`Fleet::run`], so a parallel run is bit-identical to
/// [`ClusterFleet::run_sequential`].
#[derive(Debug, Default)]
pub struct ClusterFleet {
    members: Vec<ClusterMember>,
    parallelism: Option<usize>,
}

impl ClusterFleet {
    /// An empty cluster fleet.
    #[must_use]
    pub fn new() -> Self {
        ClusterFleet::default()
    }

    /// Adds one cluster to the fleet.
    pub fn push(&mut self, member: ClusterMember) -> &mut Self {
        self.members.push(member);
        self
    }

    /// Number of clusters in the fleet.
    #[must_use]
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// `true` when the fleet has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Pins the number of worker threads [`ClusterFleet::run`] may use
    /// (`1` forces the sequential path); see [`Fleet::with_parallelism`].
    #[must_use]
    pub fn with_parallelism(mut self, workers: usize) -> Self {
        self.parallelism = Some(workers.max(1));
        self
    }

    /// Runs every cluster to completion — in parallel when the host allows —
    /// returning results in member order, bit-identical to
    /// [`ClusterFleet::run_sequential`].
    ///
    /// A single-member fleet has no member-level parallelism to exploit, so
    /// the worker budget moves *inside* the run instead: the one cluster is
    /// partitioned per node under the conservative-lookahead scheduler (see
    /// [`crate::parallel`]) whenever its topology admits it — still
    /// bit-identical either way.
    #[must_use]
    pub fn run(mut self) -> Vec<ClusterResult> {
        if self.members.len() == 1 {
            let member = self.members.pop().expect("one member");
            return vec![member.run_with_parallelism(self.parallelism)];
        }
        let workers = effective_workers(self.parallelism, self.members.len());
        run_pool(self.members, workers, ClusterMember::run)
    }

    /// Runs every cluster back-to-back on the calling thread.
    #[must_use]
    pub fn run_sequential(self) -> Vec<ClusterResult> {
        self.members.into_iter().map(ClusterMember::run).collect()
    }

    /// Like [`ClusterFleet::run`], but invokes `emit(i, &result)` once per
    /// repeat, in member order, as soon as repeat `i` and all its
    /// predecessors have finished (the CLI's `--stream-out` hook). Results
    /// are bit-identical to [`ClusterFleet::run`]'s.
    ///
    /// # Errors
    ///
    /// Returns `emit`'s first error; remaining repeats still run but
    /// nothing further is emitted.
    pub fn run_streamed<E>(
        mut self,
        mut emit: impl FnMut(usize, &ClusterResult) -> Result<(), E>,
    ) -> Result<Vec<ClusterResult>, E> {
        if self.members.len() == 1 {
            let member = self.members.pop().expect("one member");
            let result = member.run_with_parallelism(self.parallelism);
            emit(0, &result)?;
            return Ok(vec![result]);
        }
        let workers = effective_workers(self.parallelism, self.members.len());
        run_pool_streamed(self.members, workers, ClusterMember::run, emit)
    }
}

/// Convenience: run one homogeneous cluster experiment (see
/// [`ClusterMember::homogeneous`] for the seed-derivation scheme).
#[must_use]
pub fn run_cluster_experiment(
    base: &ServerConfig,
    n: usize,
    policy: RoutingPolicyKind,
    spec: WorkloadSpec,
    total_rate_per_sec: f64,
) -> ClusterResult {
    ClusterMember::homogeneous(base, n, policy, spec, total_rate_per_sec).run()
}
