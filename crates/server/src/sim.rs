//! The full-system discrete-event server simulation.
//!
//! [`ServerSimulation`] binds the workload generators, the OS idle governor,
//! the socket component models, the package controllers (firmware GPMU and,
//! under `CPC1A`, the APC APMU) and the power/telemetry layers into one
//! event-driven run. It is the substitute for the paper's physical testbed:
//! every figure of the evaluation is produced by running it under different
//! platform configurations and request rates.

use std::collections::VecDeque;

use apc_core::apmu::{Apmu, ApmuState, WakeCause, WakeOutcome};
use apc_pmu::config::PackagePolicy;
use apc_pmu::governor::IdleGovernor;
use apc_pmu::gpmu::{Gpmu, GpmuPhase};
use apc_sim::engine::EventQueue;
use apc_sim::rng::SimRng;
use apc_sim::{SimDuration, SimTime};
use apc_soc::core::{CoreActivity, CoreId};
use apc_soc::cstate::{CoreCState, PackageCState};
use apc_soc::io::IoId;
use apc_soc::topology::SkxSoc;
use apc_telemetry::idle::IdlePeriodTracker;
use apc_telemetry::latency::LatencyRecorder;
use apc_telemetry::residency::{CoreResidencySet, PackageResidency};
use apc_workloads::loadgen::LoadGenerator;
use apc_workloads::request::Request;
use apc_power::energy::EnergyMeter;

use crate::config::ServerConfig;
use crate::result::RunResult;

/// Events driving the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Event {
    /// The next client request arrives at the NIC.
    ClientArrival,
    /// The NIC raises an interrupt delivering the coalesced batch.
    NicDeliver,
    /// A core's periodic background (OS) wakeup fires.
    BackgroundWake { core: usize },
    /// A core finished its wake transition and starts executing.
    CoreWakeDone {
        /// Core index.
        core: usize,
        /// Transition epoch the event belongs to (stale events are ignored).
        epoch: u64,
    },
    /// A core finished executing its current work item.
    CoreServiceDone { core: usize },
    /// A core finished entering its idle C-state.
    CoreIdleEntered {
        /// Core index.
        core: usize,
        /// Transition epoch the event belongs to (stale events are ignored).
        epoch: u64,
    },
    /// The APMU's IO-standby deadline elapsed (try to enter PC1A).
    ApmuStandbyDeadline,
    /// The PC1A entry flow completed.
    ApmuEntryDone,
    /// The PC1A exit flow completed.
    ApmuExitDone,
    /// The PC6 entry flow completed.
    GpmuEntryDone,
    /// The PC6 exit flow completed.
    GpmuExitDone,
    /// Retry dispatching queued work (used when the uncore was unavailable).
    DispatchRetry,
    /// End of the measurement window.
    EndOfRun,
}

/// A unit of work a core can execute.
#[derive(Debug, Clone)]
enum WorkItem {
    /// A client request (latency-accounted).
    Client(Request),
    /// OS background work (not latency-accounted).
    Background {
        /// CPU time the background task consumes.
        work: SimDuration,
    },
}

/// The full-system simulation.
pub struct ServerSimulation {
    config: ServerConfig,
    soc: SkxSoc,
    governor: IdleGovernor,
    gpmu: Gpmu,
    apmu: Apmu,
    loadgen: LoadGenerator,
    rng: SimRng,
    queue: EventQueue<Event>,

    // Scheduling state.
    client_queue: VecDeque<Request>,
    nic_buffer: VecDeque<Request>,
    nic_deliver_pending: bool,
    background_queue: Vec<VecDeque<SimDuration>>,
    running: Vec<Option<WorkItem>>,
    pending_start: Vec<Option<WorkItem>>,
    /// Per-core transition epoch: bumped whenever a new C-state transition
    /// starts, so completion events from superseded transitions are ignored.
    core_epoch: Vec<u64>,
    next_background_at: Vec<SimTime>,
    gpmu_pending_wake: bool,
    uncore_ready_at: Option<SimTime>,

    // Telemetry.
    energy: EnergyMeter,
    latency: LatencyRecorder,
    core_residency: CoreResidencySet,
    package_residency: PackageResidency,
    idle_tracker: IdlePeriodTracker,
    completed_requests: u64,
    busy_core_time: SimDuration,
    now: SimTime,
    end_at: SimTime,
}

impl ServerSimulation {
    /// Builds a simulation for `config` driving `loadgen`.
    #[must_use]
    pub fn new(config: ServerConfig, loadgen: LoadGenerator) -> Self {
        let soc = config.soc.build();
        let cores = soc.cores().len();
        let governor = IdleGovernor::new(&config.platform);
        let gpmu = Gpmu::new(config.platform.package_cstate_limit());
        let apmu = if config.platform.package_policy == PackagePolicy::Pc1a {
            Apmu::new()
        } else {
            Apmu::disabled()
        };
        let rng = SimRng::from_seed(config.seed).fork("server");
        let end_at = SimTime::ZERO + config.duration;
        ServerSimulation {
            governor,
            gpmu,
            apmu,
            loadgen,
            rng,
            queue: EventQueue::new(),
            client_queue: VecDeque::new(),
            nic_buffer: VecDeque::new(),
            nic_deliver_pending: false,
            background_queue: vec![VecDeque::new(); cores],
            running: vec![None; cores],
            pending_start: vec![None; cores],
            core_epoch: vec![0; cores],
            next_background_at: vec![SimTime::MAX; cores],
            gpmu_pending_wake: false,
            uncore_ready_at: None,
            energy: EnergyMeter::new(SimTime::ZERO),
            latency: LatencyRecorder::new(),
            core_residency: CoreResidencySet::new(cores, SimTime::ZERO),
            package_residency: PackageResidency::new(PackageCState::PC0, SimTime::ZERO),
            idle_tracker: IdlePeriodTracker::with_socwatch_floor(cores, SimTime::ZERO),
            completed_requests: 0,
            busy_core_time: SimDuration::ZERO,
            now: SimTime::ZERO,
            end_at,
            soc,
            config,
        }
    }

    /// Runs the simulation to completion and returns the result.
    pub fn run(mut self) -> RunResult {
        self.bootstrap();
        while let Some((t, event)) = self.queue.pop() {
            // Attribute the elapsed interval to the power state that held
            // during it, *before* applying the event's changes.
            self.account_power(t);
            self.now = t;
            if event == Event::EndOfRun {
                break;
            }
            self.handle(event);
            self.track_package_state();
        }
        self.finalize()
    }

    // ------------------------------------------------------------------
    // Setup and teardown.
    // ------------------------------------------------------------------

    fn bootstrap(&mut self) {
        // First client arrival.
        self.queue
            .schedule(self.loadgen.peek_next_arrival(), Event::ClientArrival);
        // Background wakeups per core.
        if let Some(noise) = self.config.noise.clone() {
            for core in 0..self.soc.cores().len() {
                let at = SimTime::ZERO + noise.sample_interval(&mut self.rng);
                self.next_background_at[core] = at;
                self.queue.schedule(at, Event::BackgroundWake { core });
            }
        }
        // All cores start busy (boot); idle them immediately.
        for core in 0..self.soc.cores().len() {
            self.begin_core_idle(core, SimTime::ZERO);
        }
        self.queue.schedule(self.end_at, Event::EndOfRun);
    }

    fn finalize(mut self) -> RunResult {
        let end = self.end_at;
        self.account_power(end);
        self.core_residency.finish(end);
        self.package_residency.finish(end);
        self.idle_tracker.finish(end);

        let cores = self.soc.cores().len() as f64;
        let util = self.busy_core_time.as_secs_f64() / (self.config.duration.as_secs_f64() * cores);
        let cc1 = self.core_residency.average_fraction_in(CoreCState::CC1)
            + self.core_residency.average_fraction_in(CoreCState::CC1E);
        RunResult {
            config_name: self.config.platform.name,
            workload: self.loadgen.spec().name,
            offered_rate: self.loadgen.rate_per_sec(),
            duration: self.config.duration,
            completed_requests: self.completed_requests,
            latency: self.latency.summary(),
            avg_soc_power: self.energy.average_soc_power(),
            avg_dram_power: self.energy.average_dram_power(),
            cpu_utilization: util,
            cc0_fraction: self.core_residency.average_fraction_in(CoreCState::CC0),
            cc1_fraction: cc1,
            cc6_fraction: self.core_residency.average_fraction_in(CoreCState::CC6),
            all_idle_fraction: self.idle_tracker.idle_fraction(),
            pc1a_residency: self.package_residency.fraction_in(PackageCState::PC1A),
            pc6_residency: self.package_residency.fraction_in(PackageCState::PC6),
            pc1a_transitions: self.apmu.stats().pc1a_entries,
            pc1a_aborted: self.apmu.stats().aborted_entries,
            pc6_transitions: self.gpmu.pc6_entries(),
            idle_periods: self.idle_tracker.period_count(),
            idle_periods_20_200us: self
                .idle_tracker
                .fraction_between(SimDuration::from_micros(20), SimDuration::from_micros(200)),
            finished_at: end,
        }
    }

    // ------------------------------------------------------------------
    // Power and residency accounting.
    // ------------------------------------------------------------------

    fn account_power(&mut self, to: SimTime) {
        let busy = self
            .running
            .iter()
            .filter(|w| w.is_some())
            .count() as f64;
        let mem_util = busy / self.soc.cores().len().max(1) as f64;
        let breakdown = self.config.power.snapshot(&self.soc, mem_util);
        self.energy.advance(to, &breakdown);
    }

    fn track_package_state(&mut self) {
        let any_active = self.soc.cores().active_count() > 0
            || self.running.iter().any(Option::is_some)
            || self.pending_start.iter().any(Option::is_some);
        let state = match self.config.platform.package_policy {
            PackagePolicy::Pc1a => self.apmu.package_state(any_active),
            PackagePolicy::Pc6 => self.gpmu.package_state(!any_active),
            PackagePolicy::None => {
                if any_active {
                    PackageCState::PC0
                } else {
                    PackageCState::PC0Idle
                }
            }
        };
        self.package_residency.transition(self.now, state);
    }

    // ------------------------------------------------------------------
    // Event handlers.
    // ------------------------------------------------------------------

    fn handle(&mut self, event: Event) {
        match event {
            Event::ClientArrival => self.on_client_arrival(),
            Event::NicDeliver => self.on_nic_deliver(),
            Event::BackgroundWake { core } => self.on_background_wake(core),
            Event::CoreWakeDone { core, epoch } => self.on_core_wake_done(core, epoch),
            Event::CoreServiceDone { core } => self.on_core_service_done(core),
            Event::CoreIdleEntered { core, epoch } => self.on_core_idle_entered(core, epoch),
            Event::ApmuStandbyDeadline => self.on_apmu_standby_deadline(),
            Event::ApmuEntryDone => self.on_apmu_entry_done(),
            Event::ApmuExitDone => self.on_apmu_exit_done(),
            Event::GpmuEntryDone => self.on_gpmu_entry_done(),
            Event::GpmuExitDone => self.on_gpmu_exit_done(),
            Event::DispatchRetry => self.try_dispatch(),
            Event::EndOfRun => {}
        }
    }

    fn on_client_arrival(&mut self) {
        let request = self.loadgen.next_request();
        self.nic_buffer.push_back(request);
        if !self.nic_deliver_pending {
            self.nic_deliver_pending = true;
            self.queue
                .schedule(self.now + self.config.nic_coalescing, Event::NicDeliver);
        }
        self.queue
            .schedule(self.loadgen.peek_next_arrival(), Event::ClientArrival);
    }

    fn on_nic_deliver(&mut self) {
        self.nic_deliver_pending = false;
        if self.nic_buffer.is_empty() {
            return;
        }
        // The NIC's PCIe link sees traffic: it leaves L0s and the package, if
        // resident in PC1A or PC6, starts its exit flow.
        let nic = IoId(0);
        self.soc.ios_mut().controller_mut(nic).begin_traffic(self.now);
        self.soc.ios_mut().controller_mut(nic).end_traffic(self.now);
        self.wake_package(WakeCause::IoTraffic);

        while let Some(r) = self.nic_buffer.pop_front() {
            self.client_queue.push_back(r);
        }
        self.try_dispatch();
    }

    fn on_background_wake(&mut self, core: usize) {
        if let Some(noise) = self.config.noise.clone() {
            let work = noise.sample_work(&mut self.rng);
            self.background_queue[core].push_back(work);
            // Background work is initiated by a timer interrupt: it wakes the
            // package if necessary.
            self.wake_package(WakeCause::CoreInterrupt);
            self.try_dispatch();
            // Schedule the next tick.
            let next = self.now + noise.sample_interval(&mut self.rng);
            self.next_background_at[core] = next;
            self.queue.schedule(next, Event::BackgroundWake { core });
        }
    }

    fn on_core_wake_done(&mut self, core: usize, epoch: u64) {
        if self.core_epoch[core] != epoch {
            return;
        }
        self.soc
            .cores_mut()
            .core_mut(CoreId(core))
            .complete_transition(self.now);
        self.core_residency
            .transition(CoreId(core), self.now, CoreCState::CC0);
        // Leaving ACC1: the first core to run again clears AllowL0s.
        if self.apmu.state() == ApmuState::Acc1 {
            self.apmu.on_core_active(&mut self.soc, self.now);
        }
        let item = self.pending_start[core]
            .take()
            .expect("a waking core must have pending work");
        self.start_service(core, item);
    }

    fn start_service(&mut self, core: usize, item: WorkItem) {
        let service = match &item {
            WorkItem::Client(r) => r.service + self.config.softirq_overhead,
            WorkItem::Background { work } => *work,
        };
        self.running[core] = Some(item);
        self.queue
            .schedule(self.now + service, Event::CoreServiceDone { core });
    }

    fn on_core_service_done(&mut self, core: usize) {
        let item = self.running[core].take().expect("core had no running work");
        match item {
            WorkItem::Client(request) => {
                let server_side = self.now.saturating_since(request.arrival);
                let total = server_side + self.loadgen.spec().network_rtt;
                if request.class.is_client_visible() {
                    self.latency.record(total);
                    self.completed_requests += 1;
                }
                self.busy_core_time += request.service + self.config.softirq_overhead;
            }
            WorkItem::Background { work } => {
                self.busy_core_time += work;
            }
        }
        // Pick up more work without sleeping if any is available.
        if let Some(next) = self.client_queue.pop_front() {
            self.start_service(core, WorkItem::Client(next));
            return;
        }
        if let Some(work) = self.background_queue[core].pop_front() {
            self.start_service(core, WorkItem::Background { work });
            return;
        }
        self.begin_core_idle(core, self.now);
    }

    fn begin_core_idle(&mut self, core: usize, now: SimTime) {
        // Predicted idle: the time until this core's next background tick
        // (the OS knows its own timers; client arrivals are unpredictable).
        let predicted = self.next_background_at[core].saturating_since(now);
        let target = self.governor.select(predicted);
        let entry = self
            .soc
            .cores_mut()
            .core_mut(CoreId(core))
            .begin_idle(now, target);
        self.idle_tracker.core_idle(now);
        self.core_epoch[core] += 1;
        let epoch = self.core_epoch[core];
        self.queue
            .schedule(now + entry, Event::CoreIdleEntered { core, epoch });
    }

    fn on_core_idle_entered(&mut self, core: usize, epoch: u64) {
        if self.core_epoch[core] != epoch {
            return;
        }
        self.soc
            .cores_mut()
            .core_mut(CoreId(core))
            .complete_transition(self.now);
        let state = self.soc.cores().core(CoreId(core)).cstate();
        self.core_residency.transition(CoreId(core), self.now, state);

        // Package-level opportunity checks.
        match self.config.platform.package_policy {
            PackagePolicy::Pc1a => {
                if self.soc.cores().all_in_cc1_or_deeper() {
                    if let Some(deadline) = self.apmu.on_all_cores_idle(&mut self.soc, self.now) {
                        self.queue.schedule(deadline, Event::ApmuStandbyDeadline);
                    }
                }
            }
            PackagePolicy::Pc6 => {
                if self.gpmu.can_enter_pc6(&self.soc) {
                    let entry = self.gpmu.begin_entry(&mut self.soc, self.now);
                    self.queue.schedule(self.now + entry, Event::GpmuEntryDone);
                }
            }
            PackagePolicy::None => {}
        }
    }

    fn on_apmu_standby_deadline(&mut self) {
        if let Some(done_at) = self.apmu.on_standby_deadline(&mut self.soc, self.now) {
            self.queue.schedule(done_at, Event::ApmuEntryDone);
        }
    }

    fn on_apmu_entry_done(&mut self) {
        if matches!(self.apmu.state(), ApmuState::Entering { .. }) {
            self.apmu.on_entry_complete(self.now);
        }
    }

    fn on_apmu_exit_done(&mut self) {
        if matches!(self.apmu.state(), ApmuState::Exiting { .. }) {
            self.apmu.on_exit_complete(&mut self.soc, self.now);
        }
        self.uncore_ready_at = None;
        self.try_dispatch();
    }

    fn on_gpmu_entry_done(&mut self) {
        if self.gpmu.phase() == GpmuPhase::Entering {
            self.gpmu.complete_entry(&mut self.soc, self.now);
        }
        if self.gpmu_pending_wake {
            self.gpmu_pending_wake = false;
            let exit = self.gpmu.begin_exit(&mut self.soc, self.now);
            self.uncore_ready_at = Some(self.now + exit);
            self.queue.schedule(self.now + exit, Event::GpmuExitDone);
        }
    }

    fn on_gpmu_exit_done(&mut self) {
        if self.gpmu.phase() == GpmuPhase::Exiting {
            self.gpmu.complete_exit(&mut self.soc, self.now);
        }
        self.uncore_ready_at = None;
        self.try_dispatch();
    }

    /// Wakes the package (APMU or GPMU) in response to an interrupt or IO
    /// traffic. Sets `uncore_ready_at` when an exit flow has to run first.
    fn wake_package(&mut self, cause: WakeCause) {
        match self.config.platform.package_policy {
            PackagePolicy::Pc1a => match self.apmu.state() {
                ApmuState::InPc1a { .. } | ApmuState::Entering { .. } => {
                    if let WakeOutcome::Exiting { done_at, .. } =
                        self.apmu.wakeup(&mut self.soc, self.now, cause)
                    {
                        self.uncore_ready_at = Some(done_at);
                        self.queue.schedule(done_at, Event::ApmuExitDone);
                    }
                }
                ApmuState::Acc1 => {
                    let _ = self.apmu.wakeup(&mut self.soc, self.now, cause);
                }
                ApmuState::Pc0 | ApmuState::Exiting { .. } => {}
            },
            PackagePolicy::Pc6 => match self.gpmu.phase() {
                GpmuPhase::InPc6 => {
                    let exit = self.gpmu.begin_exit(&mut self.soc, self.now);
                    self.uncore_ready_at = Some(self.now + exit);
                    self.queue.schedule(self.now + exit, Event::GpmuExitDone);
                }
                GpmuPhase::Entering => {
                    self.gpmu_pending_wake = true;
                    // Ready time unknown until the entry completes; dispatch
                    // is retried from on_gpmu_entry_done / on_gpmu_exit_done.
                    self.uncore_ready_at = Some(SimTime::MAX);
                }
                GpmuPhase::Active | GpmuPhase::Exiting => {}
            },
            PackagePolicy::None => {}
        }
    }

    /// `true` when the shared uncore (LLC, memory path) is available for
    /// request execution.
    fn uncore_available(&self) -> bool {
        match self.config.platform.package_policy {
            PackagePolicy::Pc1a => matches!(self.apmu.state(), ApmuState::Pc0 | ApmuState::Acc1),
            PackagePolicy::Pc6 => self.gpmu.phase() == GpmuPhase::Active,
            PackagePolicy::None => true,
        }
    }

    fn try_dispatch(&mut self) {
        if !self.uncore_available() {
            if let Some(ready) = self.uncore_ready_at {
                if ready != SimTime::MAX {
                    self.queue.schedule(ready, Event::DispatchRetry);
                }
            }
            return;
        }
        // Background work is pinned to its core.
        for core in 0..self.soc.cores().len() {
            if self.core_is_free(core) && !self.background_queue[core].is_empty() {
                let work = self.background_queue[core].pop_front().expect("checked");
                self.wake_core_with(core, WorkItem::Background { work });
            }
        }
        // Client requests go to any free core.
        while !self.client_queue.is_empty() {
            let Some(core) = (0..self.soc.cores().len()).find(|&c| self.core_is_free(c)) else {
                break;
            };
            let request = self.client_queue.pop_front().expect("checked");
            self.wake_core_with(core, WorkItem::Client(request));
        }
    }

    fn core_is_free(&self, core: usize) -> bool {
        self.running[core].is_none()
            && self.pending_start[core].is_none()
            && self.soc.cores().core(CoreId(core)).activity() != CoreActivity::Busy
    }

    fn wake_core_with(&mut self, core: usize, item: WorkItem) {
        let exit = self
            .soc
            .cores_mut()
            .core_mut(CoreId(core))
            .begin_wakeup(self.now);
        self.idle_tracker.core_active(self.now);
        self.pending_start[core] = Some(item);
        self.core_epoch[core] += 1;
        let epoch = self.core_epoch[core];
        self.queue
            .schedule(self.now + exit, Event::CoreWakeDone { core, epoch });
    }
}

/// Convenience: run one workload at one rate under one configuration.
#[must_use]
pub fn run_experiment(
    config: ServerConfig,
    spec: apc_workloads::spec::WorkloadSpec,
    rate_per_sec: f64,
) -> RunResult {
    let seed = config.seed;
    let loadgen = LoadGenerator::new(spec, rate_per_sec, seed);
    ServerSimulation::new(config, loadgen).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_workloads::spec::WorkloadSpec;

    fn quick(config: ServerConfig, rate: f64) -> RunResult {
        run_experiment(
            config.with_duration(SimDuration::from_millis(200)),
            WorkloadSpec::memcached_etc(),
            rate,
        )
    }

    #[test]
    fn cshallow_run_completes_requests_and_tracks_power() {
        let r = quick(ServerConfig::c_shallow(), 20_000.0);
        assert!(r.completed_requests > 3_000, "completed {}", r.completed_requests);
        assert!(r.latency.mean >= SimDuration::from_micros(117));
        assert!(r.latency.mean <= SimDuration::from_micros(400));
        // No package savings: power close to the 44 W idle floor plus some
        // core activity, never below it.
        assert!(r.avg_soc_power.as_f64() >= 43.0, "power {}", r.avg_soc_power);
        assert!(r.avg_soc_power.as_f64() <= 60.0, "power {}", r.avg_soc_power);
        assert_eq!(r.pc1a_transitions, 0);
        assert_eq!(r.pc6_transitions, 0);
        assert!(r.all_idle_fraction > 0.1, "all idle {}", r.all_idle_fraction);
        assert!(r.cpu_utilization > 0.01 && r.cpu_utilization < 0.2);
        assert_eq!(r.config_name, "Cshallow");
    }

    #[test]
    fn cpc1a_enters_pc1a_and_saves_power() {
        let base = quick(ServerConfig::c_shallow(), 20_000.0);
        let apc = quick(ServerConfig::c_pc1a(), 20_000.0);
        assert!(apc.pc1a_transitions > 10, "transitions {}", apc.pc1a_transitions);
        assert!(apc.pc1a_residency > 0.05, "residency {}", apc.pc1a_residency);
        let saving = apc.power_saving_vs(&base);
        assert!(saving > 0.05, "saving {saving}");
        // Latency impact is tiny.
        let overhead = apc.latency_overhead_vs(&base);
        assert!(overhead.abs() < 0.02, "overhead {overhead}");
    }

    #[test]
    fn idle_server_saves_about_41_percent_with_pc1a() {
        let mut shallow_cfg = ServerConfig::c_shallow().with_duration(SimDuration::from_millis(100));
        shallow_cfg.noise = None;
        let mut apc_cfg = ServerConfig::c_pc1a().with_duration(SimDuration::from_millis(100));
        apc_cfg.noise = None;
        // Effectively no load: 1 request per second.
        let base = run_experiment(shallow_cfg, WorkloadSpec::memcached_etc(), 1.0);
        let apc = run_experiment(apc_cfg, WorkloadSpec::memcached_etc(), 1.0);
        let saving = apc.power_saving_vs(&base);
        assert!(
            (saving - 0.41).abs() < 0.05,
            "idle saving {saving} should be ~0.41"
        );
        assert!(apc.pc1a_residency > 0.95, "residency {}", apc.pc1a_residency);
    }

    #[test]
    fn cdeep_has_higher_latency_than_cshallow() {
        let shallow = quick(ServerConfig::c_shallow(), 20_000.0);
        let deep = quick(ServerConfig::c_deep(), 20_000.0);
        assert!(
            deep.latency.mean > shallow.latency.mean,
            "deep {} vs shallow {}",
            deep.latency.mean,
            shallow.latency.mean
        );
        // Deep C-states save power relative to the shallow baseline.
        assert!(deep.avg_soc_power < shallow.avg_soc_power);
    }

    #[test]
    fn pc1a_residency_decreases_with_load() {
        let low = quick(ServerConfig::c_pc1a(), 4_000.0);
        let high = quick(ServerConfig::c_pc1a(), 100_000.0);
        assert!(
            low.pc1a_residency > high.pc1a_residency,
            "low {} high {}",
            low.pc1a_residency,
            high.pc1a_residency
        );
        assert!(low.pc1a_residency > 0.4, "low-load residency {}", low.pc1a_residency);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let a = quick(ServerConfig::c_pc1a().with_seed(9), 10_000.0);
        let b = quick(ServerConfig::c_pc1a().with_seed(9), 10_000.0);
        assert_eq!(a.completed_requests, b.completed_requests);
        assert_eq!(a.pc1a_transitions, b.pc1a_transitions);
        assert!((a.avg_soc_power.as_f64() - b.avg_soc_power.as_f64()).abs() < 1e-9);
        assert_eq!(a.latency.mean, b.latency.mean);
    }

    #[test]
    fn throughput_tracks_offered_load() {
        let r = quick(ServerConfig::c_shallow(), 50_000.0);
        let achieved = r.throughput();
        assert!(
            (achieved - 50_000.0).abs() / 50_000.0 < 0.15,
            "achieved {achieved}"
        );
    }
}
