//! The full-system server simulation: a thin driver over the component
//! architecture.
//!
//! [`ServerSimulation`] registers the five component kinds of
//! [`crate::components`] — NIC/arrival, dispatch scheduler, one execution
//! component per core, the package controller and power/telemetry — with an
//! [`apc_sim::component::Simulation`], bootstraps the initial events and
//! runs the event loop to the configured horizon. All simulation behaviour
//! lives in the components; this module only wires them together and reduces
//! the shared telemetry into a [`RunResult`].

use std::cell::RefCell;
use std::rc::Rc;

use apc_sim::component::Simulation;
use apc_sim::{SimDuration, SimTime};
use apc_soc::cstate::{CoreCState, PackageCState};
use apc_workloads::loadgen::LoadGenerator;

use crate::components::core_exec::CoreExec;
use crate::components::nic::NicArrival;
use crate::components::package::PackageController;
use crate::components::power::PowerTelemetry;
use crate::components::scheduler::Scheduler;
use crate::components::state::ServerState;
use crate::components::{Addresses, ServerEvent};
use crate::config::ServerConfig;
use crate::result::RunResult;
use apc_pmu::governor::IdleGovernor;

/// The full-system simulation.
pub struct ServerSimulation {
    sim: Simulation<ServerEvent, ServerState>,
    package: Rc<RefCell<PackageController>>,
    end_at: SimTime,
}

impl ServerSimulation {
    /// Builds a simulation for `config` driving `loadgen`.
    #[must_use]
    pub fn new(config: ServerConfig, loadgen: LoadGenerator) -> Self {
        let mut state = ServerState::new(config);
        state.workload_name = loadgen.spec().name;
        state.offered_rate = loadgen.rate_per_sec();
        state.network_rtt = loadgen.spec().network_rtt;
        let cores = state.soc.cores().len();
        let end_at = SimTime::ZERO + state.config.duration;
        let first_arrival = loadgen.peek_next_arrival();
        let noise = state.config.noise.clone();
        let platform = state.config.platform.clone();
        let sample_every = state.config.power_sample_interval;
        let seed = state.config.seed;

        // Components address their peers through `ServerState::addrs`,
        // filled here with the real registration ids before any event is
        // scheduled (the components reference each other cyclically).
        let mut sim = Simulation::new(seed, state);
        let power = sim.add_component("power", PowerTelemetry::new(sample_every));
        let package = Rc::new(RefCell::new(PackageController::new(
            platform.package_policy,
            platform.package_cstate_limit(),
        )));
        let addrs = Addresses {
            package: sim.add_component("package", Rc::clone(&package)),
            scheduler: sim.add_component("scheduler", Scheduler),
            nic: sim.add_component("nic", NicArrival::new(loadgen)),
            cores: (0..cores)
                .map(|i| {
                    let governor = IdleGovernor::new(&platform);
                    sim.add_component(
                        format!("core {i}"),
                        CoreExec::new(i, governor, noise.clone()),
                    )
                })
                .collect(),
        };
        sim.shared_mut().addrs = addrs.clone();

        // Bootstrap: first client arrival, one background timer per core
        // (offsets drawn from a driver-level RNG stream so component streams
        // stay stable), and an immediate idle entry for every booted core.
        sim.schedule(addrs.nic, first_arrival, ServerEvent::ClientArrival);
        if let Some(noise) = noise {
            let mut boot_rng = sim.fork_rng("bootstrap");
            for i in 0..cores {
                let at = SimTime::ZERO + noise.sample_interval(&mut boot_rng);
                sim.shared_mut().sched.next_background_at[i] = at;
                sim.schedule(addrs.cores[i], at, ServerEvent::BackgroundTick);
            }
        }
        for i in 0..cores {
            sim.schedule(addrs.cores[i], SimTime::ZERO, ServerEvent::InitIdle);
        }
        if sample_every.is_some() {
            sim.schedule(power, SimTime::ZERO, ServerEvent::PowerSample);
        }

        ServerSimulation {
            sim,
            package,
            end_at,
        }
    }

    /// Runs the simulation to completion and returns the result.
    #[must_use]
    pub fn run(self) -> RunResult {
        self.run_into_state().0
    }

    /// Runs the simulation to completion and returns the result together
    /// with the final shared state (queues, telemetry, power trace).
    #[must_use]
    pub fn run_into_state(mut self) -> (RunResult, ServerState) {
        self.sim.run_until(self.end_at);
        let end = self.end_at;
        let package = self.package.borrow();
        let apmu_stats = package.apmu().stats();
        let pc6_entries = package.gpmu().pc6_entries();
        drop(package);

        let state = self.sim.shared_mut();
        state.finish_telemetry(end);
        let cores = state.soc.cores().len() as f64;
        let util = state.telemetry.busy_core_time.as_secs_f64()
            / (state.config.duration.as_secs_f64() * cores);
        let cc1 = state
            .telemetry
            .core_residency
            .average_fraction_in(CoreCState::CC1)
            + state
                .telemetry
                .core_residency
                .average_fraction_in(CoreCState::CC1E);
        let result = RunResult {
            config_name: state.config.platform.name,
            workload: state.workload_name,
            offered_rate: state.offered_rate,
            duration: state.config.duration,
            completed_requests: state.telemetry.completed_requests,
            latency: state.telemetry.latency.summary(),
            avg_soc_power: state.telemetry.energy.average_soc_power(),
            avg_dram_power: state.telemetry.energy.average_dram_power(),
            cpu_utilization: util,
            cc0_fraction: state
                .telemetry
                .core_residency
                .average_fraction_in(CoreCState::CC0),
            cc1_fraction: cc1,
            cc6_fraction: state
                .telemetry
                .core_residency
                .average_fraction_in(CoreCState::CC6),
            all_idle_fraction: state.telemetry.idle_tracker.idle_fraction(),
            pc1a_residency: state
                .telemetry
                .package_residency
                .fraction_in(PackageCState::PC1A),
            pc6_residency: state
                .telemetry
                .package_residency
                .fraction_in(PackageCState::PC6),
            pc1a_transitions: apmu_stats.pc1a_entries,
            pc1a_aborted: apmu_stats.aborted_entries,
            pc6_transitions: pc6_entries,
            idle_periods: state.telemetry.idle_tracker.period_count(),
            idle_periods_20_200us: state
                .telemetry
                .idle_tracker
                .fraction_between(SimDuration::from_micros(20), SimDuration::from_micros(200)),
            finished_at: end,
        };
        (result, self.sim.into_shared())
    }

    /// Read access to the shared state (for tests and tracing).
    #[must_use]
    pub fn state(&self) -> &ServerState {
        self.sim.shared()
    }

    /// The underlying component simulation (for tests and tracing).
    #[must_use]
    pub fn simulation(&self) -> &Simulation<ServerEvent, ServerState> {
        &self.sim
    }
}

/// Convenience: run one workload at one rate under one configuration.
#[must_use]
pub fn run_experiment(
    config: ServerConfig,
    spec: apc_workloads::spec::WorkloadSpec,
    rate_per_sec: f64,
) -> RunResult {
    let seed = config.seed;
    let loadgen = LoadGenerator::new(spec, rate_per_sec, seed);
    ServerSimulation::new(config, loadgen).run()
}
