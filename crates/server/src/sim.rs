//! The full-system server simulation: a thin driver over the component
//! architecture.
//!
//! [`ServerSimulation`] is the single-server (1-node) instance of the
//! embeddable-node design: it owns a [`Simulation`] whose shared state is
//! one [`ServerState`], registers that node's components through
//! [`crate::node::ServerNode`], bootstraps the initial events and runs the
//! event loop to the configured horizon. All simulation behaviour lives in
//! the components of [`crate::components`]; this module only wires them
//! together and reduces the shared telemetry into a [`RunResult`]. The
//! N-node counterpart hosting several servers plus a load balancer in one
//! event loop is [`crate::cluster::ClusterSimulation`].

use apc_sim::component::Simulation;
use apc_sim::rng::SimRng;
use apc_sim::SimTime;
use apc_trace::TraceState;
use apc_workloads::loadgen::LoadGenerator;

use crate::components::state::ServerState;
use crate::components::{profile_report, ServerEvent};
use crate::config::ServerConfig;
use crate::node::{NodeHandles, ServerNode};
use crate::result::RunResult;

/// The full-system simulation of one server.
pub struct ServerSimulation {
    sim: Simulation<ServerEvent, ServerState>,
    node: NodeHandles,
    end_at: SimTime,
    profile: bool,
}

impl ServerSimulation {
    /// Builds a simulation for `config` driving `loadgen`.
    #[must_use]
    pub fn new(config: ServerConfig, loadgen: LoadGenerator) -> Self {
        let mut state = ServerState::new(config);
        state.workload_name = loadgen.spec().name;
        state.offered_rate = loadgen.rate_per_sec();
        state.network_rtt = loadgen.spec().network_rtt;
        // Request tracing draws sampling decisions from a dedicated fork of
        // the experiment seed, so enabling it perturbs no component stream.
        state.telemetry.trace = state.config.trace.map(|trace| {
            TraceState::new(
                trace,
                SimRng::from_seed(state.config.seed).fork("trace-sampler"),
            )
        });
        let profile = state.config.profile;
        let end_at = SimTime::ZERO + state.config.duration;
        let seed = state.config.seed;
        let first_arrival = loadgen.peek_next_arrival();

        let mut sim = Simulation::new(seed, state);
        if profile {
            sim.enable_event_profile(ServerEvent::KIND_COUNT, ServerEvent::kind);
        }
        let builder = ServerNode::standalone();
        let node = builder.register(&mut sim, Some(loadgen));
        // Bootstrap order (first client arrival, then the node's background
        // timers / initial idle entries / power sampling) is part of the
        // deterministic event sequence — see `ServerNode::bootstrap`.
        sim.schedule(node.addrs.nic, first_arrival, ServerEvent::ClientArrival);
        builder.bootstrap(&mut sim, &node);

        ServerSimulation {
            sim,
            node,
            end_at,
            profile,
        }
    }

    /// Runs the simulation to completion and returns the result.
    #[must_use]
    pub fn run(self) -> RunResult {
        self.run_into_state().0
    }

    /// Runs the simulation to completion and returns the result together
    /// with the final shared state (queues, telemetry, power trace).
    #[must_use]
    pub fn run_into_state(mut self) -> (RunResult, ServerState) {
        let dispatched = self.sim.run_until(self.end_at);
        let mut result = self.node.collect_result(self.sim.shared_mut(), self.end_at);
        result.events_dispatched = dispatched;
        if self.profile {
            result.profile = Some(profile_report(
                self.sim.queue_counters(),
                self.sim.event_profile(),
            ));
        }
        (result, self.sim.into_shared())
    }

    /// Read access to the shared state (for tests and tracing).
    #[must_use]
    pub fn state(&self) -> &ServerState {
        self.sim.shared()
    }

    /// The underlying component simulation (for tests and tracing).
    #[must_use]
    pub fn simulation(&self) -> &Simulation<ServerEvent, ServerState> {
        &self.sim
    }
}

/// Convenience: run one workload at one rate under one configuration.
#[must_use]
pub fn run_experiment(
    config: ServerConfig,
    spec: apc_workloads::spec::WorkloadSpec,
    rate_per_sec: f64,
) -> RunResult {
    let seed = config.seed;
    let loadgen = LoadGenerator::new(spec, rate_per_sec, seed);
    ServerSimulation::new(config, loadgen).run()
}
