//! Full-system experiment configuration.

use apc_pmu::config::PlatformConfig;
use apc_power::model::PowerModel;
use apc_sim::SimDuration;
use apc_soc::topology::SocConfig;
use apc_trace::TraceConfig;
use apc_workloads::spec::BackgroundNoise;

/// Configuration of one simulated server run.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Socket topology (defaults to the Xeon Silver 4114 reference).
    pub soc: SocConfig,
    /// Platform power-management configuration (`Cshallow`, `Cdeep`, `CPC1A`).
    pub platform: PlatformConfig,
    /// Calibrated power model.
    pub power: PowerModel,
    /// OS background noise model (`None` disables background wakeups).
    pub noise: Option<BackgroundNoise>,
    /// NIC interrupt-coalescing window: requests arriving within this window
    /// of the first buffered request are delivered together by one interrupt.
    pub nic_coalescing: SimDuration,
    /// Per-interrupt kernel processing overhead charged to the receiving
    /// core before request service starts.
    pub softirq_overhead: SimDuration,
    /// Simulated measurement duration.
    pub duration: SimDuration,
    /// RNG seed.
    pub seed: u64,
    /// When set, the power/telemetry component records an instantaneous SoC
    /// power trace at this interval (off by default: traces cost memory).
    pub power_sample_interval: Option<SimDuration>,
    /// When set, a time-series sampler component records power, package
    /// residency deltas and queue depth at this interval, delivered in the
    /// run result's `timeseries` field (off by default: series cost memory).
    pub timeseries_interval: Option<SimDuration>,
    /// When set, head-sampled requests carry a span-trace context through the
    /// pipeline and the run result's `trace` field delivers the span log.
    /// Zero-perturbation: results are bit-identical with tracing on or off.
    /// In a cluster, the *first* node's config decides for the whole cluster.
    pub trace: Option<TraceConfig>,
    /// When `true`, the run result's `profile` field delivers the engine
    /// self-profile (event-core counters, per-event-kind counts). Also
    /// zero-perturbation. In a cluster, the first node's config decides.
    pub profile: bool,
}

impl ServerConfig {
    /// The baseline the paper recommends against but datacenters use:
    /// CC1-only, no package C-states.
    #[must_use]
    pub fn c_shallow() -> Self {
        ServerConfig::with_platform(PlatformConfig::c_shallow())
    }

    /// All C-states enabled (CC6 + PC6).
    #[must_use]
    pub fn c_deep() -> Self {
        ServerConfig::with_platform(PlatformConfig::c_deep())
    }

    /// `Cshallow` plus the APC hardware (PC1A available).
    #[must_use]
    pub fn c_pc1a() -> Self {
        ServerConfig::with_platform(PlatformConfig::c_pc1a())
    }

    /// Builds a configuration around an arbitrary platform configuration.
    #[must_use]
    pub fn with_platform(platform: PlatformConfig) -> Self {
        ServerConfig {
            soc: SocConfig::xeon_silver_4114(),
            platform,
            power: PowerModel::skx_calibrated(),
            noise: Some(BackgroundNoise::default_server()),
            nic_coalescing: SimDuration::from_micros(30),
            softirq_overhead: SimDuration::from_micros(3),
            duration: SimDuration::from_millis(500),
            seed: 0x5eed,
            power_sample_interval: None,
            timeseries_interval: None,
            trace: None,
            profile: false,
        }
    }

    /// Shortens the measurement window (useful for unit tests).
    #[must_use]
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Disables OS background noise (for controlled experiments).
    #[must_use]
    pub fn without_noise(mut self) -> Self {
        self.noise = None;
        self
    }

    /// Enables the instantaneous power trace at the given sampling interval.
    #[must_use]
    pub fn with_power_trace(mut self, every: SimDuration) -> Self {
        self.power_sample_interval = Some(every);
        self
    }

    /// Enables time-series telemetry (power, residency deltas, queue depth)
    /// at the given sampling interval; the series is returned in
    /// [`RunResult::timeseries`](crate::result::RunResult::timeseries).
    /// A zero interval is treated as disabled.
    #[must_use]
    pub fn with_timeseries(mut self, every: SimDuration) -> Self {
        self.timeseries_interval = Some(every).filter(|d| !d.is_zero());
        self
    }

    /// Enables request span tracing; the log is returned in
    /// [`RunResult::trace`](crate::result::RunResult::trace) (and the
    /// cluster/chain equivalents).
    #[must_use]
    pub fn with_trace(mut self, trace: TraceConfig) -> Self {
        self.trace = Some(trace);
        self
    }

    /// Enables the engine self-profiler; the report is returned in
    /// [`RunResult::profile`](crate::result::RunResult::profile) (and the
    /// cluster/chain equivalents).
    #[must_use]
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apc_pmu::config::PackagePolicy;

    #[test]
    fn presets_carry_their_platform_policy() {
        assert_eq!(
            ServerConfig::c_shallow().platform.package_policy,
            PackagePolicy::None
        );
        assert_eq!(
            ServerConfig::c_deep().platform.package_policy,
            PackagePolicy::Pc6
        );
        assert_eq!(
            ServerConfig::c_pc1a().platform.package_policy,
            PackagePolicy::Pc1a
        );
    }

    #[test]
    fn builder_helpers_apply() {
        let cfg = ServerConfig::c_pc1a()
            .with_duration(SimDuration::from_millis(10))
            .with_seed(7)
            .without_noise();
        assert_eq!(cfg.duration, SimDuration::from_millis(10));
        assert_eq!(cfg.seed, 7);
        assert!(cfg.noise.is_none());
        assert_eq!(cfg.soc.cores, 10);
    }
}
