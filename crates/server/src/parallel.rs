//! Conservative-lookahead parallel execution of one cluster (or chain)
//! simulation: the cluster is partitioned per node, every partition runs its
//! own timer-wheel event loop on a worker thread, and the partitions advance
//! in lockstep through lookahead-sized epochs — with results **bit-identical**
//! to the sequential [`crate::cluster::ClusterSimulation`] /
//! [`crate::chain::ChainSimulation`] event loop.
//!
//! # Why this is possible
//!
//! With a network fabric configured, *every* cross-node interaction crosses
//! the wire: routed RPCs arrive as [`ServerEvent::WireDeliver`] events and
//! chain leaf reports travel node → coordinator with a transmit delay. Both
//! delays are bounded below by the topology's minimum link latency
//! ([`NetworkConfig::min_link_latency`]) — the **lookahead** `L`. During an
//! epoch `[kL, (k+1)L)` no partition can affect another within the same
//! epoch (a message sent at `t ≥ kL` lands at `t + delay ≥ (k+1)L`), so
//! partitions run a whole epoch concurrently and exchange messages only at
//! the epoch barrier. Zero-lookahead configurations (no `[network]` table,
//! `latency_us = 0`) make the window empty — [`execution_plan`] then falls
//! back to the sequential path automatically.
//!
//! # Partition layout
//!
//! * Each **node** becomes one [`Simulation`] over a private `PartitionState`
//!   holding just that node's [`ServerState`] — the node registers the exact
//!   component set, RNG streams and bootstrap events it has in the
//!   sequential cluster (streams derive from the node's own seed, so they
//!   are identical by construction), plus a local [`Fabric`] delivery
//!   component for incoming wire messages.
//! * The **hub** — arrival stream, routing policy, network-fabric link
//!   occupancy, chain coordinator bookkeeping — stays on the main thread and
//!   is *replayed* against per-node observations exchanged at the barrier,
//!   consuming the same RNG streams in the same order as the sequential
//!   components (`"balancer"` / `"chain-coordinator"` forks of the cluster
//!   seed, the loadgen's own stream, the `"chain-loadgen"` fork).
//!
//! # The determinism argument
//!
//! The sequential loop orders events by `(timestamp, insertion instant,
//! scheduling sequence)` — the engine queues' FIFO key. Within a partition
//! that order is preserved verbatim (same queue discipline, same local
//! insertions). Across partitions, three interactions exist, and each is
//! replayed at the barrier in global key order:
//!
//! 1. **Hub → node deposits** ([`ServerEvent::WireDeliver`]) are inserted
//!    into the destination partition's queue at the epoch boundary via
//!    [`Simulation::schedule_backdated`], ranked at the instant the hub
//!    emitted them in the sequential loop (the routing instant). A local
//!    event at the same integer nanosecond therefore keeps its sequential
//!    position: scheduled before the routing instant it dispatches first,
//!    scheduled after it dispatches second.
//! 2. **Hub routing reads** (queue depths, core activity) are taken by each
//!    partition exactly at the hub event's `(timestamp, insertion instant)`
//!    key via the interleaved runner ([`run_interleaved`]) — after every
//!    local event the sequential queue would have dispatched before the hub
//!    event, and before every one it would have dispatched after. The hub
//!    knows each of its events' insertion instants because it inserted
//!    them: an arrival is scheduled at the previous arrival's dispatch, a
//!    chain join at the leaf's completion, a wire delivery at its routing
//!    instant.
//! 3. **Node → hub reports** (chain leaf completions) are intercepted before
//!    emission ([`HasNode::capture_leaf_report`]) and replayed against the
//!    hub-owned network state in global completion order, preserving the
//!    sequential link-occupancy and stats-accumulation order.
//!
//! Power accounting is the one cross-cutting observer: in the sequential
//! loop every node's energy meter advances at each balancer/coordinator/
//! fabric dispatch. The parallel driver replicates those advances as *meter
//! ticks* at the same instants; the meter's advance is a no-op at an
//! already-accounted timestamp, so tick-vs-hook ordering at one instant
//! cannot diverge. Residual ambiguity — a hub and a local event agreeing on
//! *both* timestamp and insertion instant — falls back to a fixed
//! hub-first / lowest-node-first convention (sequentially it would be
//! decided by the relative dispatch order of the two *inserting* events,
//! itself almost always the same convention), and the differential suite
//! (`crates/server/tests/parallel_differential.rs`) pins equality across
//! platforms × policies × topologies × worker counts.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use apc_network::{NetworkConfig, NetworkState};
use apc_sim::component::{ComponentId, Simulation};
use apc_sim::engine::partition::{run_interleaved, EpochBarrier, EpochWindows};
use apc_sim::engine::{KindCounters, QueueCounters};
use apc_sim::rng::SimRng;
use apc_sim::{SimDuration, SimTime};
use apc_telemetry::latency::LatencyRecorder;
use apc_trace::{EngineProfile, EventKindCount, ProfileReport, WorkerProfile};
use apc_workloads::arrival::{ArrivalProcess, PoissonArrivals};
use apc_workloads::loadgen::LoadGenerator;
use apc_workloads::request::{ChainTag, Request, RequestId};

use crate::balancer::RoutingPolicyKind;
use crate::chain::{ChainMember, ChainResult, RequestGraph};
use crate::cluster::{ClusterMember, ClusterResult};
use crate::components::fabric::Fabric;
use crate::components::state::{ClusterState, HasNode, ServerState};
use crate::components::ServerEvent;
use crate::config::ServerConfig;
use crate::fleet::{effective_workers, FleetResult};
use crate::node::{NodeHandles, ServerNode};
use crate::result::RunResult;

/// How a single cluster/chain run will execute — decided once, up front,
/// from the run's shape (see [`execution_plan`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionPlan {
    /// Conservative-lookahead partitioned execution across `workers`
    /// threads, each epoch `lookahead` long.
    Parallel {
        /// Worker threads (main thread included), ≥ 2, ≤ node count.
        workers: usize,
        /// The epoch length: the topology's minimum link latency.
        lookahead: SimDuration,
    },
    /// The single sequential event loop.
    Sequential {
        /// Why partitioning is unavailable.
        reason: SequentialReason,
    },
}

/// Why a run falls back to the sequential event loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SequentialReason {
    /// No `[network]` fabric: cross-node interactions are instantaneous, so
    /// the lookahead window is empty.
    NoNetwork,
    /// A fabric is configured but its minimum link latency is zero
    /// (`latency_us = 0`): same empty window.
    ZeroLookahead,
    /// A single node cannot be partitioned.
    SingleNode,
    /// Only one worker is available (host parallelism or an explicit
    /// `--parallelism 1`).
    SingleWorker,
}

/// Decides how a cluster/chain run of `nodes` nodes over `network` executes
/// with `requested` workers (`None` = the host's available parallelism).
///
/// Parallel execution needs ≥ 2 nodes, ≥ 2 effective workers, and a network
/// fabric with nonzero minimum link latency — the conservative lookahead
/// bound. Anything else is bit-identical to (and runs as) the sequential
/// loop.
#[must_use]
pub fn execution_plan(
    nodes: usize,
    network: Option<&NetworkConfig>,
    requested: Option<usize>,
) -> ExecutionPlan {
    let Some(network) = network else {
        return ExecutionPlan::Sequential {
            reason: SequentialReason::NoNetwork,
        };
    };
    let lookahead = network.min_link_latency();
    if lookahead.is_zero() {
        return ExecutionPlan::Sequential {
            reason: SequentialReason::ZeroLookahead,
        };
    }
    if nodes < 2 {
        return ExecutionPlan::Sequential {
            reason: SequentialReason::SingleNode,
        };
    }
    let workers = effective_workers(requested, nodes);
    if workers < 2 {
        return ExecutionPlan::Sequential {
            reason: SequentialReason::SingleWorker,
        };
    }
    ExecutionPlan::Parallel { workers, lookahead }
}

/// The shared state of one partition: a single node's [`ServerState`],
/// addressed by its *global* node index, plus the epoch-local capture
/// buffers the driver drains at each barrier.
struct PartitionState {
    /// The node's global index within the cluster.
    index: usize,
    /// The partitioned node (a one-node [`ClusterState`] so node
    /// registration sees the exact structure it does in the sequential
    /// cluster). Its `fabric` stays `None`: partitions never *transmit* —
    /// the hub owns all link occupancy.
    inner: ClusterState,
    /// Chain leaf reports captured this epoch: `(completion instant, chain)`.
    reports: Vec<(SimTime, u64)>,
}

impl HasNode for PartitionState {
    fn node(&self, index: usize) -> &ServerState {
        debug_assert_eq!(index, self.index, "partition addressed as a foreign node");
        &self.inner.nodes[0]
    }

    fn node_mut(&mut self, index: usize) -> &mut ServerState {
        debug_assert_eq!(index, self.index, "partition addressed as a foreign node");
        &mut self.inner.nodes[0]
    }

    fn node_count(&self) -> usize {
        1
    }

    fn capture_leaf_report(&mut self, node: usize, now: SimTime, chain: u64) -> bool {
        debug_assert_eq!(node, self.index);
        self.reports.push((now, chain));
        true
    }
}

/// One node's sub-simulation: its own timer-wheel queue, component set and
/// local wire-delivery endpoint.
struct Partition {
    sim: Simulation<ServerEvent, PartitionState>,
    handles: NodeHandles,
    fabric: ComponentId,
    dispatched: u64,
    /// Cross-partition wire messages replayed into this partition.
    wires: u64,
}

/// One finished partition's engine counters, collected when profiling.
type PartitionCounters = (QueueCounters, Vec<KindCounters>);

/// Per-node value shared by every node of a run (what the sequential
/// drivers write into each node's state before registration).
#[derive(Clone, Copy)]
struct NodeMeta {
    workload_name: &'static str,
    offered_rate: f64,
    network_rtt: SimDuration,
}

fn build_partition(
    seed: u64,
    index: usize,
    config: ServerConfig,
    meta: NodeMeta,
    profile: bool,
) -> Partition {
    let mut inner = ClusterState::new(vec![config]);
    inner.nodes[0].workload_name = meta.workload_name;
    inner.nodes[0].offered_rate = meta.offered_rate;
    inner.nodes[0].network_rtt = meta.network_rtt;
    let state = PartitionState {
        index,
        inner,
        reports: Vec::new(),
    };
    let mut sim = Simulation::new(seed, state);
    if profile {
        sim.enable_event_profile(ServerEvent::KIND_COUNT, ServerEvent::kind);
    }
    let builder = ServerNode::new(index);
    let handles = builder.register(&mut sim, None);
    // The partition's delivery endpoint for incoming wire messages. As in
    // the sequential cluster, the node's power observer watches it: a
    // `WireDeliver` deposits into the NIC buffer, a power-accounting
    // instant.
    let fabric = sim.add_component("fabric", Fabric);
    sim.add_observer_target(handles.power, fabric);
    builder.bootstrap(&mut sim, &handles);
    Partition {
        sim,
        handles,
        fabric,
        dispatched: 0,
        wires: 0,
    }
}

/// The per-epoch exchange published by the hub before barrier 1.
struct EpochPlan {
    /// The epoch's exclusive horizon.
    end: SimTime,
    /// The `(timestamp, insertion instant)` key of every hub-side dispatch a
    /// sequential node observer would witness (arrivals, chain joins, wire
    /// deliveries), sorted ascending — each partition advances its energy
    /// meter at these instants, interleaved with its local events in
    /// sequential queue order.
    times: Vec<(SimTime, SimTime)>,
    /// Parallel to `times`: `true` where the hub routes and therefore needs
    /// a `(queue depth, core activity)` sample from every node.
    sample: Vec<bool>,
}

/// Hub ↔ partition exchange slot for one node. The epoch protocol makes
/// access contention-free: the hub writes `mailbox` while workers wait at
/// barrier 1, workers write `samples`/`reports` before barrier 2, the hub
/// drains them after it.
#[derive(Default)]
struct NodeSlot {
    /// Wire deliveries due this epoch, in hub emission order:
    /// `(delivery instant, routing instant the hub emitted at, request)`.
    mailbox: Vec<(SimTime, SimTime, Request)>,
    /// One `(outstanding, any_core_active)` row per sampled instant.
    samples: Vec<(usize, bool)>,
    /// Chain leaf reports captured this epoch.
    reports: Vec<(SimTime, u64)>,
    /// The node's reduced result (plus its engine counters when profiling),
    /// parked by its worker after the last epoch.
    finished: Option<(RunResult, u64, Option<PartitionCounters>)>,
}

/// Replay of the built-in routing policies against sampled node state —
/// field-for-field the [`crate::balancer`] implementations, with the
/// `&ClusterState` reads replaced by the barrier-exchanged sample rows.
enum PolicyReplay {
    Random,
    RoundRobin { next: usize },
    JoinShortestQueue,
    PowerAware,
}

impl PolicyReplay {
    fn new(kind: RoutingPolicyKind) -> Self {
        match kind {
            RoutingPolicyKind::Random => PolicyReplay::Random,
            RoutingPolicyKind::RoundRobin => PolicyReplay::RoundRobin { next: 0 },
            RoutingPolicyKind::JoinShortestQueue => PolicyReplay::JoinShortestQueue,
            RoutingPolicyKind::PowerAware => PolicyReplay::PowerAware,
        }
    }

    /// Routes one request given row `row` of every node's samples.
    fn route(&mut self, rows: &[Vec<(usize, bool)>], row: usize, rng: &mut SimRng) -> usize {
        let n = rows.len();
        let outstanding = |i: usize| rows[i][row].0;
        let active = |i: usize| rows[i][row].1;
        match self {
            PolicyReplay::Random => (rng.next_u64() % n as u64) as usize,
            PolicyReplay::RoundRobin { next } => {
                let target = *next % n;
                *next = target + 1;
                target
            }
            PolicyReplay::JoinShortestQueue => (0..n)
                .min_by_key(|&i| (outstanding(i), i))
                .expect("cluster has at least one node"),
            PolicyReplay::PowerAware => {
                let awake = (0..n)
                    .filter(|&i| active(i))
                    .min_by_key(|&i| (outstanding(i), i));
                awake.unwrap_or_else(|| {
                    (0..n)
                        .min_by_key(|&i| (outstanding(i), i))
                        .expect("cluster has at least one node")
                })
            }
        }
    }
}

/// The hub's driver-specific half: epoch planning (before barrier 1) and
/// the post-barrier replay of routing + transmissions (after barrier 2).
trait Hub {
    fn plan_epoch(&mut self, start: SimTime, end: SimTime, slots: &[Mutex<NodeSlot>]) -> EpochPlan;
    fn phase_b(&mut self, rows: &[Vec<(usize, bool)>], reports: &[(SimTime, usize, u64)]);
}

/// In-flight cross-partition wire messages, keyed by
/// `(arrival ns, emission seq)` so equal-instant deliveries replay in hub
/// emission order; the value carries the emitting instant (the routing
/// instant) the delivery is rank-backdated to.
type PendingWire = BTreeMap<(u64, u64), (usize, SimTime, Request)>;

/// Drains the pending-wire messages due before `end` into per-node
/// mailboxes, recording each delivery instant as a meter tick, and returns
/// the sorted tick plan.
fn drain_wire_into_plan(
    pending: &mut PendingWire,
    start: SimTime,
    end: SimTime,
    entries: &mut Vec<(SimTime, SimTime, bool)>,
    slots: &[Mutex<NodeSlot>],
) {
    let later = pending.split_off(&(end.as_nanos(), 0));
    for ((at_ns, _seq), (node, emitted, request)) in std::mem::replace(pending, later) {
        let at = SimTime::from_nanos(at_ns);
        debug_assert!(at >= start, "wire delivery violated the lookahead bound");
        entries.push((at, emitted, false));
        slots[node]
            .lock()
            .unwrap()
            .mailbox
            .push((at, emitted, request));
    }
}

fn plan_from_entries(mut entries: Vec<(SimTime, SimTime, bool)>, end: SimTime) -> EpochPlan {
    entries.sort_by_key(|e| (e.0, e.1));
    EpochPlan {
        end,
        times: entries.iter().map(|e| (e.0, e.1)).collect(),
        sample: entries.iter().map(|e| e.2).collect(),
    }
}

/// The balancer/arrival half of a parallel cluster run, replayed on the
/// main thread with the sequential components' exact RNG streams.
struct ClusterHub {
    loadgen: LoadGenerator,
    policy: PolicyReplay,
    /// The `"balancer"` fork of the cluster seed — the stream the balancer
    /// component's randomized policies draw from in the sequential loop.
    policy_rng: SimRng,
    routed: Vec<u64>,
    net: NetworkState,
    client: usize,
    lookahead: SimDuration,
    pending_wire: PendingWire,
    emit_seq: u64,
    /// When the pending `ClusterArrival` event was inserted (the previous
    /// arrival's instant; the first is scheduled at construction, instant
    /// zero) — the queue-order tie-break against same-instant local events.
    arrival_inserted: SimTime,
    /// Arrivals of the current epoch, pre-drawn in plan order (the loadgen
    /// stream is independent of routing).
    ops: Vec<(SimTime, Request)>,
    /// Balancer dispatches replayed, for the sequential-loop event census.
    hub_dispatches: u64,
}

impl Hub for ClusterHub {
    fn plan_epoch(&mut self, start: SimTime, end: SimTime, slots: &[Mutex<NodeSlot>]) -> EpochPlan {
        debug_assert!(self.ops.is_empty());
        let mut entries = Vec::new();
        while self.loadgen.peek_next_arrival() < end {
            let request = self.loadgen.next_request();
            entries.push((request.arrival, self.arrival_inserted, true));
            self.arrival_inserted = request.arrival;
            self.ops.push((request.arrival, request));
        }
        drain_wire_into_plan(&mut self.pending_wire, start, end, &mut entries, slots);
        plan_from_entries(entries, end)
    }

    fn phase_b(&mut self, rows: &[Vec<(usize, bool)>], reports: &[(SimTime, usize, u64)]) {
        debug_assert!(reports.is_empty(), "cluster runs have no leaf reports");
        for (row, (at, request)) in self.ops.drain(..).enumerate() {
            let target = self.policy.route(rows, row, &mut self.policy_rng);
            self.routed[target] += 1;
            let delay = self.net.transmit(self.client, target, at);
            debug_assert!(delay >= self.lookahead);
            self.pending_wire.insert(
                ((at + delay).as_nanos(), self.emit_seq),
                (target, at, request),
            );
            self.emit_seq += 1;
            self.hub_dispatches += 1;
        }
    }
}

/// Progress of one in-flight chain — the coordinator's bookkeeping,
/// replayed.
struct ChainProgress {
    root_arrival: SimTime,
    tier: usize,
    outstanding: usize,
    first_done: Option<SimTime>,
}

/// The chain-coordinator half of a parallel chain run. Per epoch it runs a
/// *skeleton pass* first — replaying arrival generation and join bookkeeping
/// in merged hub-event time order, drawing the `"chain-loadgen"` stream for
/// gaps and service times exactly as the sequential coordinator does (those
/// draws are independent of routing) — then routes the issued RPCs in
/// `phase_b` once the epoch's samples arrive.
struct ChainHub {
    graph: RequestGraph,
    arrivals: Box<dyn ArrivalProcess>,
    workload_rng: SimRng,
    policy: PolicyReplay,
    /// The `"chain-coordinator"` fork of the cluster seed.
    policy_rng: SimRng,
    routed: Vec<u64>,
    net: NetworkState,
    client: usize,
    lookahead: SimDuration,
    next_arrival: SimTime,
    /// When the pending `ChainArrival` event was inserted (the previous
    /// arrival's instant) — the queue-order tie-break against leaf joins.
    next_arrival_inserted_ns: u64,
    inflight: BTreeMap<u64, ChainProgress>,
    next_chain_id: u64,
    next_request_id: u64,
    chains_started: u64,
    chains_completed: u64,
    e2e: LatencyRecorder,
    straggler: LatencyRecorder,
    pending_wire: PendingWire,
    emit_seq: u64,
    /// In-flight leaf reports: `(hub arrival ns, insertion ns, seq)` →
    /// chain, ordered exactly as the sequential queue would dispatch the
    /// corresponding `ChainLeafDone` events.
    pending_leaf: BTreeMap<(u64, u64, u64), u64>,
    leaf_seq: u64,
    /// RPC batches issued this epoch (one entry per routing instant).
    ops: Vec<(SimTime, Vec<Request>)>,
    /// Coordinator dispatches replayed (`ChainArrival` + `ChainLeafDone`),
    /// for the sequential-loop event census.
    hub_dispatches: u64,
}

impl ChainHub {
    /// Issues the current tier of `chain`: width service-time draws and
    /// fully built requests, in the sequential coordinator's draw order.
    /// Routing happens later in `phase_b`; the `coordinator` address in the
    /// chain tag is never dispatched to (partitions capture leaf reports
    /// instead), so a sentinel id stands in for it.
    fn issue_requests(&mut self, chain: u64, now: SimTime) -> Vec<Request> {
        let tier = {
            let progress = self
                .inflight
                .get_mut(&chain)
                .expect("issuing a tier of an unknown chain");
            let tier = self.graph.tiers()[progress.tier];
            progress.outstanding = tier.width;
            progress.first_done = None;
            tier
        };
        let tag = ChainTag {
            coordinator: ComponentId::from_raw(usize::MAX),
            chain,
        };
        (0..tier.width)
            .map(|_| {
                let service = tier.service.sample_service(&mut self.workload_rng);
                let request = Request::new(
                    RequestId(self.next_request_id),
                    tier.service.class,
                    now,
                    service,
                )
                .with_chain(tag);
                self.next_request_id += 1;
                request
            })
            .collect()
    }

    /// Replays one `ChainLeafDone` join; returns the next tier's requests
    /// when the join advances the chain.
    fn replay_leaf_done(&mut self, chain: u64, now: SimTime) -> Option<Vec<Request>> {
        let (advance, finished_root) = {
            let progress = self
                .inflight
                .get_mut(&chain)
                .expect("leaf completion for an unknown chain");
            debug_assert!(progress.outstanding > 0, "tier joined more than its width");
            if progress.first_done.is_none() {
                progress.first_done = Some(now);
            }
            progress.outstanding -= 1;
            if progress.outstanding > 0 {
                return None;
            }
            let tier = self.graph.tiers()[progress.tier];
            if tier.width > 1 {
                let first = progress.first_done.expect("joined tier saw a completion");
                self.straggler.record(now.saturating_since(first));
            }
            if progress.tier + 1 < self.graph.tiers().len() {
                progress.tier += 1;
                (true, SimTime::ZERO)
            } else {
                (false, progress.root_arrival)
            }
        };
        if advance {
            return Some(self.issue_requests(chain, now));
        }
        self.inflight.remove(&chain);
        self.chains_completed += 1;
        self.e2e.record(now.saturating_since(finished_root));
        None
    }

    fn replay_report(&mut self, at: SimTime, node: usize, chain: u64) {
        let delay = self.net.transmit(node, self.client, at);
        debug_assert!(delay >= self.lookahead);
        self.pending_leaf.insert(
            ((at + delay).as_nanos(), at.as_nanos(), self.leaf_seq),
            chain,
        );
        self.leaf_seq += 1;
    }
}

impl Hub for ChainHub {
    fn plan_epoch(&mut self, start: SimTime, end: SimTime, slots: &[Mutex<NodeSlot>]) -> EpochPlan {
        debug_assert!(self.ops.is_empty());
        let later = self.pending_leaf.split_off(&(end.as_nanos(), 0, 0));
        let mut due = std::mem::replace(&mut self.pending_leaf, later).into_iter();
        let mut next_leaf = due.next();
        let mut entries = Vec::new();
        // Skeleton pass: replay the coordinator's hub events in the
        // sequential dispatch order — (timestamp, queue-insertion instant),
        // both known for arrivals and joins alike.
        loop {
            let arrival_key = (self.next_arrival < end)
                .then(|| (self.next_arrival.as_nanos(), self.next_arrival_inserted_ns));
            let leaf_key = next_leaf.as_ref().map(|((at, ins, _), _)| (*at, *ins));
            let take_arrival = match (arrival_key, leaf_key) {
                (None, None) => break,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (Some(a), Some(l)) => a <= l,
            };
            self.hub_dispatches += 1;
            if take_arrival {
                let now = self.next_arrival;
                let inserted = SimTime::from_nanos(self.next_arrival_inserted_ns);
                let chain = self.next_chain_id;
                self.next_chain_id += 1;
                self.chains_started += 1;
                self.inflight.insert(
                    chain,
                    ChainProgress {
                        root_arrival: now,
                        tier: 0,
                        outstanding: 0,
                        first_done: None,
                    },
                );
                let requests = self.issue_requests(chain, now);
                entries.push((now, inserted, true));
                self.ops.push((now, requests));
                let gap = self.arrivals.next_gap(&mut self.workload_rng);
                self.next_arrival_inserted_ns = now.as_nanos();
                self.next_arrival = now + gap;
            } else {
                let ((at_ns, ins_ns, _), chain) =
                    next_leaf.take().expect("leaf key implies an entry");
                next_leaf = due.next();
                let now = SimTime::from_nanos(at_ns);
                let inserted = SimTime::from_nanos(ins_ns);
                debug_assert!(now >= start, "leaf join violated the lookahead bound");
                match self.replay_leaf_done(chain, now) {
                    Some(requests) => {
                        entries.push((now, inserted, true));
                        self.ops.push((now, requests));
                    }
                    None => entries.push((now, inserted, false)),
                }
            }
        }
        drain_wire_into_plan(&mut self.pending_wire, start, end, &mut entries, slots);
        plan_from_entries(entries, end)
    }

    fn phase_b(&mut self, rows: &[Vec<(usize, bool)>], reports: &[(SimTime, usize, u64)]) {
        // Transmissions share link occupancy, so they must replay in global
        // time order across both directions: routed RPCs at their hub
        // instants interleaved with leaf reports at their completion
        // instants.
        let ops = std::mem::take(&mut self.ops);
        let mut next_report = 0;
        for (row, (at, requests)) in ops.into_iter().enumerate() {
            while next_report < reports.len() && reports[next_report].0 <= at {
                let (r_at, node, chain) = reports[next_report];
                self.replay_report(r_at, node, chain);
                next_report += 1;
            }
            for request in requests {
                let target = self.policy.route(rows, row, &mut self.policy_rng);
                self.routed[target] += 1;
                let delay = self.net.transmit(self.client, target, at);
                debug_assert!(delay >= self.lookahead);
                self.pending_wire.insert(
                    ((at + delay).as_nanos(), self.emit_seq),
                    (target, at, request),
                );
                self.emit_seq += 1;
            }
        }
        for &(r_at, node, chain) in &reports[next_report..] {
            self.replay_report(r_at, node, chain);
        }
    }
}

/// Runs one epoch of every partition owned by this worker: barrier-time
/// mailbox insertion (rank-backdated to each message's hub emission instant,
/// so same-timestamp local events keep their sequential order around it),
/// the interleaved local loop with meter ticks and samples at the plan's
/// instants, then the sample/report hand-off.
fn run_epoch_partitions(parts: &mut [Partition], plan: &EpochPlan, slots: &[Mutex<NodeSlot>]) {
    for part in parts.iter_mut() {
        let index = part.handles.index;
        let mailbox = std::mem::take(&mut slots[index].lock().unwrap().mailbox);
        part.wires += mailbox.len() as u64;
        for (at, emitted, request) in mailbox {
            part.sim.schedule_backdated(
                part.fabric,
                at,
                emitted,
                ServerEvent::WireDeliver {
                    node: index,
                    request,
                },
            );
        }
        let mut rows = Vec::new();
        part.dispatched += run_interleaved(&mut part.sim, plan.end, &plan.times, |shared, i| {
            let at = plan.times[i].0;
            let node = &mut shared.inner.nodes[0];
            // The meter tick: what the node's power observer records at a
            // hub dispatch in the sequential loop. `account_power` derives
            // the same breakdown the observer's cache would, and an
            // already-accounted instant is a no-op — so tick/dispatch order
            // at one instant cannot diverge.
            if at > node.telemetry.energy.last() {
                node.account_power(at);
            }
            if plan.sample[i] {
                rows.push((node.outstanding, node.any_core_active()));
            }
        });
        let reports = std::mem::take(&mut part.sim.shared_mut().reports);
        let mut slot = slots[index].lock().unwrap();
        slot.samples = rows;
        slot.reports = reports;
    }
}

/// Reduces this worker's partitions into their node results after the final
/// epoch, and (when profiling) into one [`WorkerProfile`] for the worker.
fn finish_partitions(
    worker: u32,
    parts: Vec<Partition>,
    slots: &[Mutex<NodeSlot>],
    end: SimTime,
    profile: Option<(u64, u64)>,
    worker_profiles: &Mutex<Vec<WorkerProfile>>,
) {
    if let Some((epochs, barrier_wait_ns)) = profile {
        worker_profiles.lock().unwrap().push(WorkerProfile {
            worker,
            epochs,
            barrier_wait_ns,
            cross_wires: parts.iter().map(|part| part.wires).sum(),
        });
    }
    for mut part in parts {
        let result = part.handles.collect_result(part.sim.shared_mut(), end);
        let counters = profile.is_some().then(|| {
            (
                part.sim.queue_counters(),
                part.sim.event_profile().unwrap_or_default().to_vec(),
            )
        });
        slots[part.handles.index].lock().unwrap().finished =
            Some((result, part.dispatched, counters));
    }
}

/// Runs `f`, accumulating its wall-clock cost into `acc_ns` when profiling.
fn timed<T>(profile: bool, acc_ns: &mut u64, f: impl FnOnce() -> T) -> T {
    if profile {
        let start = Instant::now();
        let out = f();
        *acc_ns += u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        out
    } else {
        f()
    }
}

/// Merges every partition's engine counters, the per-worker wall-clock
/// profiles and the hub's replay time into one [`ProfileReport`].
fn merged_profile(
    partitions: &[PartitionCounters],
    mut workers: Vec<WorkerProfile>,
    hub_replay_ns: u64,
) -> ProfileReport {
    let mut engine = EngineProfile::default();
    let mut kinds = vec![KindCounters::default(); ServerEvent::KIND_COUNT];
    for (counters, partition_kinds) in partitions {
        engine.merge(*counters);
        for (total, kind) in kinds.iter_mut().zip(partition_kinds) {
            total.scheduled += kind.scheduled;
            total.dispatched += kind.dispatched;
            total.cancelled += kind.cancelled;
        }
    }
    workers.sort_by_key(|w| w.worker);
    let events = ServerEvent::KIND_NAMES
        .iter()
        .zip(kinds)
        .map(|(name, k)| EventKindCount {
            kind: name,
            scheduled: k.scheduled,
            dispatched: k.dispatched,
            cancelled: k.cancelled,
        })
        .collect();
    let mut report = ProfileReport {
        engine,
        events,
        workers,
        hub_replay_ns,
    };
    report.retain_active_kinds();
    report
}

/// Scalar parameters of one epoch loop, bundled so `run_epochs` reads as
/// hub + nodes + knobs.
#[derive(Clone, Copy)]
struct EpochParams {
    seed: u64,
    workers: usize,
    lookahead: SimDuration,
    end_at: SimTime,
    profile: bool,
}

/// The barrier-synchronized epoch loop: builds one partition per node
/// (statically assigned `index % workers`), advances all partitions through
/// lookahead-sized epochs under `hub`'s plan/replay, and returns each node's
/// `(result, events dispatched)` in node order — plus, when `profile` is
/// set, the merged engine/worker [`ProfileReport`] (hub-side dispatch counts
/// excluded; the caller owns those).
fn run_epochs<H: Hub>(
    hub: &mut H,
    configs: Vec<ServerConfig>,
    meta: NodeMeta,
    params: EpochParams,
) -> (Vec<(RunResult, u64)>, Option<ProfileReport>) {
    let EpochParams {
        seed,
        workers,
        lookahead,
        end_at,
        profile,
    } = params;
    let node_count = configs.len();
    let slots: Vec<Mutex<NodeSlot>> = (0..node_count).map(|_| Mutex::default()).collect();
    let barrier = EpochBarrier::new(workers);
    let plan_slot: Mutex<Option<Arc<EpochPlan>>> = Mutex::new(None);
    let worker_profiles: Mutex<Vec<WorkerProfile>> = Mutex::new(Vec::new());
    let mut hub_replay_ns = 0u64;

    // Static node → worker assignment. Partitions are built *inside* their
    // worker thread (component handlers are single-threaded by design) from
    // the Send config split below.
    let mut owned: Vec<Vec<(usize, ServerConfig)>> = (0..workers).map(|_| Vec::new()).collect();
    for (index, config) in configs.into_iter().enumerate() {
        owned[index % workers].push((index, config));
    }

    std::thread::scope(|scope| {
        let mut workers_owned = owned.into_iter();
        let main_owned = workers_owned.next().expect("at least one worker");
        for (offset, worker_owned) in workers_owned.enumerate() {
            let (slots, barrier, plan_slot, worker_profiles) =
                (&slots, &barrier, &plan_slot, &worker_profiles);
            scope.spawn(move || {
                let worker = offset as u32 + 1;
                let mut parts: Vec<Partition> = worker_owned
                    .into_iter()
                    .map(|(index, config)| build_partition(seed, index, config, meta, profile))
                    .collect();
                let mut epochs = 0u64;
                let mut wait_ns = 0u64;
                for _window in EpochWindows::new(lookahead, end_at) {
                    epochs += 1;
                    timed(profile, &mut wait_ns, || barrier.wait()); // plan published
                    let plan = plan_slot
                        .lock()
                        .unwrap()
                        .clone()
                        .expect("epoch plan published before barrier");
                    run_epoch_partitions(&mut parts, &plan, slots);
                    timed(profile, &mut wait_ns, || barrier.wait()); // partitions done
                }
                let counters = profile.then_some((epochs, wait_ns));
                finish_partitions(worker, parts, slots, end_at, counters, worker_profiles);
            });
        }

        // The main thread doubles as worker 0 and runs the hub phases.
        let mut parts: Vec<Partition> = main_owned
            .into_iter()
            .map(|(index, config)| build_partition(seed, index, config, meta, profile))
            .collect();
        let mut epochs = 0u64;
        let mut wait_ns = 0u64;
        for (start, end) in EpochWindows::new(lookahead, end_at) {
            epochs += 1;
            let plan = timed(profile, &mut hub_replay_ns, || {
                Arc::new(hub.plan_epoch(start, end, &slots))
            });
            *plan_slot.lock().unwrap() = Some(Arc::clone(&plan));
            timed(profile, &mut wait_ns, || barrier.wait()); // plan published
            run_epoch_partitions(&mut parts, &plan, &slots);
            timed(profile, &mut wait_ns, || barrier.wait()); // partitions done
            let rows: Vec<Vec<(usize, bool)>> = slots
                .iter()
                .map(|slot| std::mem::take(&mut slot.lock().unwrap().samples))
                .collect();
            let mut reports: Vec<(SimTime, usize, u64)> = Vec::new();
            for (node, slot) in slots.iter().enumerate() {
                for (at, chain) in std::mem::take(&mut slot.lock().unwrap().reports) {
                    reports.push((at, node, chain));
                }
            }
            // Stable by (instant, node): preserves each node's local
            // completion order; cross-node order at one integer nanosecond
            // is the driver's deterministic convention (see module docs).
            reports.sort_by_key(|r| (r.0, r.1));
            timed(profile, &mut hub_replay_ns, || hub.phase_b(&rows, &reports));
        }
        let counters = profile.then_some((epochs, wait_ns));
        finish_partitions(0, parts, &slots, end_at, counters, &worker_profiles);
    });

    let mut results = Vec::with_capacity(node_count);
    let mut partition_counters = Vec::new();
    for slot in slots {
        let (result, dispatched, counters) = slot
            .into_inner()
            .unwrap()
            .finished
            .expect("every node finished");
        results.push((result, dispatched));
        partition_counters.extend(counters);
    }
    let report = profile.then(|| {
        merged_profile(
            &partition_counters,
            worker_profiles.into_inner().unwrap(),
            hub_replay_ns,
        )
    });
    (results, report)
}

fn shared_duration(nodes: &[ServerConfig]) -> SimDuration {
    assert!(!nodes.is_empty(), "a cluster needs at least one node");
    let duration = nodes[0].duration;
    assert!(
        nodes.iter().all(|c| c.duration == duration),
        "every cluster node must share one measurement duration"
    );
    duration
}

fn run_parallel_cluster(
    member: ClusterMember,
    workers: usize,
    lookahead: SimDuration,
) -> ClusterResult {
    let ClusterMember {
        nodes,
        policy,
        spec,
        total_rate_per_sec,
        seed,
        network,
    } = member;
    let duration = shared_duration(&nodes);
    let end_at = SimTime::ZERO + duration;
    let node_count = nodes.len();
    let network = network.expect("a parallel plan requires a network fabric");
    let loadgen = LoadGenerator::new(spec, total_rate_per_sec, seed);
    let meta = NodeMeta {
        workload_name: loadgen.spec().name,
        offered_rate: loadgen.rate_per_sec() / node_count as f64,
        network_rtt: loadgen.spec().network_rtt,
    };
    let net = NetworkState::new(network, node_count);
    let client = net.client();
    let mut hub = ClusterHub {
        loadgen,
        policy: PolicyReplay::new(policy),
        policy_rng: SimRng::from_seed(seed).fork("balancer"),
        routed: vec![0; node_count],
        net,
        client,
        lookahead,
        pending_wire: BTreeMap::new(),
        emit_seq: 0,
        arrival_inserted: SimTime::ZERO,
        ops: Vec::new(),
        hub_dispatches: 0,
    };
    let params = EpochParams {
        seed,
        workers,
        lookahead,
        end_at,
        profile: nodes[0].profile,
    };
    let (finished, profile) = run_epochs(&mut hub, nodes, meta, params);
    let events_dispatched = hub.hub_dispatches
        + finished
            .iter()
            .map(|(_, dispatched)| dispatched)
            .sum::<u64>();
    ClusterResult {
        policy: policy.name(),
        routed: hub.routed,
        duration,
        events_dispatched,
        network: Some(hub.net.stats().clone()),
        // Tracing always takes the sequential loop (see
        // `run_with_parallelism`), so a parallel run never carries spans.
        trace: None,
        profile,
        nodes: FleetResult {
            runs: finished.into_iter().map(|(run, _)| run).collect(),
        },
    }
}

fn run_parallel_chain(member: ChainMember, workers: usize, lookahead: SimDuration) -> ChainResult {
    let ChainMember {
        nodes,
        policy,
        graph,
        chains_per_sec,
        seed,
        network,
    } = member;
    let duration = shared_duration(&nodes);
    let end_at = SimTime::ZERO + duration;
    let node_count = nodes.len();
    let network = network.expect("a parallel plan requires a network fabric");
    let meta = NodeMeta {
        workload_name: "chain",
        offered_rate: chains_per_sec * graph.rpcs_per_chain() as f64 / node_count as f64,
        network_rtt: SimDuration::ZERO,
    };
    // Mirror `ChainCoordinator::new`: the first gap is drawn at
    // construction, and the first `ChainArrival` is inserted at time zero.
    let mut arrivals: Box<dyn ArrivalProcess> = Box::new(PoissonArrivals::new(chains_per_sec));
    let mut workload_rng = SimRng::from_seed(seed).fork("chain-loadgen");
    let first_gap = arrivals.next_gap(&mut workload_rng);
    let net = NetworkState::new(network, node_count);
    let client = net.client();
    let mut hub = ChainHub {
        graph,
        arrivals,
        workload_rng,
        policy: PolicyReplay::new(policy),
        policy_rng: SimRng::from_seed(seed).fork("chain-coordinator"),
        routed: vec![0; node_count],
        net,
        client,
        lookahead,
        next_arrival: SimTime::ZERO + first_gap,
        next_arrival_inserted_ns: 0,
        inflight: BTreeMap::new(),
        next_chain_id: 0,
        next_request_id: 0,
        chains_started: 0,
        chains_completed: 0,
        e2e: LatencyRecorder::new(),
        straggler: LatencyRecorder::new(),
        pending_wire: BTreeMap::new(),
        emit_seq: 0,
        pending_leaf: BTreeMap::new(),
        leaf_seq: 0,
        ops: Vec::new(),
        hub_dispatches: 0,
    };
    let params = EpochParams {
        seed,
        workers,
        lookahead,
        end_at,
        profile: nodes[0].profile,
    };
    let (finished, profile) = run_epochs(&mut hub, nodes, meta, params);
    let events_dispatched = hub.hub_dispatches
        + finished
            .iter()
            .map(|(_, dispatched)| dispatched)
            .sum::<u64>();
    ChainResult {
        policy: policy.name(),
        graph: hub.graph.describe(),
        duration,
        chains_started: hub.chains_started,
        chains_completed: hub.chains_completed,
        chain_latency: hub.e2e.summary(),
        straggler: hub.straggler.summary(),
        routed: hub.routed,
        events_dispatched,
        network: Some(hub.net.stats().clone()),
        // Tracing always takes the sequential loop (see
        // `run_with_parallelism`), so a parallel run never carries spans.
        trace: None,
        profile,
        nodes: FleetResult {
            runs: finished.into_iter().map(|(run, _)| run).collect(),
        },
    }
}

impl ClusterMember {
    /// Runs this cluster, partitioned across up to `workers` threads
    /// (`None` = the host's available parallelism) when
    /// [`execution_plan`] allows — bit-identical to [`ClusterMember::run`]
    /// either way.
    #[must_use]
    pub fn run_with_parallelism(self, workers: Option<usize>) -> ClusterResult {
        // Request tracing keeps span emission single-threaded by taking the
        // sequential loop; parallel execution is bit-identical, so nothing
        // but the span log differs.
        if self.nodes[0].trace.is_some() {
            return self.run();
        }
        match execution_plan(self.nodes.len(), self.network.as_ref(), workers) {
            ExecutionPlan::Sequential { .. } => self.run(),
            ExecutionPlan::Parallel { workers, lookahead } => {
                run_parallel_cluster(self, workers, lookahead)
            }
        }
    }
}

impl ChainMember {
    /// Runs this chain cluster, partitioned across up to `workers` threads
    /// (`None` = the host's available parallelism) when
    /// [`execution_plan`] allows — bit-identical to [`ChainMember::run`]
    /// either way.
    #[must_use]
    pub fn run_with_parallelism(self, workers: Option<usize>) -> ChainResult {
        // As for clusters: tracing forces the (bit-identical) sequential
        // loop so span emission stays single-threaded.
        if self.nodes[0].trace.is_some() {
            return self.run();
        }
        match execution_plan(self.nodes.len(), self.network.as_ref(), workers) {
            ExecutionPlan::Sequential { .. } => self.run(),
            ExecutionPlan::Parallel { workers, lookahead } => {
                run_parallel_chain(self, workers, lookahead)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_requires_a_positive_lookahead_and_two_of_everything() {
        let net = NetworkConfig::two_tier(SimDuration::from_micros(3), 4);
        assert_eq!(
            execution_plan(4, Some(&net), Some(4)),
            ExecutionPlan::Parallel {
                workers: 4,
                lookahead: SimDuration::from_micros(3)
            }
        );
        // Workers cap at the node count; an explicit 1 forces sequential.
        assert_eq!(
            execution_plan(2, Some(&net), Some(8)),
            ExecutionPlan::Parallel {
                workers: 2,
                lookahead: SimDuration::from_micros(3)
            }
        );
        assert_eq!(
            execution_plan(4, Some(&net), Some(1)),
            ExecutionPlan::Sequential {
                reason: SequentialReason::SingleWorker
            }
        );
        assert_eq!(
            execution_plan(4, None, Some(4)),
            ExecutionPlan::Sequential {
                reason: SequentialReason::NoNetwork
            }
        );
        assert_eq!(
            execution_plan(4, Some(&NetworkConfig::ideal()), Some(4)),
            ExecutionPlan::Sequential {
                reason: SequentialReason::ZeroLookahead
            }
        );
        assert_eq!(
            execution_plan(4, Some(&NetworkConfig::flat(SimDuration::ZERO)), Some(4)),
            ExecutionPlan::Sequential {
                reason: SequentialReason::ZeroLookahead
            }
        );
        assert_eq!(
            execution_plan(1, Some(&net), Some(4)),
            ExecutionPlan::Sequential {
                reason: SequentialReason::SingleNode
            }
        );
    }
}
