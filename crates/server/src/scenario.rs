//! Declarative fleet-experiment scenarios.
//!
//! A [`Scenario`] is a data-only description of a fleet experiment: how many
//! servers, which workload and traffic shape each group of servers sees, how
//! long the run lasts and which seed it starts from. Materialising it
//! against a platform configuration ([`Scenario::run`]) builds a [`Fleet`],
//! executes it (in parallel — see the [`crate::fleet`] module docs) and
//! wraps the aggregate in a [`ScenarioResult`] ready for comparison tables.
//!
//! The module ships a small library of named scenarios
//! ([`Scenario::library`]) that exercise the fleet dimensions the paper's
//! single-server figures cannot show: a compressed diurnal load curve, a
//! flash-crowd burst, a heterogeneous Memcached/Kafka/MySQL fleet and a
//! low-load energy-proportionality sweep.
//!
//! Member seeds are derived from the scenario seed with the canonical
//! label-fork scheme documented on [`apc_sim::rng::SimRng::fork`], under the
//! same `"server {i}"` labels the fleet runner uses, so scenario runs are
//! exactly reproducible and member streams are pairwise independent.
//!
//! # Example
//!
//! ```
//! use apc_server::config::ServerConfig;
//! use apc_server::scenario::Scenario;
//! use apc_sim::SimDuration;
//!
//! let scenario = Scenario::flash_crowd().with_duration(SimDuration::from_millis(20));
//! let result = scenario.run(&ServerConfig::c_pc1a());
//! assert_eq!(result.fleet.servers(), scenario.servers());
//! assert!(result.fleet.total_power_w() > 0.0);
//! ```

use std::fmt;

use apc_sim::SimDuration;
use apc_workloads::arrival::{
    ArrivalProcess, PiecewiseRateArrivals, RateSegment, SinusoidArrivals,
};
use apc_workloads::spec::WorkloadSpec;

use crate::balancer::RoutingPolicyKind;
use crate::chain::{ChainMember, ChainResult, RequestGraph};
use crate::cluster::{ClusterMember, ClusterResult};
use crate::config::ServerConfig;
use crate::fleet::{Fleet, FleetMember, FleetResult};

/// Which of the modelled services a member group runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Memcached under the Facebook ETC mix ([`WorkloadSpec::memcached_etc`]).
    MemcachedEtc,
    /// Kafka produce/consume streaming ([`WorkloadSpec::kafka`]).
    Kafka,
    /// MySQL running sysbench-OLTP transactions ([`WorkloadSpec::mysql_oltp`]).
    MysqlOltp,
}

impl WorkloadKind {
    /// Builds a fresh specification for this workload (specs own boxed
    /// distributions and cannot be cloned, so each member gets its own).
    #[must_use]
    pub fn spec(self) -> WorkloadSpec {
        match self {
            WorkloadKind::MemcachedEtc => WorkloadSpec::memcached_etc(),
            WorkloadKind::Kafka => WorkloadSpec::kafka(),
            WorkloadKind::MysqlOltp => WorkloadSpec::mysql_oltp(),
        }
    }

    /// The service name as it appears in results and tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::MemcachedEtc => "memcached",
            WorkloadKind::Kafka => "kafka",
            WorkloadKind::MysqlOltp => "mysql",
        }
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The shape of a member group's offered traffic over the run.
///
/// Time-varying patterns are expressed relative to the scenario duration so
/// one scenario definition scales from unit-test windows to long production
/// runs without re-tuning.
#[derive(Debug, Clone, PartialEq)]
pub enum TrafficPattern {
    /// The workload's default stationary arrivals (bursty MMPP for the
    /// built-in specs) at a constant offered rate.
    Constant {
        /// Offered rate in requests per second.
        rate_per_sec: f64,
    },
    /// A sinusoidal day/night curve compressed into the run: one full
    /// oscillation over the scenario duration.
    Diurnal {
        /// Long-run average rate in requests per second.
        mean_rate_per_sec: f64,
        /// Relative swing in `[0, 1)`: 0.75 oscillates between 0.25× and
        /// 1.75× the mean.
        swing: f64,
    },
    /// A transient burst: base rate, then `peak_multiplier ×` base for a
    /// window, then base again.
    FlashCrowd {
        /// Rate outside the burst, in requests per second.
        base_rate_per_sec: f64,
        /// Rate multiplier during the burst.
        peak_multiplier: f64,
        /// Burst start, as a fraction of the scenario duration in `(0, 1)`.
        start_fraction: f64,
        /// Burst length, as a fraction of the scenario duration in `(0, 1)`.
        length_fraction: f64,
    },
    /// An explicit piecewise-constant rate schedule.
    Steps {
        /// The schedule segments (absolute durations).
        segments: Vec<RateSegment>,
        /// Whether the schedule repeats or the last rate holds.
        repeat: bool,
    },
}

impl TrafficPattern {
    /// The pattern's long-run average rate (time-weighted over the schedule
    /// for the piecewise patterns).
    #[must_use]
    pub fn mean_rate_per_sec(&self) -> f64 {
        match self {
            TrafficPattern::Constant { rate_per_sec } => *rate_per_sec,
            TrafficPattern::Diurnal {
                mean_rate_per_sec, ..
            } => *mean_rate_per_sec,
            TrafficPattern::FlashCrowd {
                base_rate_per_sec,
                peak_multiplier,
                length_fraction,
                ..
            } => base_rate_per_sec * (1.0 + (peak_multiplier - 1.0) * length_fraction),
            TrafficPattern::Steps { segments, .. } => {
                let total: f64 = segments.iter().map(|s| s.duration.as_secs_f64()).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                segments
                    .iter()
                    .map(|s| s.rate_per_sec * s.duration.as_secs_f64())
                    .sum::<f64>()
                    / total
            }
        }
    }

    /// Builds the arrival process for one member, or `None` when the
    /// workload's own stationary process should be used
    /// ([`TrafficPattern::Constant`]).
    #[must_use]
    pub fn arrival_process(&self, duration: SimDuration) -> Option<Box<dyn ArrivalProcess>> {
        match self {
            TrafficPattern::Constant { .. } => None,
            TrafficPattern::Diurnal {
                mean_rate_per_sec,
                swing,
            } => Some(Box::new(SinusoidArrivals::new(
                *mean_rate_per_sec,
                *swing,
                duration,
                0.0,
            ))),
            TrafficPattern::FlashCrowd {
                base_rate_per_sec,
                peak_multiplier,
                start_fraction,
                length_fraction,
            } => Some(Box::new(PiecewiseRateArrivals::flash_crowd(
                *base_rate_per_sec,
                *peak_multiplier,
                duration.mul_f64(*start_fraction),
                duration.mul_f64(*length_fraction),
            ))),
            TrafficPattern::Steps { segments, repeat } => Some(Box::new(
                PiecewiseRateArrivals::new(segments.clone(), *repeat),
            )),
        }
    }
}

/// A group of identical servers within a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct MemberGroup {
    /// Number of servers in the group.
    pub count: usize,
    /// The service every server in the group runs.
    pub workload: WorkloadKind,
    /// The traffic each server receives.
    pub traffic: TrafficPattern,
}

impl MemberGroup {
    /// A group of `count` servers running `workload` under `traffic`.
    #[must_use]
    pub fn new(count: usize, workload: WorkloadKind, traffic: TrafficPattern) -> Self {
        MemberGroup {
            count,
            workload,
            traffic,
        }
    }
}

/// A declarative fleet-experiment specification.
///
/// A scenario is platform-agnostic: the same spec runs under `Cshallow`,
/// `Cdeep` and `CPC1A` by passing different base configurations to
/// [`Scenario::run`], which is exactly what comparison tables need.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Short name used in tables ("diurnal", "flash-crowd", ...).
    pub name: &'static str,
    /// One-line description of what the scenario exercises.
    pub description: &'static str,
    /// Simulated duration of every member's run.
    pub duration: SimDuration,
    /// Root seed; member seeds are forked from it (see the module docs).
    pub seed: u64,
    /// The member groups making up the fleet.
    pub groups: Vec<MemberGroup>,
}

impl Scenario {
    /// A scenario with the given name, groups and defaults (200 ms window,
    /// seed `0x5ce0`).
    #[must_use]
    pub fn new(name: &'static str, description: &'static str, groups: Vec<MemberGroup>) -> Self {
        Scenario {
            name,
            description,
            duration: SimDuration::from_millis(200),
            seed: 0x5ce0,
            groups,
        }
    }

    /// Overrides the simulated duration (tests use short windows).
    #[must_use]
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the root seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total number of servers across all groups.
    #[must_use]
    pub fn servers(&self) -> usize {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Materialises the scenario into a fleet on top of `base` (which
    /// supplies the platform, power model and noise; its duration and seed
    /// are replaced by the scenario's).
    #[must_use]
    pub fn build_fleet(&self, base: &ServerConfig) -> Fleet {
        let mut fleet = Fleet::new();
        let mut index = 0usize;
        for group in &self.groups {
            for _ in 0..group.count {
                let config = base
                    .clone()
                    .with_duration(self.duration)
                    .with_seed(Fleet::member_seed(self.seed, index));
                let rate = group.traffic.mean_rate_per_sec();
                let mut member = FleetMember::new(config, group.workload.spec(), rate);
                if let Some(arrivals) = group.traffic.arrival_process(self.duration) {
                    member = member.with_arrival_process(arrivals);
                }
                fleet.push(member);
                index += 1;
            }
        }
        fleet
    }

    /// Builds and executes the scenario under `base`.
    #[must_use]
    pub fn run(&self, base: &ServerConfig) -> ScenarioResult {
        ScenarioResult {
            scenario: self.name,
            config_name: base.platform.name,
            servers: self.servers(),
            fleet: self.build_fleet(base).run(),
        }
    }

    // ---- the named scenario library ------------------------------------

    /// Eight Memcached servers riding one compressed day/night cycle: load
    /// swings between 0.25× and 1.75× of 40 K QPS over the run. Exercises
    /// PC1A residency tracking the diurnal trough.
    #[must_use]
    pub fn diurnal() -> Self {
        Scenario::new(
            "diurnal",
            "memcached fleet under a compressed day/night load curve",
            vec![MemberGroup::new(
                8,
                WorkloadKind::MemcachedEtc,
                TrafficPattern::Diurnal {
                    mean_rate_per_sec: 40_000.0,
                    swing: 0.75,
                },
            )],
        )
    }

    /// Six Memcached servers hit by a 6× flash crowd for 20 % of the run,
    /// starting at 40 %. Exercises wake-up behaviour when a quiet fleet is
    /// suddenly saturated.
    #[must_use]
    pub fn flash_crowd() -> Self {
        Scenario::new(
            "flash-crowd",
            "quiet memcached fleet hit by a sudden 6x traffic spike",
            vec![MemberGroup::new(
                6,
                WorkloadKind::MemcachedEtc,
                TrafficPattern::FlashCrowd {
                    base_rate_per_sec: 20_000.0,
                    peak_multiplier: 6.0,
                    start_fraction: 0.4,
                    length_fraction: 0.2,
                },
            )],
        )
    }

    /// A mixed-service fleet — four Memcached, two Kafka, two MySQL servers —
    /// each at its paper low/mid operating point. Exercises fleet aggregation
    /// across heterogeneous latency and power profiles.
    #[must_use]
    pub fn heterogeneous_fleet() -> Self {
        Scenario::new(
            "heterogeneous",
            "mixed memcached/kafka/mysql fleet at paper operating points",
            vec![
                MemberGroup::new(
                    4,
                    WorkloadKind::MemcachedEtc,
                    TrafficPattern::Constant {
                        rate_per_sec: 25_000.0,
                    },
                ),
                MemberGroup::new(
                    2,
                    WorkloadKind::Kafka,
                    TrafficPattern::Constant {
                        rate_per_sec: 8_000.0,
                    },
                ),
                MemberGroup::new(
                    2,
                    WorkloadKind::MysqlOltp,
                    TrafficPattern::Constant {
                        rate_per_sec: 800.0,
                    },
                ),
            ],
        )
    }

    /// One Memcached server per low-load operating point (4 K – 100 K QPS):
    /// the fleet-level view of the paper's energy-proportionality story,
    /// where package idle recovery matters most.
    #[must_use]
    pub fn low_load_sweep() -> Self {
        let points = [4_000.0, 10_000.0, 25_000.0, 50_000.0, 100_000.0];
        Scenario::new(
            "low-load-sweep",
            "memcached servers spanning the paper's low-load region",
            points
                .iter()
                .map(|&rate_per_sec| {
                    MemberGroup::new(
                        1,
                        WorkloadKind::MemcachedEtc,
                        TrafficPattern::Constant { rate_per_sec },
                    )
                })
                .collect(),
        )
    }

    /// Every named scenario, in presentation order.
    #[must_use]
    pub fn library() -> Vec<Scenario> {
        vec![
            Scenario::diurnal(),
            Scenario::flash_crowd(),
            Scenario::heterogeneous_fleet(),
            Scenario::low_load_sweep(),
        ]
    }
}

/// The outcome of running one scenario under one platform configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioResult {
    /// The scenario's name.
    pub scenario: &'static str,
    /// The platform configuration it ran under.
    pub config_name: &'static str,
    /// Number of servers in the fleet.
    pub servers: usize,
    /// The aggregated fleet outcome.
    pub fleet: FleetResult,
}

/// One summary line: scenario, platform, fleet throughput, power, latency
/// and PC1A residency — the row format of the scenario matrix tables.
impl fmt::Display for ScenarioResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:<15} {:<9} {:>2} servers {:>10.0} rps {:>7.1} W mean {} worst p99 {} p999 {} PC1A {:>5.1}%",
            self.scenario,
            self.config_name,
            self.servers,
            self.fleet.aggregate_throughput(),
            self.fleet.total_power_w(),
            self.fleet.mean_latency(),
            self.fleet.worst_p99(),
            self.fleet.worst_p999(),
            self.fleet.mean_pc1a_residency() * 100.0,
        )
    }
}

/// A declarative cluster-routing experiment: an N-node cluster serving one
/// workload at a cluster-aggregate rate, to be run under each routing policy
/// × platform configuration of interest.
///
/// Like [`Scenario`], a `ClusterScenario` is platform- and policy-agnostic
/// data: the same spec runs under `Cshallow`/`Cdeep`/`CPC1A` and under any
/// [`RoutingPolicyKind`] by varying the arguments to [`ClusterScenario::run`]
/// — exactly the two axes the cluster comparison tables sweep.
///
/// # Example
///
/// ```
/// use apc_server::balancer::RoutingPolicyKind;
/// use apc_server::config::ServerConfig;
/// use apc_server::scenario::ClusterScenario;
/// use apc_sim::SimDuration;
///
/// let scenario = ClusterScenario::eight_node_memcached()
///     .with_duration(SimDuration::from_millis(20));
/// let result = scenario.run(&ServerConfig::c_pc1a(), RoutingPolicyKind::PowerAware);
/// assert_eq!(result.nodes.servers(), 8);
/// assert_eq!(result.policy, "power-aware");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterScenario {
    /// Short name used in tables.
    pub name: &'static str,
    /// One-line description of what the scenario exercises.
    pub description: &'static str,
    /// Number of server nodes in the cluster.
    pub nodes: usize,
    /// The workload of the cluster arrival stream.
    pub workload: WorkloadKind,
    /// Cluster-aggregate offered rate (requests per second).
    pub total_rate_per_sec: f64,
    /// Simulated duration of the run.
    pub duration: SimDuration,
    /// Cluster seed (node seeds fork from it; see
    /// [`crate::cluster::ClusterMember::homogeneous`]).
    pub seed: u64,
}

impl ClusterScenario {
    /// A cluster scenario with the given shape and the library defaults
    /// (100 ms window, seed `0x5ce0`).
    #[must_use]
    pub fn new(
        name: &'static str,
        description: &'static str,
        nodes: usize,
        workload: WorkloadKind,
        total_rate_per_sec: f64,
    ) -> Self {
        ClusterScenario {
            name,
            description,
            nodes,
            workload,
            total_rate_per_sec,
            duration: SimDuration::from_millis(100),
            seed: 0x5ce0,
        }
    }

    /// Overrides the simulated duration (tests use short windows).
    #[must_use]
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the cluster seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materialises and runs the scenario on top of `base` (which supplies
    /// the platform, power model and noise; its duration and seed are
    /// replaced by the scenario's) under `policy`.
    #[must_use]
    pub fn run(&self, base: &ServerConfig, policy: RoutingPolicyKind) -> ClusterResult {
        let base = base
            .clone()
            .with_duration(self.duration)
            .with_seed(self.seed);
        ClusterMember::homogeneous(
            &base,
            self.nodes,
            policy,
            self.workload.spec(),
            self.total_rate_per_sec,
        )
        .run()
    }

    // ---- the named cluster-scenario library ----------------------------

    /// Eight Memcached nodes at the paper's mid operating point (20 K QPS
    /// per node aggregate). The headline cluster comparison: how routing
    /// reshapes idle-period distributions at realistic load.
    #[must_use]
    pub fn eight_node_memcached() -> Self {
        ClusterScenario::new(
            "cluster-8-mid",
            "8-node memcached cluster at the mid operating point",
            8,
            WorkloadKind::MemcachedEtc,
            160_000.0,
        )
    }

    /// Eight Memcached nodes in the diurnal trough (3 K QPS per node
    /// aggregate): the regime where packing policies let most of the
    /// cluster sleep.
    #[must_use]
    pub fn eight_node_trough() -> Self {
        ClusterScenario::new(
            "cluster-8-trough",
            "8-node memcached cluster at trough load",
            8,
            WorkloadKind::MemcachedEtc,
            24_000.0,
        )
    }

    /// A sixteen-node Kafka cluster at moderate streaming load: wider
    /// fan-out, longer per-request service.
    #[must_use]
    pub fn sixteen_node_kafka() -> Self {
        ClusterScenario::new(
            "cluster-16-kafka",
            "16-node kafka cluster under moderate streaming load",
            16,
            WorkloadKind::Kafka,
            64_000.0,
        )
    }

    /// Every named cluster scenario, in presentation order.
    #[must_use]
    pub fn library() -> Vec<ClusterScenario> {
        vec![
            ClusterScenario::eight_node_memcached(),
            ClusterScenario::eight_node_trough(),
            ClusterScenario::sixteen_node_kafka(),
        ]
    }
}

/// A declarative fan-out chain experiment: an N-node cluster executing one
/// [`RequestGraph`] (frontend → fan-out leaves with wait-for-all joins) at a
/// root-chain arrival rate, to be run under each routing policy × platform
/// configuration of interest.
///
/// This is the traffic class that motivates PC1A: the scatter-gather join
/// waits for the slowest leaf, so one node waking from a deep package
/// C-state stretches the whole chain's tail. Expect `Cdeep` to widen the
/// end-to-end p999 where `CPC1A` holds both power and tail.
///
/// # Example
///
/// ```
/// use apc_server::balancer::RoutingPolicyKind;
/// use apc_server::config::ServerConfig;
/// use apc_server::scenario::ChainScenario;
/// use apc_sim::SimDuration;
///
/// let scenario = ChainScenario::mesh_8_fanout4()
///     .with_duration(SimDuration::from_millis(20));
/// let result = scenario.run(&ServerConfig::c_pc1a(), RoutingPolicyKind::JoinShortestQueue);
/// assert_eq!(result.nodes.servers(), 8);
/// assert!(result.chains_completed > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ChainScenario {
    /// Short name used in tables.
    pub name: &'static str,
    /// One-line description of what the scenario exercises.
    pub description: &'static str,
    /// Number of server nodes in the cluster.
    pub nodes: usize,
    /// The chain shape every root request executes.
    pub graph: RequestGraph,
    /// Root-chain arrival rate (chains per second).
    pub chains_per_sec: f64,
    /// Simulated duration of the run.
    pub duration: SimDuration,
    /// Cluster seed (node seeds fork from it; see
    /// [`crate::chain::ChainMember::homogeneous`]).
    pub seed: u64,
}

impl ChainScenario {
    /// A chain scenario with the given shape and the library defaults
    /// (100 ms window, seed `0x5ce0`).
    #[must_use]
    pub fn new(
        name: &'static str,
        description: &'static str,
        nodes: usize,
        graph: RequestGraph,
        chains_per_sec: f64,
    ) -> Self {
        ChainScenario {
            name,
            description,
            nodes,
            graph,
            chains_per_sec,
            duration: SimDuration::from_millis(100),
            seed: 0x5ce0,
        }
    }

    /// Overrides the simulated duration (tests use short windows).
    #[must_use]
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = duration;
        self
    }

    /// Overrides the cluster seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Materialises and runs the scenario on top of `base` (which supplies
    /// the platform, power model and noise; its duration and seed are
    /// replaced by the scenario's) under `policy`.
    #[must_use]
    pub fn run(&self, base: &ServerConfig, policy: RoutingPolicyKind) -> ChainResult {
        let base = base
            .clone()
            .with_duration(self.duration)
            .with_seed(self.seed);
        ChainMember::homogeneous(
            &base,
            self.nodes,
            policy,
            self.graph.clone(),
            self.chains_per_sec,
        )
        .run()
    }

    // ---- the named chain-scenario library ------------------------------

    /// Eight nodes, memcached scatter-gather with fan-out 4 at 8 K chains/s
    /// (40 K RPC/s cluster-wide): the headline fan-out comparison — how wake
    /// latency compounds at the join under `Cshallow`/`Cdeep`/`CPC1A`.
    #[must_use]
    pub fn mesh_8_fanout4() -> Self {
        ChainScenario::new(
            "mesh-8-fanout4",
            "8-node memcached scatter-gather, fan-out 4, wait-for-all join",
            8,
            RequestGraph::memcached_fanout(4),
            8_000.0,
        )
    }

    /// Sixteen nodes, memcached scatter-gather with fan-out 8 at 6 K
    /// chains/s: wider fan-in, more chances for one leaf to land on a
    /// sleeping node — the regime where the straggler gap dominates p999.
    #[must_use]
    pub fn mesh_16_memcached() -> Self {
        ChainScenario::new(
            "mesh-16-memcached",
            "16-node memcached scatter-gather, fan-out 8, straggler-bound tail",
            16,
            RequestGraph::memcached_fanout(8),
            6_000.0,
        )
    }

    /// Every named chain scenario, in presentation order.
    #[must_use]
    pub fn library() -> Vec<ChainScenario> {
        vec![
            ChainScenario::mesh_8_fanout4(),
            ChainScenario::mesh_16_memcached(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traffic_pattern_mean_rates() {
        let d = SimDuration::from_millis(100);
        let c = TrafficPattern::Constant {
            rate_per_sec: 5_000.0,
        };
        assert_eq!(c.mean_rate_per_sec(), 5_000.0);
        assert!(c.arrival_process(d).is_none());

        let fc = TrafficPattern::FlashCrowd {
            base_rate_per_sec: 10_000.0,
            peak_multiplier: 6.0,
            start_fraction: 0.4,
            length_fraction: 0.2,
        };
        // Burst adds (6 - 1) * 0.2 = 1.0x of base on average.
        assert!((fc.mean_rate_per_sec() - 20_000.0).abs() < 1e-9);
        assert!(fc.arrival_process(d).is_some());

        let steps = TrafficPattern::Steps {
            segments: vec![
                RateSegment::new(SimDuration::from_millis(10), 1_000.0),
                RateSegment::new(SimDuration::from_millis(30), 5_000.0),
            ],
            repeat: true,
        };
        assert!((steps.mean_rate_per_sec() - 4_000.0).abs() < 1e-9);
    }

    #[test]
    fn build_fleet_honours_groups_and_seeds() {
        let scenario = Scenario::heterogeneous_fleet();
        let fleet = scenario.build_fleet(&ServerConfig::c_pc1a());
        assert_eq!(fleet.len(), scenario.servers());
        assert_eq!(fleet.len(), 8);
    }

    #[test]
    fn offered_rate_reflects_run_horizon_not_schedule() {
        // A flash crowd whose schedule spans only 40 % of the run: the
        // nominal rate recorded in results must be the mean over the run
        // (base * (1 + (mult-1) * length)), not the schedule-weighted mean
        // the arrival process itself reports.
        let pattern = TrafficPattern::FlashCrowd {
            base_rate_per_sec: 10_000.0,
            peak_multiplier: 6.0,
            start_fraction: 0.1,
            length_fraction: 0.2,
        };
        assert!((pattern.mean_rate_per_sec() - 20_000.0).abs() < 1e-9);
        let scenario = Scenario::new(
            "short-burst",
            "burst schedule shorter than the run",
            vec![MemberGroup::new(1, WorkloadKind::MemcachedEtc, pattern)],
        )
        .with_duration(SimDuration::from_millis(10));
        let result = scenario.run(&ServerConfig::c_pc1a());
        assert!((result.fleet.runs[0].offered_rate - 20_000.0).abs() < 1e-9);
    }

    #[test]
    fn scenario_runs_are_reproducible() {
        let scenario = Scenario::diurnal().with_duration(SimDuration::from_millis(10));
        let base = ServerConfig::c_pc1a();
        assert_eq!(scenario.run(&base), scenario.run(&base));
        let reseeded = scenario.clone().with_seed(99);
        assert_ne!(scenario.run(&base), reseeded.run(&base));
    }
}
